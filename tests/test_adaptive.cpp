// Adaptive capture-log selection (capture/adaptive.hpp): the hysteresis
// state machine in isolation (synthetic epochs through observe_epoch) and
// the full stack end to end (real transactions driving escalation, decay,
// counters and plan re-specialization through begin_top).
//
// The two properties ISSUE 8 demands proof of:
//  * monotone escalation — an overflow burst moves array → filter once and
//    stays there while pressure persists;
//  * bounded switching — a workload oscillating across the escalation
//    threshold causes at most one switch per direction per decay window
//    (fast attack, slow release; no thrash).
#include <gtest/gtest.h>

#include <cstdint>

#include "capture/adaptive.hpp"
#include "stm/stm.hpp"

namespace cstm {
namespace {

// Small, fast tuning for the synthetic tests (semantics identical to the
// defaults; only thresholds shrink).
AdaptiveTuning test_tuning() {
  AdaptiveTuning t;
  t.epoch_txs = 8;
  t.decay_epochs = 3;
  t.array_fit_allocs = 4;
  t.low_probes_per_tx = 16;
  t.high_probes_per_tx = 256;
  t.tree_allocs_per_tx = 8;
  t.filter_words_per_tx = 128;
  t.batch_hint_min = 8;
  return t;
}

AdaptiveEpoch quiet_epoch() {
  AdaptiveEpoch e;
  e.txs = 8;
  e.allocs = 8;    // 1 alloc/tx: fits the array
  e.probes = 400;  // 50 probes/tx: unremarkable
  return e;
}

AdaptiveEpoch overflow_epoch() {
  AdaptiveEpoch e;
  e.txs = 8;
  e.allocs = 48;  // 6 allocs/tx: > array_fit, < tree_allocs
  e.probes = 800;
  e.overflows = 5;
  return e;
}

// -- State machine in isolation ---------------------------------------------

TEST(AdaptivePolicy, StartsOnArray) {
  AdaptiveLogPolicy p(test_tuning());
  EXPECT_EQ(p.current(), AllocLogKind::kArray);
  EXPECT_EQ(p.switches(), 0u);
}

TEST(AdaptivePolicy, MonotoneEscalationOnOverflowBurst) {
  AdaptiveLogPolicy p(test_tuning());
  for (int i = 0; i < 10; ++i) {
    p.observe_epoch(overflow_epoch());
    EXPECT_EQ(p.current(), AllocLogKind::kFilter) << "epoch " << i;
  }
  // One switch for the whole burst: escalation is monotone, not per-epoch.
  EXPECT_EQ(p.switches(), 1u);
}

TEST(AdaptivePolicy, OverflowWithFewProbesAndManyAllocsPicksTree) {
  AdaptiveLogPolicy p(test_tuning());
  AdaptiveEpoch e = overflow_epoch();
  e.allocs = 100;  // 12 allocs/tx >= tree_allocs_per_tx
  e.probes = 80;   // 10 probes/tx < low_probes_per_tx
  p.observe_epoch(e);
  EXPECT_EQ(p.current(), AllocLogKind::kTree);
}

TEST(AdaptivePolicy, FilterEscalatesToTreeOnMarkingPressure) {
  AdaptiveLogPolicy p(test_tuning());
  p.observe_epoch(overflow_epoch());
  ASSERT_EQ(p.current(), AllocLogKind::kFilter);
  AdaptiveEpoch heavy = overflow_epoch();
  heavy.filter_words = 8 * 200;  // 200 words/tx >= filter_words_per_tx
  p.observe_epoch(heavy);
  EXPECT_EQ(p.current(), AllocLogKind::kTree);
}

TEST(AdaptivePolicy, TreeEscalatesToFilterOnProbeVolume) {
  AdaptiveLogPolicy p(test_tuning());
  AdaptiveEpoch to_tree = overflow_epoch();
  to_tree.allocs = 100;
  to_tree.probes = 80;
  p.observe_epoch(to_tree);
  ASSERT_EQ(p.current(), AllocLogKind::kTree);
  AdaptiveEpoch probing = overflow_epoch();
  probing.probes = 8 * 300;  // 300 probes/tx >= high_probes_per_tx
  p.observe_epoch(probing);
  EXPECT_EQ(p.current(), AllocLogKind::kFilter);
}

TEST(AdaptivePolicy, DecayRequiresConsecutiveQuietEpochs) {
  AdaptiveLogPolicy p(test_tuning());
  p.observe_epoch(overflow_epoch());
  ASSERT_EQ(p.current(), AllocLogKind::kFilter);
  // decay_epochs - 1 quiet epochs: not enough.
  p.observe_epoch(quiet_epoch());
  p.observe_epoch(quiet_epoch());
  EXPECT_EQ(p.current(), AllocLogKind::kFilter);
  // A loud epoch resets the streak.
  p.observe_epoch(overflow_epoch());
  p.observe_epoch(quiet_epoch());
  p.observe_epoch(quiet_epoch());
  EXPECT_EQ(p.current(), AllocLogKind::kFilter);
  // Three CONSECUTIVE quiet epochs decay.
  p.observe_epoch(quiet_epoch());
  EXPECT_EQ(p.current(), AllocLogKind::kArray);
}

TEST(AdaptivePolicy, TreeDecaysToArrayToo) {
  AdaptiveLogPolicy p(test_tuning());
  AdaptiveEpoch to_tree = overflow_epoch();
  to_tree.allocs = 100;
  to_tree.probes = 80;
  p.observe_epoch(to_tree);
  ASSERT_EQ(p.current(), AllocLogKind::kTree);
  for (int i = 0; i < 3; ++i) p.observe_epoch(quiet_epoch());
  EXPECT_EQ(p.current(), AllocLogKind::kArray);
}

// The headline hysteresis property: oscillating across the escalation
// threshold at the fastest possible rate still bounds switching to one per
// direction per decay window.
TEST(AdaptivePolicy, OscillationCausesAtMostOneSwitchPerDirectionPerWindow) {
  const AdaptiveTuning t = test_tuning();
  AdaptiveLogPolicy p(t);
  // Strict alternation (loud, quiet, loud, quiet, ...): the quiet streak
  // never reaches decay_epochs, so after the FIRST escalation the policy
  // must simply stay put.
  p.observe_epoch(overflow_epoch());
  ASSERT_EQ(p.current(), AllocLogKind::kFilter);
  for (int i = 0; i < 100; ++i) {
    p.observe_epoch(i % 2 == 0 ? quiet_epoch() : overflow_epoch());
  }
  EXPECT_EQ(p.current(), AllocLogKind::kFilter);
  EXPECT_EQ(p.switches(), 1u);  // the initial escalation, nothing since

  // Slowest oscillation that still decays: decay_epochs quiet then one
  // loud. Each full cycle (decay_epochs + 1 epochs) can move the policy at
  // most down once and up once.
  AdaptiveLogPolicy q(t);
  const int cycles = 25;
  for (int c = 0; c < cycles; ++c) {
    q.observe_epoch(overflow_epoch());
    for (std::uint32_t i = 0; i < t.decay_epochs; ++i) {
      q.observe_epoch(quiet_epoch());
    }
  }
  EXPECT_LE(q.switches(), static_cast<std::uint64_t>(2 * cycles));
  EXPECT_GE(q.switches(), 2u);  // it does adapt — both directions fired
}

TEST(AdaptivePolicy, ResetRestoresStartStateKeepsTuning) {
  AdaptiveLogPolicy p(test_tuning());
  p.observe_epoch(overflow_epoch());
  ASSERT_EQ(p.current(), AllocLogKind::kFilter);
  p.reset();
  EXPECT_EQ(p.current(), AllocLogKind::kArray);
  EXPECT_EQ(p.tuning().epoch_txs, 8u);
  // switches() is a lifetime diagnostic and survives reset.
  EXPECT_EQ(p.switches(), 1u);
}

TEST(AdaptivePolicy, BatchHintPreEscalatesArrayToFilter) {
  AdaptiveLogPolicy p(test_tuning());
  p.note_batch(64);  // >= batch_hint_min
  EXPECT_EQ(p.on_begin(AdaptiveSample{}), AllocLogKind::kFilter);
  AdaptiveLogPolicy q(test_tuning());
  q.note_batch(2);  // below the hint threshold: no-op
  EXPECT_EQ(q.on_begin(AdaptiveSample{}), AllocLogKind::kArray);
}

TEST(AdaptivePolicy, OnBeginEvaluatesOncePerEpoch) {
  AdaptiveLogPolicy p(test_tuning());
  AdaptiveSample cum;
  // 7 begins: inside the first epoch, no evaluation yet.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(p.on_begin(cum), AllocLogKind::kArray);
  }
  EXPECT_EQ(p.epochs(), 0u);
  // The 8th begin closes the epoch; the cumulative counters show overflow,
  // so the NEXT transaction runs on the filter.
  cum.allocs = 48;
  cum.probes = 800;
  cum.array_overflows = 5;
  EXPECT_EQ(p.on_begin(cum), AllocLogKind::kFilter);
  EXPECT_EQ(p.epochs(), 1u);
}

TEST(AdaptivePolicy, CounterResetMidRunYieldsEmptyEpochNotGarbage) {
  AdaptiveLogPolicy p(test_tuning());
  AdaptiveSample cum;
  cum.allocs = 1000;
  cum.probes = 5000;
  cum.array_overflows = 50;
  for (int i = 0; i < 8; ++i) p.on_begin(cum);  // epoch 1: escalates
  EXPECT_EQ(p.current(), AllocLogKind::kFilter);
  // stats_reset() between runs: cumulative counters jump BACKWARDS. The
  // saturating delta must read this as a quiet epoch, not a 2^64 overflow.
  AdaptiveSample reset;
  for (int i = 0; i < 8; ++i) p.on_begin(reset);
  EXPECT_EQ(p.current(), AllocLogKind::kFilter);  // one quiet epoch: no decay
  EXPECT_EQ(p.switches(), 1u);
}

// -- End to end through the STM ---------------------------------------------

class AdaptiveIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    TxConfig cfg = TxConfig::runtime_rw(AllocLogKind::kAdaptive);
    set_global_config(cfg);
    // One throwaway transaction so begin_top picks the config up (and
    // resets the policy); THEN install the fast test tuning.
    atomic([](Tx&) {});
    current_tx().adapt.set_tuning(test_tuning());
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }

  // One transaction allocating @p blocks heap blocks and writing them.
  static void alloc_heavy_tx(std::size_t blocks) {
    atomic([&](Tx& tx) {
      void* ptrs[16];
      for (std::size_t i = 0; i < blocks; ++i) {
        ptrs[i] = tx_malloc(tx, 64);
        tm_write(tx, static_cast<std::uint64_t*>(ptrs[i]), std::uint64_t{i});
      }
      for (std::size_t i = 0; i < blocks; ++i) tx_free(tx, ptrs[i]);
    });
  }
};

TEST_F(AdaptiveIntegration, EscalatesOnOverflowThenDecaysWhenQuiet) {
  // Phase 1: every transaction allocates 12 blocks — triple the array's
  // capacity — so dropped() grows and the first epoch boundary escalates.
  for (int i = 0; i < 4 * 8; ++i) alloc_heavy_tx(12);
  EXPECT_NE(current_tx().adapt.current(), AllocLogKind::kArray);
  TxStats s = stats_snapshot();
  EXPECT_GT(s.array_overflows, 0u);
  EXPECT_GE(s.adaptive_switches, 1u);
  EXPECT_GT(s.adaptive_txs_array, 0u);  // the pre-escalation prefix
  EXPECT_GT(s.adaptive_txs_filter + s.adaptive_txs_tree, 0u);

  // Phase 2: allocation-free transactions. After decay_epochs quiet epochs
  // the policy must be back on the array.
  for (int i = 0; i < 8 * 8; ++i) {
    atomic([](Tx&) {});
  }
  EXPECT_EQ(current_tx().adapt.current(), AllocLogKind::kArray);
}

TEST_F(AdaptiveIntegration, ArrayOverflowCounterSurfacesInStats) {
  // Fixed-array config (not adaptive): the overflow counter must fill in
  // even without the policy — it is the observability satellite.
  set_global_config(TxConfig::runtime_rw(AllocLogKind::kArray));
  atomic([](Tx&) {});
  stats_reset();
  for (int i = 0; i < 10; ++i) alloc_heavy_tx(12);
  const TxStats s = stats_snapshot();
  // 12 allocs/tx against capacity 4: 8 drops per transaction.
  EXPECT_EQ(s.array_overflows, 10u * 8u);
  EXPECT_GT(s.tx_allocs, 0u);
  EXPECT_NEAR(s.capture_overflow_percent(), 100.0 * 80.0 / 120.0, 0.01);
}

TEST_F(AdaptiveIntegration, SwitchingPreservesOutcomes) {
  // A value computed across the escalation boundary must match a fixed-log
  // run exactly. (The 12k-step differential suite is the real gate; this is
  // the fast smoke for the same property.)
  auto run = [](const TxConfig& cfg) {
    set_global_config(cfg);
    atomic([](Tx&) {});
    tvar<std::uint64_t> acc{0};
    for (int i = 0; i < 100; ++i) {
      atomic([&](Tx& tx) {
        auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 64));
        for (int j = 0; j < 8; ++j) {
          tm_write(tx, &block[j], static_cast<std::uint64_t>(i + j));
        }
        std::uint64_t sum = 0;
        for (int j = 0; j < 8; ++j) sum += tm_read(tx, &block[j]);
        acc.set(tx, acc.get(tx) + sum);
        tx_free(tx, block);
      });
    }
    std::uint64_t out = 0;
    atomic([&](Tx& tx) { out = acc.get(tx); });
    return out;
  };
  const std::uint64_t adaptive = run(TxConfig::runtime_rw(AllocLogKind::kAdaptive));
  const std::uint64_t tree = run(TxConfig::runtime_rw(AllocLogKind::kTree));
  EXPECT_EQ(adaptive, tree);
}

TEST_F(AdaptiveIntegration, PlanDistributionCountersCoverEveryAdaptiveTx) {
  const int txs = 50;
  for (int i = 0; i < txs; ++i) alloc_heavy_tx(2);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.adaptive_txs_array + s.adaptive_txs_filter + s.adaptive_txs_tree,
            static_cast<std::uint64_t>(txs));
}

}  // namespace
}  // namespace cstm
