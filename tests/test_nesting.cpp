// Closed nesting with partial abort (paper Section 2.2.1): a nested
// transaction's partial abort must restore memory live-in to the child —
// including captured memory of the *parent*, which is why the write barrier
// undo-logs captured writes at depth > 1.
#include <gtest/gtest.h>

#include <cstdint>

#include "stm/stm.hpp"

namespace cstm {
namespace {

class Nesting : public ::testing::Test {
 protected:
  void SetUp() override {
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }
};

TEST_F(Nesting, NestedCommitMergesIntoParent) {
  std::uint64_t x = 0, y = 0;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{1});
    atomic([&](Tx& inner) { tm_write(inner, &y, std::uint64_t{2}); });
    EXPECT_EQ(tm_read(tx, &y), 2u);  // parent sees child's writes
  });
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 2u);
  EXPECT_EQ(stats_snapshot().commits, 1u);  // one top-level commit
}

TEST_F(Nesting, PartialAbortRollsBackOnlyInnerWrites) {
  std::uint64_t x = 0, y = 0;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{1});
    atomic([&](Tx& inner) {
      tm_write(inner, &y, std::uint64_t{2});
      abort_tx();  // partial abort: only the inner level rolls back
    });
    EXPECT_EQ(tm_read(tx, &y), 0u);
    EXPECT_EQ(tm_read(tx, &x), 1u);  // parent's write survives
  });
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 0u);
}

TEST_F(Nesting, PartialAbortRestoresParentWrittenLocation) {
  std::uint64_t x = 5;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{10});
    atomic([&](Tx& inner) {
      tm_write(inner, &x, std::uint64_t{20});  // same orec, owned by parent
      abort_tx();
    });
    EXPECT_EQ(tm_read(tx, &x), 10u);  // restored to the parent's value
  });
  EXPECT_EQ(x, 10u);
}

TEST_F(Nesting, PartialAbortRestoresParentCapturedHeap) {
  // Paper Section 2.2.1: memory captured by the parent is live-in for the
  // child; the child's elided writes still need undo logging.
  set_global_config(TxConfig::runtime_w());
  std::uint64_t observed = 0;
  atomic([&](Tx& tx) {
    auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 8));
    tm_write(tx, block, std::uint64_t{100}, kAutoSite);  // elided (captured)
    atomic([&](Tx& inner) {
      tm_write(inner, block, std::uint64_t{999}, kAutoSite);  // elided + undo
      abort_tx();
    });
    observed = tm_read(tx, block, kAutoSite);
    tx_free(tx, block);
  });
  EXPECT_EQ(observed, 100u);
}

TEST_F(Nesting, PartialAbortUndoesNestedAllocations) {
  std::uint64_t committed = 0;
  atomic([&](Tx& tx) {
    atomic([&](Tx& inner) {
      void* p = tx_malloc(inner, 64);
      (void)p;
      abort_tx();  // allocation rolled back with the level
    });
    tm_write(tx, &committed, std::uint64_t{1});
  });
  EXPECT_EQ(committed, 1u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.tx_allocs, 1u);
  EXPECT_EQ(s.commits, 1u);
}

TEST_F(Nesting, PartialAbortRestoresFreeOfParentBlock) {
  // A free performed inside an aborted child must be undone: the parent's
  // block stays allocated (and stays in the capture log).
  set_global_config(TxConfig::runtime_w());
  std::uint64_t result = 0;
  atomic([&](Tx& tx) {
    auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 8));
    tm_write(tx, block, std::uint64_t{7}, kAutoSite);
    atomic([&](Tx& inner) {
      tx_free(inner, block);
      abort_tx();  // the free must not happen
    });
    // Block is still live and still captured.
    tm_write(tx, block, std::uint64_t{8}, kAutoSite);
    result = tm_read(tx, block, kAutoSite);
    tx_free(tx, block);
  });
  EXPECT_EQ(result, 8u);
  const TxStats s = stats_snapshot();
  EXPECT_GE(s.write_elided_heap, 2u);  // both writes were elided
}

TEST_F(Nesting, DeeplyNestedPartialAborts) {
  std::uint64_t levels_run = 0;
  std::uint64_t cells[8] = {};
  atomic([&](Tx& tx) {
    ++levels_run;
    tm_write(tx, &cells[0], std::uint64_t{1});
    atomic([&](Tx& l2) {
      tm_write(l2, &cells[1], std::uint64_t{1});
      atomic([&](Tx& l3) {
        tm_write(l3, &cells[2], std::uint64_t{1});
        abort_tx();  // only level 3 rolls back
      });
      atomic([&](Tx& l3b) { tm_write(l3b, &cells[3], std::uint64_t{1}); });
    });
  });
  EXPECT_EQ(levels_run, 1u);
  EXPECT_EQ(cells[0], 1u);
  EXPECT_EQ(cells[1], 1u);
  EXPECT_EQ(cells[2], 0u);  // aborted level
  EXPECT_EQ(cells[3], 1u);  // sibling after the abort
}

TEST_F(Nesting, ConflictAbortInsideNestedRetriesWholeTransaction) {
  // A conflict abort anywhere rolls back all levels and retries from the
  // top; the nested structure re-executes.
  std::uint64_t attempts = 0;
  std::uint64_t x = 0;
  atomic([&](Tx& tx) {
    ++attempts;
    atomic([&](Tx& inner) { tm_write(inner, &x, attempts); });
  });
  EXPECT_EQ(attempts, 1u);  // no contention here: single attempt
  EXPECT_EQ(x, 1u);
}

TEST_F(Nesting, UserAbortAtTopLevelCancels) {
  std::uint64_t x = 3;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{4});
    atomic([&](Tx& inner) { tm_write(inner, &x, std::uint64_t{5}); });
    abort_tx();  // cancels the whole transaction, no retry
  });
  EXPECT_EQ(x, 3u);
  EXPECT_EQ(stats_snapshot().commits, 0u);
}

}  // namespace
}  // namespace cstm
