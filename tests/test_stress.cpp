// High-thread correctness torture tier (ctest label: stress).
//
// On this 1-core CI box the scalability work — epoch-batched clock,
// striped orecs, pluggable contention managers — cannot be gated on
// throughput, so it is gated on correctness under heavy oversubscription
// instead: 16 and 32 threads hammering shared containers through every
// contention manager, under release, ASan, and TSan.
//
// The workload is designed so its FINAL STATE is interleaving-independent
// and therefore identical across thread counts and CM policies:
//
//  * operations are indexed 0..kTotalOps and operation i is a pure
//    function of i; thread t of T executes exactly the ops with
//    i % T == t, so the op SET never depends on scheduling;
//  * all cross-thread effects commute: value-carrying inserts are
//    idempotent (the value is a function of the key), counter updates are
//    additive, bitmap sets are idempotent, and the one coupled op
//    (first-to-set-the-bit bumps the counter) is scheduling-independent
//    because only one op ever wins each bit regardless of order.
//
// Conflicts are still plentiful — different threads collide on the same
// map nodes, hashtable buckets, counter orec, and container internals —
// so the CMs, the lazy-validation clock, and the striped table all get
// exercised; they just must not be OBSERVABLE. Two assertions per run:
// the digest matches every other run's, and zero commits are lost
// (commits == ops executed, and the counter balances to its closed-form
// expected sum, conservation-style).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "containers/containers.hpp"
#include "stm/stm.hpp"

namespace cstm {
namespace {

constexpr std::uint64_t kKeyRange = 192;
constexpr int kTotalOps = 48000;

std::uint64_t mix(std::uint64_t x) {
  // splitmix64 finalizer: deterministic op parameters from the op index.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t key_of(int i) { return mix(static_cast<std::uint64_t>(i)) % kKeyRange; }

struct Digest {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
};

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t counter = 0;
};

/// One operation of the deterministic torture mix. Every branch's effect
/// commutes with every other op's (see file comment).
void run_op(int i, TxMap<std::uint64_t, std::uint64_t>& map,
            TxHashtable<std::uint64_t, std::uint64_t>& table, TxBitmap& bitmap,
            tvar<std::uint64_t>& counter) {
  const std::uint64_t k = key_of(i);
  switch (i % 5) {
    case 0:
      atomic([&](Tx& tx) { map.insert(tx, k, mix(k)); });
      break;
    case 1:
      atomic([&](Tx& tx) { table.put(tx, k, mix(k + 1)); });
      break;
    case 2:
      atomic([&](Tx& tx) {
        counter.add(tx, mix(static_cast<std::uint64_t>(i)) & 0xff);
      });
      break;
    case 3:
      atomic([&](Tx& tx) {
        if (bitmap.set(tx, k)) counter.add(tx, 1);
      });
      break;
    default:
      atomic([&](Tx& tx) {
        map.insert(tx, k ^ 0x40, mix(k ^ 0x40));
        counter.add(tx, 3);
      });
      break;
  }
}

RunOutcome run_stress(ContentionPolicy cm, unsigned threads) {
  set_global_config(TxConfig::baseline().with_contention(cm));
  stats_reset();

  TxMap<std::uint64_t, std::uint64_t> map;
  TxHashtable<std::uint64_t, std::uint64_t> table(64);
  TxBitmap bitmap(kKeyRange);
  tvar<std::uint64_t> counter{0};

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = static_cast<int>(t); i < kTotalOps;
           i += static_cast<int>(threads)) {
        run_op(i, map, table, bitmap, counter);
      }
    });
  }
  for (auto& th : pool) th.join();

  // Snapshot BEFORE the digest traversal so commits == kTotalOps exactly.
  const TxStats s = stats_snapshot();

  Digest d;
  map.for_each_sequential([&](std::uint64_t k, std::uint64_t v) {
    d.fold(k);
    d.fold(v);
  });
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < kKeyRange; ++k) {
      std::uint64_t v = 0;
      if (table.find(tx, k, &v)) {
        d.fold(k);
        d.fold(v);
      }
    }
  });
  d.fold(bitmap.count_sequential());
  d.fold(counter.peek());

  set_global_config(TxConfig::baseline());
  return RunOutcome{d.hash, s.commits, s.aborts, counter.peek()};
}

/// Closed-form expected counter value: replay the op mix sequentially on
/// cheap scalar state (no STM). This is what conservation means here —
/// whatever the interleaving, additive effects must balance exactly.
std::uint64_t expected_counter() {
  std::uint64_t sum = 0;
  bool bits[kKeyRange] = {};
  for (int i = 0; i < kTotalOps; ++i) {
    switch (i % 5) {
      case 2: sum += mix(static_cast<std::uint64_t>(i)) & 0xff; break;
      case 3: {
        const std::uint64_t k = key_of(i);
        if (!bits[k]) {
          bits[k] = true;
          sum += 1;
        }
        break;
      }
      default:
        if (i % 5 == 4) sum += 3;
        break;
    }
  }
  return sum;
}

TEST(Stress, HighThreadDifferentialAcrossContentionManagers) {
  const std::uint64_t want_counter = expected_counter();
  struct Cell {
    const char* name;
    ContentionPolicy cm;
    unsigned threads;
  };
  const Cell cells[] = {
      {"backoff/16", ContentionPolicy::kBackoff, 16},
      {"backoff/32", ContentionPolicy::kBackoff, 32},
      {"karma/16", ContentionPolicy::kKarma, 16},
      {"karma/32", ContentionPolicy::kKarma, 32},
      {"greedy/16", ContentionPolicy::kGreedy, 16},
      {"greedy/32", ContentionPolicy::kGreedy, 32},
  };
  RunOutcome reference{};
  bool have_reference = false;
  for (const Cell& c : cells) {
    SCOPED_TRACE(std::string("cell: ") + c.name);
    const RunOutcome out = run_stress(c.cm, c.threads);
    // Zero lost commits: every op committed exactly once, aborts retried.
    EXPECT_EQ(out.commits, static_cast<std::uint64_t>(kTotalOps));
    // Conservation: additive effects balance to the closed form.
    EXPECT_EQ(out.counter, want_counter);
    if (!have_reference) {
      reference = out;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(out.digest, reference.digest)
        << c.name << " diverged from " << cells[0].name
        << ": contention manager or thread count changed committed state";
  }
}

}  // namespace
}  // namespace cstm
