// The typed transactional-object API (stm/tvar.hpp): tvar/tfield get/set
// round-trips, the bound-reference proxy, statically bound Site elision,
// nested partial-abort restore of tvar writes, tvar_array/tspan capture
// classification, and the Site-consistent tm_add backend (including its
// outside-transaction path).
#include <gtest/gtest.h>

#include <cstdint>

#include "stm/stm.hpp"

namespace cstm {
namespace {

namespace test_sites {
inline constexpr Site kShared{"tvar.test.shared", true};
inline constexpr Site kCaptured{"tvar.test.captured", false,
                                Verdict::kCaptured};
inline constexpr Site kAuto{"tvar.test.auto", false};
}  // namespace test_sites

class TvarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }
};

// -- get/set round-trips -----------------------------------------------------

TEST_F(TvarTest, GetSetRoundTrip) {
  tvar<std::uint64_t> v{7};
  std::uint64_t before = 0;
  atomic([&](Tx& tx) {
    before = v.get(tx);
    v.set(tx, 42);
    EXPECT_EQ(v.get(tx), 42u);  // read-own
  });
  EXPECT_EQ(before, 7u);
  EXPECT_EQ(v.peek(), 42u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
}

TEST_F(TvarTest, AddIsFetchAdd) {
  tvar<std::uint64_t, test_sites::kShared> v{10};
  std::uint64_t old = 0;
  atomic([&](Tx& tx) { old = v.add(tx, 5); });
  EXPECT_EQ(old, 10u);
  EXPECT_EQ(v.peek(), 15u);
}

TEST_F(TvarTest, ProxyReadsWritesAndAccumulates) {
  tvar<std::uint64_t> v{1};
  std::uint64_t seen = 0;
  atomic([&](Tx& tx) {
    v(tx) = 5;
    seen = v(tx);
    v(tx) += 3;
  });
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(v.peek(), 8u);
}

TEST_F(TvarTest, ProxyToProxyAssignmentCopiesTheValue) {
  // `dst(tx) = src(tx)` must perform a transactional read + write, not
  // rebind the temporary proxy via the implicit copy assignment.
  tvar<std::uint64_t> src{21};
  tvar<std::uint64_t> dst{0};
  atomic([&](Tx& tx) { dst(tx) = src(tx); });
  EXPECT_EQ(dst.peek(), 21u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 1u);
}

TEST_F(TvarTest, RollbackRestoresTvar) {
  tvar<std::uint64_t> v{5};
  atomic([&](Tx& tx) {
    v.set(tx, 1234);
    abort_tx();
  });
  EXPECT_EQ(v.peek(), 5u);
  EXPECT_EQ(stats_snapshot().commits, 0u);
}

// -- Outside-transaction behavior (plain accesses, no barrier counts) --------

TEST_F(TvarTest, OutsideTxAccessesArePlain) {
  tvar<std::uint64_t> v{11};
  Tx& tx = current_tx();
  EXPECT_EQ(v.get(tx), 11u);
  v.set(tx, 12);
  EXPECT_EQ(v.peek(), 12u);
  EXPECT_EQ(v.add(tx, 3), 12u);  // fetch-add outside a transaction
  EXPECT_EQ(v.peek(), 15u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.reads, 0u);  // not counted as barriers
  EXPECT_EQ(s.writes, 0u);
}

TEST_F(TvarTest, TmAddOutsideTxIsPlainAndReturnsOld) {
  // The raw backend of tvar::add: outside a transaction tm_add (like
  // tm_read/tm_write) degenerates to plain accesses and counts nothing.
  std::uint64_t x = 40;
  Tx& tx = current_tx();
  EXPECT_EQ(tm_read(tx, &x), 40u);
  EXPECT_EQ(tm_add(tx, &x, std::uint64_t{2}), 40u);
  EXPECT_EQ(x, 42u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.writes, 0u);
}

TEST_F(TvarTest, TmAddClassifiesBothLegsWithOneSite) {
  // Site consistency: in counting mode the read leg and the write leg of a
  // tm_add through a manual Site must classify as required on both sides.
  set_global_config(TxConfig::counting());
  tvar<std::uint64_t, test_sites::kShared> v{0};
  atomic([&](Tx& tx) { v.add(tx, 1); });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.read_required, 1u);
  EXPECT_EQ(s.write_required, 1u);
}

// -- Static-Site elision -----------------------------------------------------

TEST_F(TvarTest, StaticSiteElisionCounters) {
  set_global_config(TxConfig::compiler());
  tvar<std::uint64_t, test_sites::kCaptured> captured{0};
  tvar<std::uint64_t, test_sites::kShared> shared{0};
  atomic([&](Tx& tx) {
    captured.set(tx, 1);
    (void)captured.get(tx);
    shared.set(tx, 2);  // full barrier: manual Site is never elided
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_static, 1u);
  EXPECT_EQ(s.read_elided_static, 1u);
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(captured.peek(), 1u);
  EXPECT_EQ(shared.peek(), 2u);
}

TEST_F(TvarTest, TfieldInitSiteIsStaticallyCaptured) {
  // tfield::init routes through a Site derived from the field's Site with
  // verdict=kCaptured: the compiler preset elides it with zero runtime
  // checks.
  set_global_config(TxConfig::compiler());
  struct Obj {
    tfield<std::uint64_t, test_sites::kShared> a;
    tfield<std::uint64_t, test_sites::kShared> b;
  };
  atomic([&](Tx& tx) {
    Obj* o = tx_new<Obj>(tx);
    o->a.init(tx, 1);
    o->b.init(tx, 2);
    tx_delete(tx, o);
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_static, 2u);
}

TEST_F(TvarTest, TxNewRegistersInAllocLog) {
  // tx_new binds construction to allocation-log registration: field writes
  // through any Site are runtime-elided as captured heap.
  set_global_config(TxConfig::runtime_w());
  struct Obj {
    tfield<std::uint64_t, test_sites::kShared> a;
  };
  atomic([&](Tx& tx) {
    Obj* o = tx_new<Obj>(tx);
    o->a.set(tx, 7);  // not the init Site — still captured at runtime
    tx_delete(tx, o);
  });
  EXPECT_EQ(stats_snapshot().write_elided_heap, 1u);
}

// -- Nested partial abort ----------------------------------------------------

TEST_F(TvarTest, NestedPartialAbortRestoresTvarWrites) {
  tvar<std::uint64_t> x{5};
  tvar<std::uint64_t> y{0};
  atomic([&](Tx& tx) {
    x.set(tx, 10);
    atomic([&](Tx& inner) {
      x.set(inner, 20);
      y.set(inner, 2);
      abort_tx();  // partial abort: only the inner level rolls back
    });
    EXPECT_EQ(x.get(tx), 10u);  // restored to the parent's value
    EXPECT_EQ(y.get(tx), 0u);
  });
  EXPECT_EQ(x.peek(), 10u);
  EXPECT_EQ(y.peek(), 0u);
}

TEST_F(TvarTest, NestedPartialAbortRestoresCapturedTfield) {
  // Paper Section 2.2.1: parent-captured memory is live-in for the child;
  // the child's elided tfield writes still need undo logging.
  set_global_config(TxConfig::runtime_w());
  struct Obj {
    tfield<std::uint64_t, test_sites::kAuto> a;
  };
  std::uint64_t observed = 0;
  atomic([&](Tx& tx) {
    Obj* o = tx_new<Obj>(tx);
    o->a.set(tx, 100);  // elided (captured by parent)
    atomic([&](Tx& inner) {
      o->a.set(inner, 999);  // elided + undo-logged at depth 2
      abort_tx();
    });
    observed = o->a.get(tx);
    tx_delete(tx, o);
  });
  EXPECT_EQ(observed, 100u);
}

// -- tvar_array --------------------------------------------------------------

TEST_F(TvarTest, TvarArrayRoundTripAndZeroInit) {
  tvar_array<std::uint64_t, 4, test_sites::kShared> arr;
  atomic([&](Tx& tx) {
    for (std::size_t i = 0; i < arr.size(); ++i) {
      EXPECT_EQ(arr.get(tx, i), 0u);  // zero-initialized
      arr.set(tx, i, i + 1);
    }
    EXPECT_EQ(arr.add(tx, 2, 10), 3u);  // fetch-add on a slot
  });
  EXPECT_EQ(arr.peek(0), 1u);
  EXPECT_EQ(arr.peek(2), 13u);
}

TEST_F(TvarTest, TvarArrayCaptureClassification) {
  // A tvar_array declared inside the atomic block lives on the
  // transaction-local stack: counting mode classifies every access as
  // captured stack (Fig. 8), and runtime checks elide them.
  set_global_config(TxConfig::counting());
  atomic([&](Tx& tx) {
    tvar_array<std::uint64_t, 4, kAutoCapturedSite> scratch;
    for (std::size_t i = 0; i < scratch.size(); ++i) scratch.set(tx, i, i);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < scratch.size(); ++i) sum += scratch.get(tx, i);
    EXPECT_EQ(sum, 6u);
  });
  const TxStats counted = stats_snapshot();
  EXPECT_EQ(counted.write_cap_stack, 4u);
  EXPECT_EQ(counted.read_cap_stack, 4u);

  stats_reset();
  set_global_config(TxConfig::runtime_rw());
  atomic([&](Tx& tx) {
    tvar_array<std::uint64_t, 4, kAutoCapturedSite> scratch;
    for (std::size_t i = 0; i < scratch.size(); ++i) scratch.set(tx, i, i);
    for (std::size_t i = 0; i < scratch.size(); ++i) (void)scratch.get(tx, i);
  });
  const TxStats elided = stats_snapshot();
  EXPECT_EQ(elided.write_elided_stack, 4u);
  EXPECT_EQ(elided.read_elided_stack, 4u);
}

TEST_F(TvarTest, TvarArrayHeapCaptureViaPrivateAnnotation) {
  // The Figure 1(b) query-vector pattern: a thread-owned tvar_array
  // annotated private elides all its barriers under annotation checks.
  set_global_config(TxConfig::runtime_rw());
  static tvar_array<std::uint64_t, 8, test_sites::kAuto> query_vec;
  add_private_memory_block(query_vec.data(), query_vec.size_bytes());
  atomic([&](Tx& tx) {
    for (std::size_t i = 0; i < query_vec.size(); ++i) query_vec.set(tx, i, i);
    for (std::size_t i = 0; i < query_vec.size(); ++i) {
      (void)query_vec.get(tx, i);
    }
  });
  remove_private_memory_block(query_vec.data(), query_vec.size_bytes());
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_private, 8u);
  EXPECT_EQ(s.read_elided_private, 8u);
}

// -- tspan -------------------------------------------------------------------

TEST_F(TvarTest, TspanViewsExternalStorage) {
  std::uint64_t storage[4] = {1, 2, 3, 4};
  tspan<std::uint64_t, test_sites::kShared> view(storage, 4);
  atomic([&](Tx& tx) {
    EXPECT_EQ(view.get(tx, 0), 1u);
    view.set(tx, 3, 40);
    EXPECT_EQ(view.add(tx, 1, 8), 2u);
  });
  EXPECT_EQ(storage[3], 40u);
  EXPECT_EQ(storage[1], 10u);
}

TEST_F(TvarTest, TspanInitIntoCapturedBackingStore) {
  // The captured grow-and-copy of TxVector/TxHeap: tspan::init into a
  // tx_malloc'd store is statically elidable.
  set_global_config(TxConfig::compiler());
  atomic([&](Tx& tx) {
    auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 4 * 8));
    tspan<std::uint64_t, test_sites::kShared> fresh(block, 4);
    for (std::size_t i = 0; i < 4; ++i) fresh.init(tx, i, i);
    tx_free(tx, block);
  });
  EXPECT_EQ(stats_snapshot().write_elided_static, 4u);
}

}  // namespace
}  // namespace cstm
