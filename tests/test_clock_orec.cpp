// Property tests for the sharded commit-time hot spots:
//
//  * the epoch-batched global clock (stm/gclock.hpp) — monotonic
//    publication, no observable timestamp from an unpublished reservation,
//    global uniqueness of stamps, and safe fallback on range exhaustion
//    and on stale (overtaken) ranges;
//  * the striped ownership-record table (stm/orec.hpp) — cache-line
//    alignment, same-line/adjacent-line mapping guarantees, hash
//    distribution, and stripe isolation;
//  * the pure contention-manager arbitration rules (support/backoff.hpp).
//
// The clock tests run against LOCAL GlobalClock instances with tiny batch
// sizes, so range boundaries and staleness — rare events on the production
// clock — happen constantly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "stm/gclock.hpp"
#include "stm/orec.hpp"
#include "stm/stm.hpp"
#include "support/backoff.hpp"

namespace cstm {
namespace {

// ---------------------------------------------------------------------------
// Epoch-batched clock
// ---------------------------------------------------------------------------

TEST(BatchedClock, SingleThreadStampsAreConsecutiveWithinARange) {
  GlobalClock clock(/*batch=*/8);
  ClockReservation r;
  std::uint64_t prev = 0;
  std::uint64_t reservations = 0;
  for (int i = 0; i < 100; ++i) {
    const GlobalClock::Stamp s = clock.stamp_and_publish(r);
    EXPECT_GT(s.ts, prev);
    // Sole committer: every stamp lands exactly one above the previous —
    // range boundaries are invisible because a fresh range starts right
    // where the synced previous range ended.
    if (prev != 0) EXPECT_EQ(s.ts, prev + 1);
    EXPECT_EQ(clock.load(), s.ts);  // published before return
    EXPECT_EQ(s.prev_published, prev);
    prev = s.ts;
    reservations += s.reservations;
    EXPECT_EQ(s.discards, 0u);  // nobody can overtake a sole committer
  }
  // 100 stamps at batch 8 must have re-reserved; the count is exact.
  EXPECT_EQ(reservations, (100 + 7) / 8u);
}

TEST(BatchedClock, ExhaustedRangeFallsBackToFreshReservation) {
  GlobalClock clock(/*batch=*/1);  // every stamp exhausts its range
  ClockReservation r;
  for (std::uint64_t i = 1; i <= 32; ++i) {
    const GlobalClock::Stamp s = clock.stamp_and_publish(r);
    EXPECT_EQ(s.ts, i);
    EXPECT_EQ(s.reservations, 1u);
  }
  EXPECT_EQ(clock.load(), 32u);
}

TEST(BatchedClock, StaleRangeIsDiscardedNeverStampedBelowEpoch) {
  GlobalClock clock(/*batch=*/4);
  ClockReservation a;
  ClockReservation b;
  // A stamps once from its range [1,5) ...
  const GlobalClock::Stamp first = clock.stamp_and_publish(a);
  EXPECT_EQ(first.ts, 1u);
  // ... then B (range [5,9) and onward) drives the epoch past A's range.
  std::uint64_t b_last = 0;
  for (int i = 0; i < 10; ++i) b_last = clock.stamp_and_publish(b).ts;
  ASSERT_GT(clock.load(), a.end);
  // A's leftover stamps [2,5) are now below the epoch. Stamping through A
  // must discard them — publishing any of them would violate monotonicity.
  const GlobalClock::Stamp s = clock.stamp_and_publish(a);
  EXPECT_GE(s.discards, 1u);
  EXPECT_GT(s.ts, b_last);
  EXPECT_EQ(clock.load(), s.ts);
}

TEST(BatchedClock, ConcurrentStampsAreUniqueAndPublicationIsMonotonic) {
  GlobalClock clock(/*batch=*/3);  // tiny: forces constant re-reservation
  constexpr int kThreads = 8;
  constexpr int kStampsPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> stamps(kThreads);
  std::atomic<bool> monotonic{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClockReservation r;
      std::uint64_t last_seen = 0;
      for (int i = 0; i < kStampsPerThread; ++i) {
        const GlobalClock::Stamp s = clock.stamp_and_publish(r);
        stamps[t].push_back(s.ts);
        // Publication-before-return, observed concurrently.
        if (clock.load() < s.ts) monotonic.store(false);
        // The epoch a single observer reads never goes backwards.
        const std::uint64_t now = clock.load();
        if (now < last_seen) monotonic.store(false);
        last_seen = now;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(monotonic.load());

  std::vector<std::uint64_t> all;
  for (auto& v : stamps) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "duplicate commit timestamp: the anti-ABA uniqueness invariant";
  // Per-thread stamps strictly increase (each thread's commits serialize
  // in stamp order).
  for (const auto& v : stamps) {
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i - 1], v[i]);
  }
  // The final epoch is the maximum stamp ever published.
  EXPECT_EQ(clock.load(), all.back());
}

TEST(BatchedClock, NoObserverSeesAnUnpublishedReservation) {
  // Readers sample the epoch while writers stamp. Every sampled value must
  // be a timestamp some stamp_and_publish call actually returned (or the
  // initial 0) — a reserved-but-unpublished timestamp must never leak into
  // a reader's snapshot.
  GlobalClock clock(/*batch=*/5);
  constexpr int kWriters = 4;
  constexpr int kStampsPerWriter = 4000;
  std::vector<std::vector<std::uint64_t>> stamps(kWriters);
  std::vector<std::uint64_t> samples;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      samples.push_back(clock.load());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      ClockReservation r;
      for (int i = 0; i < kStampsPerWriter; ++i) {
        stamps[t].push_back(clock.stamp_and_publish(r).ts);
      }
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  reader.join();

  std::set<std::uint64_t> published{0};
  for (auto& v : stamps) published.insert(v.begin(), v.end());
  for (std::uint64_t s : samples) {
    ASSERT_TRUE(published.count(s) != 0)
        << "observer saw " << s << ", which no transaction ever published";
  }
  // Reserved-but-never-stamped timestamps exist (discarded ranges), yet the
  // epoch stays at a published value below the reservation watermark.
  EXPECT_LE(clock.load(), clock.reserved_watermark());
}

// ---------------------------------------------------------------------------
// Striped orec table
// ---------------------------------------------------------------------------

// Alignment properties are compile-time facts; restate them here so the
// test suite fails loudly if the stripe layout regresses.
static_assert(sizeof(OrecTable::Stripe) == kCacheLineSize);
static_assert(alignof(OrecTable::Stripe) == kCacheLineSize);
static_assert(OrecTable::kStripes * OrecTable::kStripeSlots == OrecTable::kSize);
static_assert((OrecTable::kMix & 1) != 0,
              "mixing constant must be odd so the line hash is a bijection");

TEST(StripedOrecs, SameCacheLineMapsToSameRecord) {
  alignas(64) std::uint64_t line[8];
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(OrecTable::index_of(&line[0]), OrecTable::index_of(&line[i]));
  }
}

TEST(StripedOrecs, AdjacentCacheLinesNeverCollideAndNeverShareAStripe) {
  // The index delta between lines L and L+1 is (kMix >> 44) or that plus
  // one (carry), both nonzero mod 2^20 and both >= kStripeSlots — so
  // neighbouring lines get distinct records in distinct stripes. Check the
  // claim empirically across a large contiguous region.
  static std::uint64_t region[1 << 15];
  const char* base = reinterpret_cast<const char*>(&region[0]);
  for (std::size_t off = 0; off + 64 < sizeof(region); off += 64) {
    ASSERT_NE(OrecTable::index_of(base + off), OrecTable::index_of(base + off + 64));
    ASSERT_NE(OrecTable::stripe_of(base + off), OrecTable::stripe_of(base + off + 64));
  }
}

TEST(StripedOrecs, DistinctStripesLiveOnDistinctCacheLines) {
  OrecTable& table = orec_table();
  static std::uint64_t region[1 << 12];
  const char* base = reinterpret_cast<const char*>(&region[0]);
  const auto line_of = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) / kCacheLineSize;
  };
  const void* prev = base;
  for (std::size_t off = 64; off + 64 < sizeof(region); off += 64) {
    const void* cur = base + off;
    if (OrecTable::stripe_of(cur) != OrecTable::stripe_of(prev)) {
      EXPECT_NE(line_of(&table.slot(cur)), line_of(&table.slot(prev)))
          << "two stripes share a cache line: striping buys nothing";
    }
    prev = cur;
  }
}

TEST(StripedOrecs, MixingHashSpreadsConsecutiveLines) {
  // The old linear hash sent N consecutive cache lines to N consecutive
  // records — a hot array concentrated its locks in a few stripe lines.
  // The multiplicative hash must spread them: over 2^16 consecutive lines,
  // indices are (nearly) all distinct and stripes are hit nearly evenly.
  constexpr std::size_t kLines = 1 << 16;
  std::vector<std::size_t> indices;
  indices.reserve(kLines);
  const std::uintptr_t base = 0x7f0000000000ull;  // arbitrary aligned base
  for (std::size_t i = 0; i < kLines; ++i) {
    indices.push_back(OrecTable::index_of(
        reinterpret_cast<const void*>(base + i * kCacheLineSize)));
  }
  std::sort(indices.begin(), indices.end());
  const std::size_t distinct =
      static_cast<std::size_t>(std::unique(indices.begin(), indices.end()) -
                               indices.begin());
  EXPECT_GE(distinct, kLines * 9 / 10);
  // Stripe histogram: no stripe soaks up more than a sliver of the lines.
  std::vector<std::uint32_t> stripe_load(OrecTable::kStripes, 0);
  std::uint32_t max_load = 0;
  for (std::size_t i = 0; i < kLines; ++i) {
    const std::size_t s = OrecTable::index_of(reinterpret_cast<const void*>(
                              base + i * kCacheLineSize)) /
                          OrecTable::kStripeSlots;
    max_load = std::max(max_load, ++stripe_load[s]);
  }
  // Perfectly even would be kLines / kStripes = 0.5; allow generous slack.
  EXPECT_LE(max_load, 8u);
}

// ---------------------------------------------------------------------------
// Merged batches against the production clock
// ---------------------------------------------------------------------------

TEST(BatchedClockTx, MergedBatchPublishesOnce) {
  // The txbatch form of WritingTransactionsAdvanceClockOnce
  // (tests/test_stm_advanced.cpp): N writing sub-ops merged into one outer
  // transaction are ONE writing commit, so the published epoch advances
  // once per drained batch — never once per sub-op. Nested commits don't
  // touch the clock; only commit_top stamps.
  set_global_config(TxConfig::baseline());
  std::uint64_t x = 0;
  // Warm the committer's reserved range so at most one range-boundary jump
  // can fall inside the measured run.
  atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{1}); });
  constexpr int kRounds = 10;
  constexpr int kOpsPerBatch = 16;
  std::uint64_t prev = global_clock().load();
  std::uint64_t single_steps = 0;
  for (int round = 0; round < kRounds; ++round) {
    txbatch::BatcherOptions opts;
    opts.max_batch = kOpsPerBatch;
    txbatch::Batcher batcher(opts);
    for (int i = 0; i < kOpsPerBatch; ++i) {
      batcher.enqueue([&x, i](Tx& tx) {
        tm_write(tx, &x, static_cast<std::uint64_t>(i));
      });
    }
    batcher.drain();
    const std::uint64_t now = global_clock().load();
    EXPECT_GT(now, prev) << "batch " << round << " did not publish";
    // A 16-op batch stamping per sub-op would advance by 16; the merged
    // commit advances by exactly 1 inside a synced range.
    EXPECT_LE(now, prev + GlobalClock::kDefaultBatch);
    if (now == prev + 1) ++single_steps;
    prev = now;
  }
  EXPECT_GE(single_steps, static_cast<std::uint64_t>(kRounds) - 1);
  set_global_config(TxConfig::baseline());
}

// ---------------------------------------------------------------------------
// Contention-manager arbitration rules
// ---------------------------------------------------------------------------

TEST(ContentionArbitration, KarmaHigherInvestmentWins) {
  int a = 0, b = 0;
  EXPECT_EQ(karma_arbitrate(10, 3, &a, &b), CmDecision::kWait);
  EXPECT_EQ(karma_arbitrate(3, 10, &a, &b), CmDecision::kAbortSelf);
}

TEST(ContentionArbitration, KarmaTieBreaksAsymmetrically) {
  // Two equal-karma transactions must not both wait (deadlock) and must
  // not both abort (livelock): exactly one side of every pair waits.
  int a = 0, b = 0;
  const CmDecision ab = karma_arbitrate(5, 5, &a, &b);
  const CmDecision ba = karma_arbitrate(5, 5, &b, &a);
  EXPECT_NE(ab, ba);
}

TEST(ContentionArbitration, GreedyOldestTicketWins) {
  EXPECT_EQ(greedy_arbitrate(1, 2), CmDecision::kWait);
  EXPECT_EQ(greedy_arbitrate(2, 1), CmDecision::kAbortSelf);
  // An owner with no ticket (mixed-policy run) counts as youngest.
  EXPECT_EQ(greedy_arbitrate(7, ~std::uint64_t{0}), CmDecision::kWait);
}

}  // namespace
}  // namespace cstm
