// Unit and property tests for the three allocation-log data structures
// (paper Section 3.1.2): search tree, cache-line array, hash filter.
//
// The conservativeness contract is the key invariant: contains() may return
// false negatives but never false positives.
#include <gtest/gtest.h>

#include <thread>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "capture/alloc_log.hpp"
#include "capture/array_log.hpp"
#include "capture/filter_log.hpp"
#include "capture/private_registry.hpp"
#include "capture/tree_log.hpp"
#include "support/random.hpp"

namespace cstm {
namespace {

// The production logs are concrete, vtable-free types (the barrier fast
// path dispatches on the per-transaction plan instead). The tests keep a
// local polymorphic adapter so one parameterized suite can still drive all
// three implementations through a single pointer.
class LogUnderTest {
 public:
  virtual ~LogUnderTest() = default;
  virtual void insert(const void* addr, std::size_t size) = 0;
  virtual void erase(const void* addr, std::size_t size) = 0;
  virtual bool contains(const void* addr, std::size_t size) const = 0;
  virtual void clear() = 0;
  virtual std::size_t entries() const = 0;
  virtual const char* name() const = 0;
};

template <CaptureLog L>
class LogAdapter final : public LogUnderTest {
 public:
  void insert(const void* addr, std::size_t size) override {
    log_.insert(addr, size);
  }
  void erase(const void* addr, std::size_t size) override {
    log_.erase(addr, size);
  }
  bool contains(const void* addr, std::size_t size) const override {
    return log_.contains(addr, size);
  }
  void clear() override { log_.clear(); }
  std::size_t entries() const override { return log_.entries(); }
  const char* name() const override { return log_.name(); }

 private:
  L log_;
};

std::unique_ptr<LogUnderTest> make_log(AllocLogKind kind) {
  switch (kind) {
    case AllocLogKind::kTree: return std::make_unique<LogAdapter<TreeAllocLog>>();
    case AllocLogKind::kArray:
      return std::make_unique<LogAdapter<ArrayAllocLog>>();
    case AllocLogKind::kFilter:
      return std::make_unique<LogAdapter<FilterAllocLog>>();
  }
  return nullptr;
}

void* ptr(std::uintptr_t v) { return reinterpret_cast<void*>(v); }

// ---------------------------------------------------------------------------
// Behaviour shared by all three implementations.
// ---------------------------------------------------------------------------

class AllocLogAll : public ::testing::TestWithParam<AllocLogKind> {
 protected:
  std::unique_ptr<LogUnderTest> log_ = make_log(GetParam());
};

TEST_P(AllocLogAll, EmptyLogContainsNothing) {
  EXPECT_FALSE(log_->contains(ptr(0x1000), 8));
  EXPECT_EQ(log_->entries(), 0u);
}

TEST_P(AllocLogAll, InsertedBlockInteriorWordsNeverFalselyExcludeBase) {
  log_->insert(ptr(0x10000), 64);
  // Conservativeness: whatever contains() says must be safe. For the base
  // word of a freshly inserted block all three structures answer true.
  EXPECT_TRUE(log_->contains(ptr(0x10000), 8));
}

TEST_P(AllocLogAll, NeverContainsUnloggedMemory) {
  log_->insert(ptr(0x10000), 64);
  log_->insert(ptr(0x20000), 128);
  EXPECT_FALSE(log_->contains(ptr(0x30000), 8));
  EXPECT_FALSE(log_->contains(ptr(0xfff8), 8));   // just below block
  EXPECT_FALSE(log_->contains(ptr(0x10040), 8));  // just past block end
}

TEST_P(AllocLogAll, AccessStraddlingBlockEndIsNotContained) {
  log_->insert(ptr(0x10000), 64);
  EXPECT_FALSE(log_->contains(ptr(0x10038), 16));  // last 8 in, next 8 out
}

TEST_P(AllocLogAll, EraseRemovesBlock) {
  log_->insert(ptr(0x10000), 64);
  log_->erase(ptr(0x10000), 64);
  EXPECT_FALSE(log_->contains(ptr(0x10000), 8));
  EXPECT_EQ(log_->entries(), 0u);
}

TEST_P(AllocLogAll, ClearEmptiesLog) {
  log_->insert(ptr(0x10000), 64);
  log_->insert(ptr(0x20000), 64);
  log_->clear();
  EXPECT_FALSE(log_->contains(ptr(0x10000), 8));
  EXPECT_FALSE(log_->contains(ptr(0x20000), 8));
  EXPECT_EQ(log_->entries(), 0u);
}

TEST_P(AllocLogAll, ReusableAfterClear) {
  log_->insert(ptr(0x10000), 64);
  log_->clear();
  log_->insert(ptr(0x20000), 64);
  EXPECT_TRUE(log_->contains(ptr(0x20000), 8));
  EXPECT_FALSE(log_->contains(ptr(0x10000), 8));
}

TEST_P(AllocLogAll, ZeroSizeInsertIgnored) {
  log_->insert(ptr(0x10000), 0);
  EXPECT_FALSE(log_->contains(ptr(0x10000), 1));
}

// Property: against a reference set of disjoint blocks, no false positives,
// and (for the precise tree) no false negatives either.
TEST_P(AllocLogAll, RandomizedConservativenessProperty) {
  Xoshiro256 rng(42 + static_cast<int>(GetParam()));
  std::map<std::uintptr_t, std::size_t> reference;  // base -> size
  for (int round = 0; round < 2000; ++round) {
    const int op = static_cast<int>(rng.below(10));
    if (op < 5) {
      // Insert a fresh disjoint block: slots at 1 KiB boundaries.
      const std::uintptr_t base = 0x100000 + rng.below(512) * 1024;
      const std::size_t size = 8u << rng.below(7);  // 8..512
      if (!reference.contains(base)) {
        reference[base] = size;
        log_->insert(ptr(base), size);
      }
    } else if (op < 7 && !reference.empty()) {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.below(reference.size())));
      log_->erase(ptr(it->first), it->second);
      reference.erase(it);
    } else {
      // Query a random word-aligned address in the arena.
      const std::uintptr_t a = 0x100000 + rng.below(512 * 1024 / 8) * 8;
      const bool got = log_->contains(ptr(a), 8);
      auto it = reference.upper_bound(a);
      const bool truth = it != reference.begin() &&
                         (--it, a + 8 <= it->first + it->second);
      if (got) {
        EXPECT_TRUE(truth) << "false positive at " << std::hex << a << " in "
                           << log_->name();
      }
      if (GetParam() == AllocLogKind::kTree) {
        EXPECT_EQ(got, truth) << "tree must be precise";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AllocLogAll,
                         ::testing::Values(AllocLogKind::kTree,
                                           AllocLogKind::kArray,
                                           AllocLogKind::kFilter),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Differential check of the conservativeness contract: drive the same
// random insert/erase/clear stream through all three logs and use the tree
// (precise over disjoint allocator blocks) as ground truth. The bounded
// array and the colliding filter may answer false where the tree answers
// true (missed elision — harmless), but a true where the tree says false
// would be a false positive: the barrier would elide an access to shared
// memory, silently breaking isolation.
TEST(DifferentialConservativeness, ArrayAndFilterNeverExceedTree) {
  Xoshiro256 rng(20090811);
  TreeAllocLog tree;
  ArrayAllocLog array;
  FilterAllocLog filter(6);  // 64 slots: collisions guaranteed
  std::set<std::uintptr_t> bases;
  std::vector<std::pair<std::uintptr_t, std::size_t>> live;
  std::uint64_t queries = 0;
  for (int round = 0; round < 30000; ++round) {
    const int op = static_cast<int>(rng.below(100));
    if (op < 40) {
      // Insert a fresh disjoint block: 512-byte slots, sizes 8..256.
      const std::uintptr_t base = 0x200000 + rng.below(1024) * 512;
      const std::size_t size = std::size_t{8} << rng.below(6);
      if (bases.insert(base).second) {
        live.emplace_back(base, size);
        tree.insert(ptr(base), size);
        array.insert(ptr(base), size);
        filter.insert(ptr(base), size);
      }
    } else if (op < 55 && !live.empty()) {
      const std::size_t i = rng.below(live.size());
      const auto [base, size] = live[i];
      tree.erase(ptr(base), size);
      array.erase(ptr(base), size);
      filter.erase(ptr(base), size);
      bases.erase(base);
      live[i] = live.back();
      live.pop_back();
    } else if (op < 57) {
      tree.clear();
      array.clear();
      filter.clear();
      bases.clear();
      live.clear();
    } else {
      // Query a random address in the arena at varying widths, aligned and
      // not: anything the conservative logs claim, the tree must confirm.
      const std::uintptr_t a = 0x200000 + rng.below(1024 * 512);
      const std::size_t n = std::size_t{1} << rng.below(5);  // 1..16 bytes
      const bool truth = tree.contains(ptr(a), n);
      ++queries;
      if (array.contains(ptr(a), n)) {
        ASSERT_TRUE(truth) << "array false positive at " << std::hex << a
                           << " len " << n;
      }
      if (filter.contains(ptr(a), n)) {
        ASSERT_TRUE(truth) << "filter false positive at " << std::hex << a
                           << " len " << n;
      }
    }
  }
  EXPECT_GT(queries, 10000u);  // the op mix must actually exercise queries
}

// ---------------------------------------------------------------------------
// Tree-specific: precision and balance.
// ---------------------------------------------------------------------------

TEST(TreeLog, PreciseOverManyBlocks) {
  TreeAllocLog log;
  for (std::uintptr_t i = 0; i < 1000; ++i) {
    log.insert(ptr(0x100000 + i * 256), 128);
  }
  EXPECT_EQ(log.entries(), 1000u);
  for (std::uintptr_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(log.contains(ptr(0x100000 + i * 256 + 120), 8));
    EXPECT_FALSE(log.contains(ptr(0x100000 + i * 256 + 128), 8));
  }
}

TEST(TreeLog, StaysBalancedUnderAscendingInsert) {
  TreeAllocLog log;
  for (std::uintptr_t i = 0; i < 4096; ++i) {
    log.insert(ptr(0x100000 + i * 64), 32);
  }
  // AVL height bound: 1.44 * log2(n+2) ~ 17.3 for n=4096.
  EXPECT_LE(log.height(), 18);
}

TEST(TreeLog, StaysBalancedUnderDescendingInsert) {
  TreeAllocLog log;
  for (std::uintptr_t i = 4096; i-- > 0;) {
    log.insert(ptr(0x100000 + i * 64), 32);
  }
  EXPECT_LE(log.height(), 18);
}

TEST(TreeLog, EraseInterleavedKeepsPrecision) {
  TreeAllocLog log;
  for (std::uintptr_t i = 0; i < 256; ++i) log.insert(ptr(0x1000 + i * 64), 64);
  for (std::uintptr_t i = 0; i < 256; i += 2) log.erase(ptr(0x1000 + i * 64), 64);
  for (std::uintptr_t i = 0; i < 256; ++i) {
    EXPECT_EQ(log.contains(ptr(0x1000 + i * 64), 8), i % 2 == 1) << i;
  }
  EXPECT_EQ(log.entries(), 128u);
}

TEST(TreeLog, NodeRecyclingBoundsArena) {
  TreeAllocLog log;
  for (int round = 0; round < 100; ++round) {
    for (std::uintptr_t i = 0; i < 64; ++i) log.insert(ptr(0x1000 + i * 64), 64);
    for (std::uintptr_t i = 0; i < 64; ++i) log.erase(ptr(0x1000 + i * 64), 64);
  }
  EXPECT_EQ(log.entries(), 0u);
}

// ---------------------------------------------------------------------------
// Array-specific: capacity and overflow behaviour.
// ---------------------------------------------------------------------------

TEST(ArrayLog, CapacityIsOneCacheLine) {
  EXPECT_EQ(ArrayAllocLog::kCapacity, 4u);
}

TEST(ArrayLog, OverflowDropsConservatively) {
  ArrayAllocLog log;
  for (std::uintptr_t i = 0; i < 6; ++i) log.insert(ptr(0x1000 + i * 0x100), 64);
  EXPECT_EQ(log.entries(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  // First four tracked, last two conservatively missing.
  EXPECT_TRUE(log.contains(ptr(0x1000), 8));
  EXPECT_TRUE(log.contains(ptr(0x1300), 8));
  EXPECT_FALSE(log.contains(ptr(0x1400), 8));
  EXPECT_FALSE(log.contains(ptr(0x1500), 8));
}

TEST(ArrayLog, EraseFreesSlotForReuse) {
  ArrayAllocLog log;
  for (std::uintptr_t i = 0; i < 4; ++i) log.insert(ptr(0x1000 + i * 0x100), 64);
  log.erase(ptr(0x1100), 64);
  log.insert(ptr(0x9000), 64);
  EXPECT_TRUE(log.contains(ptr(0x9000), 8));
  EXPECT_FALSE(log.contains(ptr(0x1100), 8));
  EXPECT_EQ(log.entries(), 4u);
}

// ---------------------------------------------------------------------------
// Filter-specific: word marking, epoch clear, collision behaviour.
// ---------------------------------------------------------------------------

TEST(FilterLog, MarksEveryWordOfBlock) {
  FilterAllocLog log;
  log.insert(ptr(0x10000), 64);
  for (std::uintptr_t off = 0; off < 64; off += 8) {
    EXPECT_TRUE(log.contains(ptr(0x10000 + off), 8)) << off;
  }
  EXPECT_FALSE(log.contains(ptr(0x10040), 8));
}

TEST(FilterLog, UnalignedAccessWithinBlockContained) {
  FilterAllocLog log;
  log.insert(ptr(0x10000), 64);
  EXPECT_TRUE(log.contains(ptr(0x10004), 4));
  EXPECT_TRUE(log.contains(ptr(0x10004), 8));  // straddles two marked words
}

TEST(FilterLog, ClearIsEpochBasedAndCheap) {
  FilterAllocLog log;
  log.insert(ptr(0x10000), 4096);
  log.clear();
  EXPECT_FALSE(log.contains(ptr(0x10000), 8));
  // A block from a new epoch at the same address works.
  log.insert(ptr(0x10000), 8);
  EXPECT_TRUE(log.contains(ptr(0x10000), 8));
}

TEST(FilterLog, CollisionsProduceOnlyFalseNegatives) {
  FilterAllocLog log(4);  // 16 slots: force collisions
  std::vector<std::uintptr_t> bases;
  for (std::uintptr_t i = 0; i < 64; ++i) {
    bases.push_back(0x10000 + i * 0x100);
    log.insert(ptr(bases.back()), 8);
  }
  // Nothing outside the inserted set may be contained.
  for (std::uintptr_t probe = 0x8000; probe < 0x9000; probe += 8) {
    EXPECT_FALSE(log.contains(ptr(probe), 8));
  }
}

TEST(FilterLog, LargeBlockInsertionCapIsConservative) {
  FilterAllocLog log;
  const std::size_t big = (FilterAllocLog::kMaxWordsPerBlock + 16) * 8;
  std::vector<std::uint64_t> arena(big / 8);
  log.insert(arena.data(), big);
  EXPECT_GT(log.words_skipped(), 0u);
  // Words beyond the cap are conservatively absent.
  EXPECT_FALSE(log.contains(&arena[FilterAllocLog::kMaxWordsPerBlock + 1], 8));
  // Collisions may evict any word (false negatives allowed); at least some
  // marked words must survive in a table as large as the block.
  std::size_t present = 0;
  for (std::size_t i = 0; i < FilterAllocLog::kMaxWordsPerBlock; ++i) {
    if (log.contains(&arena[i], 8)) ++present;
  }
  EXPECT_GT(present, FilterAllocLog::kMaxWordsPerBlock / 4);
}

// ---------------------------------------------------------------------------
// Filter occupancy across the epoch-reset path (regression: the adaptive
// policy and stats read these, and both used to lie after clear()).
// ---------------------------------------------------------------------------

TEST(FilterLog, OccupancyResetsWithEpochClear) {
  FilterAllocLog log;
  EXPECT_EQ(log.occupancy(), 0u);
  log.insert(ptr(0x10000), 64);  // 8 words
  EXPECT_EQ(log.occupancy(), 8u);
  log.clear();
  // clear() is an epoch bump, not a table wipe — occupancy must still read
  // zero, because every mark just became stale.
  EXPECT_EQ(log.occupancy(), 0u);
  log.insert(ptr(0x20000), 32);  // 4 words, re-using stale slots
  EXPECT_EQ(log.occupancy(), 4u);
  log.erase(ptr(0x20000), 32);
  EXPECT_EQ(log.occupancy(), 0u);
}

TEST(FilterLog, EraseOfStaleEpochBlockIsANoOp) {
  FilterAllocLog log;
  log.insert(ptr(0x10000), 64);
  log.clear();
  log.insert(ptr(0x20000), 64);
  // Erasing a block whose marks predate the clear must not disturb the
  // current epoch's counts. (Historically it decremented entries()
  // unconditionally, so occupancy-style signals under-reported.)
  log.erase(ptr(0x10000), 64);
  EXPECT_EQ(log.entries(), 1u);
  EXPECT_EQ(log.occupancy(), 8u);
  EXPECT_TRUE(log.contains(ptr(0x20000), 8));
  log.erase(ptr(0x30000), 64);  // never inserted at all
  EXPECT_EQ(log.entries(), 1u);
  EXPECT_EQ(log.occupancy(), 8u);
}

TEST(FilterLog, OccupancyBoundedByTableUnderCollisions) {
  FilterAllocLog log(4);  // 16 slots
  for (std::uintptr_t i = 0; i < 64; ++i) {
    log.insert(ptr(0x10000 + i * 0x100), 8);
  }
  // Collision overwrites evict marks; live occupancy can never exceed the
  // table (the old blocks_ counter happily reported 64 here).
  EXPECT_LE(log.occupancy(), log.table_size());
  EXPECT_GT(log.occupancy(), 0u);
}

TEST(FilterLog, WordsMarkedAccumulatesAcrossEpochs) {
  FilterAllocLog log;
  log.insert(ptr(0x10000), 64);  // 8 words
  EXPECT_EQ(log.words_marked(), 8u);
  log.clear();
  log.insert(ptr(0x10000), 64);
  // Cumulative by design: the adaptive policy reads per-epoch deltas of
  // marking pressure, which an epoch reset must not erase.
  EXPECT_EQ(log.words_marked(), 16u);
}

// ---------------------------------------------------------------------------
// Array-log overflow and peak accounting (the adaptive policy's escalation
// signal).
// ---------------------------------------------------------------------------

TEST(ArrayLog, DroppedSurvivesClearAndPeakTracksHighWater) {
  ArrayAllocLog log;
  for (std::size_t i = 0; i <= ArrayAllocLog::kCapacity; ++i) {
    log.insert(ptr(0x10000 + i * 0x100), 8);
  }
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.peak(), ArrayAllocLog::kCapacity);
  log.clear();
  EXPECT_EQ(log.entries(), 0u);
  EXPECT_EQ(log.dropped(), 1u);  // cumulative: per-tx deltas need this
  EXPECT_EQ(log.peak(), ArrayAllocLog::kCapacity);
  log.insert(ptr(0x90000), 8);
  EXPECT_EQ(log.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// Private-region registry (annotation APIs, Section 3.1.3).
// ---------------------------------------------------------------------------

TEST(PrivateRegistry, AddRemoveLifecycle) {
  PrivateRegistry reg;
  std::uint64_t data[8];
  reg.add(data, sizeof(data));
  EXPECT_TRUE(reg.contains(&data[3], 8));
  reg.remove(data, sizeof(data));
  EXPECT_FALSE(reg.contains(&data[3], 8));
}

TEST(PrivateRegistry, PersistsAcrossManyQueries) {
  PrivateRegistry reg;
  std::vector<std::uint64_t> a(100), b(100);
  reg.add(a.data(), 100 * 8);
  EXPECT_TRUE(reg.contains(&a[99], 8));
  EXPECT_FALSE(reg.contains(&b[0], 8));
}

TEST(PrivateRegistry, ThreadRegistryIsPerThread) {
  std::uint64_t datum = 0;
  add_private_memory_block(&datum, sizeof(datum));
  EXPECT_TRUE(thread_private_registry().contains(&datum, 8));
  bool other_thread_sees = true;
  std::thread([&] {
    other_thread_sees = thread_private_registry().contains(&datum, 8);
  }).join();
  EXPECT_FALSE(other_thread_sees);
  remove_private_memory_block(&datum, sizeof(datum));
  EXPECT_FALSE(thread_private_registry().contains(&datum, 8));
}

}  // namespace
}  // namespace cstm
