// Tests for the txir static capture analysis (paper Section 3.2, grown to
// the flow-sensitive interprocedural pipeline of src/txir).
//
// Structure:
//  * soundness: shapes where static elision is ILLEGAL (pre-tx allocation,
//    escape via store to shared, alias merge at a phi, publication after
//    capture, opaque calls, loop-carried publication) must come back
//    kUnknown;
//  * golden verdicts: the legal shapes must come back with the exact
//    verdict class the runtime Site constants bake in;
//  * kernel ground truth: every row of stamp_kernel_expectations() holds;
//  * verdict<->Site cross-check: the Site constants the execution-side
//    code binds agree with what the analysis derives for the matching
//    kernel sites.
#include <gtest/gtest.h>

#include "containers/txlist.hpp"
#include "stamp/kmeans/kmeans.hpp"
#include "stamp/vacation/vacation.hpp"
#include "stm/tvar.hpp"
#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"
#include "txir/kernels.hpp"

namespace cstm::txir {
namespace {

// ---------------------------------------------------------------------------
// Golden verdicts: the legal elisions.
// ---------------------------------------------------------------------------

TEST(TxIrVerdict, TxAllocIsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "s");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("s"), Verdict::kCaptured);
  EXPECT_TRUE(r.site_elidable("s"));
}

TEST(TxIrVerdict, AllocaTxIsStack) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.alloca_tx();
  (void)b.load(x, 0, "l");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("l"), Verdict::kStack);
  EXPECT_TRUE(r.site_elidable("l"));
}

TEST(TxIrVerdict, StaticAddrElidesReadsOnly) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId g = b.static_addr();
  const ValueId v = b.load(g, 0, "r");
  b.store(g, 0, v, "w");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("r"), Verdict::kStatic);
  EXPECT_TRUE(r.site_elidable("r"));
  EXPECT_EQ(r.site_verdict("w"), Verdict::kStatic);
  EXPECT_FALSE(r.site_elidable("w"));  // static data is read-only
}

TEST(TxIrVerdict, PrivAddrElidesBothDirections) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId q = b.priv_addr();
  const ValueId v = b.load(q, 0, "r");
  b.store(q, 0, v, "w");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("r"), Verdict::kPrivate);
  EXPECT_TRUE(r.site_elidable("r"));
  EXPECT_TRUE(r.site_elidable("w"));
}

TEST(TxIrVerdict, GepAndMovePreserveCapture) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  const ValueId y = b.gep(x, 16);
  const ValueId z = b.move(y);
  b.store(z, 8, x, "s");
  EXPECT_TRUE(analyze(f).site_elidable("s"));
}

TEST(TxIrVerdict, InitsBeforePublicationStayProven) {
  // The dominant STAMP shape: initialize every field, then link. The
  // publication is the LAST access, so flow-sensitivity keeps the inits.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(x, 0, shared, "init.a");
  b.store(x, 8, shared, "init.b");
  b.store(shared, 0, x, "publish");
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("init.a"));
  EXPECT_TRUE(r.site_elidable("init.b"));
  EXPECT_FALSE(r.site_elidable("publish"));
}

TEST(TxIrVerdict, CapturedFieldRoundTripKeepsClassification) {
  // Store a captured pointer into captured memory, load it back: the
  // field-cell tracking keeps the capture class alive.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId outer = b.txalloc();
  const ValueId inner = b.txalloc();
  b.store(outer, 0, inner, "store.inner");
  const ValueId w = b.load(outer, 0, "load.inner");
  b.store(w, 0, inner, "write.through");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("load.inner"), Verdict::kCaptured);
  EXPECT_TRUE(r.site_elidable("write.through"));
}

TEST(TxIrVerdict, LoadFromSharedMemoryIsUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId q = b.load(shared, 0, "l1");
  (void)b.load(q, 0, "l2");
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("l1"));
  EXPECT_FALSE(r.site_elidable("l2"));
}

TEST(TxIrVerdict, PhiOfTwoCapturesIsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId a = b.txalloc();
  const ValueId c = b.txalloc();
  const ValueId both = b.phi(a, c);
  b.store(both, 0, a, "both");
  EXPECT_TRUE(analyze(f).site_elidable("both"));
}

TEST(TxIrVerdict, LoopPhiReachesFixpoint) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  const ValueId g = b.gep(x, 8);
  const ValueId ph = b.phi(x, g);
  b.store(ph, 0, x, "loop");
  EXPECT_TRUE(analyze(f).site_elidable("loop"));
}

// ---------------------------------------------------------------------------
// Soundness: shapes where elision is illegal must come back kUnknown.
// ---------------------------------------------------------------------------

TEST(TxIrSoundness, PreTxAllocationKeepsBarrier) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.alloca_pre();
  b.store(x, 0, x, "s");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("s"), Verdict::kUnknown);
  EXPECT_FALSE(r.site_elidable("s"));
  EXPECT_FALSE(r.site_demoted("s"));  // never had a proof to lose
}

TEST(TxIrSoundness, ParametersAreUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.param();
  (void)b.load(x, 0, "l");
  EXPECT_FALSE(analyze(f).site_elidable("l"));
}

TEST(TxIrSoundness, EscapeViaStoreToSharedDemotesLaterAccesses) {
  // Publication conservatism: after the captured pointer escapes into
  // shared memory, the zero-probe static path is withdrawn (the runtime
  // filters still catch these accesses).
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(x, 0, shared, "before");
  b.store(shared, 0, x, "publish");
  b.store(x, 8, shared, "after");
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("before"));
  EXPECT_EQ(r.site_verdict("after"), Verdict::kUnknown);
  EXPECT_TRUE(r.site_demoted("after"));
}

TEST(TxIrSoundness, PublicationDemotesAliasesToo) {
  // A second copy of the pointer shares the allocation site: publication
  // through one copy demotes accesses through the other.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  const ValueId alias = b.move(x);
  b.store(shared, 0, x, "publish");
  b.store(alias, 0, shared, "via.alias");
  EXPECT_TRUE(analyze(f).site_demoted("via.alias"));
}

TEST(TxIrSoundness, PublicationIsTransitiveThroughStoredPointers) {
  // Publishing the outer object publishes everything stored inside it.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId outer = b.txalloc();
  const ValueId inner = b.txalloc();
  b.store(outer, 0, inner, "store.inner");
  b.store(shared, 0, outer, "publish.outer");
  b.store(inner, 0, shared, "inner.after");
  EXPECT_TRUE(analyze(f).site_demoted("inner.after"));
}

TEST(TxIrSoundness, AliasMergeAtPhiKeepsBarrier) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId a = b.txalloc();
  const ValueId u = b.param();
  const ValueId mixed = b.phi(a, u);
  b.store(mixed, 0, u, "mixed");
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("mixed"), Verdict::kUnknown);
  EXPECT_TRUE(r.site_demoted("mixed"));
}

TEST(TxIrSoundness, MixedPhiStoreInvalidatesFieldTracking) {
  // A store through a maybe-captured base must reach the site's field
  // cells: the later load may not resurrect the old stored value's proof.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId u = b.param();
  const ValueId x = b.txalloc();
  const ValueId inner = b.txalloc();
  b.store(x, 0, inner, "store.inner");
  const ValueId mixed = b.phi(x, u);
  b.store(mixed, 0, u, "mixed.store");
  const ValueId w = b.load(x, 0, "reload");
  b.store(w, 0, u, "through.reload");
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("through.reload"));
}

TEST(TxIrSoundness, OpaqueCallPublishesPointerArguments) {
  // An unknown callee may store the argument anywhere: escape.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "before");
  (void)b.call("extern_fn", {x});
  b.store(x, 0, x, "after");
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("before"));
  EXPECT_TRUE(r.site_demoted("after"));
}

TEST(TxIrSoundness, OpaqueCallResultIsUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId r = b.call("extern_alloc", {});
  b.store(r, 0, r, "s");
  EXPECT_FALSE(analyze(f).site_elidable("s"));
}

TEST(TxIrSoundness, LoopCarriedPublicationDemotes) {
  // p = phi(fresh, p); store p ...; publish p — in iteration >= 2 the
  // value carried around the loop aliases the already-published object,
  // so the store before the publication point must demote too.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId n0 = b.txalloc();
  // Build the phi manually so its second operand is itself (back-edge).
  Instr phi{Op::kPhi};
  phi.dst = f.fresh();
  phi.a = n0;
  phi.b = phi.dst;
  f.body.push_back(phi);
  b.store(phi.dst, 0, shared, "loop.store");
  b.store(shared, 0, phi.dst, "loop.publish");
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("loop.store"));
  EXPECT_TRUE(r.site_demoted("loop.store"));
}

TEST(TxIrSoundness, StraightLineIsNotPenalizedByLoopRule) {
  // Same shape without the back-edge: the store precedes the publication
  // and no value flows backwards, so the proof stands.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId n0 = b.txalloc();
  b.store(n0, 0, shared, "line.store");
  b.store(shared, 0, n0, "line.publish");
  EXPECT_TRUE(analyze(f).site_elidable("line.store"));
}

// ---------------------------------------------------------------------------
// Interprocedural: summaries and inlining.
// ---------------------------------------------------------------------------

TEST(TxIrInterproc, SummaryProvesFreshAllocatorReturn) {
  Program p;
  {
    Function& helper = p.add("helper_alloc");
    FunctionBuilder b(helper);
    const ValueId v = b.txalloc();
    b.store(v, 0, v, "helper.init");
    b.move(v);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId r = b.call("helper_alloc", {});
    b.store(r, 0, r, "entry.use");
  }
  // Depth 0 uses the summary; no inlining needed for the caller's proof.
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("entry.use"));
  EXPECT_TRUE(analyze(p, "entry", 2).site_elidable("entry.use"));
}

TEST(TxIrInterproc, SummaryPublishesEscapingParams) {
  Program p;
  {
    Function& h = p.add("leak");
    FunctionBuilder b(h);
    const ValueId slot = b.param();
    const ValueId q = b.param();
    b.store(slot, 0, q, "leak.store");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId x = b.txalloc();
    b.store(x, 0, slot, "before");
    (void)b.call("leak", {slot, x});
    b.store(x, 8, slot, "after");
  }
  const AnalysisResult r = analyze(p, "entry", 0);
  EXPECT_TRUE(r.site_elidable("before"));
  EXPECT_TRUE(r.site_demoted("after"));
}

TEST(TxIrInterproc, ReadOnlyCalleeDoesNotKillCapture) {
  Program p;
  {
    Function& h = p.add("probe");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    (void)b.load(q, 0, "probe.read");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("probe", {x});
    b.store(x, 0, x, "after");
  }
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("after"));
}

TEST(TxIrInterproc, InliningSpecializesCalleeSites) {
  // The callee's own site is only provable in the caller's context; the
  // summary cannot name it, inlining can.
  Program p;
  {
    Function& h = p.add("store_into");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    b.store(q, 0, q, "helper.store");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("store_into", {x});
  }
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("helper.store"));
  EXPECT_TRUE(analyze(p, "entry", 1).site_elidable("helper.store"));
}

TEST(TxIrInterproc, InlineDepthLimits) {
  Program p;
  {
    Function& l2 = p.add("level2");
    FunctionBuilder b(l2);
    b.txalloc();
  }
  {
    Function& l1 = p.add("level1");
    FunctionBuilder b(l1);
    // Forward through a local so the depth-1 summary of level1 (with
    // level2 left opaque inside it) cannot prove freshness.
    const ValueId r = b.call("level2", {});
    const ValueId u = b.unknown();
    (void)b.phi(r, u);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId r = b.call("level1", {});
    b.store(r, 0, r, "use");
  }
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("use"));
}

TEST(TxIrInterproc, RecursionDegradesToOpaque) {
  Program p;
  {
    Function& f = p.add("rec");
    FunctionBuilder b(f);
    const ValueId q = b.param();
    (void)b.call("rec", {q});
    b.move(q);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("rec", {x});
    b.store(x, 0, x, "after");
  }
  // The recursive summary must be conservative: the argument escapes.
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("after"));
}

TEST(TxIrInterproc, CalleeWritesThroughReachablePointersClobberCells) {
  // A callee can load a pointer OUT of its argument's memory and store a
  // shared pointer through it. The caller's field cells reachable from
  // the argument (transitively) must be invalidated, or a later reload
  // would resurrect the pre-call capture proof for what is now a shared
  // pointer — an unsound zero-probe elision.
  Program p;
  {
    Function& h = p.add("deep_write");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    const ValueId r = b.param();
    const ValueId t = b.load(q, 0, "deep.load");
    b.store(t, 0, r, "deep.store");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    const ValueId z = b.txalloc();
    b.store(x, 0, y, "x.holds.y");
    b.store(y, 0, z, "y.holds.z");
    (void)b.call("deep_write", {x, shared});
    const ValueId w = b.load(y, 0, "reload");
    b.store(w, 0, shared, "through.reload");
  }
  const AnalysisResult r = analyze(p, "entry", 0);
  // y's field may now hold `shared`: the write through the reload must
  // keep its barrier.
  EXPECT_FALSE(r.site_elidable("through.reload"));
}

TEST(TxIrInterproc, ReadOnlyCalleeDoesNotClobberReachableCells) {
  // The inverse precision check: a provably read-only callee leaves the
  // caller's field tracking intact.
  Program p;
  {
    Function& h = p.add("deep_read");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    const ValueId t = b.load(q, 0, "deepread.load");
    (void)b.load(t, 0, "deepread.load2");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    b.store(x, 0, y, "x.holds.y");
    (void)b.call("deep_read", {x});
    const ValueId w = b.load(x, 0, "reload");
    b.store(w, 0, shared, "through.reload");
  }
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("through.reload"));
}

TEST(TxIrSoundness, ArgumentsPastTheBitmaskWidthAreAlwaysPublished) {
  // The publishes bitmask covers 64 parameters; anything past it must be
  // treated as escaping, never silently skipped.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  std::vector<ValueId> args;
  for (int i = 0; i < 64; ++i) args.push_back(b.unknown());
  args.push_back(x);  // argument index 64
  (void)b.call("extern_fn", args);
  b.store(x, 0, x, "after");
  EXPECT_TRUE(analyze(f).site_demoted("after"));
}

TEST(TxIrInterproc, SummaryParamPassthrough) {
  Program p;
  {
    Function& h = p.add("ident");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    b.move(q);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    const ValueId y = b.call("ident", {x});
    b.store(y, 0, x, "through");
  }
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("through"));
}

TEST(TxIr, DumpIsStable) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  const ValueId g = b.static_addr();
  (void)b.load(g, 0, "lg");
  b.store(x, 0, x, "s");
  const std::string dump = to_string(f);
  EXPECT_NE(dump.find("txalloc"), std::string::npos);
  EXPECT_NE(dump.find("static_addr"), std::string::npos);
  EXPECT_NE(dump.find("store"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Kernel ground truth: every expectation row must hold. These are the same
// decisions the execution-side Site tables encode in their verdict fields.
// ---------------------------------------------------------------------------

class KernelTruth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelTruth, MatchesAnalysis) {
  const auto expectations = stamp_kernel_expectations();
  const KernelExpectation& e = expectations[GetParam()];
  const Program p = stamp_kernels();
  const AnalysisResult r = analyze(p, e.entry, e.inline_depth);
  for (const SiteExpectation& s : e.sites) {
    EXPECT_EQ(r.site_verdict(s.site), s.verdict)
        << e.entry << " (depth " << e.inline_depth << "): " << s.site
        << " verdict mismatch";
    EXPECT_EQ(r.site_elidable(s.site), s.elidable)
        << e.entry << " (depth " << e.inline_depth << "): " << s.site
        << " elidability mismatch";
    EXPECT_EQ(r.site_demoted(s.site), s.demoted)
        << e.entry << " (depth " << e.inline_depth << "): " << s.site
        << " demotion mismatch";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTruth,
    ::testing::Range<std::size_t>(0, stamp_kernel_expectations().size()),
    [](const auto& info) {
      const auto e = stamp_kernel_expectations()[info.param];
      return e.entry + "_d" + std::to_string(e.inline_depth);
    });

// ---------------------------------------------------------------------------
// Verdict <-> Site cross-check: what the analysis proves for a kernel site
// must equal the verdict the execution-side Site constant bakes in.
// ---------------------------------------------------------------------------

TEST(KernelSiteCrossCheck, ExecutionSideVerdictsMatchAnalysis) {
  const Program p = stamp_kernels();

  // vacation's Reservation field inits go through tfield::init, whose
  // derived Site carries Verdict::kCaptured.
  using ResField =
      tfield<std::uint64_t, stamp::vacation_sites::kResField>;
  EXPECT_EQ(analyze(p, "vacation_update_add", 2)
                .site_verdict("vacation.res.init.price"),
            ResField::kInitSite.verdict);

  // vacation's query vector is the annotated thread-private block.
  EXPECT_EQ(analyze(p, "vacation_reserve", 2)
                .site_verdict("vacation.query.write"),
            stamp::vacation_sites::kQueryVec.verdict);

  // List iterators live on the transaction stack.
  EXPECT_EQ(analyze(p, "iter_loop", 2).site_verdict("iter.init"),
            list_sites::kIter.verdict);

  // kmeans' accumulators are shared: no static elision.
  EXPECT_EQ(analyze(p, "kmeans_update", 2).site_verdict("kmeans.center.write"),
            stamp::kmeans_sites::kAccum.verdict);

  // The generic auto-captured Site used for tx_malloc'd scratch matches
  // the captured verdict of the allocator kernels.
  EXPECT_EQ(analyze(p, "list_insert", 2).site_verdict("list.node.init.value"),
            kAutoCapturedSite.verdict);
}

// ---------------------------------------------------------------------------
// Stats and the report surface.
// ---------------------------------------------------------------------------

TEST(KernelReports, EveryKernelAnalyzesAndTotalsAreConsistent) {
  const auto reports = stamp_kernel_reports();
  ASSERT_GE(reports.size(), 10u);
  for (const auto& r : reports) {
    EXPECT_GE(r.stats.sites_total, r.stats.proven + r.stats.demoted)
        << r.entry;
    EXPECT_LE(r.elided_accesses, r.loads + r.stores) << r.entry;
  }
}

TEST(KernelReports, StampKernelsReportPositiveElision) {
  // Acceptance: the STAMP-style kernels must come through the analysis
  // with a positive elision ratio.
  const auto reports = stamp_kernel_reports();
  std::size_t stamp_proven = 0;
  for (const auto& r : reports) {
    if (r.entry == "vacation_update_add" || r.entry == "vacation_reserve" ||
        r.entry == "genome_dedup_insert" || r.entry == "vector_grow_push") {
      EXPECT_GT(r.stats.proven, 0u) << r.entry;
      stamp_proven += r.stats.proven;
    }
  }
  EXPECT_GE(stamp_proven, 10u);
}

TEST(KernelReports, TableMentionsEveryKernel) {
  const std::string table = kernel_report_table();
  for (const auto& r : stamp_kernel_reports()) {
    EXPECT_NE(table.find(r.entry), std::string::npos) << r.entry;
  }
  EXPECT_NE(table.find("ALL"), std::string::npos);
}

}  // namespace
}  // namespace cstm::txir
