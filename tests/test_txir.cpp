// Tests for the txir compiler capture analysis (paper Section 3.2).
#include <gtest/gtest.h>

#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"
#include "txir/kernels.hpp"

namespace cstm::txir {
namespace {

TEST(TxIr, TxAllocIsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "s");
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("s"));
}

TEST(TxIr, AllocaTxIsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.alloca_tx();
  (void)b.load(x, 0, "l");
  EXPECT_TRUE(analyze(f).site_elidable("l"));
}

TEST(TxIr, AllocaPreIsNotCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.alloca_pre();
  b.store(x, 0, x, "s");
  EXPECT_FALSE(analyze(f).site_elidable("s"));
}

TEST(TxIr, ParametersAreUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.param();
  (void)b.load(x, 0, "l");
  EXPECT_FALSE(analyze(f).site_elidable("l"));
}

TEST(TxIr, GepAndMovePreserveCapture) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  const ValueId y = b.gep(x, 16);
  const ValueId z = b.move(y);
  b.store(z, 8, x, "s");
  EXPECT_TRUE(analyze(f).site_elidable("s"));
}

TEST(TxIr, LoadedPointerIsUnknownEvenFromCapturedMemory) {
  // The stored bits could be a shared pointer: loading from captured memory
  // yields an opaque value. This is the conservativeness the paper accepts.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  const ValueId q = b.load(x, 0, "l1");  // elidable load...
  (void)b.load(q, 0, "l2");              // ...of an unknown pointer
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("l1"));
  EXPECT_FALSE(r.site_elidable("l2"));
}

TEST(TxIr, StoringCapturedPointerDoesNotKillCapture) {
  // The transactional insight: escaping through a shared pointer does not
  // publish the memory until commit, so later direct accesses stay elidable.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(shared, 0, x, "publish");   // needs a barrier (shared base)
  b.store(x, 0, shared, "after");     // still elidable
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("publish"));
  EXPECT_TRUE(r.site_elidable("after"));
}

TEST(TxIr, OpaqueCallArgumentsDoNotKillCapture) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  (void)b.call("extern_fn", {x});
  b.store(x, 0, x, "s");
  EXPECT_TRUE(analyze(f).site_elidable("s"));
}

TEST(TxIr, OpaqueCallResultIsUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId r = b.call("extern_alloc", {});
  b.store(r, 0, r, "s");
  EXPECT_FALSE(analyze(f).site_elidable("s"));
}

TEST(TxIr, PhiRequiresAllInputsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId a = b.txalloc();
  const ValueId c = b.txalloc();
  const ValueId u = b.param();
  const ValueId both = b.phi(a, c);
  const ValueId mixed = b.phi(a, u);
  b.store(both, 0, u, "both");
  b.store(mixed, 0, u, "mixed");
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("both"));
  EXPECT_FALSE(r.site_elidable("mixed"));
}

TEST(TxIr, LoopPhiReachesFixpoint) {
  // it = alloc; loop: it2 = phi(it, gep it2) — textual forward reference.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  // Build the phi manually so it references a later gep.
  const ValueId phi_dst = f.next_value + 1;  // the gep will take next_value
  const ValueId g = b.gep(x, 8);
  const ValueId ph = b.phi(x, g);
  EXPECT_EQ(ph, phi_dst);
  b.store(ph, 0, x, "loop");
  EXPECT_TRUE(analyze(f).site_elidable("loop"));
}

TEST(TxIr, InliningExtendsAnalysisAcrossCalls) {
  Program p;
  {
    Function& helper = p.add("helper_alloc");
    FunctionBuilder b(helper);
    const ValueId v = b.txalloc();
    b.store(v, 0, v, "helper.init");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId r = b.call("helper_alloc", {});
    b.store(r, 0, r, "entry.use");
  }
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("entry.use"));
  EXPECT_TRUE(analyze(p, "entry", 1).site_elidable("entry.use"));
}

TEST(TxIr, InlineDepthLimits) {
  Program p;
  {
    Function& l2 = p.add("level2");
    FunctionBuilder b(l2);
    b.txalloc();
  }
  {
    Function& l1 = p.add("level1");
    FunctionBuilder b(l1);
    (void)b.call("level2", {});
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId r = b.call("level1", {});
    b.store(r, 0, r, "use");
  }
  EXPECT_FALSE(analyze(p, "entry", 1).site_elidable("use"));
  EXPECT_TRUE(analyze(p, "entry", 2).site_elidable("use"));
}

TEST(TxIr, InlinedParameterBindingPropagatesCapture) {
  Program p;
  {
    // helper(q): store into q.
    Function& h = p.add("store_into");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    b.store(q, 0, q, "helper.store");
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("store_into", {x});
  }
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("helper.store"));
  EXPECT_TRUE(analyze(p, "entry", 1).site_elidable("helper.store"));
}

TEST(TxIr, DumpIsStable) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "s");
  const std::string dump = to_string(f);
  EXPECT_NE(dump.find("txalloc"), std::string::npos);
  EXPECT_NE(dump.find("store"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Kernel ground truth: every expectation in the table must hold. These are
// the same decisions the stamp site tables encode as static_captured.
// ---------------------------------------------------------------------------

class KernelTruth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelTruth, MatchesAnalysis) {
  const auto expectations = stamp_kernel_expectations();
  const KernelExpectation& e = expectations[GetParam()];
  const Program p = stamp_kernels();
  const AnalysisResult r = analyze(p, e.entry, e.inline_depth);
  for (const std::string& site : e.elidable_sites) {
    EXPECT_TRUE(r.site_elidable(site))
        << e.entry << " (depth " << e.inline_depth << "): " << site
        << " should be elidable";
  }
  for (const std::string& site : e.barrier_sites) {
    EXPECT_FALSE(r.site_elidable(site))
        << e.entry << " (depth " << e.inline_depth << "): " << site
        << " must keep its barrier";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTruth,
    ::testing::Range<std::size_t>(0, stamp_kernel_expectations().size()),
    [](const auto& info) {
      const auto e = stamp_kernel_expectations()[info.param];
      return e.entry + "_d" + std::to_string(e.inline_depth);
    });

}  // namespace
}  // namespace cstm::txir
