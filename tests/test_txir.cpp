// Tests for the txir CFG and static capture analysis (paper Section 3.2,
// grown to the branch-aware, path-sensitive interprocedural pipeline of
// src/txir).
//
// Structure:
//  * CFG structure: verifier accepts well-formed functions and names every
//    malformation (unterminated block, branch-arg/param arity mismatch,
//    redefinition, non-dominating use); build_cfg classifies back-edges vs
//    retreating edges and computes dominance;
//  * soundness: shapes where static elision is ILLEGAL (pre-tx allocation,
//    escape via store to shared, alias merge at a block param, publication
//    before an access on any path, opaque calls, loop-carried publication,
//    irreducible and multi-latch loops) must come back kUnknown;
//  * path sensitivity: publication on ONE branch must not demote the
//    sibling branch's accesses — the precision the linear IR lacked;
//  * golden verdicts: the legal shapes must come back with the exact
//    verdict class the runtime Site constants bake in;
//  * kernel ground truth: every row of stamp_kernel_expectations() holds;
//  * verdict<->Site cross-check: the Site constants the execution-side
//    code binds agree with what the analysis derives for the matching
//    kernel sites.
#include <gtest/gtest.h>

#include <string>

#include "containers/txlist.hpp"
#include "stamp/kmeans/kmeans.hpp"
#include "stamp/vacation/vacation.hpp"
#include "stm/tvar.hpp"
#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"
#include "txir/kernels.hpp"

namespace cstm::txir {
namespace {

bool any_error_contains(const std::vector<std::string>& errs,
                        const std::string& needle) {
  for (const std::string& e : errs) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Verifier: well-formed CFGs pass; every malformation is named.
// ---------------------------------------------------------------------------

TEST(TxIrVerifier, AcceptsStraightLine) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "s");
  b.ret();
  EXPECT_TRUE(verify(f).empty());
}

TEST(TxIrVerifier, AcceptsDiamondWithBlockArgs) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId l = b.block("l");
  const BlockId r = b.block("r");
  const BlockId m = b.block("m");
  const ValueId phi = b.block_param(m);
  const ValueId x = b.txalloc();
  const ValueId y = b.txalloc();
  const ValueId c = b.unknown();
  b.br_cond(c, l, r);
  b.set_block(l);
  b.br(m, {x});
  b.set_block(r);
  b.br(m, {y});
  b.set_block(m);
  b.store(phi, 0, x, "s");
  b.ret();
  EXPECT_TRUE(verify(f).empty()) << verify(f).front();
}

TEST(TxIrVerifier, RejectsUnterminatedBlock) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "s");
  // no terminator
  const auto errs = verify(f);
  ASSERT_FALSE(errs.empty());
  EXPECT_TRUE(any_error_contains(errs, "not terminated"));
}

TEST(TxIrVerifier, RejectsBranchArgArityMismatch) {
  // The block-argument form of a phi/pred arity mismatch: a branch must
  // pass exactly one argument per target block parameter.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId m = b.block("m");
  (void)b.block_param(m);
  const ValueId x = b.txalloc();
  b.br(m, {});  // 0 args to a 1-param block
  b.set_block(m);
  b.store(x, 0, x, "s");
  b.ret();
  const auto errs = verify(f);
  ASSERT_FALSE(errs.empty());
  EXPECT_TRUE(any_error_contains(errs, "passes 0 args"));
}

TEST(TxIrVerifier, RejectsExtraBranchArgs) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId m = b.block("m");
  const ValueId x = b.txalloc();
  b.br(m, {x, x});  // 2 args to a 0-param block
  b.set_block(m);
  b.ret();
  EXPECT_TRUE(any_error_contains(verify(f), "passes 2 args"));
}

TEST(TxIrVerifier, RejectsBranchToNonexistentBlock) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  b.br(42);
  EXPECT_TRUE(any_error_contains(verify(f), "nonexistent block"));
}

TEST(TxIrVerifier, RejectsEntryBlockParams) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  (void)b.block_param(0);
  b.ret();
  EXPECT_TRUE(any_error_contains(verify(f), "entry block"));
}

TEST(TxIrVerifier, RejectsRedefinition) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  Instr dup{Op::kTxAlloc};
  dup.dst = x;  // redefines %x
  f.blocks[0].body.push_back(dup);
  b.ret();
  EXPECT_TRUE(any_error_contains(verify(f), "redefines"));
}

TEST(TxIrVerifier, RejectsUseNotDominatedByDef) {
  // The value is defined on one branch only but used after the merge: a
  // dominance violation (it must flow through a block parameter instead).
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId l = b.block("l");
  const BlockId r = b.block("r");
  const BlockId m = b.block("m");
  const ValueId c = b.unknown();
  b.br_cond(c, l, r);
  b.set_block(l);
  const ValueId x = b.txalloc();  // defined only on this path
  b.br(m);
  b.set_block(r);
  b.br(m);
  b.set_block(m);
  b.store(x, 0, x, "s");  // use not dominated by the definition
  b.ret();
  EXPECT_TRUE(any_error_contains(verify(f), "dominate"));
}

TEST(TxIrVerifier, RejectsUndefinedUse) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  Instr s{Op::kStore};
  s.a = 7;  // never defined
  s.b = 7;
  s.site = "s";
  f.blocks[0].body.push_back(s);
  f.next_value = 8;
  b.ret();
  EXPECT_TRUE(any_error_contains(verify(f), "undefined value"));
}

TEST(TxIrVerifier, RejectsBlockIdIndexMismatch) {
  // build_cfg and the analysis index every side table by block id; a
  // stale/duplicated id must be a diagnostic, not a wrong CFG.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId next = b.block("next");
  b.br(next);
  b.set_block(next);
  b.ret();
  f.blocks[1].id = 0;  // duplicate entry's id
  EXPECT_TRUE(any_error_contains(verify(f), "ids must match"));
}

TEST(TxIrInterproc, InliningHandlesResultlessCall) {
  // A call whose Instr was assembled by hand with dst == kNoValue is
  // representable; inlining must not index vmap with it.
  Program p;
  {
    Function& h = p.add("helper");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    b.store(q, 0, q, "h.store");
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    Instr c{Op::kCall};
    c.callee = "helper";
    c.args = {x};  // dst stays kNoValue
    f.blocks[0].body.push_back(c);
    b.store(x, 8, x, "after");
    b.ret();
  }
  const Function inlined = inline_calls(p, *p.find("entry"), 1);
  const auto errs = verify(inlined);
  EXPECT_TRUE(errs.empty()) << errs.front();
  // Inlined into the caller's context the helper's store hits captured
  // memory (same as InliningSpecializesCalleeSites).
  EXPECT_TRUE(analyze(p, "entry", 1).site_elidable("h.store"));
  EXPECT_TRUE(analyze(p, "entry", 1).site_elidable("after"));
}

TEST(TxIrVerifier, KernelCorpusIsWellFormed) {
  // Every kernel and helper, and every inlined entry, passes the verifier.
  const Program p = stamp_kernels();
  for (const auto& [name, f] : p.functions) {
    const auto errs = verify(f);
    EXPECT_TRUE(errs.empty()) << name << ": " << errs.front();
  }
  for (const KernelExpectation& e : stamp_kernel_expectations()) {
    const Function inlined = inline_calls(p, *p.find(e.entry), 2);
    const auto errs = verify(inlined);
    EXPECT_TRUE(errs.empty()) << e.entry << ".inlined: " << errs.front();
  }
}

// ---------------------------------------------------------------------------
// CFG facts: RPO, dominance, back-edge vs retreating classification.
// ---------------------------------------------------------------------------

TEST(TxIrCfg, NaturalLoopHasBackEdge) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId head = b.block("head");
  const BlockId body = b.block("body");
  const BlockId exit = b.block("exit");
  const ValueId c = b.unknown();
  b.br(head);
  b.set_block(head);
  b.br_cond(c, body, exit);
  b.set_block(body);
  b.br(head);  // latch
  b.set_block(exit);
  b.ret();
  const Cfg cfg = build_cfg(f);
  ASSERT_EQ(cfg.back_edges.size(), 1u);
  EXPECT_EQ(cfg.back_edges[0].first, body);
  EXPECT_EQ(cfg.back_edges[0].second, head);
  EXPECT_EQ(cfg.retreating_edges.size(), 1u);
  EXPECT_FALSE(cfg.irreducible());
  EXPECT_TRUE(cfg.dominates(0, head));
  EXPECT_TRUE(cfg.dominates(head, body));
  EXPECT_TRUE(cfg.dominates(head, exit));
  EXPECT_FALSE(cfg.dominates(body, exit));
}

TEST(TxIrCfg, MultiLatchLoopHasTwoBackEdges) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId head = b.block("head");
  const BlockId l1 = b.block("latch1");
  const BlockId l2 = b.block("latch2");
  const BlockId exit = b.block("exit");
  const ValueId c = b.unknown();
  b.br(head);
  b.set_block(head);
  b.br_cond(c, l1, l2);
  b.set_block(l1);
  b.br_cond(c, head, exit);
  b.set_block(l2);
  b.br(head);
  b.set_block(exit);
  b.ret();
  const Cfg cfg = build_cfg(f);
  EXPECT_EQ(cfg.back_edges.size(), 2u);
  EXPECT_FALSE(cfg.irreducible());
}

TEST(TxIrCfg, IrreducibleLoopIsDetected) {
  // Two blocks jumping into each other, both reachable from the entry:
  // the retreating edge's target does not dominate its source.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId a = b.block("a");
  const BlockId c = b.block("c");
  const BlockId exit = b.block("exit");
  const ValueId u = b.unknown();
  b.br_cond(u, a, c);
  b.set_block(a);
  b.br_cond(u, c, exit);
  b.set_block(c);
  b.br_cond(u, a, exit);
  b.set_block(exit);
  b.ret();
  const Cfg cfg = build_cfg(f);
  EXPECT_TRUE(cfg.irreducible());
  EXPECT_TRUE(cfg.back_edges.empty());
  EXPECT_FALSE(cfg.retreating_edges.empty());
}

TEST(TxIrCfg, UnreachableBlockIsFlagged) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId dead = b.block("dead");
  b.ret();
  b.set_block(dead);
  b.ret();
  const Cfg cfg = build_cfg(f);
  EXPECT_TRUE(cfg.reachable(0));
  EXPECT_FALSE(cfg.reachable(dead));
}

// ---------------------------------------------------------------------------
// Golden verdicts: the legal elisions.
// ---------------------------------------------------------------------------

TEST(TxIrVerdict, TxAllocIsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "s");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("s"), Verdict::kCaptured);
  EXPECT_TRUE(r.site_elidable("s"));
}

TEST(TxIrVerdict, AllocaTxIsStack) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.alloca_tx();
  (void)b.load(x, 0, "l");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("l"), Verdict::kStack);
  EXPECT_TRUE(r.site_elidable("l"));
}

TEST(TxIrVerdict, StaticAddrElidesReadsOnly) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId g = b.static_addr();
  const ValueId v = b.load(g, 0, "r");
  b.store(g, 0, v, "w");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("r"), Verdict::kStatic);
  EXPECT_TRUE(r.site_elidable("r"));
  EXPECT_EQ(r.site_verdict("w"), Verdict::kStatic);
  EXPECT_FALSE(r.site_elidable("w"));  // static data is read-only
}

TEST(TxIrVerdict, PrivAddrElidesBothDirections) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId q = b.priv_addr();
  const ValueId v = b.load(q, 0, "r");
  b.store(q, 0, v, "w");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("r"), Verdict::kPrivate);
  EXPECT_TRUE(r.site_elidable("r"));
  EXPECT_TRUE(r.site_elidable("w"));
}

TEST(TxIrVerdict, GepAndMovePreserveCapture) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  const ValueId y = b.gep(x, 16);
  const ValueId z = b.move(y);
  b.store(z, 8, x, "s");
  b.ret();
  EXPECT_TRUE(analyze(f).site_elidable("s"));
}

TEST(TxIrVerdict, InitsBeforePublicationStayProven) {
  // The dominant STAMP shape: initialize every field, then link. The
  // publication is the LAST access, so flow-sensitivity keeps the inits.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(x, 0, shared, "init.a");
  b.store(x, 8, shared, "init.b");
  b.store(shared, 0, x, "publish");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("init.a"));
  EXPECT_TRUE(r.site_elidable("init.b"));
  EXPECT_FALSE(r.site_elidable("publish"));
}

TEST(TxIrVerdict, CapturedFieldRoundTripKeepsClassification) {
  // Store a captured pointer into captured memory, load it back: the
  // field-cell tracking keeps the capture class alive.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId outer = b.txalloc();
  const ValueId inner = b.txalloc();
  b.store(outer, 0, inner, "store.inner");
  const ValueId w = b.load(outer, 0, "load.inner");
  b.store(w, 0, inner, "write.through");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("load.inner"), Verdict::kCaptured);
  EXPECT_TRUE(r.site_elidable("write.through"));
}

TEST(TxIrVerdict, LoadFromSharedMemoryIsUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId q = b.load(shared, 0, "l1");
  (void)b.load(q, 0, "l2");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("l1"));
  EXPECT_FALSE(r.site_elidable("l2"));
}

TEST(TxIrVerdict, BlockParamOfTwoCapturesIsCaptured) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId l = b.block("l");
  const BlockId r = b.block("r");
  const BlockId m = b.block("m");
  const ValueId both = b.block_param(m);
  const ValueId a = b.txalloc();
  const ValueId c = b.txalloc();
  const ValueId u = b.unknown();
  b.br_cond(u, l, r);
  b.set_block(l);
  b.br(m, {a});
  b.set_block(r);
  b.br(m, {c});
  b.set_block(m);
  b.store(both, 0, a, "both");
  b.ret();
  EXPECT_TRUE(analyze(f).site_elidable("both"));
}

TEST(TxIrVerdict, LoopCursorReachesFixpoint) {
  // A gep-advanced cursor over a captured object carried around a loop
  // stays captured (no publication anywhere).
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId loop = b.block("loop");
  const BlockId exit = b.block("exit");
  const ValueId cur = b.block_param(loop);
  const ValueId x = b.txalloc();
  b.br(loop, {x});
  b.set_block(loop);
  b.store(cur, 0, x, "loop.store");
  const ValueId nxt = b.gep(cur, 8);
  const ValueId c = b.unknown();
  b.br_cond(c, loop, {nxt}, exit, {});
  b.set_block(exit);
  b.ret();
  EXPECT_TRUE(analyze(f).site_elidable("loop.store"));
}

// ---------------------------------------------------------------------------
// Path sensitivity: the precision the linear IR could not express.
// ---------------------------------------------------------------------------

TEST(TxIrPathSensitive, PublicationOnOneBranchSparesTheSibling) {
  // The captured object is published on the THEN path only. The ELSE
  // path's store must stay proven; the store after the merge must demote.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId pub = b.block("pub");
  const BlockId priv = b.block("priv");
  const BlockId merge = b.block("merge");
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(x, 0, shared, "init");
  const ValueId c = b.unknown();
  b.br_cond(c, pub, priv);
  b.set_block(pub);
  b.store(shared, 0, x, "publish");
  b.br(merge);
  b.set_block(priv);
  b.store(x, 8, shared, "priv.store");
  b.br(merge);
  b.set_block(merge);
  b.store(x, 16, shared, "merge.store");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("init"));
  EXPECT_TRUE(r.site_elidable("priv.store"))
      << "the non-publishing path must keep its proof";
  EXPECT_EQ(r.site_verdict("priv.store"), Verdict::kCaptured);
  EXPECT_FALSE(r.site_elidable("merge.store"));
  EXPECT_TRUE(r.site_demoted("merge.store"));
}

TEST(TxIrPathSensitive, LinearizedEncodingOfTheSameKernelDemotes) {
  // The same accesses flattened into one block in execution-table order
  // (the only encoding the old linear IR allowed): the publication now
  // textually precedes the sibling path's store, so the proof is lost.
  // This pair of tests is the regression guard for the CFG's raison
  // d'etre: at least one site provable only with real branches.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(x, 0, shared, "init");
  b.store(shared, 0, x, "publish");
  b.store(x, 8, shared, "priv.store");  // demoted here, proven in the CFG
  b.store(x, 16, shared, "merge.store");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("init"));
  EXPECT_FALSE(r.site_elidable("priv.store"));
  EXPECT_TRUE(r.site_demoted("priv.store"));
}

TEST(TxIrPathSensitive, PostLoopPublicationSparesLoopBody) {
  // The copy-loop shape: a cursor over fresh memory advances around a
  // back-edge; the object is published only after the loop exits.
  // Publication must not flow backwards into the loop body (the old
  // linear IR's phi-back-edge rule demoted every loop-carried store whose
  // site was published anywhere in the function).
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId loop = b.block("loop");
  const BlockId after = b.block("after");
  const ValueId shared = b.param();
  const ValueId cur = b.block_param(loop);
  const ValueId x = b.txalloc();
  b.br(loop, {x});
  b.set_block(loop);
  b.store(cur, 0, shared, "loop.copy");
  const ValueId nxt = b.gep(cur, 8);
  const ValueId c = b.unknown();
  b.br_cond(c, loop, {nxt}, after, {});
  b.set_block(after);
  b.store(shared, 0, x, "publish");
  b.store(x, 8, shared, "post.publish");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("loop.copy"))
      << "publication after the loop must not poison the loop body";
  EXPECT_TRUE(r.site_demoted("post.publish"));
}

TEST(TxIrPathSensitive, KernelCorpusContainsBranchProvenSites) {
  // Acceptance guard: the kernel expectation table must contain at least
  // two branch-diamond/loop kernels with a site that is (a) proven and
  // (b) provably NOT provable under a linearized encoding — encoded here
  // as the two named sites whose proofs depend on path structure.
  const Program p = stamp_kernels();
  const AnalysisResult vac = analyze(p, "vacation_reserve", 2);
  EXPECT_EQ(vac.site_verdict("vacation.res.cancel"), Verdict::kCaptured);
  EXPECT_TRUE(vac.site_elidable("vacation.res.cancel"));
  EXPECT_TRUE(vac.site_demoted("vacation.res.merge"));
  const AnalysisResult vec = analyze(p, "vector_grow_push", 2);
  EXPECT_EQ(vec.site_verdict("vector.copy.init"), Verdict::kCaptured);
  EXPECT_TRUE(vec.site_elidable("vector.copy.init"));
  EXPECT_TRUE(vec.site_demoted("vector.elem.post_publish"));
}

// ---------------------------------------------------------------------------
// Soundness: shapes where elision is illegal must come back kUnknown.
// ---------------------------------------------------------------------------

TEST(TxIrSoundness, PreTxAllocationKeepsBarrier) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.alloca_pre();
  b.store(x, 0, x, "s");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("s"), Verdict::kUnknown);
  EXPECT_FALSE(r.site_elidable("s"));
  EXPECT_FALSE(r.site_demoted("s"));  // never had a proof to lose
}

TEST(TxIrSoundness, ParametersAreUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.param();
  (void)b.load(x, 0, "l");
  b.ret();
  EXPECT_FALSE(analyze(f).site_elidable("l"));
}

TEST(TxIrSoundness, EscapeViaStoreToSharedDemotesLaterAccesses) {
  // Publication conservatism: after the captured pointer escapes into
  // shared memory, the zero-probe static path is withdrawn (the runtime
  // filters still catch these accesses).
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  b.store(x, 0, shared, "before");
  b.store(shared, 0, x, "publish");
  b.store(x, 8, shared, "after");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("before"));
  EXPECT_EQ(r.site_verdict("after"), Verdict::kUnknown);
  EXPECT_TRUE(r.site_demoted("after"));
}

TEST(TxIrSoundness, PublicationDemotesAliasesToo) {
  // A second copy of the pointer shares the allocation site: publication
  // through one copy demotes accesses through the other.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  const ValueId alias = b.move(x);
  b.store(shared, 0, x, "publish");
  b.store(alias, 0, shared, "via.alias");
  b.ret();
  EXPECT_TRUE(analyze(f).site_demoted("via.alias"));
}

TEST(TxIrSoundness, PublicationIsTransitiveThroughStoredPointers) {
  // Publishing the outer object publishes everything stored inside it.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId outer = b.txalloc();
  const ValueId inner = b.txalloc();
  b.store(outer, 0, inner, "store.inner");
  b.store(shared, 0, outer, "publish.outer");
  b.store(inner, 0, shared, "inner.after");
  b.ret();
  EXPECT_TRUE(analyze(f).site_demoted("inner.after"));
}

TEST(TxIrSoundness, AliasMergeAtBlockParamKeepsBarrier) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId l = b.block("l");
  const BlockId r = b.block("r");
  const BlockId m = b.block("m");
  const ValueId mixed = b.block_param(m);
  const ValueId a = b.txalloc();
  const ValueId u = b.param();
  const ValueId c = b.unknown();
  b.br_cond(c, l, r);
  b.set_block(l);
  b.br(m, {a});
  b.set_block(r);
  b.br(m, {u});
  b.set_block(m);
  b.store(mixed, 0, u, "mixed");
  b.ret();
  const AnalysisResult res = analyze(f);
  EXPECT_EQ(res.site_verdict("mixed"), Verdict::kUnknown);
  EXPECT_TRUE(res.site_demoted("mixed"));
}

TEST(TxIrSoundness, MixedMergeStoreInvalidatesFieldTracking) {
  // A store through a maybe-captured base must reach the site's field
  // cells: the later load may not resurrect the old stored value's proof.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId l = b.block("l");
  const BlockId r = b.block("r");
  const BlockId m = b.block("m");
  const ValueId mixed = b.block_param(m);
  const ValueId u = b.param();
  const ValueId x = b.txalloc();
  const ValueId inner = b.txalloc();
  b.store(x, 0, inner, "store.inner");
  const ValueId c = b.unknown();
  b.br_cond(c, l, r);
  b.set_block(l);
  b.br(m, {x});
  b.set_block(r);
  b.br(m, {u});
  b.set_block(m);
  b.store(mixed, 0, u, "mixed.store");
  const ValueId w = b.load(x, 0, "reload");
  b.store(w, 0, u, "through.reload");
  b.ret();
  EXPECT_FALSE(analyze(f).site_elidable("through.reload"));
}

TEST(TxIrSoundness, FieldStoredOnOnePathOnlyDoesNotSurviveTheMerge) {
  // The field is initialized on ONE branch only; on the other path it
  // holds uninitialized bits. A load after the merge must not resurrect
  // the stored value's captured proof — the write through it would be a
  // zero-probe elision of a store through possibly-garbage bits.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId yes = b.block("yes");
  const BlockId no = b.block("no");
  const BlockId m = b.block("m");
  const ValueId outer = b.txalloc();
  const ValueId inner = b.txalloc();
  const ValueId c = b.unknown();
  b.br_cond(c, yes, no);
  b.set_block(yes);
  b.store(outer, 0, inner, "store.inner");
  b.br(m);
  b.set_block(no);
  b.br(m);  // never stores the field
  b.set_block(m);
  const ValueId w = b.load(outer, 0, "load.maybe");
  b.store(w, 0, inner, "write.through");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("store.inner"));
  EXPECT_TRUE(r.site_elidable("load.maybe"));  // the LOAD hits outer: fine
  EXPECT_FALSE(r.site_elidable("write.through"))
      << "the loaded value may be uninitialized bits on the no-store path";
}

TEST(TxIrSoundness, FieldStoredOnBothPathsSurvivesTheMerge) {
  // Precision counterpart: when every path stores a capture, the merge
  // keeps the proof.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId yes = b.block("yes");
  const BlockId no = b.block("no");
  const BlockId m = b.block("m");
  const ValueId outer = b.txalloc();
  const ValueId inner = b.txalloc();
  const ValueId inner2 = b.txalloc();
  const ValueId c = b.unknown();
  b.br_cond(c, yes, no);
  b.set_block(yes);
  b.store(outer, 0, inner, "store.a");
  b.br(m);
  b.set_block(no);
  b.store(outer, 0, inner2, "store.b");
  b.br(m);
  b.set_block(m);
  const ValueId w = b.load(outer, 0, "load.both");
  b.store(w, 0, inner, "write.through");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_EQ(r.site_verdict("load.both"), Verdict::kCaptured);
  EXPECT_TRUE(r.site_elidable("write.through"));
}

TEST(TxIrSoundness, OpaqueCallPublishesPointerArguments) {
  // An unknown callee may store the argument anywhere: escape.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  b.store(x, 0, x, "before");
  (void)b.call("extern_fn", {x});
  b.store(x, 0, x, "after");
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_TRUE(r.site_elidable("before"));
  EXPECT_TRUE(r.site_demoted("after"));
}

TEST(TxIrSoundness, OpaqueCallResultIsUnknown) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId r = b.call("extern_alloc", {});
  b.store(r, 0, r, "s");
  b.ret();
  EXPECT_FALSE(analyze(f).site_elidable("s"));
}

TEST(TxIrSoundness, LoopCarriedPublicationDemotes) {
  // The object is stored to at the top of the loop and published at the
  // bottom: in iteration >= 2 the store targets an already-published
  // object, so the publication must flow around the back-edge and demote
  // the store.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId head = b.block("head");
  const BlockId exit = b.block("exit");
  const ValueId shared = b.param();
  const ValueId ptr = b.block_param(head);
  const ValueId n0 = b.txalloc();
  b.br(head, {n0});
  b.set_block(head);
  b.store(ptr, 0, shared, "loop.store");
  b.store(shared, 0, ptr, "loop.publish");
  const ValueId c = b.unknown();
  b.br_cond(c, head, {ptr}, exit, {});
  b.set_block(exit);
  b.ret();
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("loop.store"));
  EXPECT_TRUE(r.site_demoted("loop.store"));
}

TEST(TxIrSoundness, StraightLineIsNotPenalizedByLoopRule) {
  // Same accesses without the back-edge: the store precedes the
  // publication on the only path, so the proof stands.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId shared = b.param();
  const ValueId n0 = b.txalloc();
  b.store(n0, 0, shared, "line.store");
  b.store(shared, 0, n0, "line.publish");
  b.ret();
  EXPECT_TRUE(analyze(f).site_elidable("line.store"));
}

TEST(TxIrSoundness, IrreducibleLoopDegradesConservatively) {
  // A multi-entry (irreducible) loop: block A stores through the captured
  // pointer, block C publishes it, and control can enter the cycle at
  // either block. The analysis must converge and must NOT over-prove: the
  // store in A is reachable after C's publication (A <-> C cycle), so it
  // demotes — even though one path (entry -> A) has no publication.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId a = b.block("a");
  const BlockId c = b.block("c");
  const BlockId exit = b.block("exit");
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  const ValueId u = b.unknown();
  b.br_cond(u, a, c);
  b.set_block(a);
  b.store(x, 0, shared, "irr.store");
  b.br_cond(u, c, exit);
  b.set_block(c);
  b.store(shared, 0, x, "irr.publish");
  b.br_cond(u, a, exit);
  b.set_block(exit);
  b.ret();
  ASSERT_TRUE(verify(f).empty());
  ASSERT_TRUE(build_cfg(f).irreducible());
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("irr.store"));
  EXPECT_TRUE(r.site_demoted("irr.store"));
  EXPECT_FALSE(r.site_elidable("irr.publish"));
}

TEST(TxIrSoundness, MultiLatchLoopPublicationFlowsThroughEveryLatch) {
  // Two latches, only one of which publishes: the header's store still
  // demotes (the publishing latch reaches it), never over-proves.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId head = b.block("head");
  const BlockId l1 = b.block("latch1");
  const BlockId l2 = b.block("latch2");
  const BlockId exit = b.block("exit");
  const ValueId shared = b.param();
  const ValueId x = b.txalloc();
  const ValueId u = b.unknown();
  b.br(head);
  b.set_block(head);
  b.store(x, 0, shared, "latch.store");
  b.br_cond(u, l1, l2);
  b.set_block(l1);
  b.br_cond(u, head, exit);  // non-publishing latch
  b.set_block(l2);
  b.store(shared, 0, x, "latch.publish");
  b.br(head);  // publishing latch
  b.set_block(exit);
  b.ret();
  ASSERT_TRUE(verify(f).empty());
  ASSERT_EQ(build_cfg(f).back_edges.size(), 2u);
  const AnalysisResult r = analyze(f);
  EXPECT_FALSE(r.site_elidable("latch.store"));
  EXPECT_TRUE(r.site_demoted("latch.store"));
}

// ---------------------------------------------------------------------------
// Interprocedural: summaries and inlining.
// ---------------------------------------------------------------------------

TEST(TxIrInterproc, SummaryProvesFreshAllocatorReturn) {
  Program p;
  {
    Function& helper = p.add("helper_alloc");
    FunctionBuilder b(helper);
    const ValueId v = b.txalloc();
    b.store(v, 0, v, "helper.init");
    b.ret(v);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId r = b.call("helper_alloc", {});
    b.store(r, 0, r, "entry.use");
    b.ret();
  }
  // Depth 0 uses the summary; no inlining needed for the caller's proof.
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("entry.use"));
  EXPECT_TRUE(analyze(p, "entry", 2).site_elidable("entry.use"));
}

TEST(TxIrInterproc, SummaryPublishesEscapingParams) {
  Program p;
  {
    Function& h = p.add("leak");
    FunctionBuilder b(h);
    const ValueId slot = b.param();
    const ValueId q = b.param();
    b.store(slot, 0, q, "leak.store");
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId x = b.txalloc();
    b.store(x, 0, slot, "before");
    (void)b.call("leak", {slot, x});
    b.store(x, 8, slot, "after");
    b.ret();
  }
  const AnalysisResult r = analyze(p, "entry", 0);
  EXPECT_TRUE(r.site_elidable("before"));
  EXPECT_TRUE(r.site_demoted("after"));
}

TEST(TxIrInterproc, ReadOnlyCalleeDoesNotKillCapture) {
  Program p;
  {
    Function& h = p.add("probe");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    (void)b.load(q, 0, "probe.read");
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("probe", {x});
    b.store(x, 0, x, "after");
    b.ret();
  }
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("after"));
}

TEST(TxIrInterproc, InliningSpecializesCalleeSites) {
  // The callee's own site is only provable in the caller's context; the
  // summary cannot name it, inlining can.
  Program p;
  {
    Function& h = p.add("store_into");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    b.store(q, 0, q, "helper.store");
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("store_into", {x});
    b.ret();
  }
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("helper.store"));
  EXPECT_TRUE(analyze(p, "entry", 1).site_elidable("helper.store"));
}

TEST(TxIrInterproc, InliningAcrossBranchesKeepsPathSensitivity) {
  // A callee with its own diamond, inlined into a caller: the spliced CFG
  // must preserve the callee's path structure (the callee's non-publishing
  // path stays proven after inlining).
  Program p;
  {
    Function& h = p.add("maybe_publish");
    FunctionBuilder b(h);
    const ValueId slot = b.param();
    const ValueId q = b.param();
    const BlockId pub = b.block("pub");
    const BlockId skip = b.block("skip");
    const BlockId done = b.block("done");
    const ValueId c = b.unknown();
    b.br_cond(c, pub, skip);
    b.set_block(pub);
    b.store(slot, 0, q, "h.publish");
    b.br(done);
    b.set_block(skip);
    b.store(q, 8, slot, "h.priv");
    b.br(done);
    b.set_block(done);
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId x = b.txalloc();
    (void)b.call("maybe_publish", {slot, x});
    b.store(x, 16, slot, "caller.after");
    b.ret();
  }
  const AnalysisResult r = analyze(p, "entry", 1);
  EXPECT_TRUE(r.site_elidable("h.priv"))
      << "the callee's non-publishing path must survive inlining";
  EXPECT_TRUE(r.site_demoted("caller.after"));
}

TEST(TxIrInterproc, InlineDepthLimits) {
  Program p;
  {
    Function& l2 = p.add("level2");
    FunctionBuilder b(l2);
    const ValueId v = b.txalloc();
    b.ret(v);
  }
  {
    Function& l1 = p.add("level1");
    FunctionBuilder b(l1);
    // Launder the callee result through a join with unknown so the
    // depth-1 summary of level1 (with level2 left opaque inside it)
    // cannot prove freshness.
    const BlockId a = b.block("a");
    const BlockId c = b.block("c");
    const BlockId m = b.block("m");
    const ValueId phi = b.block_param(m);
    const ValueId r = b.call("level2", {});
    const ValueId u = b.unknown();
    const ValueId cond = b.unknown();
    b.br_cond(cond, a, c);
    b.set_block(a);
    b.br(m, {r});
    b.set_block(c);
    b.br(m, {u});
    b.set_block(m);
    b.ret(phi);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId r = b.call("level1", {});
    b.store(r, 0, r, "use");
    b.ret();
  }
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("use"));
}

TEST(TxIrInterproc, RecursionDegradesToOpaque) {
  Program p;
  {
    Function& f = p.add("rec");
    FunctionBuilder b(f);
    const ValueId q = b.param();
    (void)b.call("rec", {q});
    b.ret(q);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    (void)b.call("rec", {x});
    b.store(x, 0, x, "after");
    b.ret();
  }
  // The recursive summary must be conservative: the argument escapes.
  EXPECT_FALSE(analyze(p, "entry", 0).site_elidable("after"));
}

TEST(TxIrInterproc, CalleeWritesThroughReachablePointersClobberCells) {
  // A callee can load a pointer OUT of its argument's memory and store a
  // shared pointer through it. The caller's field cells reachable from
  // the argument (transitively) must be invalidated, or a later reload
  // would resurrect the pre-call capture proof for what is now a shared
  // pointer — an unsound zero-probe elision.
  Program p;
  {
    Function& h = p.add("deep_write");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    const ValueId r = b.param();
    const ValueId t = b.load(q, 0, "deep.load");
    b.store(t, 0, r, "deep.store");
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    const ValueId z = b.txalloc();
    b.store(x, 0, y, "x.holds.y");
    b.store(y, 0, z, "y.holds.z");
    (void)b.call("deep_write", {x, shared});
    const ValueId w = b.load(y, 0, "reload");
    b.store(w, 0, shared, "through.reload");
    b.ret();
  }
  const AnalysisResult r = analyze(p, "entry", 0);
  // y's field may now hold `shared`: the write through the reload must
  // keep its barrier.
  EXPECT_FALSE(r.site_elidable("through.reload"));
}

TEST(TxIrInterproc, ReadOnlyCalleeDoesNotClobberReachableCells) {
  // The inverse precision check: a provably read-only callee leaves the
  // caller's field tracking intact.
  Program p;
  {
    Function& h = p.add("deep_read");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    const ValueId t = b.load(q, 0, "deepread.load");
    (void)b.load(t, 0, "deepread.load2");
    b.ret();
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    b.store(x, 0, y, "x.holds.y");
    (void)b.call("deep_read", {x});
    const ValueId w = b.load(x, 0, "reload");
    b.store(w, 0, shared, "through.reload");
    b.ret();
  }
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("through.reload"));
}

TEST(TxIrSoundness, ArgumentsPastTheBitmaskWidthAreAlwaysPublished) {
  // The publishes bitmask covers 64 parameters; anything past it must be
  // treated as escaping, never silently skipped.
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const ValueId x = b.txalloc();
  std::vector<ValueId> args;
  for (int i = 0; i < 64; ++i) args.push_back(b.unknown());
  args.push_back(x);  // argument index 64
  (void)b.call("extern_fn", args);
  b.store(x, 0, x, "after");
  b.ret();
  EXPECT_TRUE(analyze(f).site_demoted("after"));
}

TEST(TxIrInterproc, SummaryParamPassthrough) {
  Program p;
  {
    Function& h = p.add("ident");
    FunctionBuilder b(h);
    const ValueId q = b.param();
    b.ret(q);
  }
  {
    Function& f = p.add("entry");
    FunctionBuilder b(f);
    const ValueId x = b.txalloc();
    const ValueId y = b.call("ident", {x});
    b.store(y, 0, x, "through");
    b.ret();
  }
  EXPECT_TRUE(analyze(p, "entry", 0).site_elidable("through"));
}

TEST(TxIr, DumpIsStable) {
  Program p;
  Function& f = p.add("f");
  FunctionBuilder b(f);
  const BlockId next = b.block("next");
  const ValueId x = b.txalloc();
  const ValueId g = b.static_addr();
  const ValueId v = b.load(g, 0, "lg");
  b.store(x, 0, x, "s");
  b.br_cond(v, next, next);
  b.set_block(next);
  b.ret(x);
  const std::string dump = to_string(f);
  EXPECT_NE(dump.find("txalloc"), std::string::npos);
  EXPECT_NE(dump.find("static_addr"), std::string::npos);
  EXPECT_NE(dump.find("store"), std::string::npos);
  EXPECT_NE(dump.find("br_cond"), std::string::npos);
  EXPECT_NE(dump.find("bb1"), std::string::npos);
  EXPECT_NE(dump.find("ret"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Kernel ground truth: every expectation row must hold. These are the same
// decisions the execution-side Site tables encode in their verdict fields.
// ---------------------------------------------------------------------------

class KernelTruth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelTruth, MatchesAnalysis) {
  const auto expectations = stamp_kernel_expectations();
  const KernelExpectation& e = expectations[GetParam()];
  const Program p = stamp_kernels();
  const AnalysisResult r = analyze(p, e.entry, e.inline_depth);
  for (const SiteExpectation& s : e.sites) {
    EXPECT_EQ(r.site_verdict(s.site), s.verdict)
        << e.entry << " (depth " << e.inline_depth << "): " << s.site
        << " verdict mismatch";
    EXPECT_EQ(r.site_elidable(s.site), s.elidable)
        << e.entry << " (depth " << e.inline_depth << "): " << s.site
        << " elidability mismatch";
    EXPECT_EQ(r.site_demoted(s.site), s.demoted)
        << e.entry << " (depth " << e.inline_depth << "): " << s.site
        << " demotion mismatch";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTruth,
    ::testing::Range<std::size_t>(0, stamp_kernel_expectations().size()),
    [](const auto& info) {
      const auto e = stamp_kernel_expectations()[info.param];
      return e.entry + "_d" + std::to_string(e.inline_depth);
    });

// ---------------------------------------------------------------------------
// Verdict <-> Site cross-check. The old sampled hand-cross-check (a few
// execution-side constants spot-checked against the analysis) is gone:
// the constants are now GENERATED from the analysis, so the invariant is
// enforced structurally — tests/test_sitegen.cpp checks every generated
// row against its cited evidence and the `sitegen_check` ctest gates the
// committed header against a fresh render. What remains here are the
// Sites that are NOT generated (the tvar/tfield-derived init Sites and
// the kAuto* lattice constants in src/stm/), which still need the
// analysis cross-check by hand.
// ---------------------------------------------------------------------------

TEST(KernelSiteCrossCheck, NonGeneratedSiteVerdictsMatchAnalysis) {
  const Program p = stamp_kernels();

  // vacation's Reservation field inits go through tfield::init, whose
  // derived Site carries Verdict::kCaptured.
  using ResField =
      tfield<std::uint64_t, stamp::vacation_sites::kResField>;
  EXPECT_EQ(analyze(p, "vacation_update_add", 2)
                .site_verdict("vacation.res.init.price"),
            ResField::kInitSite.verdict);

  // The generic auto-captured Site used for tx_malloc'd scratch matches
  // the captured verdict of the allocator kernels.
  EXPECT_EQ(analyze(p, "list_insert", 2).site_verdict("list.node.init.value"),
            kAutoCapturedSite.verdict);
}

// ---------------------------------------------------------------------------
// Stats and the report surface.
// ---------------------------------------------------------------------------

TEST(KernelReports, EveryKernelAnalyzesAndTotalsAreConsistent) {
  const auto reports = stamp_kernel_reports();
  ASSERT_GE(reports.size(), 10u);
  for (const auto& r : reports) {
    EXPECT_GE(r.stats.sites_total, r.stats.proven + r.stats.demoted)
        << r.entry;
    EXPECT_LE(r.elided_accesses, r.loads + r.stores) << r.entry;
  }
}

TEST(KernelReports, StampKernelsReportPositiveElision) {
  // Acceptance: the STAMP-style kernels must come through the analysis
  // with a positive elision ratio.
  const auto reports = stamp_kernel_reports();
  std::size_t stamp_proven = 0;
  for (const auto& r : reports) {
    if (r.entry == "vacation_update_add" || r.entry == "vacation_reserve" ||
        r.entry == "genome_dedup_insert" || r.entry == "vector_grow_push") {
      EXPECT_GT(r.stats.proven, 0u) << r.entry;
      stamp_proven += r.stats.proven;
    }
  }
  EXPECT_GE(stamp_proven, 10u);
}

TEST(KernelReports, OverallElisionDoesNotRegress) {
  // The CFG rework must not lose precision on the corpus: the pre-CFG
  // pipeline proved 49.2% of kernel accesses (29/59 sites).
  std::size_t accesses = 0, elided = 0, sites = 0, proven = 0;
  for (const auto& r : stamp_kernel_reports()) {
    accesses += r.loads + r.stores;
    elided += r.elided_accesses;
    sites += r.stats.sites_total;
    proven += r.stats.proven;
  }
  ASSERT_GT(accesses, 0u);
  EXPECT_GE(100.0 * static_cast<double>(elided) /
                static_cast<double>(accesses),
            49.2);
  EXPECT_GE(proven, 29u);
  EXPECT_GE(sites, 59u);
}

TEST(KernelReports, TableMentionsEveryKernel) {
  const std::string table = kernel_report_table();
  for (const auto& r : stamp_kernel_reports()) {
    EXPECT_NE(table.find(r.entry), std::string::npos) << r.entry;
  }
  EXPECT_NE(table.find("ALL"), std::string::npos);
}

}  // namespace
}  // namespace cstm::txir
