// Cross-config differential torture test.
//
// Barrier elision — static, runtime, or none — may change SPEED, never
// OUTCOMES. This suite runs one randomized container+malloc workload to a
// fixed seed under EVERY barrier preset (full / static / stack+heap+priv
// and heap-only across all three alloc-log structures / counting / the
// generic per-access fallback), plus a contention-manager cross on a
// representative barrier subset, and asserts bit-identical final state and
// identical commit counts across all of them.
//
// The workload is single-threaded on purpose: with no conflicts the
// execution is fully deterministic, so any digest divergence is a real
// elision bug (a skipped undo log, a store that bypassed isolation, a
// nested abort that restored the wrong bytes), not scheduling noise. The
// concurrent analogue lives in tests/test_concurrent.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "containers/containers.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {
namespace {

constexpr std::uint64_t kSeed = 0x5eed2009u;
constexpr int kSteps = 12000;
constexpr std::uint64_t kKeyRange = 256;

/// Every barrier preset named by the paper plus the off-preset flag
/// combinations that exercise the kGeneric fallback.
std::vector<std::pair<std::string, TxConfig>> all_presets() {
  std::vector<std::pair<std::string, TxConfig>> presets = {
      {"full", TxConfig::baseline()},
      {"static", TxConfig::compiler()},
      {"rw_tree", TxConfig::runtime_rw(AllocLogKind::kTree)},
      {"rw_array", TxConfig::runtime_rw(AllocLogKind::kArray)},
      {"rw_filter", TxConfig::runtime_rw(AllocLogKind::kFilter)},
      {"w_tree", TxConfig::runtime_w(AllocLogKind::kTree)},
      {"w_array", TxConfig::runtime_w(AllocLogKind::kArray)},
      {"w_filter", TxConfig::runtime_w(AllocLogKind::kFilter)},
      {"heap_w_tree", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
      {"heap_w_array", TxConfig::runtime_heap_w(AllocLogKind::kArray)},
      {"heap_w_filter", TxConfig::runtime_heap_w(AllocLogKind::kFilter)},
      {"counting", TxConfig::counting()},
  };
  {
    // Stack-write-only: no preset names it, so the plan compiles to the
    // kGeneric per-access fallback.
    TxConfig generic;
    generic.stack_write = true;
    presets.emplace_back("generic_stack_w", generic);
  }
  {
    // Static elision combined with runtime checks: also kGeneric.
    TxConfig generic = TxConfig::runtime_w(AllocLogKind::kArray);
    generic.static_elision = true;
    presets.emplace_back("generic_static_rt", generic);
  }
  // Contention-manager cross: CM selection arbitrates WHO wins a conflict,
  // so on a conflict-free single-threaded run it must be invisible — any
  // digest divergence here means a CM leaked into committed state. A
  // representative subset of the barrier axis (full barriers, static
  // elision, the full runtime-check preset) crossed with the two priority
  // CMs; kBackoff is already preset 0's policy.
  for (const auto& [cm_name, cm] :
       {std::pair<const char*, ContentionPolicy>{"karma", ContentionPolicy::kKarma},
        std::pair<const char*, ContentionPolicy>{"greedy", ContentionPolicy::kGreedy}}) {
    presets.emplace_back(std::string("full_") + cm_name,
                         TxConfig::baseline().with_contention(cm));
    presets.emplace_back(std::string("static_") + cm_name,
                         TxConfig::compiler().with_contention(cm));
    presets.emplace_back(std::string("rw_tree_") + cm_name,
                         TxConfig::runtime_rw(AllocLogKind::kTree).with_contention(cm));
  }
  return presets;
}

struct Digest {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
};

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
};

/// The torture workload: maps, lists, vectors, queues, heaps, bitmaps,
/// hashtables, raw tx_malloc scratch, nested transactions, and
/// deterministic user aborts, all driven by one fixed-seed RNG.
RunOutcome run_workload(const TxConfig& cfg, int steps = kSteps) {
  set_global_config(cfg);
  stats_reset();

  TxMap<std::uint64_t, std::uint64_t> map;
  TxHashtable<std::uint64_t, std::uint64_t> table(64);
  TxList<std::uint64_t> list;
  TxVector<std::uint64_t> vec(2);  // tiny: forces many captured grow-copies
  TxQueue<std::uint64_t> queue;
  TxHeap<std::uint64_t> heap(2);
  TxBitmap bitmap(kKeyRange);
  tvar<std::uint64_t> counter{0};

  Xoshiro256 rng(kSeed);
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t key = rng.below(kKeyRange);
    const std::uint64_t val = rng.next();
    const std::uint64_t op = rng.below(12);
    switch (op) {
      case 0:
        atomic([&](Tx& tx) { map.insert(tx, key, val); });
        break;
      case 1:
        atomic([&](Tx& tx) { map.erase(tx, key); });
        break;
      case 2:
        atomic([&](Tx& tx) { table.put(tx, key, val); });
        break;
      case 3:
        atomic([&](Tx& tx) {
          if (list.size(tx) < 512) list.insert(tx, key);
        });
        break;
      case 4:
        atomic([&](Tx& tx) { list.remove(tx, key); });
        break;
      case 5:
        atomic([&](Tx& tx) {
          if (vec.size(tx) < 512) {
            vec.push_back(tx, val);
          } else {
            vec.set(tx, val % 512, val);
          }
        });
        break;
      case 6:
        atomic([&](Tx& tx) { queue.push(tx, val); });
        break;
      case 7: {
        std::uint64_t out = 0;
        atomic([&](Tx& tx) {
          if (queue.pop(tx, &out)) counter.add(tx, out & 0xff);
        });
        break;
      }
      case 8:
        atomic([&](Tx& tx) {
          if (heap.size(tx) < 512) heap.push(tx, val);
          std::uint64_t top = 0;
          if (rng.below(3) == 0 && heap.pop(tx, &top)) {
            counter.add(tx, top & 0xff);
          }
        });
        break;
      case 9:
        atomic([&](Tx& tx) {
          if (bitmap.set(tx, key)) counter.add(tx, 1);
        });
        break;
      case 10: {
        // Allocation-heavy transaction with a nested child that sometimes
        // partially aborts: exercises captured-memory undo in nested
        // transactions plus alloc-log insert/erase under every log.
        const bool abort_child = (step % 5) == 0;
        atomic([&](Tx& tx) {
          auto* scratch = static_cast<std::uint64_t*>(tx_malloc(tx, 256));
          for (int j = 0; j < 32; ++j) {
            tm_write(tx, &scratch[j], val + static_cast<std::uint64_t>(j),
                     kAutoSite);
          }
          atomic([&](Tx& itx) {
            tm_write(itx, &scratch[0], std::uint64_t{0}, kAutoSite);
            counter.add(itx, 1000);
            if (abort_child) abort_tx();  // partial abort: both undone
          });
          std::uint64_t sum = 0;
          for (int j = 0; j < 32; ++j) sum += tm_read(tx, &scratch[j], kAutoSite);
          tx_free(tx, scratch);
          counter.add(tx, sum & 0xffff);
        });
        break;
      }
      default: {
        // Deterministic top-level cancel: everything must roll back.
        const bool cancel = (step % 3) == 0;
        atomic([&](Tx& tx) {
          counter.add(tx, 7);
          map.insert(tx, key ^ 0x80, val);
          if (cancel) abort_tx();
        });
        break;
      }
    }
  }

  // Fold the complete final state.
  Digest d;
  map.for_each_sequential([&](std::uint64_t k, std::uint64_t v) {
    d.fold(k);
    d.fold(v);
  });
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < kKeyRange; ++k) {
      std::uint64_t v = 0;
      if (table.find(tx, k, &v)) {
        d.fold(k);
        d.fold(v);
      }
    }
    typename TxList<std::uint64_t>::Iterator it;
    list.iter_reset(tx, &it);
    while (list.iter_has_next(tx, &it)) d.fold(list.iter_next(tx, &it));
    const std::size_t n = vec.size(tx);
    d.fold(n);
    for (std::size_t i = 0; i < n; ++i) d.fold(vec.at(tx, i));
    std::uint64_t v = 0;
    while (queue.pop(tx, &v)) d.fold(v);
    while (heap.pop(tx, &v)) d.fold(v);
  });
  for (std::uint64_t k = 0; k < kKeyRange; ++k) {
    atomic([&](Tx& tx) { d.fold(bitmap.test(tx, k) ? k : ~k); });
  }
  d.fold(bitmap.count_sequential());
  d.fold(counter.peek());

  const TxStats s = stats_snapshot();
  set_global_config(TxConfig::baseline());
  return RunOutcome{d.hash, s.commits, s.aborts};
}

TEST(Differential, AllBarrierPresetsProduceIdenticalState) {
  const auto presets = all_presets();
  RunOutcome reference{};
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& [name, cfg] = presets[i];
    const RunOutcome out = run_workload(cfg);
    SCOPED_TRACE("preset: " + name);
    EXPECT_GT(out.commits, 0u);
    // Single-threaded: conflicts are impossible, so every preset must
    // commit the same transactions.
    EXPECT_EQ(out.aborts, 0u);
    if (i == 0) {
      reference = out;
      continue;
    }
    EXPECT_EQ(out.digest, reference.digest)
        << name << " diverged from " << presets[0].first;
    EXPECT_EQ(out.commits, reference.commits)
        << name << " commit count diverged from " << presets[0].first;
  }
}

// The comparison must be able to fail: the workload must be deterministic
// (two identical runs agree) AND the digest must be sensitive (a slightly
// different workload diverges), otherwise the equality above is vacuous.
TEST(Differential, WorkloadDeterministicAndDigestSensitive) {
  const RunOutcome a = run_workload(TxConfig::baseline());
  const RunOutcome b = run_workload(TxConfig::baseline());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.commits, b.commits);
  const RunOutcome c = run_workload(TxConfig::baseline(), kSteps - 7);
  EXPECT_NE(c.digest, a.digest);
}

}  // namespace
}  // namespace cstm
