// Cross-config differential torture test.
//
// Barrier elision — static, runtime, or none — may change SPEED, never
// OUTCOMES. This suite runs one randomized container+malloc workload to a
// fixed seed under EVERY barrier preset (full / static / stack+heap+priv
// and heap-only across all three alloc-log structures / counting / the
// generic per-access fallback / the online-adaptive structure selector),
// plus a contention-manager cross on a representative barrier subset and a
// durable-mode cross (redo logging + flush accounting riding commit), and
// asserts bit-identical final state and identical commit counts across all
// of them.
//
// The workload is single-threaded on purpose: with no conflicts the
// execution is fully deterministic, so any digest divergence is a real
// elision bug (a skipped undo log, a store that bypassed isolation, a
// nested abort that restored the wrong bytes), not scheduling noise. The
// concurrent analogue lives in tests/test_concurrent.cpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "containers/containers.hpp"
#include "durable/durable_heap.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {
namespace {

constexpr std::uint64_t kSeed = 0x5eed2009u;
constexpr int kSteps = 12000;
constexpr std::uint64_t kKeyRange = 256;

/// Every barrier preset named by the paper plus the off-preset flag
/// combinations that exercise the kGeneric fallback.
std::vector<std::pair<std::string, TxConfig>> all_presets() {
  std::vector<std::pair<std::string, TxConfig>> presets = {
      {"full", TxConfig::baseline()},
      {"static", TxConfig::compiler()},
      {"rw_tree", TxConfig::runtime_rw(AllocLogKind::kTree)},
      {"rw_array", TxConfig::runtime_rw(AllocLogKind::kArray)},
      {"rw_filter", TxConfig::runtime_rw(AllocLogKind::kFilter)},
      {"w_tree", TxConfig::runtime_w(AllocLogKind::kTree)},
      {"w_array", TxConfig::runtime_w(AllocLogKind::kArray)},
      {"w_filter", TxConfig::runtime_w(AllocLogKind::kFilter)},
      {"heap_w_tree", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
      {"heap_w_array", TxConfig::runtime_heap_w(AllocLogKind::kArray)},
      {"heap_w_filter", TxConfig::runtime_heap_w(AllocLogKind::kFilter)},
      {"counting", TxConfig::counting()},
      // Online-adaptive structure selection: the policy may re-specialize
      // the plan mid-run (array → filter → tree → back), so these presets
      // assert that SWITCHING structures between transactions — not just
      // picking one — never changes outcomes.
      {"rw_adaptive", TxConfig::runtime_rw(AllocLogKind::kAdaptive)},
      {"w_adaptive", TxConfig::runtime_w(AllocLogKind::kAdaptive)},
      {"heap_w_adaptive", TxConfig::runtime_heap_w(AllocLogKind::kAdaptive)},
  };
  // Durable mode: the redo-log serialization + flush leg rides commit and
  // may change PERSISTENCE only, never outcomes. No heap is active in this
  // suite, so these run against the fallback volatile log — the identical
  // serialization/accounting code path, minus the medium. Crossed with the
  // three barrier families whose elision decisions feed the redo log
  // differently: none (every store logged), static, runtime stack+heap.
  presets.emplace_back("durable_full", TxConfig::durable_baseline());
  presets.emplace_back("durable_static", TxConfig::compiler().with_durable());
  presets.emplace_back("durable_rw_filter",
                       TxConfig::durable_rw(AllocLogKind::kFilter));
  {
    // Stack-write-only: no preset names it, so the plan compiles to the
    // kGeneric per-access fallback.
    TxConfig generic;
    generic.stack_write = true;
    presets.emplace_back("generic_stack_w", generic);
  }
  {
    // Static elision combined with runtime checks: also kGeneric.
    TxConfig generic = TxConfig::runtime_w(AllocLogKind::kArray);
    generic.static_elision = true;
    presets.emplace_back("generic_static_rt", generic);
  }
  // Contention-manager cross: CM selection arbitrates WHO wins a conflict,
  // so on a conflict-free single-threaded run it must be invisible — any
  // digest divergence here means a CM leaked into committed state. A
  // representative subset of the barrier axis (full barriers, static
  // elision, the full runtime-check preset) crossed with the two priority
  // CMs; kBackoff is already preset 0's policy.
  for (const auto& [cm_name, cm] :
       {std::pair<const char*, ContentionPolicy>{"karma", ContentionPolicy::kKarma},
        std::pair<const char*, ContentionPolicy>{"greedy", ContentionPolicy::kGreedy}}) {
    presets.emplace_back(std::string("full_") + cm_name,
                         TxConfig::baseline().with_contention(cm));
    presets.emplace_back(std::string("static_") + cm_name,
                         TxConfig::compiler().with_contention(cm));
    presets.emplace_back(std::string("rw_tree_") + cm_name,
                         TxConfig::runtime_rw(AllocLogKind::kTree).with_contention(cm));
  }
  return presets;
}

struct Digest {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
};

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t commits = 0;  // step-phase commits (digest folding excluded)
  std::uint64_t aborts = 0;
  std::uint64_t batch_ops = 0;      // sub-ops executed inside merged batches
  std::uint64_t compensated = 0;    // sub-ops rolled back per-op (user aborts)
};

/// The torture workload: maps, lists, vectors, queues, heaps, bitmaps,
/// hashtables, raw tx_malloc scratch, nested transactions, and
/// deterministic user aborts, all driven by one fixed-seed RNG.
///
/// @p batch selects the executor: 0 runs each step directly in its own
/// top-level transaction (the historical shape); N > 0 feeds the SAME
/// closures through txbatch::Batcher at merge factor N. All per-step
/// randomness is drawn at GENERATION time, in the exact order the direct
/// executor consumed it, so the request stream is bit-identical whatever
/// the merge factor — any digest divergence is a merge-layer bug.
RunOutcome run_workload(const TxConfig& cfg, int steps = kSteps,
                        std::size_t batch = 0) {
  set_global_config(cfg);
  stats_reset();

  TxMap<std::uint64_t, std::uint64_t> map;
  TxHashtable<std::uint64_t, std::uint64_t> table(64);
  TxList<std::uint64_t> list;
  TxVector<std::uint64_t> vec(2);  // tiny: forces many captured grow-copies
  TxQueue<std::uint64_t> queue;
  TxHeap<std::uint64_t> heap(2);
  TxBitmap bitmap(kKeyRange);
  tvar<std::uint64_t> counter{0};

  txbatch::BatcherOptions bopts;
  bopts.max_batch = batch == 0 ? 1 : batch;
  txbatch::Batcher batcher(bopts);

  Xoshiro256 rng(kSeed);
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t key = rng.below(kKeyRange);
    const std::uint64_t val = rng.next();
    const std::uint64_t op = rng.below(12);
    // Op 8's coin is drawn HERE, at generation time, in exactly the slot
    // the direct executor used to draw it (execution was immediate). A
    // draw at execution time would make the stream depend on the merge
    // factor, because the Batcher defers closure bodies.
    const std::uint64_t heap_coin = op == 8 ? rng.below(3) : 1;
    auto body = [&, key, val, op, heap_coin, step](Tx& tx) {
      switch (op) {
        case 0:
          map.insert(tx, key, val);
          break;
        case 1:
          map.erase(tx, key);
          break;
        case 2:
          table.put(tx, key, val);
          break;
        case 3:
          if (list.size(tx) < 512) list.insert(tx, key);
          break;
        case 4:
          list.remove(tx, key);
          break;
        case 5:
          if (vec.size(tx) < 512) {
            vec.push_back(tx, val);
          } else {
            vec.set(tx, val % 512, val);
          }
          break;
        case 6:
          queue.push(tx, val);
          break;
        case 7: {
          std::uint64_t out = 0;
          if (queue.pop(tx, &out)) counter.add(tx, out & 0xff);
          break;
        }
        case 8: {
          if (heap.size(tx) < 512) heap.push(tx, val);
          std::uint64_t top = 0;
          if (heap_coin == 0 && heap.pop(tx, &top)) {
            counter.add(tx, top & 0xff);
          }
          break;
        }
        case 9:
          if (bitmap.set(tx, key)) counter.add(tx, 1);
          break;
        case 10: {
          // Allocation-heavy transaction with a nested child that sometimes
          // partially aborts: exercises captured-memory undo in nested
          // transactions plus alloc-log insert/erase under every log.
          const bool abort_child = (step % 5) == 0;
          auto* scratch = static_cast<std::uint64_t*>(tx_malloc(tx, 256));
          for (int j = 0; j < 32; ++j) {
            tm_write(tx, &scratch[j], val + static_cast<std::uint64_t>(j),
                     kAutoSite);
          }
          atomic([&](Tx& itx) {
            tm_write(itx, &scratch[0], std::uint64_t{0}, kAutoSite);
            counter.add(itx, 1000);
            if (abort_child) abort_tx();  // partial abort: both undone
          });
          std::uint64_t sum = 0;
          for (int j = 0; j < 32; ++j) {
            sum += tm_read(tx, &scratch[j], kAutoSite);
          }
          tx_free(tx, scratch);
          counter.add(tx, sum & 0xffff);
          break;
        }
        default: {
          // Deterministic user abort: everything THIS OP did must roll
          // back — via top-level cancel when direct, via the per-op
          // compensation path when merged.
          const bool cancel = (step % 3) == 0;
          counter.add(tx, 7);
          map.insert(tx, key ^ 0x80, val);
          if (cancel) abort_tx();
          break;
        }
      }
    };
    if (batch == 0) {
      atomic(body);
    } else {
      batcher.enqueue(std::move(body));
    }
  }
  batcher.drain();

  // Step-phase outcome counters, captured before digest folding adds its
  // own transactions (the batched comparison asserts EXACT commit counts).
  const TxStats step_stats = stats_snapshot();

  // Fold the complete final state.
  Digest d;
  map.for_each_sequential([&](std::uint64_t k, std::uint64_t v) {
    d.fold(k);
    d.fold(v);
  });
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < kKeyRange; ++k) {
      std::uint64_t v = 0;
      if (table.find(tx, k, &v)) {
        d.fold(k);
        d.fold(v);
      }
    }
    typename TxList<std::uint64_t>::Iterator it;
    list.iter_reset(tx, &it);
    while (list.iter_has_next(tx, &it)) d.fold(list.iter_next(tx, &it));
    const std::size_t n = vec.size(tx);
    d.fold(n);
    for (std::size_t i = 0; i < n; ++i) d.fold(vec.at(tx, i));
    std::uint64_t v = 0;
    while (queue.pop(tx, &v)) d.fold(v);
    while (heap.pop(tx, &v)) d.fold(v);
  });
  for (std::uint64_t k = 0; k < kKeyRange; ++k) {
    atomic([&](Tx& tx) { d.fold(bitmap.test(tx, k) ? k : ~k); });
  }
  d.fold(bitmap.count_sequential());
  d.fold(counter.peek());

  set_global_config(TxConfig::baseline());
  return RunOutcome{d.hash, step_stats.commits, step_stats.aborts,
                    step_stats.batch_ops, step_stats.batch_op_compensations};
}

TEST(Differential, AllBarrierPresetsProduceIdenticalState) {
  const auto presets = all_presets();
  RunOutcome reference{};
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& [name, cfg] = presets[i];
    const RunOutcome out = run_workload(cfg);
    SCOPED_TRACE("preset: " + name);
    EXPECT_GT(out.commits, 0u);
    // Single-threaded: conflicts are impossible, so every preset must
    // commit the same transactions.
    EXPECT_EQ(out.aborts, 0u);
    if (i == 0) {
      reference = out;
      continue;
    }
    EXPECT_EQ(out.digest, reference.digest)
        << name << " diverged from " << presets[0].first;
    EXPECT_EQ(out.commits, reference.commits)
        << name << " commit count diverged from " << presets[0].first;
  }
}

// Batched variants: the SAME 12k-step stream pushed through
// txbatch::Batcher at merge factors 1/8/64 must produce a bit-identical
// digest and exactly predictable commit counts. Merging changes WHERE
// transaction boundaries fall (ceil(steps/B) outer commits instead of one
// per step) and HOW user aborts roll back (per-op compensation instead of
// top-level cancel) — neither may change a single byte of final state, and
// no op may be lost or double-run.
TEST(Differential, BatchedExecutionMatchesUnbatchedExactly) {
  const std::vector<std::pair<std::string, TxConfig>> cfgs = {
      {"full", TxConfig::baseline()},
      {"rw_tree", TxConfig::runtime_rw(AllocLogKind::kTree)},
      {"static", TxConfig::compiler()},
      // Merged batches are the workload adaptive selection exists for (the
      // batch-size hint pre-escalates off the array); the digest and exact
      // commit counts must not notice any of it.
      {"rw_adaptive", TxConfig::runtime_rw(AllocLogKind::kAdaptive)},
  };
  for (const auto& [name, cfg] : cfgs) {
    const RunOutcome ref = run_workload(cfg);
    // Direct mode skips cancelled transactions' commits, so the cancel
    // count falls out of the reference run itself.
    const std::uint64_t cancels = kSteps - ref.commits;
    ASSERT_GT(cancels, 0u);  // the compensation path must actually fire
    for (const std::size_t b : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
      SCOPED_TRACE(name + " @ batch " + std::to_string(b));
      const RunOutcome out = run_workload(cfg, kSteps, b);
      EXPECT_EQ(out.digest, ref.digest);
      EXPECT_EQ(out.aborts, 0u);
      // Exact outer-commit count: every batch commits, cancelled sub-ops
      // included (their rollback is nested, not top-level).
      EXPECT_EQ(out.commits, (kSteps + b - 1) / b);
      EXPECT_EQ(out.batch_ops, static_cast<std::uint64_t>(kSteps));  // zero lost
      EXPECT_EQ(out.compensated, cancels);
    }
  }
}

// The comparison must be able to fail: the workload must be deterministic
// (two identical runs agree) AND the digest must be sensitive (a slightly
// different workload diverges), otherwise the equality above is vacuous.
// Durable region round-trip: a deterministic linked-structure workload in
// a DurableHeap must digest identically from the live working copy and
// from a fresh reopen — i.e. what the medium replays is byte-for-byte what
// the in-memory run computed, captured allocations included (their bytes
// travel by wholesale write-back, not redo entries).
TEST(Differential, DurableRegionStateSurvivesReopenBitIdentically) {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/cstm_diff_durable_" + std::to_string(::getpid()) +
                           ".heap";
  std::remove(path.c_str());

  // Walks the block list anchored at root slot 0 ([0]=value, [1]=next
  // offset) plus the plain-value slots. Reads are direct: after close/open
  // the working copy IS the recovered medium image.
  auto region_digest = [](dur::DurableHeap& heap) {
    Digest d;
    for (std::uint64_t off = *heap.root_slot(0); off != 0;) {
      const auto* block = static_cast<const std::uint64_t*>(heap.at(off));
      d.fold(block[0]);
      off = block[1];
    }
    d.fold(*heap.root_slot(2));
    d.fold(*heap.root_slot(3));
    return d.hash;
  };

  std::uint64_t live = 0;
  {
    dur::DurableHeap heap;
    ASSERT_TRUE(heap.open(path));
    heap.activate();
    set_global_config(TxConfig::durable_rw(AllocLogKind::kFilter));
    stats_reset();
    Xoshiro256 rng(kSeed);
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t v = rng.next();
      atomic([&](Tx& tx) {
        auto* block = static_cast<std::uint64_t*>(heap.alloc(tx, 64));
        tm_write(tx, &block[0], v, kAutoSite);                      // captured
        tm_write(tx, &block[1], tm_read(tx, heap.root_slot(0)),
                 kAutoSite);
        tm_write(tx, heap.root_slot(0), heap.offset_of(block));     // logged
        tm_write(tx, heap.root_slot(2),
                 tm_read(tx, heap.root_slot(2)) + (v & 0xff));
        if (i % 7 == 0) {
          atomic([&](Tx& itx) {  // nested partial abort mid-structure
            tm_write(itx, heap.root_slot(3), std::uint64_t{0xDEAD});
            abort_tx();
          });
        }
      });
    }
    const TxStats s = stats_snapshot();
    EXPECT_GT(s.flushes_elided_percent(), 0.0);  // elision was live
    live = region_digest(heap);
    heap.deactivate();
    heap.close();
    set_global_config(TxConfig::baseline());
  }

  dur::DurableHeap reopened;
  ASSERT_TRUE(reopened.open(path));
  EXPECT_EQ(region_digest(reopened), live);
  reopened.close();
  std::remove(path.c_str());
}

TEST(Differential, WorkloadDeterministicAndDigestSensitive) {
  const RunOutcome a = run_workload(TxConfig::baseline());
  const RunOutcome b = run_workload(TxConfig::baseline());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.commits, b.commits);
  const RunOutcome c = run_workload(TxConfig::baseline(), kSteps - 7);
  EXPECT_NE(c.digest, a.digest);
}

}  // namespace
}  // namespace cstm
