// Transactional memory pool tests: size classes, freelist reuse,
// cross-thread (remote) frees, pool parking/recycling on thread exit, and
// quarantine-based reclamation quiescence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "txmalloc/pool.hpp"

namespace cstm {
namespace {

TEST(Pool, AllocateReturnsUsableSize) {
  std::size_t usable = 0;
  void* p = Pool::local().allocate(20, &usable);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(usable, 20u);
  EXPECT_EQ(Pool::usable_size(p), usable);
  std::memset(p, 0xab, usable);  // whole block is writable
  Pool::deallocate(p);
}

TEST(Pool, SizeClassRounding) {
  std::size_t usable = 0;
  Pool::local().allocate(1, &usable);
  EXPECT_EQ(usable, 16u);
  Pool::local().allocate(17, &usable);
  EXPECT_EQ(usable, 32u);
  Pool::local().allocate(33, &usable);
  EXPECT_EQ(usable, 48u);
  Pool::local().allocate(4096, &usable);
  EXPECT_EQ(usable, 4096u);
}

TEST(Pool, LargeAllocationsBypassClasses) {
  std::size_t usable = 0;
  void* p = Pool::local().allocate(100000, &usable);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(usable, 100000u);
  std::memset(p, 1, usable);
  Pool::deallocate(p);
}

TEST(Pool, FreelistReusesBlocks) {
  void* p = Pool::local().allocate(64);
  Pool::deallocate(p);
  void* q = Pool::local().allocate(64);
  EXPECT_EQ(p, q);  // LIFO freelist returns the same block
  Pool::deallocate(q);
}

TEST(Pool, AlignmentIsSixteen) {
  for (const std::size_t n : {1u, 24u, 100u, 1000u}) {
    void* p = Pool::local().allocate(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u) << n;
    Pool::deallocate(p);
  }
}

TEST(Pool, CrossThreadFreeRoutesToOwner) {
  // Thread A allocates; thread B frees; thread A's next allocation can
  // reuse the block after the remote stack drains.
  void* p = Pool::local().allocate(128);
  const auto before = Pool::local().stats();
  std::thread([&] { Pool::deallocate(p); }).join();
  // Drain happens on allocation miss; allocate enough to hit the class.
  std::vector<void*> got;
  bool reused = false;
  for (int i = 0; i < 64 && !reused; ++i) {
    void* q = Pool::local().allocate(128);
    if (q == p) reused = true;
    got.push_back(q);
  }
  EXPECT_TRUE(reused);
  for (void* q : got) Pool::deallocate(q);
  (void)before;
}

TEST(Pool, PoolsAreParkedAndRecycled) {
  const std::size_t count_before = Pool::pool_count();
  // Threads run sequentially: each can reuse the previous one's parked pool.
  for (int i = 0; i < 8; ++i) {
    std::thread([] { Pool::local().allocate(16); }).join();
  }
  const std::size_t count_after = Pool::pool_count();
  EXPECT_LE(count_after - count_before, 1u);
}

TEST(Pool, ManyThreadsManyBlocksNoOverlap) {
  // Blocks handed out concurrently must never overlap.
  constexpr int kThreads = 8;
  constexpr int kBlocks = 500;
  std::vector<std::vector<void*>> all(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kBlocks; ++i) {
        void* p = Pool::local().allocate(48);
        std::memset(p, t, 48);
        all[static_cast<std::size_t>(t)].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uintptr_t> seen;
  for (const auto& vec : all) {
    for (void* p : vec) {
      EXPECT_TRUE(seen.insert(reinterpret_cast<std::uintptr_t>(p)).second);
    }
  }
  // Contents still intact (no overlap scribbled them).
  for (int t = 0; t < kThreads; ++t) {
    for (void* p : all[static_cast<std::size_t>(t)]) {
      EXPECT_EQ(static_cast<unsigned char*>(p)[0], t);
      Pool::deallocate(p);
    }
  }
}

// -- Quarantine quiescence ----------------------------------------------------

TEST(Quarantine, CommitTimeFreeIsDeferredUntilQuiescence) {
  set_global_config(TxConfig::baseline());
  stats_reset();
  Tx& tx0 = current_tx();
  auto* p = static_cast<std::uint64_t*>(tx_malloc(tx0, 8));
  *p = 42;
  // Free inside a transaction: the block enters quarantine at commit.
  atomic([&](Tx& tx) { tx_free(tx, p); });
  // The block must not be on the freelist yet if another transaction was
  // active when it was freed; with no concurrent activity it becomes
  // eligible on the next begin. Either way, a fresh transaction cycles the
  // quarantine without crashing and the memory eventually recycles.
  for (int i = 0; i < 200; ++i) {
    atomic([&](Tx& tx) {
      void* q = tx_malloc(tx, 8);
      tx_free(tx, q);
    });
  }
  SUCCEED();
}

TEST(Quarantine, ConcurrentFreeAndAccessNeverCorrupts) {
  // Threads hammer an insert/erase pattern on a shared slot structure whose
  // records are freed transactionally; the quarantine keeps doomed writers
  // from scribbling on allocator metadata. Any corruption would crash or
  // fail verification in this loop.
  set_global_config(TxConfig::baseline());
  struct Rec {
    std::uint64_t value;
  };
  constexpr std::size_t kSlots = 32;
  std::atomic<Rec*> slots[kSlots] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(900 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 5000; ++i) {
        const std::size_t s = rng.below(kSlots);
        atomic([&](Tx& tx) {
          Rec* cur = tm_read(tx, reinterpret_cast<Rec**>(&slots[s]));
          if (cur == nullptr) {
            auto* rec = static_cast<Rec*>(tx_malloc(tx, sizeof(Rec)));
            tm_write(tx, &rec->value, std::uint64_t{0xfeed0000} + s,
                     kAutoSite);
            tm_write(tx, reinterpret_cast<Rec**>(&slots[s]), rec);
          } else {
            EXPECT_EQ(tm_read(tx, &cur->value), std::uint64_t{0xfeed0000} + s);
            tm_write(tx, reinterpret_cast<Rec**>(&slots[s]),
                     static_cast<Rec*>(nullptr));
            tx_free(tx, cur);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& slot : slots) {
    if (Rec* r = slot.load()) Pool::deallocate(r);
  }
}

}  // namespace
}  // namespace cstm
