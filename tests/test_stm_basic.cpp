// Basic single-thread STM semantics: commit, abort/rollback, read-own,
// write-after-write, allocator integration, capture elision fast paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "stm/stm.hpp"

namespace cstm {
namespace {

class StmBasic : public ::testing::Test {
 protected:
  void SetUp() override {
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
};

// Every preset maps onto exactly the specialized barrier path its name
// promises — checked at compile time, since BarrierPlan::compile is
// constexpr. A preset silently landing on kGeneric would keep working but
// lose the whole point of the plan refactor.
namespace plan_checks {
constexpr BarrierPlan kBaseline = BarrierPlan::compile(TxConfig::baseline());
static_assert(kBaseline.read == BarrierPath::kFull &&
              kBaseline.write == BarrierPath::kFull &&
              kBaseline.log == ActiveLog::kNone);

constexpr BarrierPlan kRw =
    BarrierPlan::compile(TxConfig::runtime_rw(AllocLogKind::kArray));
static_assert(kRw.read == BarrierPath::kStackHeapPrivArray &&
              kRw.write == BarrierPath::kStackHeapPrivArray &&
              kRw.log == ActiveLog::kArray);

constexpr BarrierPlan kW =
    BarrierPlan::compile(TxConfig::runtime_w(AllocLogKind::kFilter));
static_assert(kW.read == BarrierPath::kFull &&
              kW.write == BarrierPath::kStackHeapPrivFilter &&
              kW.log == ActiveLog::kFilter);

constexpr BarrierPlan kHeapW =
    BarrierPlan::compile(TxConfig::runtime_heap_w(AllocLogKind::kTree));
static_assert(kHeapW.read == BarrierPath::kFull &&
              kHeapW.write == BarrierPath::kHeapTree &&
              kHeapW.log == ActiveLog::kTree);

constexpr BarrierPlan kCompiler = BarrierPlan::compile(TxConfig::compiler());
static_assert(kCompiler.read == BarrierPath::kStatic &&
              kCompiler.write == BarrierPath::kStatic &&
              kCompiler.log == ActiveLog::kNone);

constexpr BarrierPlan kCounting = BarrierPlan::compile(TxConfig::counting());
static_assert(kCounting.read == BarrierPath::kCounting &&
              kCounting.write == BarrierPath::kCounting &&
              kCounting.log == ActiveLog::kTree);

// The kAdaptive tag never reaches a barrier: compiling an unresolved
// adaptive config yields the policy's start state — the fully specialized
// ARRAY path, not kGeneric and not some new adaptive dispatch.
constexpr BarrierPlan kAdaptiveStart =
    BarrierPlan::compile(TxConfig::runtime_heap_w(AllocLogKind::kAdaptive));
static_assert(kAdaptiveStart.read == BarrierPath::kFull &&
              kAdaptiveStart.write == BarrierPath::kHeapArray &&
              kAdaptiveStart.log == ActiveLog::kArray);

constexpr BarrierPlan kAdaptiveRw = BarrierPlan::compile(TxConfig::adaptive());
static_assert(kAdaptiveRw.read == BarrierPath::kStackHeapPrivArray &&
              kAdaptiveRw.write == BarrierPath::kStackHeapPrivArray &&
              kAdaptiveRw.log == ActiveLog::kArray);
}  // namespace plan_checks

TEST_F(StmBasic, OffPresetConfigFallsBackToGenericPath) {
  // A hand-rolled combination no preset names (stack checks without heap)
  // must land on the generic path and still elide correctly.
  TxConfig cfg;
  cfg.stack_write = true;
  const BarrierPlan plan = BarrierPlan::compile(cfg);
  EXPECT_EQ(plan.write, BarrierPath::kGeneric);
  EXPECT_EQ(plan.read, BarrierPath::kFull);
  EXPECT_EQ(plan.log, ActiveLog::kNone);

  set_global_config(cfg);
  std::uint64_t observed = 0;
  atomic([&](Tx& tx) {
    std::uint64_t local[4] = {};
    tm_write(tx, &local[1], std::uint64_t{9});
    observed = local[1];
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_stack, 1u);
  EXPECT_EQ(observed, 9u);
}

TEST_F(StmBasic, PlanFollowsConfigChanges) {
  // The plan is compiled at begin_top from the installed config; switching
  // configs between transactions must re-specialize the descriptor.
  set_global_config(TxConfig::runtime_rw(AllocLogKind::kArray));
  atomic([&](Tx& tx) {
    EXPECT_EQ(tx.plan.read, BarrierPath::kStackHeapPrivArray);
    EXPECT_EQ(tx.plan.log, ActiveLog::kArray);
  });
  set_global_config(TxConfig::baseline());
  atomic([&](Tx& tx) {
    EXPECT_EQ(tx.plan.read, BarrierPath::kFull);
    EXPECT_EQ(tx.plan.log, ActiveLog::kNone);
  });
}

TEST_F(StmBasic, CommitMakesWritesVisible) {
  std::uint64_t x = 1;
  atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{42}); });
  EXPECT_EQ(x, 42u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 0u);
}

TEST_F(StmBasic, ReadReturnsCurrentValue) {
  std::uint64_t x = 7;
  std::uint64_t got = 0;
  atomic([&](Tx& tx) { got = tm_read(tx, &x); });
  EXPECT_EQ(got, 7u);
}

TEST_F(StmBasic, ReadOwnWriteSeesNewValue) {
  std::uint64_t x = 1;
  std::uint64_t got = 0;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{99});
    got = tm_read(tx, &x);
  });
  EXPECT_EQ(got, 99u);
}

TEST_F(StmBasic, UserAbortRollsBack) {
  std::uint64_t x = 5;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{1234});
    abort_tx();
  });
  EXPECT_EQ(x, 5u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.commits, 0u);
}

TEST_F(StmBasic, UserAbortRestoresMultipleWrites) {
  std::uint64_t a = 1, b = 2, c = 3;
  atomic([&](Tx& tx) {
    tm_write(tx, &a, std::uint64_t{10});
    tm_write(tx, &b, std::uint64_t{20});
    tm_write(tx, &c, std::uint64_t{30});
    abort_tx();
  });
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);
}

TEST_F(StmBasic, ExceptionCancelsAndPropagates) {
  std::uint64_t x = 5;
  EXPECT_THROW(atomic([&](Tx& tx) {
                 tm_write(tx, &x, std::uint64_t{77});
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  EXPECT_EQ(x, 5u);
}

TEST_F(StmBasic, SubWordWritesRollBackExactly) {
  struct {
    std::uint8_t a = 1;
    std::uint8_t b = 2;
    std::uint16_t c = 3;
    std::uint32_t d = 4;
  } s;
  atomic([&](Tx& tx) {
    tm_write(tx, &s.a, std::uint8_t{9});
    tm_write(tx, &s.c, std::uint16_t{999});
    abort_tx();
  });
  EXPECT_EQ(s.a, 1);
  EXPECT_EQ(s.b, 2);
  EXPECT_EQ(s.c, 3);
  EXPECT_EQ(s.d, 4u);
}

TEST_F(StmBasic, WriteAfterWriteUsesOwnFastPath) {
  std::uint64_t x = 0;
  atomic([&](Tx& tx) {
    tm_write(tx, &x, std::uint64_t{1});
    tm_write(tx, &x, std::uint64_t{2});
    tm_write(tx, &x, std::uint64_t{3});
  });
  EXPECT_EQ(x, 3u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_own_fast, 2u);
}

TEST_F(StmBasic, OutsideTransactionAccessesArePlain) {
  std::uint64_t x = 11;
  Tx& tx = current_tx();
  EXPECT_EQ(tm_read(tx, &x), 11u);
  tm_write(tx, &x, std::uint64_t{12});
  EXPECT_EQ(x, 12u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.reads, 0u);  // not counted as barriers
  EXPECT_EQ(s.writes, 0u);
}

// -- Allocator integration ---------------------------------------------------

TEST_F(StmBasic, TxMallocSurvivesCommit) {
  std::uint64_t* p = nullptr;
  atomic([&](Tx& tx) {
    p = static_cast<std::uint64_t*>(tx_malloc(tx, 8));
    tm_write(tx, p, std::uint64_t{5});
  });
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5u);
  Tx& tx = current_tx();
  tx_free(tx, p);
}

TEST_F(StmBasic, TxMallocRolledBackOnUserAbort) {
  std::uint64_t allocs_before = Pool::local().stats().allocs;
  atomic([&](Tx& tx) {
    void* p = tx_malloc(tx, 64);
    (void)p;
    abort_tx();
  });
  // The block was returned to the pool: a fresh allocation reuses it.
  EXPECT_EQ(Pool::local().stats().allocs, allocs_before + 1);
  std::size_t usable = 0;
  void* q = Pool::local().allocate(64, &usable);
  ASSERT_NE(q, nullptr);
  Pool::deallocate(q);
}

TEST_F(StmBasic, FreeInTxDeferredUntilCommit) {
  Tx& tx0 = current_tx();
  auto* p = static_cast<std::uint64_t*>(tx_malloc(tx0, 8));
  *p = 123;
  atomic([&](Tx& tx) {
    tx_free(tx, p);
    abort_tx();  // free must not have happened
  });
  EXPECT_EQ(*p, 123u);  // still alive
  atomic([&](Tx& tx) { tx_free(tx, p); });  // now freed at commit
}

TEST_F(StmBasic, AllocThenFreeInSameTx) {
  atomic([&](Tx& tx) {
    void* p = tx_malloc(tx, 32);
    tx_free(tx, p);
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.tx_allocs, 1u);
  EXPECT_EQ(s.tx_frees, 1u);
}

// -- Capture elision fast paths ----------------------------------------------

TEST_F(StmBasic, HeapWritesToTxLocalMemoryAreElided) {
  set_global_config(TxConfig::runtime_w());
  std::uint64_t* out = nullptr;
  atomic([&](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(tx_malloc(tx, 64));
    for (int i = 0; i < 8; ++i) tm_write(tx, &p[i], std::uint64_t(i), kAutoSite);
    out = p;
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_heap, 8u);
  EXPECT_EQ(out[7], 7u);
  tx_free(current_tx(), out);
}

TEST_F(StmBasic, StackAccessesAreElided) {
  set_global_config(TxConfig::runtime_rw());
  std::uint64_t result = 0;
  atomic([&](Tx& tx) {
    std::uint64_t local[4] = {0, 0, 0, 0};  // lives below start_sp
    for (int i = 0; i < 4; ++i) {
      tm_write(tx, &local[i], std::uint64_t(i + 1), kAutoSite);
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < 4; ++i) sum += tm_read(tx, &local[i], kAutoSite);
    result = sum;
  });
  EXPECT_EQ(result, 10u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_stack, 4u);
  EXPECT_EQ(s.read_elided_stack, 4u);
}

TEST_F(StmBasic, PreTxVariablesAreNotStackCaptured) {
  set_global_config(TxConfig::runtime_rw());
  std::uint64_t outer = 5;  // declared before atomic(): above start_sp
  atomic([&](Tx& tx) { tm_write(tx, &outer, std::uint64_t{6}, kAutoSite); });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_stack, 0u);
  EXPECT_EQ(outer, 6u);
}

TEST_F(StmBasic, PrivateAnnotationElidesBarriers) {
  set_global_config(TxConfig::runtime_rw());
  static std::uint64_t table[16] = {};
  add_private_memory_block(table, sizeof(table));
  atomic([&](Tx& tx) {
    tm_write(tx, &table[3], std::uint64_t{7}, kAutoSite);
    (void)tm_read(tx, &table[3], kAutoSite);
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_private, 1u);
  EXPECT_EQ(s.read_elided_private, 1u);
  remove_private_memory_block(table, sizeof(table));
  stats_reset();
  atomic([&](Tx& tx) { tm_write(tx, &table[3], std::uint64_t{8}, kAutoSite); });
  EXPECT_EQ(stats_snapshot().write_elided_private, 0u);
}

TEST_F(StmBasic, StaticElisionHonorsSiteFlag) {
  set_global_config(TxConfig::compiler());
  std::uint64_t heap_like = 0;
  atomic([&](Tx& tx) {
    tm_write(tx, &heap_like, std::uint64_t{1}, kAutoCapturedSite);
    (void)tm_read(tx, &heap_like, kAutoCapturedSite);
    tm_write(tx, &heap_like, std::uint64_t{2}, kSharedSite);  // full barrier
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided_static, 1u);
  EXPECT_EQ(s.read_elided_static, 1u);
  EXPECT_EQ(heap_like, 2u);
}

TEST_F(StmBasic, BaselineElidesNothing) {
  set_global_config(TxConfig::baseline());
  atomic([&](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(tx_malloc(tx, 8));
    tm_write(tx, p, std::uint64_t{1}, kAutoCapturedSite);
    tx_free(tx, p);
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.read_elided() + s.write_elided(), 0u);
}

// -- Count mode (Fig. 8 classification) ---------------------------------------

TEST_F(StmBasic, CountModeClassifiesAccesses) {
  set_global_config(TxConfig::counting());
  std::uint64_t shared = 0;
  atomic([&](Tx& tx) {
    std::uint64_t local = 0;
    auto* heap = static_cast<std::uint64_t*>(tx_malloc(tx, 8));
    tm_write(tx, heap, std::uint64_t{1}, kAutoSite);      // captured heap
    tm_write(tx, &local, std::uint64_t{2}, kAutoSite);    // captured stack
    tm_write(tx, &shared, std::uint64_t{3}, kSharedSite); // required
    (void)tm_read(tx, &shared, kAutoSite);                // not required, other
    tx_free(tx, heap);
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_cap_heap, 1u);
  EXPECT_EQ(s.write_cap_stack, 1u);
  EXPECT_EQ(s.write_required, 1u);
  EXPECT_EQ(s.read_not_required, 1u);
}

// -- Visibility across threads -------------------------------------------------

TEST_F(StmBasic, CommittedValueVisibleToOtherThread) {
  std::uint64_t x = 0;
  atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{21}); });
  std::uint64_t seen = 0;
  std::thread([&] {
    atomic([&](Tx& tx) { seen = tm_read(tx, &x); });
  }).join();
  EXPECT_EQ(seen, 21u);
}

}  // namespace
}  // namespace cstm
