// Advanced STM semantics: timestamp extension, false conflicts at orec
// granularity, contention policies, dead-stack undo filtering, opacity
// under mixed loads, and the harness plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {
namespace {

class StmAdvanced : public ::testing::Test {
 protected:
  void SetUp() override {
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }
};

TEST_F(StmAdvanced, TimestampExtensionAllowsLateReads) {
  // Reader starts, another thread commits to an unrelated location, reader
  // then reads the freshly versioned location: extension must succeed (the
  // read set is still valid) rather than abort.
  alignas(64) std::uint64_t a = 1;
  alignas(128) std::uint64_t b = 2;
  std::uint64_t seen_a = 0, seen_b = 0;
  atomic([&](Tx& tx) {
    seen_a = tm_read(tx, &a);
    std::thread([&] {
      atomic([&](Tx& tx2) { tm_write(tx2, &b, std::uint64_t{20}); });
    }).join();
    seen_b = tm_read(tx, &b);  // version > start_ts: triggers extension
  });
  EXPECT_EQ(seen_a, 1u);
  EXPECT_EQ(seen_b, 20u);
  EXPECT_EQ(stats_snapshot().aborts, 0u);
}

TEST_F(StmAdvanced, ConflictingUpdateAfterReadAborts) {
  // Same shape, but the other thread commits to the location we already
  // read: the transaction must abort and retry with the new value.
  alignas(64) std::uint64_t a = 1;
  alignas(128) std::uint64_t b = 2;
  int attempts = 0;
  std::uint64_t sum = 0;
  atomic([&](Tx& tx) {
    ++attempts;
    sum = tm_read(tx, &a);
    if (attempts == 1) {
      std::thread([&] {
        atomic([&](Tx& tx2) { tm_write(tx2, &a, std::uint64_t{100}); });
      }).join();
    }
    sum += tm_read(tx, &b);
    tm_write(tx, &b, sum);  // force write-set commit validation
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(stats_snapshot().aborts, 1u);
  EXPECT_EQ(b, 102u);
}

TEST_F(StmAdvanced, FalseConflictsAtCacheLineGranularity) {
  // Two fields in one cache line map to one ownership record: a writer on
  // one field forces a reader of the other to revalidate (the false
  // conflicts the paper's elision reduces).
  struct alignas(64) Line {
    std::uint64_t x;
    std::uint64_t y;
  };
  Line line{1, 2};
  EXPECT_EQ(&orec_table().slot(&line.x), &orec_table().slot(&line.y));
  EXPECT_NE(&orec_table().slot(&line.x),
            &orec_table().slot(reinterpret_cast<char*>(&line) + 64));
}

TEST_F(StmAdvanced, ContentionPolicies) {
  for (const ContentionPolicy policy :
       {ContentionPolicy::kBackoff, ContentionPolicy::kSuicide,
        ContentionPolicy::kSpinThenAbort, ContentionPolicy::kKarma,
        ContentionPolicy::kGreedy}) {
    TxConfig cfg = TxConfig::baseline();
    cfg.contention = policy;
    set_global_config(cfg);
    stats_reset();
    alignas(64) std::uint64_t counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) {
          atomic([&](Tx& tx) { tm_add(tx, &counter, std::uint64_t{1}); });
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, 40000u) << static_cast<int>(policy);
  }
}

TEST_F(StmAdvanced, ReadOnlyTransactionsDoNotAdvanceClock) {
  std::uint64_t x = 5;
  const std::uint64_t before = global_clock().load();
  for (int i = 0; i < 100; ++i) {
    atomic([&](Tx& tx) { (void)tm_read(tx, &x); });
  }
  EXPECT_EQ(global_clock().load(), before);
}

TEST_F(StmAdvanced, WritingTransactionsAdvanceClockOnce) {
  // Under the epoch-batched clock a writing commit publishes exactly ONE
  // fresh timestamp — but the published epoch may jump when the committer
  // starts a new reserved range (the first commit after a reservation
  // lands at the range base, not at before+1). The per-commit contract is
  // therefore: strictly monotonic, and single-stepping (+1) while the
  // committer stays inside one already-synced range.
  std::uint64_t x = 5;
  std::uint64_t prev = global_clock().load();
  std::uint64_t single_steps = 0;
  constexpr int kCommits = 10;
  for (int i = 0; i < kCommits; ++i) {
    atomic([&](Tx& tx) {
      tm_write(tx, &x, std::uint64_t(i));
      tm_write(tx, &x, std::uint64_t(i + 1));  // same orec: no extra stamp
    });
    const std::uint64_t now = global_clock().load();
    EXPECT_GT(now, prev) << "commit " << i << " did not publish";
    if (now == prev + 1) ++single_steps;
    prev = now;
  }
  // Sole committer, batch 64: at most one range boundary can fall inside a
  // 10-commit run once the range is synced, so at least kCommits - 2
  // commits advance the epoch by exactly 1 (no hidden multi-stamping).
  EXPECT_GE(single_steps, std::uint64_t{kCommits - 2});
}

TEST_F(StmAdvanced, DeadStackUndoIsFiltered) {
  // A transaction writes a local through a full barrier, then aborts at
  // commit time (validation failure forced by a helper thread). The undo
  // entry targets a dead frame; restoring it would smash the commit path's
  // own stack. Passing this test at -O2 is the regression check for that.
  alignas(64) std::uint64_t shared_a = 0;
  int attempts = 0;
  atomic([&](Tx& tx) {
    ++attempts;
    std::uint64_t local[16];
    for (int i = 0; i < 16; ++i) {
      tm_write(tx, &local[i], std::uint64_t(i), kAutoSite);
    }
    (void)tm_read(tx, &shared_a);
    if (attempts == 1) {
      // Invalidate the read set so commit-time validation fails.
      std::thread([&] {
        atomic([&](Tx& tx2) { tm_add(tx2, &shared_a, std::uint64_t{1}); });
      }).join();
      tm_write(tx, &shared_a, std::uint64_t{99});  // aborts here or at commit
    }
  });
  EXPECT_GE(attempts, 2);
}

TEST_F(StmAdvanced, OpacityUnderMixedLoad) {
  // Invariant pair updated atomically; concurrent transactions compute with
  // the values (a zombie computing with inconsistent values would trip the
  // EXPECT below before aborting — our barriers must never return
  // inconsistent data).
  alignas(64) std::uint64_t u = 10;
  alignas(128) std::uint64_t v = 10;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(77 + static_cast<std::uint64_t>(t));
      while (!stop.load()) {
        if (rng.below(2) == 0) {
          atomic([&](Tx& tx) {
            const std::uint64_t nu = rng.below(1000);
            tm_write(tx, &u, nu);
            tm_write(tx, &v, nu);
          });
        } else {
          std::uint64_t ru = 0, rv = 0;
          atomic([&](Tx& tx) {
            ru = tm_read(tx, &u);
            rv = tm_read(tx, &v);
          });
          if (ru != rv) bad.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST_F(StmAdvanced, StatsResetZeroesEverything) {
  std::uint64_t x = 0;
  atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{1}); });
  EXPECT_GT(stats_snapshot().commits, 0u);
  stats_reset();
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.writes, 0u);
}

TEST_F(StmAdvanced, StatsSurviveThreadExit) {
  std::thread([] {
    std::uint64_t x = 0;
    atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{1}); });
  }).join();
  EXPECT_GE(stats_snapshot().commits, 1u);  // retired into the accumulator
}

TEST_F(StmAdvanced, ConfigChangesApplyAtNextTransaction) {
  std::uint64_t x = 0;
  set_global_config(TxConfig::runtime_w());
  atomic([&](Tx& tx) {
    EXPECT_TRUE(tx.cfg.heap_write);
    tm_write(tx, &x, std::uint64_t{1});
  });
  set_global_config(TxConfig::baseline());
  atomic([&](Tx& tx) { EXPECT_FALSE(tx.cfg.heap_write); });
}

TEST_F(StmAdvanced, SiteDefaultsAreShared) {
  // A barrier without an explicit site counts as manually instrumented
  // (required) in count mode.
  set_global_config(TxConfig::counting());
  stats_reset();
  std::uint64_t x = 0;
  atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{1}); });
  EXPECT_EQ(stats_snapshot().write_required, 1u);
}

}  // namespace
}  // namespace cstm
