// Durable transaction mode: plan compilation, the DurableHeap region
// (create/reopen persistence, transactional allocation, nested-abort
// unwinding), and — the contribution under test — flush elision: stores
// the capture machinery proves transaction-local never reach the redo log,
// so a fully-captured transaction flushes nothing and capture-enabled
// durable runs issue measurably fewer pwb()s than the flush-everything
// baseline on the same workload.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "durable/durable_heap.hpp"
#include "durable/pwb.hpp"
#include "stamp/app.hpp"
#include "stm/stm.hpp"

namespace cstm {
namespace {

// Durable presets keep the exact barrier paths of their non-durable
// namesakes — the mode adds a commit-time leg, never a per-access branch —
// and only the durable presets set the plan bit. Compile-time, like the
// plan checks in test_stm_basic.cpp.
namespace plan_checks {
constexpr BarrierPlan kDurableRw =
    BarrierPlan::compile(TxConfig::durable_rw(AllocLogKind::kFilter));
static_assert(kDurableRw.read == BarrierPath::kStackHeapPrivFilter &&
              kDurableRw.write == BarrierPath::kStackHeapPrivFilter &&
              kDurableRw.log == ActiveLog::kFilter && kDurableRw.durable);

constexpr BarrierPlan kDurableBaseline =
    BarrierPlan::compile(TxConfig::durable_baseline());
static_assert(kDurableBaseline.read == BarrierPath::kFull &&
              kDurableBaseline.write == BarrierPath::kFull &&
              kDurableBaseline.log == ActiveLog::kNone &&
              kDurableBaseline.durable);

static_assert(!BarrierPlan::compile(TxConfig::baseline()).durable);
static_assert(
    !BarrierPlan::compile(TxConfig::runtime_rw(AllocLogKind::kFilter)).durable);
static_assert(!BarrierPlan::compile(TxConfig::compiler()).durable);
}  // namespace plan_checks

std::string scratch_heap_path() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/cstm_" +
         info->name() + "_" + std::to_string(::getpid()) + ".heap";
}

class Durable : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = scratch_heap_path();
    std::remove(path_.c_str());
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
  void TearDown() override {
    if (dur::DurableHeap::active() != nullptr) {
      dur::DurableHeap::active()->deactivate();
    }
    set_global_config(TxConfig::baseline());
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(Durable, CreateReopenPersistsTmWrites) {
  dur::OpenResult res;
  {
    dur::DurableHeap heap;
    ASSERT_TRUE(heap.open(path_, {}, &res));
    EXPECT_TRUE(res.created);
    heap.activate();
    set_global_config(TxConfig::durable_baseline());
    auto* cells = static_cast<std::uint64_t*>(heap.data());
    atomic([&](Tx& tx) {
      tm_write(tx, heap.root_slot(0), std::uint64_t{7});
      tm_write(tx, &cells[0], std::uint64_t{42});
      tm_write(tx, &cells[1], std::uint64_t{43});
    });
    const TxStats s = stats_snapshot();
    EXPECT_EQ(s.durable_commits, 1u);
    EXPECT_EQ(s.durable_stores_logged, 3u);
    EXPECT_GT(s.durable_pwbs, 0u);
    EXPECT_GT(s.durable_pfences, 0u);
    heap.deactivate();
    heap.close();
  }
  // A clean image: no commit record to replay, data already written back.
  dur::DurableHeap heap;
  ASSERT_TRUE(heap.open(path_, {}, &res));
  EXPECT_FALSE(res.created);
  EXPECT_FALSE(res.replayed_commit);
  EXPECT_EQ(*heap.root_slot(0), 7u);
  auto* cells = static_cast<std::uint64_t*>(heap.data());
  EXPECT_EQ(cells[0], 42u);
  EXPECT_EQ(cells[1], 43u);
  heap.close();
}

TEST_F(Durable, VolatileFallbackLogWithoutActiveHeap) {
  // Durable mode without a region: commits pay the full serialization and
  // flush accounting against a process-local log. Same code path as the
  // region case, which is what the differential presets rely on.
  set_global_config(TxConfig::durable_baseline());
  std::uint64_t x = 0;
  atomic([&](Tx& tx) { tm_write(tx, &x, std::uint64_t{5}); });
  EXPECT_EQ(x, 5u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.durable_commits, 1u);
  EXPECT_EQ(s.durable_stores_logged, 1u);
  EXPECT_GT(s.durable_pwbs, 0u);
  EXPECT_EQ(s.flushes_elided_percent(), 0.0);
}

TEST_F(Durable, OpenRejectsForeignFile) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::vector<unsigned char> junk(8192, 0xFF);
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  dur::DurableHeap heap;
  EXPECT_FALSE(heap.open(path_));
  EXPECT_FALSE(heap.is_open());
}

TEST_F(Durable, AllocExhaustionThrowsBadAlloc) {
  dur::DurableHeap heap;
  ASSERT_TRUE(heap.open(path_));
  heap.activate();
  set_global_config(TxConfig::durable_rw(AllocLogKind::kTree));
  EXPECT_THROW(atomic([&](Tx& tx) {
                 (void)heap.alloc(tx, heap.user_bytes() + 1);
               }),
               std::bad_alloc);
  heap.deactivate();
  heap.close();
}

TEST_F(Durable, RegionAllocIsCapturedAndPersists) {
  dur::DurableHeap heap;
  ASSERT_TRUE(heap.open(path_));
  heap.activate();
  set_global_config(TxConfig::durable_rw(AllocLogKind::kTree));
  std::uint64_t off = 0;
  atomic([&](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(heap.alloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &p[i], std::uint64_t(i + 1), kAutoSite);  // captured
    }
    off = heap.offset_of(p);
    tm_write(tx, heap.root_slot(0), off);  // shared: redo-logged
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.durable_allocs, 1u);
  EXPECT_EQ(s.durable_captured_writebacks, 1u);
  EXPECT_GE(s.write_elided_heap, 8u);
  // Only the bump cursor and the root slot reached the redo log; the eight
  // block stores rode the wholesale captured write-back.
  EXPECT_EQ(s.durable_stores_logged, 2u);
  EXPECT_GT(s.flushes_elided_percent(), 50.0);
  heap.deactivate();
  heap.close();

  dur::DurableHeap re;
  ASSERT_TRUE(re.open(path_));
  EXPECT_EQ(*re.root_slot(0), off);
  auto* p = static_cast<std::uint64_t*>(re.at(off));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(p[i], std::uint64_t(i + 1));
  re.close();
}

TEST_F(Durable, NestedAbortUnwindsAllocCursorAndRedoEntries) {
  dur::DurableHeap heap;
  ASSERT_TRUE(heap.open(path_));
  heap.activate();
  set_global_config(TxConfig::durable_rw(AllocLogKind::kTree));
  void* aborted_block = nullptr;
  void* reused_block = nullptr;
  atomic([&](Tx& tx) {
    tm_write(tx, heap.root_slot(0), std::uint64_t{1});
    atomic([&](Tx& inner) {
      tm_write(inner, heap.root_slot(1), std::uint64_t{99});
      aborted_block = heap.alloc(inner, 64);
      abort_tx();  // partial abort: cursor, capture entry, redo entry unwind
    });
    reused_block = heap.alloc(tx, 64);
    tm_write(tx, heap.root_slot(2), std::uint64_t{3});
  });
  // The cursor rolled back with the nested level: the retry allocation
  // lands on the same bytes.
  EXPECT_EQ(reused_block, aborted_block);
  // Only the surviving level's blocks are written back at commit.
  EXPECT_EQ(stats_snapshot().durable_captured_writebacks, 1u);
  heap.deactivate();
  heap.close();

  dur::DurableHeap re;
  ASSERT_TRUE(re.open(path_));
  EXPECT_EQ(*re.root_slot(0), 1u);
  EXPECT_EQ(*re.root_slot(1), 0u);  // the aborted inner write never persisted
  EXPECT_EQ(*re.root_slot(2), 3u);
  re.close();
}

// -- Flush-elision accounting -------------------------------------------------

TEST_F(Durable, FullyCapturedTransactionElidesEveryFlush) {
  // Scratch-only transaction: every store is captured, the redo log stays
  // empty, and the durable leg never even runs — 100% of flushes elided.
  set_global_config(TxConfig::durable_rw(AllocLogKind::kTree));
  atomic([&](Tx& tx) {
    auto* scratch = static_cast<std::uint64_t*>(tx_malloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &scratch[i], std::uint64_t(i), kAutoSite);
    }
    tx_free(tx, scratch);
  });
  const TxStats s = stats_snapshot();
  EXPECT_GE(s.write_elided_heap, 8u);
  EXPECT_EQ(s.durable_stores_logged, 0u);
  EXPECT_EQ(s.durable_commits, 0u);
  EXPECT_EQ(s.durable_pwbs, 0u);
  EXPECT_EQ(s.flushes_elided_percent(), 100.0);
}

TEST_F(Durable, CaptureDisabledElidesNoFlushes) {
  set_global_config(TxConfig::durable_baseline());
  atomic([&](Tx& tx) {
    auto* scratch = static_cast<std::uint64_t*>(tx_malloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &scratch[i], std::uint64_t(i), kAutoSite);
    }
    tx_free(tx, scratch);
  });
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.write_elided(), 0u);
  EXPECT_GE(s.durable_stores_logged, 8u);
  EXPECT_EQ(s.durable_commits, 1u);
  EXPECT_EQ(s.flushes_elided_percent(), 0.0);
}

TEST_F(Durable, CaptureCutsPwbTrafficVsDisabledOnSameWorkload) {
  // The acceptance criterion: identical capture-heavy workload, durable
  // mode with capture vs without — capture must issue measurably fewer
  // pwb()s, because captured stores produce no redo entries to flush.
  auto run = [&](const TxConfig& cfg) {
    std::remove(path_.c_str());
    dur::DurableHeap heap;
    EXPECT_TRUE(heap.open(path_));
    heap.activate();
    set_global_config(cfg);
    stats_reset();
    for (int t = 0; t < 16; ++t) {
      atomic([&](Tx& tx) {
        auto* p = static_cast<std::uint64_t*>(heap.alloc(tx, 128));
        for (int i = 0; i < 16; ++i) {
          tm_write(tx, &p[i], std::uint64_t(t * 100 + i), kAutoSite);
        }
        tm_write(tx, heap.root_slot(0), heap.offset_of(p));
      });
    }
    const TxStats s = stats_snapshot();
    heap.deactivate();
    heap.close();
    return s;
  };
  const TxStats with_capture = run(TxConfig::durable_rw(AllocLogKind::kTree));
  const TxStats no_capture = run(TxConfig::durable_baseline());
  EXPECT_EQ(with_capture.durable_commits, no_capture.durable_commits);
  EXPECT_LT(with_capture.durable_stores_logged, no_capture.durable_stores_logged);
  EXPECT_LT(with_capture.durable_pwbs, no_capture.durable_pwbs);
  EXPECT_GT(with_capture.flushes_elided_percent(), 50.0);
  EXPECT_EQ(no_capture.flushes_elided_percent(), 0.0);
}

}  // namespace
}  // namespace cstm

// Elision on a real workload: replaying the vacation-low request stream at
// growing merge factors raises the capture-hit rate (txbatch's whole
// point), and the flushes-elided share must ride along monotonically.
namespace cstm::stamp {
namespace {

TEST(DurableStream, FlushElisionTracksCaptureHitRateOnVacation) {
  set_global_config(TxConfig::durable_rw(AllocLogKind::kTree));
  double prev_elided = -1.0;
  double prev_hit = -1.0;
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{16}, std::size_t{64}}) {
    stats_reset();
    auto app = make_app("vacation-low");
    AppParams params;
    params.threads = 1;
    params.scale = 0.05;
    std::uint64_t requests = 0;
    run_app_stream(*app, params, batch, &requests);
    EXPECT_GT(requests, 0u);
    const TxStats s = stats_snapshot();
    EXPECT_GT(s.durable_commits, 0u);
    EXPECT_GE(s.capture_hit_percent(), prev_hit);
    EXPECT_GE(s.flushes_elided_percent(), prev_elided);
    prev_hit = s.capture_hit_percent();
    prev_elided = s.flushes_elided_percent();
  }
  // The sweep moved: merging must have bought real elision, not a flat 0.
  EXPECT_GT(prev_elided, 0.0);
  set_global_config(TxConfig::baseline());
}

}  // namespace
}  // namespace cstm::stamp
