// txbatch merge layer: FIFO merging, completion tokens, the compatibility
// policy hook, and — the part that earns the subsystem its place — per-sub-
// transaction abort compensation: an op that user-aborts inside a merged
// batch is rolled back by the nested partial-abort machinery (captured
// memory included) and requeued or failed INDIVIDUALLY, leaving its
// siblings' effects committed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "stamp/app.hpp"
#include "stm/stm.hpp"

namespace cstm {
namespace {

class TxBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }
};

TEST_F(TxBatch, DrainRunsOpsInFifoOrder) {
  txbatch::BatcherOptions opts;
  opts.max_batch = 64;  // nothing flushes until drain
  txbatch::Batcher batcher(opts);
  std::vector<int> order;
  std::vector<txbatch::Completion> tokens;
  for (int i = 0; i < 5; ++i) {
    tokens.push_back(
        batcher.enqueue([&order, i](Tx&) { order.push_back(i); }));
  }
  EXPECT_EQ(batcher.pending(), 5u);
  for (const auto& t : tokens) EXPECT_EQ(t.state(), txbatch::OpState::kPending);
  batcher.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  for (const auto& t : tokens) {
    EXPECT_TRUE(t.committed());
    EXPECT_EQ(t.attempts(), 1u);
  }
  EXPECT_EQ(batcher.stats().batches, 1u);
  EXPECT_EQ(batcher.stats().ops_enqueued, 5u);
  EXPECT_EQ(batcher.stats().ops_committed, 5u);
  EXPECT_EQ(batcher.stats().ops_failed, 0u);
  // One merged batch = ONE top-level commit.
  EXPECT_EQ(stats_snapshot().commits, 1u);
}

TEST_F(TxBatch, SizeTriggeredFlushInsideEnqueue) {
  txbatch::BatcherOptions opts;
  opts.max_batch = 4;
  txbatch::Batcher batcher(opts);
  std::uint64_t cell = 0;
  for (int i = 0; i < 4; ++i) {
    batcher.enqueue([&cell](Tx& tx) { tm_write(tx, &cell, tm_read(tx, &cell) + 1); });
  }
  // The 4th enqueue hit max_batch and flushed synchronously.
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.stats().batches, 1u);
  EXPECT_EQ(cell, 4u);
}

TEST_F(TxBatch, CompensatedAbortLeavesSiblingsCommitted) {
  // Op 3 of 8 deliberately aborts: ops 0..2 stay committed, ops 4..7 run
  // unaffected, and only op 3 is failed (no retry budget).
  txbatch::BatcherOptions opts;
  opts.max_batch = 8;
  txbatch::Batcher batcher(opts);
  std::uint64_t cells[8] = {};
  std::vector<txbatch::Completion> tokens;
  for (int i = 0; i < 8; ++i) {
    tokens.push_back(batcher.enqueue([&cells, i](Tx& tx) {
      tm_write(tx, &cells[i], std::uint64_t{1});
      if (i == 3) abort_tx();
    }));
  }
  batcher.drain();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cells[i], i == 3 ? 0u : 1u) << "cell " << i;
    EXPECT_EQ(tokens[static_cast<std::size_t>(i)].committed(), i != 3);
  }
  EXPECT_TRUE(tokens[3].failed());
  EXPECT_EQ(batcher.stats().ops_committed, 7u);
  EXPECT_EQ(batcher.stats().ops_failed, 1u);
  EXPECT_EQ(batcher.stats().ops_requeued, 0u);
  const TxStats s = stats_snapshot();
  EXPECT_EQ(s.commits, 1u);  // the merged transaction still committed
  EXPECT_EQ(s.nested_partial_aborts, 1u);
  EXPECT_EQ(s.batch_flushes, 1u);
  EXPECT_EQ(s.batch_ops, 8u);
  EXPECT_EQ(s.batch_op_compensations, 1u);
}

TEST_F(TxBatch, CompensationRestoresCapturedMemory) {
  // The aborting op writes to memory CAPTURED by an earlier sibling (heap
  // allocated in the same outer transaction, so its write barrier is
  // elided). The nested undo path must restore it anyway.
  set_global_config(TxConfig::runtime_w());
  txbatch::BatcherOptions opts;
  opts.max_batch = 4;
  txbatch::Batcher batcher(opts);
  std::uint64_t* block = nullptr;
  std::uint64_t observed = 0;
  batcher.enqueue([&block](Tx& tx) {
    block = static_cast<std::uint64_t*>(tx_malloc(tx, 8));
    tm_write(tx, block, std::uint64_t{100}, kAutoSite);  // elided (captured)
  });
  batcher.enqueue([&block](Tx& tx) {
    tm_write(tx, block, std::uint64_t{999}, kAutoSite);  // elided + undo-logged
    abort_tx();
  });
  batcher.enqueue([&block, &observed](Tx& tx) {
    observed = tm_read(tx, block, kAutoSite);
    tx_free(tx, block);
  });
  batcher.drain();
  EXPECT_EQ(observed, 100u);  // sibling's 999 was rolled back
  const TxStats s = stats_snapshot();
  EXPECT_GE(s.write_elided_heap, 2u);
  EXPECT_EQ(s.nested_partial_aborts, 1u);
}

TEST_F(TxBatch, RequeueBudgetRetriesCompensatedOp) {
  txbatch::BatcherOptions opts;
  opts.max_batch = 2;
  opts.max_retries = 1;
  txbatch::Batcher batcher(opts);
  std::uint64_t cell = 0;
  int executions = 0;  // plain local: survives the rollback
  auto flaky = batcher.enqueue([&](Tx& tx) {
    if (executions++ == 0) abort_tx();  // fail the first attempt only
    tm_write(tx, &cell, std::uint64_t{7});
  });
  batcher.enqueue([](Tx&) {});
  batcher.drain();  // drain keeps flushing until the requeue settles
  EXPECT_TRUE(flaky.committed());
  EXPECT_EQ(flaky.attempts(), 2u);
  EXPECT_EQ(cell, 7u);
  EXPECT_EQ(batcher.stats().ops_requeued, 1u);
  EXPECT_EQ(batcher.stats().ops_failed, 0u);
  EXPECT_EQ(batcher.stats().batches, 2u);
}

TEST_F(TxBatch, ExhaustedRetryBudgetFailsOp) {
  txbatch::BatcherOptions opts;
  opts.max_batch = 1;
  opts.max_retries = 2;
  txbatch::Batcher batcher(opts);
  auto doomed = batcher.enqueue([](Tx&) { abort_tx(); });
  batcher.drain();
  EXPECT_TRUE(doomed.failed());
  EXPECT_EQ(doomed.attempts(), 3u);  // initial run + 2 requeues
  EXPECT_EQ(batcher.stats().ops_requeued, 2u);
  EXPECT_EQ(batcher.stats().ops_failed, 1u);
}

TEST_F(TxBatch, MergePolicySplitsIncompatibleOps) {
  // Same-tag-only policy: tags A A B B A must produce three batches
  // (A A | B B | A) — the policy closes a batch, never reorders the queue.
  txbatch::BatcherOptions opts;
  opts.max_batch = 16;
  opts.policy = [](const txbatch::OpInfo& head, const txbatch::OpInfo& cand) {
    return head.tag == cand.tag;
  };
  txbatch::Batcher batcher(opts);
  std::vector<std::uint64_t> order;
  for (std::uint64_t tag : {0u, 0u, 1u, 1u, 0u}) {
    batcher.enqueue([&order, tag](Tx&) { order.push_back(tag); }, tag);
  }
  batcher.drain();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 0, 1, 1, 0}));
  EXPECT_EQ(batcher.stats().batches, 3u);
  EXPECT_EQ(stats_snapshot().commits, 3u);
}

TEST_F(TxBatch, DeadlineFlushesOverdueOpsBeforeNewcomerJoins) {
  txbatch::BatcherOptions opts;
  opts.max_batch = 64;
  opts.max_delay = std::chrono::microseconds{500};
  txbatch::Batcher batcher(opts);
  auto first = batcher.enqueue([](Tx&) {});
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  auto second = batcher.enqueue([](Tx&) {});
  // The overdue queue flushed before the second op joined it.
  EXPECT_TRUE(first.committed());
  EXPECT_EQ(second.state(), txbatch::OpState::kPending);
  EXPECT_EQ(batcher.pending(), 1u);
  batcher.drain();
  EXPECT_TRUE(second.committed());
}

TEST_F(TxBatch, EscapingExceptionCancelsWholeBatch) {
  // A non-transactional exception is NOT compensated per-op: the outer
  // transaction cancels, every sibling's effects are discarded, all ops in
  // the batch are failed, and the exception reaches the caller.
  txbatch::BatcherOptions opts;
  opts.max_batch = 64;  // keep enqueue from flushing; the throw happens in drain
  txbatch::Batcher batcher(opts);
  std::uint64_t cell = 0;
  auto a = batcher.enqueue(
      [&cell](Tx& tx) { tm_write(tx, &cell, std::uint64_t{1}); });
  auto b = batcher.enqueue([](Tx&) { throw std::runtime_error("boom"); });
  auto c = batcher.enqueue(
      [&cell](Tx& tx) { tm_write(tx, &cell, std::uint64_t{2}); });
  EXPECT_THROW(batcher.drain(), std::runtime_error);
  EXPECT_EQ(cell, 0u);  // sibling's write rolled back with the cancel
  EXPECT_TRUE(a.failed());
  EXPECT_TRUE(b.failed());
  EXPECT_TRUE(c.failed());
  EXPECT_EQ(batcher.stats().ops_failed, 3u);
  EXPECT_EQ(stats_snapshot().commits, 0u);
}

TEST_F(TxBatch, EmptyFlushIsANoOp) {
  txbatch::Batcher batcher;
  EXPECT_EQ(batcher.flush(), 0u);
  EXPECT_EQ(batcher.stats().batches, 0u);
  batcher.drain();
  EXPECT_EQ(stats_snapshot().commits, 0u);
}

TEST_F(TxBatch, BatchingAmortizesCommitsAndRaisesCaptureHits) {
  // The subsystem's reason to exist, in miniature: the same allocate-and-
  // link workload at batch 1 vs batch 16 must commit 16x fewer top-level
  // transactions and elide strictly more accesses (later ops read memory
  // captured earlier in the merged transaction).
  set_global_config(TxConfig::runtime_rw(AllocLogKind::kTree));
  constexpr int kOps = 32;
  auto run_at = [&](std::size_t batch_size) {
    stats_reset();
    txbatch::BatcherOptions opts;
    opts.max_batch = batch_size;
    txbatch::Batcher batcher(opts);
    std::uint64_t* head = nullptr;  // chain of [value, next] pairs
    for (int i = 0; i < kOps; ++i) {
      batcher.enqueue([&head, i](Tx& tx) {
        auto* node = static_cast<std::uint64_t*>(tx_malloc(tx, 16));
        tm_write(tx, node, static_cast<std::uint64_t>(i), kAutoSite);
        tm_write(tx, node + 1, reinterpret_cast<std::uint64_t>(head),
                 kAutoSite);
        // Walk the chain: at batch 1 every hop touches pre-batch memory;
        // merged, the freshest nodes are captured and barrier-free.
        for (std::uint64_t* p = node;
             p != nullptr;
             p = reinterpret_cast<std::uint64_t*>(tm_read(tx, p + 1, kAutoSite))) {
        }
        head = node;
      });
    }
    batcher.drain();
    return stats_snapshot();
  };
  const TxStats single = run_at(1);
  const TxStats merged = run_at(16);
  EXPECT_EQ(single.commits, 32u);
  EXPECT_EQ(merged.commits, 2u);
  EXPECT_GT(merged.capture_hit_percent(), single.capture_hit_percent());
}

}  // namespace
}  // namespace cstm

// The harness streaming runner on a real workload, small scale: every
// request replays through the Batcher and the app must still verify, at
// several merge factors, with zero lost requests.
namespace cstm::stamp {
namespace {

TEST(TxBatchStream, IntruderVerifiesAtEveryMergeFactor) {
  set_global_config(TxConfig::runtime_rw(AllocLogKind::kTree));
  for (const std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    stats_reset();
    auto app = make_app("intruder");
    AppParams params;
    params.threads = 2;
    params.scale = 0.05;
    std::uint64_t requests = 0;
    run_app_stream(*app, params, batch, &requests);  // aborts on verify failure
    EXPECT_GT(requests, 0u);
    const TxStats s = stats_snapshot();
    EXPECT_EQ(s.batch_ops, requests);
    EXPECT_EQ(s.batch_op_compensations, 0u);
  }
  set_global_config(TxConfig::baseline());
}

TEST(TxBatchStream, VacationVerifiesAtEveryMergeFactor) {
  set_global_config(TxConfig::runtime_rw(AllocLogKind::kTree));
  for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
    stats_reset();
    auto app = make_app("vacation-low");
    AppParams params;
    params.threads = 2;
    params.scale = 0.05;
    std::uint64_t requests = 0;
    run_app_stream(*app, params, batch, &requests);
    EXPECT_GT(requests, 0u);
    EXPECT_EQ(stats_snapshot().batch_ops, requests);
  }
  set_global_config(TxConfig::baseline());
}

}  // namespace
}  // namespace cstm::stamp
