// Functional tests for the transactional containers, exercised through real
// transactions. Parameterized over every runtime configuration so that
// barrier elision provably never changes semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "containers/containers.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {
namespace {

std::vector<TxConfig> all_configs() {
  return {
      TxConfig::baseline(),
      TxConfig::runtime_rw(AllocLogKind::kTree),
      TxConfig::runtime_rw(AllocLogKind::kArray),
      TxConfig::runtime_rw(AllocLogKind::kFilter),
      TxConfig::runtime_w(AllocLogKind::kTree),
      TxConfig::runtime_heap_w(AllocLogKind::kArray),
      TxConfig::compiler(),
      TxConfig::counting(),
  };
}

std::string config_name(std::size_t i) {
  static const char* names[] = {"baseline",    "rw_tree",  "rw_array",
                                "rw_filter",   "w_tree",   "heapw_array",
                                "compiler",    "counting"};
  return names[i];
}

class ContainersAllConfigs : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    set_global_config(all_configs()[GetParam()]);
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }
};

TEST_P(ContainersAllConfigs, ListInsertRemoveContains) {
  TxList<std::uint64_t> list;
  for (std::uint64_t v : {5u, 1u, 9u, 3u, 7u}) {
    atomic([&](Tx& tx) { EXPECT_TRUE(list.insert(tx, v)); });
  }
  atomic([&](Tx& tx) {
    EXPECT_FALSE(list.insert(tx, 5));  // duplicate
    EXPECT_EQ(list.size(tx), 5u);
    EXPECT_TRUE(list.contains(tx, 3));
    EXPECT_FALSE(list.contains(tx, 4));
  });
  atomic([&](Tx& tx) { EXPECT_TRUE(list.remove(tx, 3)); });
  atomic([&](Tx& tx) {
    EXPECT_FALSE(list.contains(tx, 3));
    EXPECT_FALSE(list.remove(tx, 3));
    EXPECT_EQ(list.size(tx), 4u);
  });
}

TEST_P(ContainersAllConfigs, ListIterationIsSorted) {
  TxList<std::uint64_t> list;
  atomic([&](Tx& tx) {
    for (std::uint64_t v : {4u, 2u, 8u, 6u}) list.insert(tx, v);
  });
  std::vector<std::uint64_t> seen;
  atomic([&](Tx& tx) {
    seen.clear();  // retry-safe
    typename TxList<std::uint64_t>::Iterator it;  // inside the atomic block
    list.iter_reset(tx, &it);
    while (list.iter_has_next(tx, &it)) seen.push_back(list.iter_next(tx, &it));
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 4, 6, 8}));
}

TEST_P(ContainersAllConfigs, ListAbortRollsBackInsert) {
  TxList<std::uint64_t> list;
  atomic([&](Tx& tx) { list.insert(tx, 1); });
  atomic([&](Tx& tx) {
    list.insert(tx, 2);
    abort_tx();
  });
  atomic([&](Tx& tx) {
    EXPECT_FALSE(list.contains(tx, 2));
    EXPECT_EQ(list.size(tx), 1u);
  });
}

TEST_P(ContainersAllConfigs, ListDuplicatesAllowedMode) {
  TxList<std::uint64_t> list(/*allow_duplicates=*/true);
  atomic([&](Tx& tx) {
    EXPECT_TRUE(list.insert(tx, 5));
    EXPECT_TRUE(list.insert(tx, 5));
    EXPECT_EQ(list.size(tx), 2u);
  });
}

TEST_P(ContainersAllConfigs, QueueFifoOrder) {
  TxQueue<std::uint64_t> q;
  atomic([&](Tx& tx) {
    for (std::uint64_t i = 0; i < 10; ++i) q.push(tx, i);
  });
  std::vector<std::uint64_t> out;
  atomic([&](Tx& tx) {
    out.clear();
    std::uint64_t v = 0;
    while (q.pop(tx, &v)) out.push_back(v);
  });
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  atomic([&](Tx& tx) { EXPECT_TRUE(q.empty(tx)); });
}

TEST_P(ContainersAllConfigs, QueueAbortRollsBackPop) {
  TxQueue<std::uint64_t> q;
  atomic([&](Tx& tx) { q.push(tx, 42); });
  atomic([&](Tx& tx) {
    std::uint64_t v = 0;
    EXPECT_TRUE(q.pop(tx, &v));
    abort_tx();
  });
  atomic([&](Tx& tx) {
    std::uint64_t v = 0;
    EXPECT_TRUE(q.pop(tx, &v));
    EXPECT_EQ(v, 42u);
  });
}

TEST_P(ContainersAllConfigs, VectorPushGrowAt) {
  TxVector<std::uint64_t> vec(2);
  atomic([&](Tx& tx) {
    for (std::uint64_t i = 0; i < 100; ++i) vec.push_back(tx, i * 3);
  });
  atomic([&](Tx& tx) {
    EXPECT_EQ(vec.size(tx), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(vec.at(tx, i), i * 3);
  });
  atomic([&](Tx& tx) {
    vec.set(tx, 50, 999);
    EXPECT_EQ(vec.at(tx, 50), 999u);
    EXPECT_EQ(vec.pop_back(tx), 99u * 3);
    EXPECT_EQ(vec.size(tx), 99u);
  });
}

TEST_P(ContainersAllConfigs, HashtableInsertFindErase) {
  TxHashtable<std::uint64_t, std::uint64_t> table(64);
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < 200; ++k) {
      EXPECT_TRUE(table.insert(tx, k, k * k));
    }
    EXPECT_FALSE(table.insert(tx, 7, 0));  // duplicate key
  });
  atomic([&](Tx& tx) {
    std::uint64_t v = 0;
    EXPECT_TRUE(table.find(tx, 13, &v));
    EXPECT_EQ(v, 169u);
    EXPECT_FALSE(table.find(tx, 1000, &v));
    EXPECT_EQ(table.size(tx), 200u);
  });
  atomic([&](Tx& tx) {
    EXPECT_TRUE(table.erase(tx, 13));
    EXPECT_FALSE(table.erase(tx, 13));
    EXPECT_FALSE(table.contains(tx, 13));
  });
}

TEST_P(ContainersAllConfigs, HashtablePutOverwrites) {
  TxHashtable<std::uint64_t, std::uint64_t> table(16);
  atomic([&](Tx& tx) {
    table.put(tx, 1, 10);
    table.put(tx, 1, 20);
    std::uint64_t v = 0;
    EXPECT_TRUE(table.find(tx, 1, &v));
    EXPECT_EQ(v, 20u);
    EXPECT_EQ(table.size(tx), 1u);
  });
}

TEST_P(ContainersAllConfigs, MapOrderedOperations) {
  TxMap<std::uint64_t, std::uint64_t> map;
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < 512; ++k) {  // sequential keys: worst case
      EXPECT_TRUE(map.insert(tx, k, k + 1000));
    }
  });
  atomic([&](Tx& tx) {
    EXPECT_EQ(map.size(tx), 512u);
    std::uint64_t v = 0;
    EXPECT_TRUE(map.find(tx, 300, &v));
    EXPECT_EQ(v, 1300u);
    EXPECT_FALSE(map.insert(tx, 300, 0));
    EXPECT_FALSE(map.find(tx, 512, &v));
  });
  // In-order traversal must be sorted (treap invariant).
  std::vector<std::uint64_t> keys;
  map.for_each_sequential([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_EQ(keys.size(), 512u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(ContainersAllConfigs, MapEraseKeepsOrder) {
  TxMap<std::uint64_t, std::uint64_t> map;
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < 256; ++k) map.insert(tx, k, k);
  });
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < 256; k += 2) EXPECT_TRUE(map.erase(tx, k));
    EXPECT_FALSE(map.erase(tx, 0));
  });
  atomic([&](Tx& tx) {
    EXPECT_EQ(map.size(tx), 128u);
    for (std::uint64_t k = 0; k < 256; ++k) {
      EXPECT_EQ(map.contains(tx, k), k % 2 == 1) << k;
    }
  });
  std::vector<std::uint64_t> keys;
  map.for_each_sequential([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(ContainersAllConfigs, MapFindFloor) {
  TxMap<std::uint64_t, std::uint64_t> map;
  atomic([&](Tx& tx) {
    for (std::uint64_t k : {10u, 20u, 30u}) map.insert(tx, k, k * 10);
  });
  atomic([&](Tx& tx) {
    std::uint64_t k = 0, v = 0;
    EXPECT_TRUE(map.find_floor(tx, 25, &k, &v));
    EXPECT_EQ(k, 20u);
    EXPECT_EQ(v, 200u);
    EXPECT_TRUE(map.find_floor(tx, 30, &k, &v));
    EXPECT_EQ(k, 30u);
    EXPECT_FALSE(map.find_floor(tx, 5, &k, &v));
  });
}

TEST_P(ContainersAllConfigs, MapPutInsertsOrUpdates) {
  TxMap<std::uint64_t, std::uint64_t> map;
  atomic([&](Tx& tx) {
    map.put(tx, 7, 1);
    map.put(tx, 7, 2);
    std::uint64_t v = 0;
    EXPECT_TRUE(map.find(tx, 7, &v));
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(map.size(tx), 1u);
  });
}

TEST_P(ContainersAllConfigs, MapAbortRollsBackStructuralChange) {
  TxMap<std::uint64_t, std::uint64_t> map;
  atomic([&](Tx& tx) {
    for (std::uint64_t k = 0; k < 64; ++k) map.insert(tx, k * 2, k);
  });
  atomic([&](Tx& tx) {
    map.insert(tx, 33, 33);
    map.erase(tx, 10);
    abort_tx();
  });
  atomic([&](Tx& tx) {
    EXPECT_FALSE(map.contains(tx, 33));
    EXPECT_TRUE(map.contains(tx, 10));
    EXPECT_EQ(map.size(tx), 64u);
  });
}

TEST_P(ContainersAllConfigs, HeapExtractsInPriorityOrder) {
  TxHeap<std::uint64_t> heap(2);
  Xoshiro256 rng(99);
  std::multiset<std::uint64_t> reference;
  atomic([&](Tx& tx) {
    for (int i = 0; i < 100; ++i) {
      // Retry-safe only because the draw sequence restarts identically.
      heap.push(tx, i * 37 % 101);
    }
  });
  for (int i = 0; i < 100; ++i) reference.insert(i * 37 % 101);
  std::vector<std::uint64_t> drained;
  atomic([&](Tx& tx) {
    drained.clear();
    std::uint64_t v = 0;
    while (heap.pop(tx, &v)) drained.push_back(v);
  });
  ASSERT_EQ(drained.size(), 100u);
  EXPECT_TRUE(std::is_sorted(drained.rbegin(), drained.rend()));
  std::multiset<std::uint64_t> got(drained.begin(), drained.end());
  EXPECT_EQ(got, reference);
}

TEST_P(ContainersAllConfigs, BitmapClaimSemantics) {
  TxBitmap bm(256);
  atomic([&](Tx& tx) {
    EXPECT_TRUE(bm.set(tx, 17));
    EXPECT_FALSE(bm.set(tx, 17));
    EXPECT_TRUE(bm.test(tx, 17));
    EXPECT_FALSE(bm.test(tx, 18));
    bm.clear(tx, 17);
    EXPECT_FALSE(bm.test(tx, 17));
    EXPECT_TRUE(bm.set(tx, 17));
  });
  EXPECT_EQ(bm.count_sequential(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ContainersAllConfigs,
                         ::testing::Range<std::size_t>(0, all_configs().size()),
                         [](const auto& info) { return config_name(info.param); });

// ---------------------------------------------------------------------------
// Elision profile checks: the containers must actually produce the captured
// accesses the paper measures (node init writes elided under runtime checks).
// ---------------------------------------------------------------------------

TEST(ContainerElision, ListInsertNodeInitIsElidedUnderRuntimeChecks) {
  set_global_config(TxConfig::runtime_w());
  stats_reset();
  TxList<std::uint64_t> list;
  atomic([&](Tx& tx) { list.insert(tx, 1); });
  const TxStats s = stats_snapshot();
  EXPECT_GE(s.write_elided_heap, 2u);  // node value + next
  set_global_config(TxConfig::baseline());
}

TEST(ContainerElision, ListInsertNodeInitIsElidedUnderCompiler) {
  set_global_config(TxConfig::compiler());
  stats_reset();
  TxList<std::uint64_t> list;
  atomic([&](Tx& tx) { list.insert(tx, 1); });
  const TxStats s = stats_snapshot();
  EXPECT_GE(s.write_elided_static, 2u);
  set_global_config(TxConfig::baseline());
}

TEST(ContainerElision, IteratorAccessesAreStackCaptured) {
  set_global_config(TxConfig::runtime_rw());
  stats_reset();
  TxList<std::uint64_t> list;
  atomic([&](Tx& tx) {
    for (std::uint64_t i = 0; i < 4; ++i) list.insert(tx, i);
  });
  stats_reset();
  atomic([&](Tx& tx) {
    typename TxList<std::uint64_t>::Iterator it;
    list.iter_reset(tx, &it);
    while (list.iter_has_next(tx, &it)) (void)list.iter_next(tx, &it);
  });
  const TxStats s = stats_snapshot();
  EXPECT_GT(s.read_elided_stack, 0u);
  EXPECT_GT(s.write_elided_stack, 0u);
  set_global_config(TxConfig::baseline());
}

TEST(ContainerElision, MapInsertUnderCountModeShowsCapturedWrites) {
  set_global_config(TxConfig::counting());
  stats_reset();
  TxMap<std::uint64_t, std::uint64_t> map;
  atomic([&](Tx& tx) { map.insert(tx, 5, 50); });
  const TxStats s = stats_snapshot();
  // 5 node-init writes classified as captured heap; root link is required.
  EXPECT_GE(s.write_cap_heap, 5u);
  EXPECT_GE(s.write_required, 1u);
  set_global_config(TxConfig::baseline());
}

}  // namespace
}  // namespace cstm
