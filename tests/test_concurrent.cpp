// Concurrency stress tests: atomicity, isolation and rollback under real
// contention, for every optimization configuration. These are the paper's
// safety requirement in executable form — capture-based elision must never
// change program outcomes, only speed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "containers/containers.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {
namespace {

constexpr int kThreads = 8;

std::vector<TxConfig> stress_configs() {
  return {
      TxConfig::baseline(),
      TxConfig::runtime_rw(AllocLogKind::kTree),
      TxConfig::runtime_rw(AllocLogKind::kArray),
      TxConfig::runtime_rw(AllocLogKind::kFilter),
      TxConfig::runtime_w(AllocLogKind::kTree),
      TxConfig::compiler(),
  };
}

std::string stress_name(std::size_t i) {
  static const char* names[] = {"baseline", "rw_tree",  "rw_array",
                                "rw_filter", "w_tree",  "compiler"};
  return names[i];
}

void run_threads(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back(fn, t);
  for (auto& th : threads) th.join();
}

class StressAllConfigs : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    set_global_config(stress_configs()[GetParam()]);
    stats_reset();
  }
  void TearDown() override { set_global_config(TxConfig::baseline()); }
};

TEST_P(StressAllConfigs, CounterIncrementsAreAtomic) {
  alignas(64) std::uint64_t counter = 0;
  constexpr std::uint64_t kPerThread = 20000;
  run_threads(kThreads, [&](int) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      atomic([&](Tx& tx) { tm_add(tx, &counter, std::uint64_t{1}); });
    }
  });
  EXPECT_EQ(counter, kPerThread * kThreads);
}

TEST_P(StressAllConfigs, BankTransfersConserveMoney) {
  constexpr std::size_t kAccounts = 64;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<std::uint64_t> balance(kAccounts, kInitial);
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(1000 + static_cast<std::uint64_t>(tid));
    for (int i = 0; i < 20000; ++i) {
      const std::size_t from = rng.below(kAccounts);
      const std::size_t to = rng.below(kAccounts);
      const std::uint64_t amount = rng.below(10);
      atomic([&](Tx& tx) {
        const std::uint64_t b = tm_read(tx, &balance[from]);
        if (b >= amount) {
          tm_write(tx, &balance[from], b - amount);
          tm_add(tx, &balance[to], amount);
        }
      });
    }
  });
  const std::uint64_t total =
      std::accumulate(balance.begin(), balance.end(), std::uint64_t{0});
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_P(StressAllConfigs, ListLinearizableSetSemantics) {
  TxList<std::uint64_t> list;
  std::atomic<std::uint64_t> net_inserted{0};
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(7 + static_cast<std::uint64_t>(tid));
    std::uint64_t local_net = 0;
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t key = rng.below(128);
      bool did = false;
      if (rng.below(2) == 0) {
        atomic([&](Tx& tx) { did = list.insert(tx, key); });
        if (did) ++local_net;
      } else {
        atomic([&](Tx& tx) { did = list.remove(tx, key); });
        if (did) --local_net;
      }
    }
    net_inserted.fetch_add(local_net);
  });
  Tx& tx0 = current_tx();
  std::size_t final_size = 0;
  atomic([&](Tx& tx) { final_size = list.size(tx); });
  (void)tx0;
  EXPECT_EQ(final_size, net_inserted.load());
  // Sortedness survives.
  std::vector<std::uint64_t> seen;
  atomic([&](Tx& tx) {
    seen.clear();
    typename TxList<std::uint64_t>::Iterator it;
    list.iter_reset(tx, &it);
    while (list.iter_has_next(tx, &it)) seen.push_back(list.iter_next(tx, &it));
  });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), final_size);
}

TEST_P(StressAllConfigs, MapConcurrentInsertEraseFind) {
  TxMap<std::uint64_t, std::uint64_t> map;
  std::atomic<std::int64_t> net{0};
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(31 + static_cast<std::uint64_t>(tid));
    std::int64_t local = 0;
    for (int i = 0; i < 3000; ++i) {
      const std::uint64_t key = rng.below(512);
      const int op = static_cast<int>(rng.below(3));
      if (op == 0) {
        bool did = false;
        atomic([&](Tx& tx) { did = map.insert(tx, key, key * 2); });
        if (did) ++local;
      } else if (op == 1) {
        bool did = false;
        atomic([&](Tx& tx) { did = map.erase(tx, key); });
        if (did) --local;
      } else {
        std::uint64_t v = 0;
        bool found = false;
        atomic([&](Tx& tx) { found = map.find(tx, key, &v); });
        if (found) EXPECT_EQ(v, key * 2);
      }
    }
    net.fetch_add(local);
  });
  std::size_t size = 0;
  atomic([&](Tx& tx) { size = map.size(tx); });
  EXPECT_EQ(static_cast<std::int64_t>(size), net.load());
  std::vector<std::uint64_t> keys;
  map.for_each_sequential([&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), size);
}

TEST_P(StressAllConfigs, QueueNoLostOrDuplicatedItems) {
  TxQueue<std::uint64_t> queue;
  constexpr std::uint64_t kItems = 8000;
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  run_threads(kThreads, [&](int tid) {
    if (tid % 2 == 0) {  // producer
      for (;;) {
        const std::uint64_t v = produced.fetch_add(1);
        if (v >= kItems) break;
        atomic([&](Tx& tx) { queue.push(tx, v + 1); });
      }
    } else {  // consumer
      std::uint64_t local_sum = 0, local_count = 0;
      while (consumed_count.load() + local_count < kItems) {
        std::uint64_t v = 0;
        bool got = false;
        atomic([&](Tx& tx) { got = queue.pop(tx, &v); });
        if (got) {
          local_sum += v;
          ++local_count;
        } else if (produced.load() >= kItems) {
          // Producers done; drain once more then stop.
          atomic([&](Tx& tx) { got = queue.pop(tx, &v); });
          if (!got) break;
          local_sum += v;
          ++local_count;
        }
      }
      consumed_sum.fetch_add(local_sum);
      consumed_count.fetch_add(local_count);
    }
  });
  // Drain anything left.
  std::uint64_t v = 0;
  bool got = true;
  while (got) {
    atomic([&](Tx& tx) { got = queue.pop(tx, &v); });
    if (got) {
      consumed_sum.fetch_add(v);
      consumed_count.fetch_add(1);
    }
  }
  EXPECT_EQ(consumed_count.load(), kItems);
  EXPECT_EQ(consumed_sum.load(), kItems * (kItems + 1) / 2);
}

TEST_P(StressAllConfigs, BitmapEachBitClaimedOnce) {
  constexpr std::size_t kBits = 4096;
  TxBitmap bm(kBits);
  std::atomic<std::size_t> claims{0};
  run_threads(kThreads, [&](int tid) {
    Xoshiro256 rng(500 + static_cast<std::uint64_t>(tid));
    std::size_t local = 0;
    for (int i = 0; i < 20000; ++i) {
      const std::size_t bit = rng.below(kBits);
      bool won = false;
      atomic([&](Tx& tx) { won = bm.set(tx, bit); });
      if (won) ++local;
    }
    claims.fetch_add(local);
  });
  EXPECT_EQ(claims.load(), bm.count_sequential());
}

TEST_P(StressAllConfigs, AllocationHeavyTransactionsLeakNothingAcrossAborts) {
  // Transactions allocate scratch buffers, fill them (captured writes), then
  // publish a digest to a contended counter, forcing frequent aborts.
  alignas(64) std::uint64_t digest = 0;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < 3000; ++i) {
      atomic([&](Tx& tx) {
        auto* scratch = static_cast<std::uint64_t*>(tx_malloc(tx, 256));
        for (int j = 0; j < 32; ++j) {
          tm_write(tx, &scratch[j], std::uint64_t(j) * 3, kAutoSite);
        }
        std::uint64_t sum = 0;
        for (int j = 0; j < 32; ++j) sum += tm_read(tx, &scratch[j], kAutoSite);
        tx_free(tx, scratch);
        tm_add(tx, &digest, sum);
      });
    }
  });
  // 32 * (0+..+31*3) = 1488 per transaction.
  EXPECT_EQ(digest, std::uint64_t{1488} * 3000 * kThreads);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, StressAllConfigs,
                         ::testing::Range<std::size_t>(0,
                                                       stress_configs().size()),
                         [](const auto& info) { return stress_name(info.param); });

// ---------------------------------------------------------------------------
// Isolation-specific scenarios.
// ---------------------------------------------------------------------------

// Opacity smoke for elided writers: writers allocate a two-field node
// inside the transaction, initialize both fields with ELIDED stores (the
// captured fast path: plain stores, no orec acquisition, no undo log),
// then publish it with one full-barrier store. Concurrent read-only
// observers traverse to the node and must never see the two fields
// disagree — i.e. never observe a torn/partial initialization. This is
// the executable form of the analysis soundness argument: elision is only
// legal while the memory is unreachable from shared state, and the
// publishing store is what carries the isolation.
namespace {

/// Shared body of the torn-observer opacity checks: an elided writer
/// publishes two-field nodes, read-only observers must never see the
/// fields disagree. Parameterized over the full TxConfig so it can cross
/// both the elision axis and the contention-manager axis.
void expect_no_torn_observations(const TxConfig& cfg) {
  struct Node {
    std::uint64_t a;
    std::uint64_t b;
  };
  set_global_config(cfg);
  stats_reset();
  alignas(64) Node* slot = nullptr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> observed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::uint64_t ra = 0, rb = 0;
        bool got = false;
        atomic([&](Tx& tx) {
          Node* n = tm_read(tx, &slot);
          if (n != nullptr) {
            ra = tm_read(tx, &n->a);
            rb = tm_read(tx, &n->b);
            got = true;
          }
        });
        if (got) {
          observed.fetch_add(1);
          if (ra != rb) torn.fetch_add(1);
        }
      }
    });
  }
  // Publish at least 20000 nodes, then keep going until the observers
  // have demonstrably raced with us (the CI box has one core, so the
  // readers may only get scheduled once the writer yields).
  for (std::uint64_t i = 1; i <= 2000000; ++i) {
    atomic([&](Tx& tx) {
      Node* fresh = static_cast<Node*>(tx_malloc(tx, sizeof(Node)));
      // Elided initializing stores (captured memory, zero log probes
      // under the compiler config).
      tm_write(tx, &fresh->a, i, kAutoCapturedSite);
      tm_write(tx, &fresh->b, i, kAutoCapturedSite);
      Node* old = tm_read(tx, &slot);
      tm_write(tx, &slot, fresh);  // publication: full barrier
      if (old != nullptr) tx_free(tx, old);
    });
    if (i % 4096 == 0) {
      if (i >= 20000 && observed.load() >= 1000) break;
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(observed.load(), 0u);
  set_global_config(TxConfig::baseline());
}

}  // namespace

TEST(Isolation, ObserversNeverSeeTornStateFromElidedWriters) {
  const std::vector<TxConfig> writer_configs = {
      TxConfig::compiler(),                       // static elision
      TxConfig::runtime_w(AllocLogKind::kTree),   // runtime heap/stack elision
      TxConfig::runtime_rw(AllocLogKind::kFilter),
  };
  for (const TxConfig& cfg : writer_configs) expect_no_torn_observations(cfg);
}

// PR 4's opacity smoke re-run against the epoch-batched commit path: the
// readers' snapshots now come from the lazily published epoch and the
// writers stamp from reserved ranges, while conflicts are arbitrated by
// each contention manager in turn. The publish-before-release invariant
// (gclock.hpp) is exactly what makes the no-torn-state assertion hold
// here; a regression in it (or a CM that lets a doomed writer's partial
// state escape) trips this immediately.
TEST(Isolation, LazyClockObserversNeverSeeTornStateUnderAnyCM) {
  for (const ContentionPolicy cm :
       {ContentionPolicy::kBackoff, ContentionPolicy::kKarma,
        ContentionPolicy::kGreedy}) {
    SCOPED_TRACE(static_cast<int>(cm));
    expect_no_torn_observations(
        TxConfig::runtime_w(AllocLogKind::kTree).with_contention(cm));
  }
}

TEST(Isolation, NoDirtyReadsOfUncommittedState) {
  set_global_config(TxConfig::baseline());
  stats_reset();
  // Writer repeatedly sets (a, b) to equal values inside one transaction;
  // readers must never observe a != b.
  alignas(64) std::uint64_t a = 0;
  alignas(128) std::uint64_t b = 0;  // separate cache line => separate orec
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i < 30000; ++i) {
      atomic([&](Tx& tx) {
        tm_write(tx, &a, i);
        tm_write(tx, &b, i);
      });
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::uint64_t ra = 0, rb = 0;
        atomic([&](Tx& tx) {
          ra = tm_read(tx, &a);
          rb = tm_read(tx, &b);
        });
        if (ra != rb) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(Isolation, AbortedAllocationsNeverVisible) {
  set_global_config(TxConfig::runtime_w());
  stats_reset();
  // A pointer published only on commit: when the publishing write aborts,
  // the allocation must be rolled back and never observed.
  struct Box {
    std::uint64_t magic;
  };
  std::atomic<Box*> published{nullptr};
  alignas(64) std::uint64_t contended = 0;
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      atomic([&](Tx& tx) { tm_add(tx, &contended, std::uint64_t{1}); });
    }
  });
  for (int i = 0; i < 20000; ++i) {
    atomic([&](Tx& tx) {
      auto* box = static_cast<Box*>(tx_malloc(tx, sizeof(Box)));
      tm_write(tx, &box->magic, std::uint64_t{0xfeedface}, kAutoSite);
      tm_add(tx, &contended, std::uint64_t{1});  // contention source
      Box* expected = nullptr;
      // Publish transactionally via a plain slot.
      Box* cur = tm_read(tx, reinterpret_cast<Box**>(&published));
      if (cur == expected) {
        tm_write(tx, reinterpret_cast<Box**>(&published), box);
      } else {
        tx_free(tx, box);
      }
    });
    Box* seen = published.load();
    if (seen != nullptr) {
      EXPECT_EQ(seen->magic, 0xfeedfaceu);
      atomic([&](Tx& tx) {
        Box* cur = tm_read(tx, reinterpret_cast<Box**>(&published));
        tm_write(tx, reinterpret_cast<Box**>(&published),
                 static_cast<Box*>(nullptr));
        tx_free(tx, cur);
      });
    }
  }
  stop.store(true);
  churn.join();
  set_global_config(TxConfig::baseline());
}

}  // namespace
}  // namespace cstm
