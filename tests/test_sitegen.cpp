// Tests for the analysis→codegen bridge (src/txir/site_table.{hpp,cpp} +
// the txir_sitegen tool's contract):
//
//  * determinism: rendering the generated header twice is byte-identical,
//    and the emission order is the spec-table order (golden structure);
//  * staleness: the COMMITTED generated/site_verdicts.hpp matches a fresh
//    render — the same gate `txir_sitegen --check` / CI `codegen-drift`
//    enforce, here as a gtest so `ctest -L unit` catches drift too;
//  * fidelity: the Site constants the execution side actually binds (via
//    the generated header) carry exactly the verdicts the analysis
//    derives for their cited kernel evidence;
//  * negative: a corpus verdict change (or a hand edit of the generated
//    file) flips the gate red — diff_lines pinpoints the moved constant;
//  * spec-table validation: evidence rows naming nonexistent kernels or
//    site labels are reported, never silently resolved to kUnknown.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "containers/containers.hpp"
#include "stamp/vacation/vacation.hpp"
#include "txir/capture_analysis.hpp"
#include "txir/kernels.hpp"
#include "txir/site_table.hpp"

namespace cstm::txir {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Determinism / golden structure.
// ---------------------------------------------------------------------------

TEST(SiteGen, RenderIsDeterministicAcrossReruns) {
  // Two fully independent pipeline runs (fresh Program builds, fresh
  // analyses) must agree byte for byte — the property the committed-header
  // workflow rests on.
  std::vector<std::string> errors1, errors2;
  const auto r1 = resolve_site_verdicts(stamp_kernels(), site_specs(),
                                        &errors1);
  const auto r2 = resolve_site_verdicts(stamp_kernels(), site_specs(),
                                        &errors2);
  EXPECT_TRUE(errors1.empty());
  EXPECT_TRUE(errors2.empty());
  EXPECT_EQ(render_site_verdicts_header(r1), render_site_verdicts_header(r2));
}

TEST(SiteGen, RenderEmitsEverySpecInTableOrder) {
  const auto specs = site_specs();
  const std::string header = render_site_verdicts_header();
  std::size_t cursor = 0;
  for (const SiteSpec& s : specs) {
    const std::string decl = "inline constexpr Site " + s.constant + "{\"" +
                             s.site_name + "\", ";
    const std::size_t pos = header.find(decl, cursor);
    ASSERT_NE(pos, std::string::npos)
        << s.ns << "::" << s.constant << " missing or out of order";
    cursor = pos + decl.size();
  }
  // Every namespace opens exactly once (grouped emission, no split
  // namespace blocks that would make ordering ambiguous).
  std::set<std::string> seen;
  for (const SiteSpec& s : specs) {
    if (!seen.insert(s.ns).second) continue;
    const std::string open = "namespace " + s.ns + " {";
    const std::size_t first = header.find(open);
    ASSERT_NE(first, std::string::npos) << s.ns;
    EXPECT_EQ(header.find(open, first + 1), std::string::npos)
        << s.ns << " opens more than once";
  }
}

TEST(SiteGen, HeaderCarriesTheCorpusPrecisionTable) {
  // The per-kernel report rides along as a comment so that ANY analysis
  // precision movement — not just a verdict flip — shows up in the drift
  // diff and forces a deliberate regeneration.
  const std::string header = render_site_verdicts_header();
  std::istringstream table(kernel_report_table());
  std::string line;
  while (std::getline(table, line)) {
    EXPECT_NE(header.find(line), std::string::npos)
        << "report line missing from header comment: " << line;
  }
}

// ---------------------------------------------------------------------------
// The staleness gate, as a unit test against the committed file.
// ---------------------------------------------------------------------------

TEST(SiteGen, CommittedHeaderIsFresh) {
  const std::string committed =
      read_file(std::string(CSTM_SOURCE_DIR) + "/generated/site_verdicts.hpp");
  const std::string fresh = render_site_verdicts_header();
  const auto diff = diff_lines(fresh, committed);
  EXPECT_TRUE(diff.empty())
      << "generated/site_verdicts.hpp is stale; regenerate with\n"
         "  cmake --build build --target sitegen\n"
         "first drift line: "
      << (diff.empty() ? "" : diff.front());
}

// ---------------------------------------------------------------------------
// Fidelity: the bound Sites == the analysis, through the generated header.
// ---------------------------------------------------------------------------

TEST(SiteGen, BoundSiteConstantsMatchTheirCitedEvidence) {
  // For every evidence-backed spec, the verdict in the generated header
  // (which the execution side includes) is the analysis verdict of the
  // cited kernel site. This subsumes the old hand-maintained cross-check:
  // it now covers EVERY row, not a sampled few.
  const Program p = stamp_kernels();
  std::vector<std::string> errors;
  const auto resolved = resolve_site_verdicts(p, site_specs(), &errors);
  ASSERT_TRUE(errors.empty()) << errors.front();
  std::size_t evidence_rows = 0;
  for (const ResolvedSite& r : resolved) {
    if (r.spec.entry.empty()) {
      EXPECT_EQ(r.verdict, Verdict::kUnknown)
          << r.spec.ns << "::" << r.spec.constant
          << ": no evidence must mean conservative unknown";
      continue;
    }
    ++evidence_rows;
    const AnalysisResult a = analyze(p, r.spec.entry, 2);
    EXPECT_EQ(r.verdict, a.site_verdict(r.spec.kernel_site))
        << r.spec.ns << "::" << r.spec.constant;
  }
  EXPECT_GE(evidence_rows, 14u)
      << "the corpus should back a healthy share of the site inventory";
}

TEST(SiteGen, GeneratedVerdictsAreLiveInTheIncludedConstants) {
  // Spot-check through the actual included header (not the renderer): the
  // constants the containers/apps bind carry the analysis verdicts.
  EXPECT_EQ(list_sites::kIter.verdict, Verdict::kStack);
  EXPECT_FALSE(list_sites::kIter.manual);
  EXPECT_EQ(stamp::vacation_sites::kQueryVec.verdict, Verdict::kPrivate);
  EXPECT_FALSE(stamp::vacation_sites::kQueryVec.manual);
  EXPECT_EQ(stamp::bayes_sites::kQueryVec.verdict, Verdict::kPrivate);
  EXPECT_EQ(stamp::kmeans_sites::kAccum.verdict, Verdict::kUnknown);
  EXPECT_TRUE(stamp::kmeans_sites::kAccum.manual);
  EXPECT_EQ(map_sites::kRoot.verdict, Verdict::kUnknown);
  EXPECT_STREQ(map_sites::kRoot.name, "map.root");
}

TEST(SiteGen, CorpusElisionDoesNotRegress) {
  // The number the generated header ships: at least half of the corpus'
  // unique sites stay proven (the ISSUE-10 acceptance floor, up from the
  // pre-CFG pipeline's 49.2% access-level ratio).
  std::size_t sites = 0, proven = 0;
  for (const KernelReport& r : stamp_kernel_reports()) {
    sites += r.stats.sites_total;
    proven += r.stats.proven;
  }
  ASSERT_GT(sites, 0u);
  EXPECT_GE(100.0 * static_cast<double>(proven) / static_cast<double>(sites),
            50.0);
}

// ---------------------------------------------------------------------------
// Negative: drift flips the gate red.
// ---------------------------------------------------------------------------

TEST(SiteGen, HandEditedHeaderIsFlaggedWithTheExactLine) {
  const std::string fresh = render_site_verdicts_header();
  // Simulate the classic hand edit: flipping the iterator verdict back to
  // unknown (as if someone "fixed" the generated file instead of the
  // corpus).
  const std::string needle =
      "inline constexpr Site kIter{\"list.iter\", false, Verdict::kStack};";
  const std::size_t pos = fresh.find(needle);
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = fresh;
  tampered.replace(pos, needle.size(),
                   "inline constexpr Site kIter{\"list.iter\", false, "
                   "Verdict::kUnknown};");
  const auto diff = diff_lines(fresh, tampered);
  ASSERT_FALSE(diff.empty());
  bool names_the_site = false;
  for (const std::string& line : diff) {
    names_the_site = names_the_site ||
                     line.find("list.iter") != std::string::npos;
  }
  EXPECT_TRUE(names_the_site) << "drift diff must pinpoint the edited Site";
}

TEST(SiteGen, CorpusVerdictChangeFlipsTheGateRed) {
  // The other drift direction: the ANALYSIS moves (here simulated by
  // rebinding a spec's evidence to a site the analysis proves captured)
  // while the committed header stays put. The gate must go red and the
  // diff must show the verdict transition.
  const Program p = stamp_kernels();
  std::vector<SiteSpec> specs = site_specs();
  auto it = std::find_if(specs.begin(), specs.end(), [](const SiteSpec& s) {
    return s.ns == "stamp::kmeans_sites" && s.constant == "kAccum";
  });
  ASSERT_NE(it, specs.end());
  it->entry = "list_insert";
  it->kernel_site = "list.node.init.value";  // analysis: kCaptured

  std::vector<std::string> errors;
  const auto drifted = resolve_site_verdicts(p, specs, &errors);
  ASSERT_TRUE(errors.empty()) << errors.front();
  const std::string drifted_header = render_site_verdicts_header(drifted);
  const std::string committed = render_site_verdicts_header();

  const auto diff = diff_lines(drifted_header, committed);
  ASSERT_FALSE(diff.empty()) << "a corpus verdict change must be drift";
  bool shows_new = false, shows_old = false;
  for (const std::string& line : diff) {
    if (line.find("kmeans.accum") == std::string::npos) continue;
    shows_new = shows_new || (line[0] == '-' &&
                              line.find("Verdict::kCaptured") !=
                                  std::string::npos);
    shows_old = shows_old || (line[0] == '+' &&
                              line.find("Verdict::kUnknown") !=
                                  std::string::npos);
  }
  EXPECT_TRUE(shows_new) << "diff must show the regenerated verdict";
  EXPECT_TRUE(shows_old) << "diff must show the stale committed verdict";
}

TEST(SiteGen, DiffOfIdenticalTextsIsEmpty) {
  const std::string header = render_site_verdicts_header();
  EXPECT_TRUE(diff_lines(header, header).empty());
}

// ---------------------------------------------------------------------------
// Spec-table validation: typos fail loudly, never silently conservative.
// ---------------------------------------------------------------------------

TEST(SiteGen, UnknownEvidenceEntryIsReported) {
  std::vector<SiteSpec> specs = site_specs();
  specs.front().entry = "no_such_kernel";
  specs.front().kernel_site = "nope";
  std::vector<std::string> errors;
  (void)resolve_site_verdicts(stamp_kernels(), specs, &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("no_such_kernel"), std::string::npos);
}

TEST(SiteGen, UnknownEvidenceSiteLabelIsReported) {
  std::vector<SiteSpec> specs = site_specs();
  specs.front().entry = "iter_loop";
  specs.front().kernel_site = "iter.typo";
  std::vector<std::string> errors;
  (void)resolve_site_verdicts(stamp_kernels(), specs, &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("iter.typo"), std::string::npos);
  EXPECT_NE(errors.front().find("iter_loop"), std::string::npos);
}

TEST(SiteGen, CanonicalSpecTableValidates) {
  std::vector<std::string> errors;
  (void)resolve_site_verdicts(stamp_kernels(), site_specs(), &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
}

}  // namespace
}  // namespace cstm::txir
