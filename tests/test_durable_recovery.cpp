// Crash-injection recovery harness: for EVERY step of the durable commit
// sequence (the CrashPoint enumeration), fork a child that _exit()s at
// exactly that step mid-transaction, then reopen the heap in the parent
// and check the recovered state. The invariant under test:
//
//   crash strictly before CrashPoint::kAfterCommitRecordFlush
//       -> recovery yields the full PRE-transaction state
//   crash at kAfterCommitRecordFlush (the commit point) or later
//       -> recovery yields the full POST-transaction state
//
// and never a torn mix. The fork gives a faithful simulated power cut:
// pwb() bytes live in the MAP_SHARED mapping the parent also sees; the
// child's volatile working copy dies with it.
//
// Digests are reachability-based — the bump cursor, the root slots, and
// the blocks that root slots 0/1 point at — so write-back garbage in
// unreachable free space (e.g. a captured block persisted ahead of a
// commit record that never landed) is correctly invisible.
//
// Three victim shapes cover the machinery: a single mixed transaction
// (captured alloc + non-captured region stores), a transaction with a
// nested partial abort (the aborted level's stores and allocation must not
// be in the recovered state on either side of the commit point), and a
// txbatch merged batch with one compensated op. A fourth scenario crashes
// the SECOND of two transactions to prove single-slot log reuse: the
// first transaction's stale-but-valid record must never replay over the
// watermark.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "durable/durable_heap.hpp"
#include "durable/pwb.hpp"
#include "stm/stm.hpp"

namespace cstm {
namespace {

// -- Crash hook (child side) --------------------------------------------------

dur::CrashPoint g_target = dur::CrashPoint::kCount;
int g_remaining = 0;  // occurrences of g_target to let pass before dying

void crash_hook(dur::CrashPoint p) {
  if (p == g_target && g_remaining-- == 0) ::_exit(42);
}

// -- Workloads ----------------------------------------------------------------
// Slot convention (digest relies on it): slots 0 and 1 hold offsets of
// 64-byte blocks when nonzero; slots 2..5 hold plain values.

constexpr AllocLogKind kLog = AllocLogKind::kTree;

void setup(const std::string& path) {
  dur::DurableHeap heap;
  ASSERT_TRUE(heap.open(path));
  heap.activate();
  set_global_config(TxConfig::durable_rw(kLog));
  atomic([&](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(heap.alloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &p[i], std::uint64_t(0xA00 + i), kAutoSite);
    }
    tm_write(tx, heap.root_slot(0), heap.offset_of(p));
    tm_write(tx, heap.root_slot(2), std::uint64_t{1000});
    tm_write(tx, heap.root_slot(3), std::uint64_t{1001});
  });
  heap.deactivate();
  heap.close();
  set_global_config(TxConfig::baseline());
}

// Mixed single transaction: redo-logged stores into the setup block (not
// captured — allocated by an earlier transaction) plus a captured fresh
// allocation published through a redo-logged root store.
void victim_single(dur::DurableHeap& heap) {
  atomic([&](Tx& tx) {
    auto* old_block = static_cast<std::uint64_t*>(
        heap.at(tm_read(tx, heap.root_slot(0))));
    for (int i = 0; i < 4; ++i) {
      tm_write(tx, &old_block[i], std::uint64_t(0xB00 + i));
    }
    auto* p = static_cast<std::uint64_t*>(heap.alloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &p[i], std::uint64_t(0xC00 + i), kAutoSite);
    }
    tm_write(tx, heap.root_slot(1), heap.offset_of(p));
    tm_write(tx, heap.root_slot(2), std::uint64_t{2000});
  });
}

// Nested partial abort inside the durable transaction: the aborted level's
// root store and allocation must be absent from the recovered state on
// BOTH sides of the commit point.
void victim_nested(dur::DurableHeap& heap) {
  atomic([&](Tx& tx) {
    tm_write(tx, heap.root_slot(2), std::uint64_t{3000});
    atomic([&](Tx& inner) {
      tm_write(inner, heap.root_slot(3), std::uint64_t{0xDEAD});
      (void)heap.alloc(inner, 64);
      abort_tx();
    });
    tm_write(tx, heap.root_slot(3), std::uint64_t{4000});
    auto* p = static_cast<std::uint64_t*>(heap.alloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &p[i], std::uint64_t(0xD00 + i), kAutoSite);
    }
    tm_write(tx, heap.root_slot(1), heap.offset_of(p));
  });
}

// txbatch merged batch: four ops in one top-level durable commit, the
// third compensated by per-op abort — its store must never persist while
// its siblings' all do.
void victim_batch(dur::DurableHeap& heap) {
  txbatch::BatcherOptions opts;
  opts.max_batch = 4;
  txbatch::Batcher batcher(opts);
  batcher.enqueue([&heap](Tx& tx) {
    tm_write(tx, heap.root_slot(2), std::uint64_t{5000});
  });
  batcher.enqueue([&heap](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(heap.alloc(tx, 64));
    for (int i = 0; i < 8; ++i) {
      tm_write(tx, &p[i], std::uint64_t(0xE00 + i), kAutoSite);
    }
    tm_write(tx, heap.root_slot(1), heap.offset_of(p));
  });
  batcher.enqueue([&heap](Tx& tx) {
    tm_write(tx, heap.root_slot(3), std::uint64_t{0xDEAD});
    abort_tx();  // compensated: fails alone, siblings commit
  });
  batcher.enqueue([&heap](Tx& tx) {
    auto* old_block = static_cast<std::uint64_t*>(
        heap.at(tm_read(tx, heap.root_slot(0))));
    tm_write(tx, &old_block[0], std::uint64_t{0xF00});
  });
  batcher.drain();
}

// Second transaction for the log-slot-reuse scenario.
void victim_second(dur::DurableHeap& heap) {
  atomic([&](Tx& tx) {
    tm_write(tx, heap.root_slot(4), std::uint64_t{7777});
  });
}

enum Kind { kSingle = 0, kNested, kBatch, kReuse };

void run_victim(dur::DurableHeap& heap, Kind kind) {
  switch (kind) {
    case kSingle: victim_single(heap); break;
    case kNested: victim_nested(heap); break;
    case kBatch: victim_batch(heap); break;
    case kReuse:
      victim_single(heap);
      victim_second(heap);
      break;
  }
}

// -- Digest (parent side) -----------------------------------------------------

std::uint64_t digest(const std::string& path) {
  dur::DurableHeap heap;
  if (!heap.open(path)) return 0;
  std::uint64_t d = 14695981039346656037ull;
  auto mix = [&d](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      d ^= b[i];
      d *= 1099511628211ull;
    }
  };
  mix(heap.at(0), 8);  // bump cursor
  for (std::size_t i = 0; i < dur::DurableHeap::kRootSlots; ++i) {
    mix(heap.root_slot(i), 8);
  }
  for (std::size_t i = 0; i < 2; ++i) {  // slots 0/1: reachable blocks
    const std::uint64_t off = *heap.root_slot(i);
    if (off != 0) mix(heap.at(off), 64);
  }
  heap.close();
  return d;
}

// -- Harness ------------------------------------------------------------------

std::string scratch_path(const char* tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/cstm_crash_" +
         tag + "_" + std::to_string(::getpid()) + ".heap";
}

// Reference digest: setup plus @p txs uncrashed victim transactions.
std::uint64_t reference_digest(const char* tag, Kind kind, int txs) {
  const std::string path = scratch_path(tag);
  std::remove(path.c_str());
  setup(path);
  if (txs > 0) {
    dur::DurableHeap heap;
    EXPECT_TRUE(heap.open(path));
    heap.activate();
    set_global_config(TxConfig::durable_rw(kLog));
    if (kind == kReuse && txs == 1) {
      victim_single(heap);
    } else {
      run_victim(heap, kind);
    }
    heap.deactivate();
    heap.close();
    set_global_config(TxConfig::baseline());
  }
  const std::uint64_t d = digest(path);
  std::remove(path.c_str());
  return d;
}

[[noreturn]] void child_main(const std::string& path, Kind kind,
                             dur::CrashPoint target, int skip) {
  dur::DurableHeap heap;
  if (!heap.open(path)) ::_exit(3);
  heap.activate();
  set_global_config(TxConfig::durable_rw(kLog));
  g_target = target;
  g_remaining = skip;
  dur::set_crash_hook(&crash_hook);
  run_victim(heap, kind);
  ::_exit(0);  // target point never fired — the parent flags this
}

// Forks a child that crashes at occurrence @p skip of @p target inside the
// victim, waits for it, and returns the recovered digest.
std::uint64_t crash_and_recover(const std::string& path, Kind kind,
                                dur::CrashPoint target, int skip) {
  const pid_t pid = ::fork();
  if (pid == 0) child_main(path, kind, target, skip);
  EXPECT_GT(pid, 0);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42)
      << "child did not crash at " << dur::crash_point_name(target);
  return digest(path);
}

class DurableRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    set_global_config(TxConfig::baseline());
    stats_reset();
  }
  void TearDown() override {
    if (dur::DurableHeap::active() != nullptr) {
      dur::DurableHeap::active()->deactivate();
    }
    set_global_config(TxConfig::baseline());
  }

  // Every crash point, one fresh heap each: pre-state before the commit
  // point, post-state at and after it, never a torn mix.
  void run_all_points(const char* tag, Kind kind, int skip,
                      std::uint64_t d_pre, std::uint64_t d_post) {
    for (int i = 0; i < static_cast<int>(dur::CrashPoint::kCount); ++i) {
      const auto point = static_cast<dur::CrashPoint>(i);
      const std::string path = scratch_path(tag);
      std::remove(path.c_str());
      setup(path);
      const std::uint64_t d = crash_and_recover(path, kind, point, skip);
      const bool committed = point >= dur::CrashPoint::kAfterCommitRecordFlush;
      EXPECT_EQ(d, committed ? d_post : d_pre)
          << tag << " crashed at " << dur::crash_point_name(point)
          << ": recovered state is neither clean pre nor clean post";
      std::remove(path.c_str());
    }
  }
};

TEST_F(DurableRecovery, SingleTransactionAtomicAtEveryCrashPoint) {
  const std::uint64_t d_pre = reference_digest("single_pre", kSingle, 0);
  const std::uint64_t d_post = reference_digest("single_post", kSingle, 1);
  ASSERT_NE(d_pre, d_post);  // the victim must actually change reachable state
  run_all_points("single", kSingle, 0, d_pre, d_post);
}

TEST_F(DurableRecovery, NestedPartialAbortAtomicAtEveryCrashPoint) {
  const std::uint64_t d_pre = reference_digest("nested_pre", kNested, 0);
  const std::uint64_t d_post = reference_digest("nested_post", kNested, 1);
  ASSERT_NE(d_pre, d_post);
  run_all_points("nested", kNested, 0, d_pre, d_post);
}

TEST_F(DurableRecovery, MergedBatchAtomicAtEveryCrashPoint) {
  const std::uint64_t d_pre = reference_digest("batch_pre", kBatch, 0);
  const std::uint64_t d_post = reference_digest("batch_post", kBatch, 1);
  ASSERT_NE(d_pre, d_post);
  run_all_points("batch", kBatch, 0, d_pre, d_post);
}

TEST_F(DurableRecovery, SingleSlotLogReuseNeverReplaysStaleRecord) {
  // Crash the SECOND transaction at every point (skip=1 lets the first
  // commit pass each point once). Before the second commit point the
  // recovered state must be exactly post-tx1 — in particular at
  // kBeforeCommit, where the log slot still holds tx1's complete, valid
  // record and only the applied-seq watermark stops a double replay.
  const std::uint64_t d_tx1 = reference_digest("reuse_tx1", kReuse, 1);
  const std::uint64_t d_tx2 = reference_digest("reuse_tx2", kReuse, 2);
  ASSERT_NE(d_tx1, d_tx2);
  run_all_points("reuse", kReuse, 1, d_tx1, d_tx2);
}

}  // namespace
}  // namespace cstm
