// Integration tests: every STAMP application must run to completion and
// pass its own verification, sequentially and with threads, under baseline
// and under the optimization configurations. A failed verification aborts
// the process (run_app enforces it), so these tests double as end-to-end
// correctness checks of the whole stack: STM + capture analysis + allocator
// + containers + application logic.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "stamp/app.hpp"
#include "stm/stm.hpp"

namespace cstm {
namespace {

struct Case {
  std::string app;
  int threads;
  const char* cfg_name;
  TxConfig cfg;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  const std::vector<std::pair<const char*, TxConfig>> cfgs = {
      {"baseline", TxConfig::baseline()},
      {"rt_rw_tree", TxConfig::runtime_rw(AllocLogKind::kTree)},
      {"rt_rw_array", TxConfig::runtime_rw(AllocLogKind::kArray)},
      {"rt_rw_filter", TxConfig::runtime_rw(AllocLogKind::kFilter)},
      {"rt_rw_adaptive", TxConfig::runtime_rw(AllocLogKind::kAdaptive)},
      {"compiler", TxConfig::compiler()},
      {"counting", TxConfig::counting()},
  };
  for (const auto& app : stamp::app_names()) {
    for (const auto& [cfg_name, cfg] : cfgs) {
      out.push_back(Case{app, 1, cfg_name, cfg});
      out.push_back(Case{app, 4, cfg_name, cfg});
    }
  }
  return out;
}

class StampApps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StampApps, RunsAndVerifies) {
  const Case c = cases()[GetParam()];
  harness::Options opt;
  opt.scale = 0.05;  // tiny inputs: this is a correctness test, not a bench
  opt.reps = 1;
  const harness::RunResult res = harness::run_once(c.app, c.threads, c.cfg, opt);
  EXPECT_GT(res.stats.commits, 0u) << c.app;
  // verify() already ran inside run_app (aborts on failure).
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllConfigs, StampApps,
                         ::testing::Range<std::size_t>(0, cases().size()),
                         [](const auto& info) {
                           const Case c = cases()[info.param];
                           std::string name = c.app + "_" + c.cfg_name + "_t" +
                                              std::to_string(c.threads);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// The barrier profiles the paper reports must show up in our apps.
TEST(StampProfiles, VacationHasCapturedWritesAndStackIterators) {
  harness::Options opt;
  opt.scale = 0.05;
  const auto res =
      harness::run_once("vacation-high", 1, TxConfig::counting(), opt);
  const TxStats& s = res.stats;
  EXPECT_GT(s.write_cap_heap, 0u);    // map/list node inits
  EXPECT_GT(s.write_cap_stack, 0u);   // iterators on tx-local stack
  EXPECT_GT(s.read_required, 0u);     // shared tree traversals
}

TEST(StampProfiles, KmeansHasNoCaptureOpportunity) {
  harness::Options opt;
  opt.scale = 0.05;
  const auto res = harness::run_once("kmeans-high", 1, TxConfig::counting(), opt);
  const TxStats& s = res.stats;
  EXPECT_EQ(s.write_cap_heap, 0u);
  EXPECT_EQ(s.write_cap_stack, 0u);
  EXPECT_EQ(s.read_cap_heap, 0u);
}

TEST(StampProfiles, LabyrinthHasNoRedundantBarriers) {
  harness::Options opt;
  opt.scale = 0.05;
  const auto res = harness::run_once("labyrinth", 1, TxConfig::counting(), opt);
  const TxStats& s = res.stats;
  EXPECT_EQ(s.read_cap_heap + s.read_cap_stack + s.read_not_required, 0u);
  EXPECT_EQ(s.write_cap_heap + s.write_cap_stack + s.write_not_required, 0u);
}

TEST(StampProfiles, YadaIsWriteAndAllocationHeavy) {
  harness::Options opt;
  opt.scale = 0.05;
  const auto res = harness::run_once("yada", 1, TxConfig::counting(), opt);
  const TxStats& s = res.stats;
  EXPECT_GT(s.tx_allocs, 0u);
  EXPECT_GT(s.write_cap_heap, 0u);
}

TEST(StampProfiles, BayesUsesAnnotatedPrivateMemory) {
  harness::Options opt;
  opt.scale = 0.05;
  const auto res = harness::run_once("bayes", 1, TxConfig::runtime_rw(), opt);
  const TxStats& s = res.stats;
  EXPECT_GT(s.write_elided_private + s.read_elided_private, 0u);
}

TEST(StampProfiles, VacationCompilerElidesStatically) {
  harness::Options opt;
  opt.scale = 0.05;
  const auto res = harness::run_once("vacation-low", 1, TxConfig::compiler(), opt);
  const TxStats& s = res.stats;
  EXPECT_GT(s.write_elided_static, 0u);
}

}  // namespace
}  // namespace cstm
