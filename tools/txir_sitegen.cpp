// txir_sitegen: the analysis→codegen bridge tool.
//
// Runs the flow-sensitive capture analysis (inline depth 2) over the
// kernel corpus and renders generated/site_verdicts.hpp — the single
// source of truth for the Site verdicts src/containers/ and src/stamp/
// bind into their typed fields. See src/txir/site_table.{hpp,cpp} for the
// spec table and the emitter; this file is only the CLI.
//
// Modes:
//   txir_sitegen                      render the header to stdout
//   txir_sitegen --out PATH           write the header to PATH
//   txir_sitegen --check PATH         staleness gate: exit 1 + drift diff
//                                     when PATH differs from a fresh render
//   txir_sitegen --report             print the per-kernel precision table
//   txir_sitegen --list               print the resolved verdict table
//
// Exit codes: 0 ok / fresh, 1 stale (--check), 2 usage or I/O or an
// invalid spec table (evidence naming a kernel site that does not exist).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "txir/kernels.hpp"
#include "txir/site_table.hpp"

namespace {

using cstm::verdict_name;
using namespace cstm::txir;

int usage() {
  std::fprintf(stderr,
               "usage: txir_sitegen [--out PATH | --check PATH | --report |"
               " --list]\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Renders the canonical header, failing loudly (exit 2) on an invalid
/// spec table instead of emitting silently-conservative verdicts.
bool render_checked(std::string* header) {
  std::vector<std::string> errors;
  const std::vector<ResolvedSite> resolved = resolve_site_verdicts(&errors);
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "txir_sitegen: spec table error: %s\n", e.c_str());
    }
    return false;
  }
  *header = render_site_verdicts_header(resolved);
  return true;
}

int run_check(const std::string& path) {
  std::string fresh;
  if (!render_checked(&fresh)) return 2;
  std::string committed;
  if (!read_file(path, &committed)) {
    std::fprintf(stderr,
                 "txir_sitegen: --check: cannot read '%s' — generate it "
                 "first with --out\n",
                 path.c_str());
    return 1;
  }
  const std::vector<std::string> diff = diff_lines(fresh, committed);
  if (diff.empty()) {
    std::printf("txir_sitegen: %s is up to date with the kernel corpus\n",
                path.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "txir_sitegen: STALE generated header: %s\n"
               "txir_sitegen: drift vs a fresh render "
               "(-: regenerated, +: committed):\n",
               path.c_str());
  for (const std::string& line : diff) {
    std::fprintf(stderr, "  %s\n", line.c_str());
  }
  std::fprintf(stderr,
               "txir_sitegen: the analysis, the kernel corpus, and the "
               "committed Site\n"
               "txir_sitegen: verdict table have drifted apart. "
               "Regenerate and commit:\n"
               "txir_sitegen:   cmake --build build --target sitegen\n");
  return 1;
}

int run_out(const std::string& path) {
  std::string fresh;
  if (!render_checked(&fresh)) return 2;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "txir_sitegen: cannot write '%s'\n", path.c_str());
    return 2;
  }
  out << fresh;
  out.close();
  if (!out) {
    std::fprintf(stderr, "txir_sitegen: write to '%s' failed\n",
                 path.c_str());
    return 2;
  }
  std::printf("txir_sitegen: wrote %s (%zu bytes)\n", path.c_str(),
              fresh.size());
  return 0;
}

int run_list() {
  std::vector<std::string> errors;
  const std::vector<ResolvedSite> resolved = resolve_site_verdicts(&errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "txir_sitegen: spec table error: %s\n", e.c_str());
  }
  std::printf("%-38s %-22s %-7s %-9s %s\n", "constant", "site", "manual",
              "verdict", "evidence");
  for (const ResolvedSite& r : resolved) {
    const std::string constant = r.spec.ns + "::" + r.spec.constant;
    const std::string evidence =
        r.spec.entry.empty() ? "(none)"
                             : r.spec.entry + " : " + r.spec.kernel_site;
    std::printf("%-38s %-22s %-7s %-9s %s\n", constant.c_str(),
                r.spec.site_name.c_str(), r.spec.manual ? "true" : "false",
                verdict_name(r.verdict), evidence.c_str());
  }
  return errors.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::string fresh;
    if (!render_checked(&fresh)) return 2;
    std::fputs(fresh.c_str(), stdout);
    return 0;
  }
  const std::string mode = argv[1];
  if (mode == "--report" && argc == 2) {
    std::fputs(kernel_report_table().c_str(), stdout);
    return 0;
  }
  if (mode == "--list" && argc == 2) return run_list();
  if (mode == "--out" && argc == 3) return run_out(argv[2]);
  if (mode == "--check" && argc == 3) return run_check(argv[2]);
  return usage();
}
