// Quickstart: the capstm API in one file.
//
//   cmake --build build --target example_quickstart && ./build/example_quickstart
//
// Demonstrates: transactions, the typed transactional-object API
// (tvar/tfield, tx_new), transactional allocation, the optimization
// presets, and reading the elision statistics.
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

int main() {
  using namespace cstm;

  // Pick an optimization preset. runtime_w() enables the paper's runtime
  // capture analysis (stack + heap) in write barriers.
  set_global_config(TxConfig::runtime_w());
  stats_reset();

  // A shared counter and a shared linked structure head. tvar<T> binds the
  // barrier + Site decision to the field type; the default Site is the
  // hand-instrumented "shared" classification.
  struct Node {
    tfield<std::uint64_t> value;
    tfield<Node*> next;
  };
  alignas(64) tvar<std::uint64_t> total{0};
  tvar<Node*> head{nullptr};

  // Four threads transactionally push nodes and add to the counter.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        atomic([&](Tx& tx) {
          // Memory allocated inside the transaction is *captured*: the
          // initializing stores skip the STM barrier machinery entirely.
          auto* node = tx_new<Node>(tx);
          node->value.init(tx, std::uint64_t(t * 1000 + i));
          // Publishing the node touches shared memory: full barrier.
          node->next.set(tx, head.get(tx));
          head.set(tx, node);
          total.add(tx, 1);  // or: total(tx) += 1
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  std::size_t count = 0;
  for (Node* n = head.peek(); n != nullptr; n = n->next.peek()) ++count;

  const TxStats s = stats_snapshot();
  std::printf("nodes linked:       %zu (expected 4000)\n", count);
  std::printf("counter:            %llu\n",
              static_cast<unsigned long long>(total.peek()));
  std::printf("commits:            %llu\n", static_cast<unsigned long long>(s.commits));
  std::printf("aborts:             %llu\n", static_cast<unsigned long long>(s.aborts));
  std::printf("write barriers:     %llu\n", static_cast<unsigned long long>(s.writes));
  std::printf("  elided (heap):    %llu  <- captured allocations\n",
              static_cast<unsigned long long>(s.write_elided_heap));
  return total.peek() == 4000 && count == 4000 ? 0 : 1;
}
