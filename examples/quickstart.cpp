// Quickstart: the capstm API in one file.
//
//   cmake --build build --target quickstart && ./build/examples/quickstart
//
// Demonstrates: transactions, barriers, transactional allocation, the
// optimization presets, and reading the elision statistics.
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

int main() {
  using namespace cstm;

  // Pick an optimization preset. runtime_w() enables the paper's runtime
  // capture analysis (stack + heap) in write barriers.
  set_global_config(TxConfig::runtime_w());
  stats_reset();

  // A shared counter and a shared linked structure head.
  struct Node {
    std::uint64_t value;
    Node* next;
  };
  alignas(64) std::uint64_t total = 0;
  Node* head = nullptr;

  // Four threads transactionally push nodes and add to the counter.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        atomic([&](Tx& tx) {
          // Memory allocated inside the transaction is *captured*: these
          // initializing writes skip the STM barrier machinery entirely.
          auto* node = static_cast<Node*>(tx_malloc(tx, sizeof(Node)));
          tm_write(tx, &node->value, std::uint64_t(t * 1000 + i), kAutoSite);
          // Publishing the node touches shared memory: full barrier.
          tm_write(tx, &node->next, tm_read(tx, &head));
          tm_write(tx, &head, node);
          tm_add(tx, &total, std::uint64_t{1});
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  std::size_t count = 0;
  for (Node* n = head; n != nullptr; n = n->next) ++count;

  const TxStats s = stats_snapshot();
  std::printf("nodes linked:       %zu (expected 4000)\n", count);
  std::printf("counter:            %llu\n", static_cast<unsigned long long>(total));
  std::printf("commits:            %llu\n", static_cast<unsigned long long>(s.commits));
  std::printf("aborts:             %llu\n", static_cast<unsigned long long>(s.aborts));
  std::printf("write barriers:     %llu\n", static_cast<unsigned long long>(s.writes));
  std::printf("  elided (heap):    %llu  <- captured allocations\n",
              static_cast<unsigned long long>(s.write_elided_heap));
  return total == 4000 && count == 4000 ? 0 : 1;
}
