// Travel-booking scenario: drives the vacation benchmark's Manager-style
// data structures directly through the public API — ordered maps for
// inventory, a per-customer booking list, and tasks that reserve the
// best-priced available item, comparing the optimization presets.
#include <cstdio>
#include <thread>
#include <vector>

#include "containers/txlist.hpp"
#include "containers/txmap.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace {

using namespace cstm;

struct Room {
  tfield<std::uint64_t> free;
  tfield<std::uint64_t> price;
};

struct Hotel {
  TxMap<std::uint64_t, Room*> rooms;
  TxList<std::uint64_t> bookings{/*allow_duplicates=*/true};
};

double run_scenario(const char* label, const TxConfig& cfg) {
  set_global_config(cfg);
  stats_reset();

  Hotel hotel;
  Tx& setup_tx = current_tx();
  for (std::uint64_t id = 0; id < 512; ++id) {
    auto* room = static_cast<Room*>(Pool::local().allocate(sizeof(Room)));
    room->free.poke(4);
    room->price.poke(80 + id % 120);
    hotel.rooms.insert(setup_tx, id, room);
  }

  Timer timer;
  std::vector<std::thread> agents;
  for (int t = 0; t < 8; ++t) {
    agents.emplace_back([&, t] {
      Xoshiro256 rng(42 + static_cast<std::uint64_t>(t));
      for (int task = 0; task < 2000; ++task) {
        atomic([&](Tx& tx) {
          // Query three candidate rooms, book the cheapest available.
          std::uint64_t best_id = 0;
          std::uint64_t best_price = ~std::uint64_t{0};
          Room* best = nullptr;
          for (int q = 0; q < 3; ++q) {
            const std::uint64_t id = rng.below(512);
            Room* room = nullptr;
            if (!hotel.rooms.find(tx, id, &room)) continue;
            const std::uint64_t free = room->free.get(tx);
            const std::uint64_t price = room->price.get(tx);
            if (free > 0 && price < best_price) {
              best = room;
              best_id = id;
              best_price = price;
            }
          }
          if (best != nullptr) {
            best->free.add(tx, std::uint64_t{0} - 1);
            hotel.bookings.insert(tx, (best_id << 16) | best_price);
          }
        });
        // Occasionally release the oldest booking.
        if (task % 8 == 7) {
          atomic([&](Tx& tx) {
            typename TxList<std::uint64_t>::Iterator it;
            hotel.bookings.iter_reset(tx, &it);
            if (hotel.bookings.iter_has_next(tx, &it)) {
              const std::uint64_t b = hotel.bookings.iter_next(tx, &it);
              Room* room = nullptr;
              if (hotel.rooms.find(tx, b >> 16, &room)) {
                room->free.add(tx, 1);
              }
              hotel.bookings.remove(tx, b);
            }
          });
        }
      }
    });
  }
  for (auto& a : agents) a.join();
  const double seconds = timer.seconds();

  const TxStats s = stats_snapshot();
  std::printf("%-22s %.3fs  commits=%llu aborts=%llu elided W=%llu R=%llu\n",
              label, seconds, static_cast<unsigned long long>(s.commits),
              static_cast<unsigned long long>(s.aborts),
              static_cast<unsigned long long>(s.write_elided()),
              static_cast<unsigned long long>(s.read_elided()));

  hotel.rooms.for_each_sequential(
      [](std::uint64_t, Room* r) { Pool::deallocate(r); });
  return seconds;
}

}  // namespace

int main() {
  std::printf("travel booking, 8 agents x 2000 tasks, 512 rooms\n");
  run_scenario("baseline", TxConfig::baseline());
  run_scenario("runtime tree (W)", TxConfig::runtime_w(AllocLogKind::kTree));
  run_scenario("runtime array (W)", TxConfig::runtime_w(AllocLogKind::kArray));
  run_scenario("compiler", TxConfig::compiler());
  set_global_config(TxConfig::baseline());
  return 0;
}
