// Compiler capture analysis demo: builds the paper's Figure 1 code patterns
// in txir, runs the intraprocedural pointer analysis with and without
// inlining, and prints which STM barriers it removes.
#include <cstdio>

#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"
#include "txir/kernels.hpp"

int main() {
  using namespace cstm::txir;
  const Program program = stamp_kernels();

  std::printf("txir compiler capture analysis (paper Section 3.2)\n");
  std::printf("==================================================\n\n");

  const char* entries[] = {"list_insert", "iter_loop", "vacation_query",
                           "kmeans_update", "rbtree_insert"};
  for (const char* entry : entries) {
    for (const int depth : {0, 2}) {
      const AnalysisResult result = analyze(program, entry, depth);
      std::printf("%s (inline depth %d):\n", entry, depth);
      for (const BarrierDecision& b : result.barriers) {
        std::printf("  %-6s %-28s -> %s\n", b.is_store ? "store" : "load",
                    b.site.c_str(),
                    b.elidable ? "ELIDED (captured)" : "keep barrier");
      }
      std::printf("  summary: %zu/%zu loads, %zu/%zu stores elided\n\n",
                  result.elided(false), result.total(false),
                  result.elided(true), result.total(true));
    }
  }

  std::printf("IR of vacation_query after inlining the vector allocator:\n");
  const Function* f = program.find("vacation_query");
  std::printf("%s\n", to_string(inline_calls(program, *f, 2)).c_str());
  return 0;
}
