// Static capture analysis demo: builds the paper's Figure 1 code patterns
// (and the STAMP kernels that ride on them) in txir, runs the
// flow-sensitive interprocedural analysis with and without inlining, and
// prints the verdict of every STM barrier plus the per-kernel
// proven/demoted elision table the harness reports.
#include <cstdio>

#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"
#include "txir/kernels.hpp"

int main() {
  using namespace cstm::txir;
  const Program program = stamp_kernels();

  std::printf("txir static capture analysis (paper Section 3.2)\n");
  std::printf("================================================\n\n");

  const char* entries[] = {"list_insert", "iter_loop", "vacation_update_add",
                           "vacation_reserve", "genome_dedup_insert",
                           "vector_grow_push"};
  for (const char* entry : entries) {
    for (const int depth : {0, 2}) {
      const AnalysisResult result = analyze(program, entry, depth);
      std::printf("%s (inline depth %d):\n", entry, depth);
      for (const AccessVerdict& b : result.barriers) {
        std::printf("  %-6s %-28s -> %-8s%s\n", b.is_store ? "store" : "load",
                    b.site.c_str(), cstm::verdict_name(b.verdict),
                    b.elidable()   ? " (ELIDED)"
                    : b.demoted    ? " (demoted: keep barrier)"
                                   : " (keep barrier)");
      }
      std::printf("  summary: %zu/%zu loads, %zu/%zu stores elided\n\n",
                  result.elided(false), result.total(false),
                  result.elided(true), result.total(true));
    }
  }

  std::printf("per-kernel analysis precision (inline depth 2):\n%s\n",
              kernel_report_table().c_str());

  std::printf("IR of vector_grow_push after inlining the vector allocator:\n");
  const Function* f = program.find("vector_grow_push");
  std::printf("%s\n", to_string(inline_calls(program, *f, 2)).c_str());
  return 0;
}
