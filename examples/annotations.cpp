// Data annotations (paper Section 3.1.3, Figure 7): a thread declares
// address ranges thread-local or read-only with add_private_memory_block(),
// and the runtime elides STM barriers on them.
//
// The scenario mirrors the paper's motivating example: a lookup table is
// written during initialization (shared, read-write), then becomes
// read-only for a processing phase, then is re-partitioned per thread
// (thread-local) for a second phase. The table is a tvar_array bound to the
// compiler-added "auto" Site: the annotation checks, not the Site, decide
// what gets elided.
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

namespace {

constexpr std::size_t kTableSize = 1024;
alignas(64) cstm::tvar_array<std::uint64_t, kTableSize, cstm::kAutoSite>
    g_table;

}  // namespace

int main() {
  using namespace cstm;
  set_global_config(TxConfig::runtime_rw());  // annotation checks enabled
  stats_reset();

  // Phase 1: initialization — the table is shared read-write; all accesses
  // pay full barriers.
  atomic([](Tx& tx) {
    for (std::size_t i = 0; i < kTableSize; ++i) {
      g_table.set(tx, i, std::uint64_t(i * i));
    }
  });
  const TxStats after_init = stats_snapshot();

  // Phase 2: the table is now read-only. Each thread annotates it and reads
  // it barrier-free inside transactions.
  std::vector<std::thread> readers;
  alignas(64) tvar<std::uint64_t> checksum{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      add_private_memory_block(g_table.data(), g_table.size_bytes());
      std::uint64_t local = 0;
      atomic([&](Tx& tx) {
        local = 0;  // retry-safe
        for (std::size_t i = 0; i < kTableSize; ++i) {
          local += g_table.get(tx, i);
        }
      });
      atomic([&](Tx& tx) { checksum.add(tx, local); });
      remove_private_memory_block(g_table.data(), g_table.size_bytes());
    });
  }
  for (auto& th : readers) th.join();
  const TxStats after_read = stats_snapshot();

  // Phase 3: partition the table: each thread owns a disjoint slice
  // (thread-local claim) and updates it barrier-free.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      const std::size_t begin = static_cast<std::size_t>(t) * (kTableSize / 4);
      const std::size_t len = kTableSize / 4;
      add_private_memory_block(g_table.data() + begin,
                               len * sizeof(std::uint64_t));
      atomic([&](Tx& tx) {
        for (std::size_t i = begin; i < begin + len; ++i) {
          g_table.add(tx, i, 1);
        }
      });
      remove_private_memory_block(g_table.data() + begin,
                                  len * sizeof(std::uint64_t));
    });
  }
  for (auto& th : writers) th.join();
  const TxStats final_stats = stats_snapshot();

  std::printf("phase 1 (shared init):   %llu full write barriers\n",
              static_cast<unsigned long long>(after_init.writes -
                                              after_init.write_elided()));
  std::printf("phase 2 (read-only):     %llu reads elided via annotations\n",
              static_cast<unsigned long long>(after_read.read_elided_private));
  std::printf("phase 3 (thread-local):  %llu writes elided via annotations\n",
              static_cast<unsigned long long>(
                  final_stats.write_elided_private));
  std::printf("checksum: %llu\n",
              static_cast<unsigned long long>(checksum.peek()));

  // Sanity: phases 2 and 3 elided a meaningful share.
  return final_stats.read_elided_private > 0 &&
                 final_stats.write_elided_private > 0
             ? 0
             : 1;
}
