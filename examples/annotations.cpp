// Data annotations (paper Section 3.1.3, Figure 7): a thread declares
// address ranges thread-local or read-only with add_private_memory_block(),
// and the runtime elides STM barriers on them.
//
// The scenario mirrors the paper's motivating example: a lookup table is
// written during initialization (shared, read-write), then becomes
// read-only for a processing phase, then is re-partitioned per thread
// (thread-local) for a second phase.
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

namespace {

constexpr std::size_t kTableSize = 1024;
alignas(64) std::uint64_t g_table[kTableSize];

}  // namespace

int main() {
  using namespace cstm;
  set_global_config(TxConfig::runtime_rw());  // annotation checks enabled
  stats_reset();

  // Phase 1: initialization — the table is shared read-write; all accesses
  // pay full barriers.
  atomic([](Tx& tx) {
    for (std::size_t i = 0; i < kTableSize; ++i) {
      tm_write(tx, &g_table[i], std::uint64_t(i * i), kAutoSite);
    }
  });
  const TxStats after_init = stats_snapshot();

  // Phase 2: the table is now read-only. Each thread annotates it and reads
  // it barrier-free inside transactions.
  std::vector<std::thread> readers;
  alignas(64) std::uint64_t checksum = 0;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      add_private_memory_block(g_table, sizeof(g_table));  // read-only claim
      std::uint64_t local = 0;
      atomic([&](Tx& tx) {
        local = 0;  // retry-safe
        for (std::size_t i = 0; i < kTableSize; ++i) {
          local += tm_read(tx, &g_table[i], kAutoSite);
        }
      });
      atomic([&](Tx& tx) { tm_add(tx, &checksum, local); });
      remove_private_memory_block(g_table, sizeof(g_table));
    });
  }
  for (auto& th : readers) th.join();
  const TxStats after_read = stats_snapshot();

  // Phase 3: partition the table: each thread owns a disjoint slice
  // (thread-local claim) and updates it barrier-free.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      const std::size_t begin = static_cast<std::size_t>(t) * (kTableSize / 4);
      const std::size_t len = kTableSize / 4;
      add_private_memory_block(&g_table[begin], len * sizeof(std::uint64_t));
      atomic([&](Tx& tx) {
        for (std::size_t i = begin; i < begin + len; ++i) {
          tm_write(tx, &g_table[i], tm_read(tx, &g_table[i], kAutoSite) + 1,
                   kAutoSite);
        }
      });
      remove_private_memory_block(&g_table[begin],
                                  len * sizeof(std::uint64_t));
    });
  }
  for (auto& th : writers) th.join();
  const TxStats final_stats = stats_snapshot();

  std::printf("phase 1 (shared init):   %llu full write barriers\n",
              static_cast<unsigned long long>(after_init.writes -
                                              after_init.write_elided()));
  std::printf("phase 2 (read-only):     %llu reads elided via annotations\n",
              static_cast<unsigned long long>(after_read.read_elided_private));
  std::printf("phase 3 (thread-local):  %llu writes elided via annotations\n",
              static_cast<unsigned long long>(
                  final_stats.write_elided_private));
  std::printf("checksum: %llu\n", static_cast<unsigned long long>(checksum));

  // Sanity: phases 2 and 3 elided a meaningful share.
  return final_stats.read_elided_private > 0 &&
                 final_stats.write_elided_private > 0
             ? 0
             : 1;
}
