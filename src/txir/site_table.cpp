#include "txir/site_table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"

namespace cstm::txir {

namespace {

const char* verdict_enumerator(Verdict v) {
  switch (v) {
    case Verdict::kUnknown: return "Verdict::kUnknown";
    case Verdict::kCaptured: return "Verdict::kCaptured";
    case Verdict::kStack: return "Verdict::kStack";
    case Verdict::kStatic: return "Verdict::kStatic";
    case Verdict::kPrivate: return "Verdict::kPrivate";
  }
  return "Verdict::kUnknown";
}

}  // namespace

std::vector<SiteSpec> site_specs() {
  // Emission order is the determinism contract: container groups in
  // containers.hpp order, then the STAMP apps in src/stamp/ order.
  // Append new rows at the end of their group; never sort.
  return {
      // ---- containers/txlist.hpp -------------------------------------
      {"list_sites", "kValue", "list.value", true, "iter_loop",
       "iter.node.next",
       "Node payload: shared once linked; reached through loaded pointers."},
      {"list_sites", "kNext", "list.next", true, "iter_loop",
       "iter.node.next",
       "Link traversal (STAMP TM_SHARED_READ of node->next)."},
      {"list_sites", "kSize", "list.size", true, "", "",
       "List size header word: a shared counter."},
      {"list_sites", "kIter", "list.iter", false, "iter_loop", "iter.init",
       "Iterator state; sound only when the iterator is declared inside "
       "the atomic block (Figure 1(a))."},

      // ---- containers/txmap.hpp (treap) ------------------------------
      {"map_sites", "kKey", "map.key", true, "vacation_update_add",
       "vacation.tree.child.read",
       "Tree-node field reached through the shared root probe."},
      {"map_sites", "kValue", "map.value", true, "vacation_update_add",
       "vacation.tree.child.read",
       "Tree-node field reached through the shared root probe."},
      {"map_sites", "kPrio", "map.prio", true, "vacation_update_add",
       "vacation.tree.child.read",
       "Treap priority: node field, same access profile as key/value."},
      {"map_sites", "kChild", "map.child", true, "vacation_update_add",
       "vacation.tree.child.read",
       "Child links: structural writes/reads on the shared tree."},
      {"map_sites", "kRoot", "map.root", true, "vacation_update_add",
       "vacation.tree.root.read", "Root pointer in the shared map header."},
      {"map_sites", "kSize", "map.size", true, "", "",
       "Map size header word: a shared counter."},

      // ---- containers/txvector.hpp -----------------------------------
      {"vector_sites", "kData", "vector.data", true, "vector_grow_push",
       "vector.elem.store",
       "Element slot in the live backing store (the grow-copy into fresh "
       "memory routes through tspan::init instead)."},
      {"vector_sites", "kMeta", "vector.meta", true, "vector_grow_push",
       "vector.size.read", "size/capacity/data header words: shared."},

      // ---- containers/txhashtable.hpp --------------------------------
      {"hash_sites", "kKey", "hashtable.key", true, "genome_dedup_insert",
       "genome.chain.key.read",
       "Chain-node key probed during the bucket walk."},
      {"hash_sites", "kValue", "hashtable.value", true,
       "genome_dedup_insert", "genome.hit.bump",
       "Chain-node value: the hit-path bump targets a node reached "
       "through the shared chain."},
      {"hash_sites", "kNext", "hashtable.next", true, "genome_dedup_insert",
       "genome.chain.next.read",
       "Chain link followed around the bucket-walk loop."},
      {"hash_sites", "kBucket", "hashtable.bucket", true,
       "genome_dedup_insert", "genome.bucket.head.read",
       "Bucket head slot in the shared bucket array."},
      {"hash_sites", "kSize", "hashtable.size", true, "", "",
       "Table size header word: a shared counter."},

      // ---- containers/txbitmap.hpp -----------------------------------
      {"bitmap_sites", "kWord", "bitmap.word", true, "", "",
       "Pre-allocated shared word array (claim-exactly-once semantics): "
       "nothing to capture."},

      // ---- containers/txheap.hpp -------------------------------------
      {"heap_sites", "kData", "heap.data", true, "vector_grow_push",
       "vector.elem.store",
       "Array-backed heap: shares the vector's element-slot profile "
       "(grow-copy goes through tspan::init)."},
      {"heap_sites", "kMeta", "heap.meta", true, "vector_grow_push",
       "vector.size.read", "size/capacity/data header words: shared."},

      // ---- containers/txqueue.hpp ------------------------------------
      {"queue_sites", "kValue", "queue.value", true, "", "",
       "Node payload read at pop time through the shared head pointer "
       "(enqueue inits route through tfield::init)."},
      {"queue_sites", "kNext", "queue.next", true, "iter_loop",
       "iter.node.next", "Node link followed through loaded pointers."},
      {"queue_sites", "kLink", "queue.link", true, "list_insert",
       "list.link",
       "Publication store linking a fresh node into the shared structure."},
      {"queue_sites", "kSize", "queue.size", true, "", "",
       "Queue size header word: a shared counter."},

      // ---- stamp/bayes ----------------------------------------------
      {"stamp::bayes_sites", "kCounter", "bayes.counter", true, "", "",
       "Shared task/score counters."},
      {"stamp::bayes_sites", "kQueryVec", "bayes.query.vec", false,
       "vacation_reserve", "vacation.query.write",
       "Thread-local query vector (Figure 1(b)) registered with "
       "add_private_memory_block; the analysis trusts the annotation."},

      // ---- stamp/ssca2 ----------------------------------------------
      {"stamp::ssca2_sites", "kAdj", "ssca2.adjacency", true, "", "",
       "Tiny transactions over pre-allocated shared arrays: the "
       "nothing-to-elide end of Fig. 8."},

      // ---- stamp/kmeans ---------------------------------------------
      {"stamp::kmeans_sites", "kAccum", "kmeans.accum", true,
       "kmeans_update", "kmeans.center.write",
       "Shared new-center accumulators: zero capture opportunity "
       "(Fig. 8), so runtime capture checks are pure overhead here."},

      // ---- stamp/genome ---------------------------------------------
      {"stamp::genome_sites", "kMatch", "genome.match", true, "", "",
       "Phase-2 match counter: shared."},

      // ---- stamp/vacation -------------------------------------------
      {"stamp::vacation_sites", "kResField", "vacation.res.field", true,
       "vacation_reserve", "vacation.res.read",
       "Reservation fields on records already attached to the shared "
       "trees (fresh records' inits route through tfield::init)."},
      {"stamp::vacation_sites", "kCustField", "vacation.cust.field", true,
       "", "", "Customer records: shared once registered."},
      {"stamp::vacation_sites", "kQueryVec", "vacation.query.vec", false,
       "vacation_reserve", "vacation.query.write",
       "Thread-local query vector (Figure 1(b)) registered with "
       "add_private_memory_block; elided statically instead of via the "
       "runtime registry check."},

      // ---- stamp/intruder -------------------------------------------
      {"stamp::intruder_sites", "kFlowField", "intruder.flow.field", true,
       "", "",
       "Flow-state fields reached through the shared reassembly map."},
      {"stamp::intruder_sites", "kCounter", "intruder.counter", true, "",
       "", "Shared attack/fragment counters."},

      // ---- stamp/labyrinth ------------------------------------------
      {"stamp::labyrinth_sites", "kGrid", "labyrinth.grid", true, "", "",
       "Shared grid claims: the zero-redundant-barriers benchmark "
       "(Fig. 8)."},
      {"stamp::labyrinth_sites", "kCounter", "labyrinth.counter", true, "",
       "", "Shared routed/failed counters."},

      // ---- stamp/yada -----------------------------------------------
      {"stamp::yada_sites", "kElemField", "yada.elem.field", true, "", "",
       "Element fields reached through the shared map/heap (fresh "
       "replacements' inits route through tfield::init)."},
      {"stamp::yada_sites", "kCounter", "yada.counter", true, "", "",
       "Shared refinement counters."},
  };
}

std::vector<ResolvedSite> resolve_site_verdicts(
    const Program& program, const std::vector<SiteSpec>& specs,
    std::vector<std::string>* errors) {
  // One analysis run per distinct entry, at the paper's inline depth 2 —
  // the same configuration stamp_kernel_reports() uses, so the emitted
  // verdicts and the precision table always agree.
  std::map<std::string, AnalysisResult> by_entry;
  std::vector<ResolvedSite> out;
  out.reserve(specs.size());
  for (const SiteSpec& s : specs) {
    ResolvedSite r{s, Verdict::kUnknown};
    if (!s.entry.empty()) {
      if (program.find(s.entry) == nullptr) {
        if (errors != nullptr) {
          errors->push_back(s.ns + "::" + s.constant + ": evidence entry '" +
                            s.entry + "' is not in the kernel corpus");
        }
      } else {
        auto it = by_entry.find(s.entry);
        if (it == by_entry.end()) {
          it = by_entry.emplace(s.entry, analyze(program, s.entry, 2)).first;
        }
        const AnalysisResult& a = it->second;
        const bool site_exists =
            std::any_of(a.barriers.begin(), a.barriers.end(),
                        [&](const AccessVerdict& b) {
                          return b.site == s.kernel_site;
                        });
        if (!site_exists) {
          if (errors != nullptr) {
            errors->push_back(s.ns + "::" + s.constant +
                              ": evidence site '" + s.kernel_site +
                              "' does not occur in kernel '" + s.entry +
                              "' (inline depth 2)");
          }
        } else {
          r.verdict = a.site_verdict(s.kernel_site);
        }
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<ResolvedSite> resolve_site_verdicts(
    std::vector<std::string>* errors) {
  return resolve_site_verdicts(stamp_kernels(), site_specs(), errors);
}

std::string render_site_verdicts_header(
    const std::vector<ResolvedSite>& resolved) {
  std::ostringstream o;
  o << "// generated/site_verdicts.hpp — the single source of truth for "
       "the Site\n"
       "// verdicts of src/containers/ and src/stamp/.\n"
       "//\n"
       "// GENERATED by txir_sitegen from the spec table in "
       "src/txir/site_table.cpp\n"
       "// and the kernel corpus in src/txir/kernels.cpp. DO NOT EDIT BY "
       "HAND:\n"
       "// edits are overwritten by the next regeneration, and the "
       "staleness gate\n"
       "// (ctest `sitegen_check`, CI step `codegen-drift`, "
       "scripts/check.sh) fails\n"
       "// on any byte of drift between this file and a fresh render.\n"
       "//\n"
       "// Regenerate after changing the corpus, the analysis, or the "
       "spec table:\n"
       "//   cmake --build build --target sitegen\n"
       "// or equivalently:\n"
       "//   ./build/txir_sitegen --out generated/site_verdicts.hpp\n"
       "// Verify without writing (the gate CI runs):\n"
       "//   ./build/txir_sitegen --check generated/site_verdicts.hpp\n"
       "//\n"
       "// Every constant cites its evidence: the kernel entry + site "
       "label whose\n"
       "// analysis verdict (flow-sensitive capture analysis, inline "
       "depth 2 — the\n"
       "// paper's §3.2 configuration) it carries. `evidence: none` rows "
       "are the\n"
       "// corpus backlog: no kernel models them yet, so they stay "
       "conservatively\n"
       "// unknown until one does — at which point regeneration upgrades "
       "them and\n"
       "// shipped elision% rises with the corpus.\n"
       "//\n"
       "// Corpus precision at this configuration:\n"
       "//\n";
  {
    // The report table rides along as a comment so ANY precision movement
    // (not just a verdict flip) shows up in the drift diff.
    std::istringstream table(kernel_report_table());
    std::string line;
    while (std::getline(table, line)) {
      o << "//   " << line << "\n";
    }
  }
  o << "#pragma once\n"
       "\n"
       "#include \"stm/site.hpp\"\n"
       "\n"
       "// clang-format off\n"
       "namespace cstm {\n";

  std::string open_ns;
  for (const ResolvedSite& r : resolved) {
    const SiteSpec& s = r.spec;
    if (s.ns != open_ns) {
      if (!open_ns.empty()) {
        o << "}  // namespace " << open_ns << "\n";
      }
      o << "\n"
        << "namespace " << s.ns << " {\n";
      open_ns = s.ns;
    }
    o << "// " << s.comment << "\n";
    if (s.entry.empty()) {
      o << "//   evidence: none — conservative unknown, barrier stays\n";
    } else {
      o << "//   evidence: " << s.entry << " : " << s.kernel_site << " -> "
        << verdict_name(r.verdict) << "\n";
    }
    o << "inline constexpr Site " << s.constant << "{\"" << s.site_name
      << "\", " << (s.manual ? "true" : "false") << ", "
      << verdict_enumerator(r.verdict) << "};\n";
  }
  if (!open_ns.empty()) {
    o << "}  // namespace " << open_ns << "\n";
  }
  o << "\n"
       "}  // namespace cstm\n"
       "// clang-format on\n";
  return o.str();
}

std::string render_site_verdicts_header() {
  std::vector<std::string> errors;
  const std::vector<ResolvedSite> resolved = resolve_site_verdicts(&errors);
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "site_table: %s\n", e.c_str());
    }
    std::abort();  // a spec table typo must never emit a silent kUnknown
  }
  return render_site_verdicts_header(resolved);
}

std::vector<std::string> diff_lines(const std::string& expected,
                                    const std::string& actual) {
  const auto split = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  };
  const std::vector<std::string> a = split(expected);
  const std::vector<std::string> b = split(actual);
  if (a == b && expected == actual) return {};

  // Classic LCS table; both sides are header-sized (a few hundred lines).
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<std::size_t>> lcs(n + 1,
                                            std::vector<std::size_t>(m + 1));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::vector<std::string> out;
  std::size_t i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      ++i, ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      out.push_back("-" + a[i++]);
    } else {
      out.push_back("+" + b[j++]);
    }
  }
  while (i < n) out.push_back("-" + a[i++]);
  while (j < m) out.push_back("+" + b[j++]);
  if (out.empty()) {
    // Same lines but different trailing bytes (e.g. missing final
    // newline): still drift.
    out.push_back("-<expected and actual differ in trailing whitespace>");
  }
  return out;
}

}  // namespace cstm::txir
