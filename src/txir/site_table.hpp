// The analysis→codegen bridge: the declarative table of every
// execution-side Site constant (containers, STAMP apps) together with the
// kernel-corpus evidence that justifies its verdict, and the emitter that
// renders `generated/site_verdicts.hpp` from it.
//
// Before this table existed, the Site verdicts in the container/STAMP
// headers were hand-authored and merely cross-checked against the analysis
// by tests — the analysis was an oracle that never drove shipped code.
// Now the pipeline is:
//
//   kernel corpus (kernels.cpp)
//        │ analyze(entry, inline depth 2)      — paper §3.2 configuration
//        ▼
//   site_specs() evidence rows ──► resolved Verdict per Site constant
//        │ render_site_verdicts_header()       — deterministic text
//        ▼
//   generated/site_verdicts.hpp                — committed, single source
//        │ #include                              of truth for Site verdicts
//        ▼
//   tfield/tvar Sites ──► BarrierPlan static elision at runtime
//
// `txir_sitegen` (tools/) runs this emitter at build time; its `--check`
// mode is the staleness gate (ctest `sitegen_check`, CI `codegen-drift`):
// the committed header must be byte-identical to a fresh render, so an
// analysis improvement, a corpus widening, or a hand edit of the generated
// file all turn CI red until the header is regenerated. Widening the
// kernel corpus therefore raises shipped elision% directly — new proofs
// flow into the Site constants the barrier plans consult.
//
// Evidence semantics per row:
//  * entry + kernel_site name a load/store site label in the corpus; the
//    emitted verdict is what `analyze(program, entry, 2)` derives for it.
//    Rows whose kernel shape is shared (tree probes, accumulator bumps)
//    legitimately resolve to kUnknown — the barrier stays, and that *is*
//    the analysis result.
//  * an empty entry means "no kernel models this site": the emitter writes
//    the conservative kUnknown and says so. These rows are the corpus
//    backlog — modeling one in kernels.cpp upgrades it automatically.
#pragma once

#include <string>
#include <vector>

#include "stm/site.hpp"
#include "txir/kernels.hpp"

namespace cstm::txir {

/// One execution-side Site constant and its analysis evidence.
struct SiteSpec {
  std::string ns;           // namespace inside ::cstm ("list_sites",
                            // "stamp::vacation_sites", ...)
  std::string constant;     // C++ constant name ("kIter")
  std::string site_name;    // Site::name ("list.iter")
  bool manual = true;       // Site::manual (original STAMP hand barrier)
  std::string entry;        // kernel entry function; "" = no evidence
  std::string kernel_site;  // site label inside that kernel
  std::string comment;      // one-line rationale emitted above the constant
};

/// The full execution-side Site inventory, in emission order (container
/// groups first, then the STAMP apps). Ordering is part of the generated
/// header's determinism contract — append, don't sort.
std::vector<SiteSpec> site_specs();

struct ResolvedSite {
  SiteSpec spec;
  Verdict verdict = Verdict::kUnknown;
};

/// Runs the capture analysis (inline depth 2, the paper's configuration)
/// over @p program and resolves every spec's verdict. Specs with evidence
/// naming an entry or site label absent from the corpus are reported in
/// @p errors (one message each) and resolve to kUnknown — `txir_sitegen`
/// refuses to emit a header when @p errors is non-empty.
std::vector<ResolvedSite> resolve_site_verdicts(
    const Program& program, const std::vector<SiteSpec>& specs,
    std::vector<std::string>* errors);

/// Convenience: the canonical corpus + canonical spec table.
std::vector<ResolvedSite> resolve_site_verdicts(
    std::vector<std::string>* errors);

/// Renders the complete generated header (preamble, per-kernel precision
/// table as a comment block, one namespace per site group). Deterministic:
/// same corpus + same specs => byte-identical output, no timestamps.
std::string render_site_verdicts_header(
    const std::vector<ResolvedSite>& resolved);

/// Canonical render: resolve_site_verdicts() over the real corpus.
/// Aborts with the resolution errors on an invalid spec table (the tests
/// and the sitegen tool surface them first).
std::string render_site_verdicts_header();

/// Line-based diff (LCS) of @p expected vs @p actual, unified-diff style
/// ("-" = expected/regenerated line missing from actual, "+" = stale line
/// only in actual). Empty result iff the inputs are identical. Used by
/// `txir_sitegen --check` so the CI drift log shows exactly which verdicts
/// moved.
std::vector<std::string> diff_lines(const std::string& expected,
                                    const std::string& actual);

}  // namespace cstm::txir
