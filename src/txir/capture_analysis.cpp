#include "txir/capture_analysis.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace cstm::txir {

namespace {

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------
// A value is a capture class plus provenance bitsets: `sites` names the
// allocation instructions (txalloc/alloca_tx/fresh-returning calls) the
// pointer may point into, `params` names the formal parameters it may be a
// copy of (summary mode only). `sites` survives joins to kUnknown so
// demotion accounting can tell "lost the proof" from "never had one".
// `pub` marks values pessimized by site-bitset overflow: with no bit to
// track publication, the value is treated as always-published (sound).

struct AV {
  enum class Cls : std::uint8_t {
    kBottom = 0,  // no definition reached yet (optimistic initial state)
    kCaptured,
    kStack,
    kStatic,
    kPrivate,
    kParam,  // summary mode: a copy of a formal parameter
    kUnknown,
  };
  Cls cls = Cls::kBottom;
  std::uint64_t sites = 0;
  std::uint64_t params = 0;
  bool pub = false;

  bool operator==(const AV&) const = default;
};

AV make_unknown() { return AV{AV::Cls::kUnknown, 0, 0, false}; }

AV join(const AV& x, const AV& y) {
  AV r;
  r.sites = x.sites | y.sites;
  r.params = x.params | y.params;
  r.pub = x.pub || y.pub;
  if (x.cls == y.cls) {
    r.cls = x.cls;
  } else if (x.cls == AV::Cls::kBottom) {
    r.cls = y.cls;
  } else if (y.cls == AV::Cls::kBottom) {
    r.cls = x.cls;
  } else {
    r.cls = AV::Cls::kUnknown;  // alias merge of distinct classes
  }
  return r;
}

bool tracked(AV::Cls c) {
  return c == AV::Cls::kCaptured || c == AV::Cls::kStack;
}

// ---------------------------------------------------------------------------
// Function summaries (interprocedural mode)
// ---------------------------------------------------------------------------

struct Summary {
  enum class Ret : std::uint8_t {
    kUnknown = 0,
    kFresh,   // a new, unpublished transaction-local heap object
    kParam,   // pass-through of parameter `ret_param`
    kStatic,
    kPrivate,
  };
  Ret ret = Ret::kUnknown;
  std::size_t ret_param = 0;
  std::uint64_t publishes = ~std::uint64_t{0};  // param bitmask (opaque: all)
  /// The callee may store through pointers it did not allocate itself —
  /// including pointers loaded out of its arguments' memory — so the
  /// caller must invalidate every field cell reachable from the call's
  /// arguments. False only for provably read-only callees.
  bool writes_reachable = true;
};

using SummaryCache = std::unordered_map<std::string, Summary>;

constexpr int kMaxSites = 64;  // provenance bitset width; overflow degrades
                               // to an always-demoted (pub) value — sound

// ---------------------------------------------------------------------------
// Per-block dataflow state
// ---------------------------------------------------------------------------
// The full abstract state flowing along a CFG edge: the environment (one
// AV per IR value), the field cells of tracked allocation sites, and the
// set of sites that may already be published on some path reaching this
// point. Joins are pointwise; the publication set joins by union — that
// union at a merge is precisely what demotes post-merge accesses when only
// one branch published.

struct State {
  std::vector<AV> env;
  std::map<std::pair<int, std::int64_t>, AV> cells;
  std::uint64_t published = 0;
  /// False until the first predecessor state is joined in. The very first
  /// join copies wholesale; later joins treat a field cell missing on
  /// EITHER side as "never stored on that path" = unanalyzable bits, and
  /// demote it to unknown. (Values need no such rule: a value live across
  /// a merge is defined on every path by the def-dominates-use invariant.)
  bool initialized = false;

  /// Joins @p src into *this; true if anything changed (monotone).
  bool join_from(const State& src) {
    if (!initialized) {
      const bool changed = !(env == src.env) || !(cells == src.cells) ||
                           published != src.published;
      env = src.env;
      cells = src.cells;
      published = src.published;
      initialized = true;
      return changed;
    }
    bool changed = false;
    for (std::size_t i = 0; i < env.size(); ++i) {
      const AV nv = join(env[i], src.env[i]);
      if (!(nv == env[i])) {
        env[i] = nv;
        changed = true;
      }
    }
    // A cell absent from one side's map means that path never stored the
    // field: the merged field holds unanalyzable bits, so the surviving
    // value must not cross the merge intact (only its provenance sites
    // survive, for publication reachability).
    for (const auto& [key, cell] : src.cells) {
      auto it = cells.find(key);
      const AV merged = it == cells.end() ? join(make_unknown(), cell)
                                          : join(it->second, cell);
      AV& mine = it == cells.end() ? cells[key] : it->second;
      if (!(merged == mine)) {
        mine = merged;
        changed = true;
      }
    }
    for (auto& [key, cell] : cells) {
      if (src.cells.find(key) != src.cells.end()) continue;
      const AV nv = join(cell, make_unknown());
      if (!(nv == cell)) {
        cell = nv;
        changed = true;
      }
    }
    if ((published | src.published) != published) {
      published |= src.published;
      changed = true;
    }
    return changed;
  }
};

// ---------------------------------------------------------------------------
// The dataflow engine
// ---------------------------------------------------------------------------
// Standard worklist iteration: IN states per block, transfer = abstract
// execution of the block body, OUT pushed along each edge after binding
// branch arguments to the target's block parameters. All lattices are
// finite (value classes × 64-bit site sets, cells keyed by sites ×
// occurring offsets) and every transfer/join is monotone, so the fixpoint
// terminates. Verdicts are recorded in one final pass over the reachable
// blocks in reverse postorder using the converged IN states.

class Engine {
 public:
  Engine(const Function& f, const Program* prog, SummaryCache* cache,
         bool param_markers)
      : f_(f), cfg_(build_cfg(f)), prog_(prog), cache_(cache) {
    State entry_in;
    entry_in.initialized = true;  // seeded below; a loop edge back to the
                                  // entry block must JOIN, never overwrite
    entry_in.env.assign(static_cast<std::size_t>(f.next_value), AV{});
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      const auto p = static_cast<std::size_t>(f.params[i]);
      entry_in.env[p] = param_markers && i < 64
                            ? AV{AV::Cls::kParam, 0, std::uint64_t{1} << i,
                                 false}
                            : make_unknown();
    }
    in_.assign(f.blocks.size(), State{});
    for (State& s : in_) {
      s.env.assign(static_cast<std::size_t>(f.next_value), AV{});
    }
    if (!f.blocks.empty()) in_[0] = std::move(entry_in);
  }

  void run() {
    if (f_.blocks.empty()) return;
    // Worklist ordered by RPO index: loop bodies converge before their
    // exits are reprocessed. Monotone joins bound the iteration count.
    // Every reachable block is seeded (a block must be processed at least
    // once even if its IN never moves past the initial bottom join — its
    // own defs still have to flow to its successors).
    std::set<int> work;
    for (int i = 0; i < static_cast<int>(cfg_.rpo.size()); ++i) {
      work.insert(i);
    }
    // Backstop against a lattice bug; the fixpoint converges far earlier.
    for (int guard = 0; guard < 100000 && !work.empty(); ++guard) {
      const int rpo_pos = *work.begin();
      work.erase(work.begin());
      const BlockId b = cfg_.rpo[static_cast<std::size_t>(rpo_pos)];
      State out = exec_block(b, in_[static_cast<std::size_t>(b)], nullptr);
      const BasicBlock& bb = f_.blocks[static_cast<std::size_t>(b)];
      for_each_edge(bb, [&](const BranchTarget& t) {
        if (!cfg_.reachable(t.block)) return;
        State edge = out;  // copy: each edge binds its own branch args
        bind_args(edge, out, t);
        if (in_[static_cast<std::size_t>(t.block)].join_from(edge)) {
          work.insert(cfg_.rpo_index[static_cast<std::size_t>(t.block)]);
        }
      });
    }
  }

  AnalysisResult result() {
    AnalysisResult res;
    for (BlockId b : cfg_.rpo) {
      (void)exec_block(b, in_[static_cast<std::size_t>(b)], &res.barriers);
    }
    return res;
  }

  Summary summarize() const {
    Summary s;
    s.publishes = published_params_;
    s.writes_reachable = wrote_foreign_target_;
    if (!ret_seen_) return s;
    const AV& r = ret_av_;
    switch (r.cls) {
      case AV::Cls::kCaptured:
        if (!r.pub && (r.sites & ret_published_) == 0) {
          s.ret = Summary::Ret::kFresh;
        }
        break;
      case AV::Cls::kParam:
        // Single-parameter pass-through only; a may-be-either value is
        // opaque to the caller.
        if (r.params != 0 && (r.params & (r.params - 1)) == 0) {
          s.ret = Summary::Ret::kParam;
          std::uint64_t m = r.params;
          while ((m & 1) == 0) {
            m >>= 1;
            ++s.ret_param;
          }
        }
        break;
      case AV::Cls::kStatic:
        s.ret = Summary::Ret::kStatic;
        break;
      case AV::Cls::kPrivate:
        s.ret = Summary::Ret::kPrivate;
        break;
      default:
        break;
    }
    return s;
  }

 private:
  template <typename Fn>
  static void for_each_edge(const BasicBlock& bb, Fn&& fn) {
    if (bb.term.op == TermOp::kBr || bb.term.op == TermOp::kBrCond) {
      fn(bb.term.then_);
    }
    if (bb.term.op == TermOp::kBrCond) fn(bb.term.els);
  }

  /// Binds the branch's arguments to the target's parameters in the edge
  /// state (reading argument values from the branching block's OUT state).
  void bind_args(State& edge, const State& out, const BranchTarget& t) const {
    const auto& params = f_.blocks[static_cast<std::size_t>(t.block)].params;
    for (std::size_t i = 0; i < params.size() && i < t.args.size(); ++i) {
      const ValueId arg = t.args[i];
      edge.env[static_cast<std::size_t>(params[i])] =
          arg == kNoValue ? make_unknown()
                          : out.env[static_cast<std::size_t>(arg)];
    }
  }

  std::uint64_t site_bit(ValueId def) {
    auto [it, inserted] = site_ids_.try_emplace(def, site_ids_.size());
    return it->second < kMaxSites ? std::uint64_t{1} << it->second : 0;
  }

  AV alloc_value(AV::Cls cls, ValueId def) {
    const std::uint64_t bit = site_bit(def);
    // Site-id overflow: no bit to track publication with, so pessimize the
    // value to always-demoted instead of risking a missed publication.
    return AV{cls, bit, 0, bit == 0};
  }

  static AV operand(const State& st, ValueId v) {
    if (v == kNoValue) return make_unknown();
    return st.env[static_cast<std::size_t>(v)];
  }

  /// The base points at memory no shared pointer can reach (yet) on any
  /// path into this program point.
  static bool private_target(const AV& base, const State& st) {
    return tracked(base.cls) && base.sites != 0 && !base.pub &&
           (base.sites & st.published) == 0;
  }

  /// Marks every site the value may point into as published, transitively
  /// publishing whatever was stored inside those sites, and records
  /// escaping parameters.
  void publish_value(const AV& v, State& st) {
    published_params_ |= v.params;
    std::uint64_t frontier = v.sites & ~st.published;
    while (frontier != 0) {
      st.published |= frontier;
      std::uint64_t next = 0;
      for (const auto& [key, cell] : st.cells) {
        if ((std::uint64_t{1} << key.first) & frontier) {
          next |= cell.sites & ~st.published;
          published_params_ |= cell.params;
        }
      }
      frontier = next;
    }
  }

  static void cell_join(State& st, int site, std::int64_t off, const AV& v) {
    AV& cell = st.cells[{site, off}];
    cell = join(cell, v);
  }

  /// A callee that writes through foreign pointers may overwrite any field
  /// of memory REACHABLE from its pointer arguments — it can load a stored
  /// pointer out of an argument's object and store through it — so the
  /// clobber closes over the field cells the same way publish_value does.
  /// Joining with unknown keeps each cell's provenance sites (the join
  /// unions them), so reachability is preserved for later closures.
  static void clobber_reachable_cells(State& st, std::uint64_t sites) {
    std::uint64_t reach = sites;
    for (;;) {
      std::uint64_t next = reach;
      for (const auto& [key, cell] : st.cells) {
        if ((std::uint64_t{1} << key.first) & reach) next |= cell.sites;
      }
      if (next == reach) break;
      reach = next;
    }
    for (auto& [key, cell] : st.cells) {
      if (((std::uint64_t{1} << key.first) & reach) == 0) continue;
      cell = join(cell, make_unknown());
    }
  }

  static AccessVerdict access_verdict(const Instr& ins, const AV& base,
                                      const State& st) {
    AccessVerdict a;
    a.site = ins.site;
    a.is_store = ins.op == Op::kStore;
    const bool lost = base.pub || (base.sites & st.published) != 0;
    switch (base.cls) {
      case AV::Cls::kCaptured:
        a.verdict = lost ? Verdict::kUnknown : Verdict::kCaptured;
        a.demoted = lost;
        break;
      case AV::Cls::kStack:
        a.verdict = lost ? Verdict::kUnknown : Verdict::kStack;
        a.demoted = lost;
        break;
      case AV::Cls::kStatic:
        a.verdict = Verdict::kStatic;  // elidable() refuses the store case
        break;
      case AV::Cls::kPrivate:
        a.verdict = Verdict::kPrivate;
        break;
      default:
        a.verdict = Verdict::kUnknown;
        // Mixed provenance (e.g. a merge of captured with a shared
        // pointer) counts as demoted: conservatism, not ignorance.
        a.demoted = base.sites != 0 || base.pub;
        break;
    }
    return a;
  }

  Summary summary_of(const std::string& callee) {
    if (prog_ == nullptr || cache_ == nullptr) return Summary{};
    if (auto it = cache_->find(callee); it != cache_->end()) return it->second;
    const Function* fn = prog_->find(callee);
    if (fn == nullptr || fn->blocks.empty()) return Summary{};
    // Park the opaque summary first so recursion degrades instead of
    // looping.
    cache_->emplace(callee, Summary{});
    Engine sub(*fn, prog_, cache_, /*param_markers=*/true);
    sub.run();
    const Summary s = sub.summarize();
    (*cache_)[callee] = s;
    return s;
  }

  /// Abstract execution of one block from state @p in; returns the OUT
  /// state. With @p record set, appends one AccessVerdict per load/store.
  State exec_block(BlockId b, const State& in,
                   std::vector<AccessVerdict>* record) {
    State st = in;
    const BasicBlock& bb = f_.blocks[static_cast<std::size_t>(b)];
    for (const Instr& ins : bb.body) {
      switch (ins.op) {
        case Op::kTxAlloc:
          set_env(st, ins.dst, alloc_value(AV::Cls::kCaptured, ins.dst));
          break;
        case Op::kAllocaTx:
          set_env(st, ins.dst, alloc_value(AV::Cls::kStack, ins.dst));
          break;
        case Op::kAllocaPre:
        case Op::kUnknown:
          set_env(st, ins.dst, make_unknown());
          break;
        case Op::kStaticAddr:
          set_env(st, ins.dst, AV{AV::Cls::kStatic, 0, 0, false});
          break;
        case Op::kPrivAddr:
          set_env(st, ins.dst, AV{AV::Cls::kPrivate, 0, 0, false});
          break;
        case Op::kGep:
        case Op::kMove:
          set_env(st, ins.dst, operand(st, ins.a));
          break;
        case Op::kLoad: {
          const AV base = operand(st, ins.a);
          if (record != nullptr) {
            record->push_back(access_verdict(ins, base, st));
          }
          AV v = make_unknown();
          if (private_target(base, st)) {
            // Join of everything stored into the pointed-to field across
            // the sites the base may name; a field never stored through a
            // tracked pointer holds unanalyzable bits.
            v = AV{};
            for (int s = 0; s < kMaxSites; ++s) {
              if ((base.sites & (std::uint64_t{1} << s)) == 0) continue;
              auto it = st.cells.find({s, ins.offset});
              v = join(v, it == st.cells.end() ? make_unknown() : it->second);
            }
            if (v.cls == AV::Cls::kBottom) v = make_unknown();
          }
          set_env(st, ins.dst, v);
          break;
        }
        case Op::kStore: {
          const AV base = operand(st, ins.a);
          const AV val = operand(st, ins.b);
          if (record != nullptr) {
            record->push_back(access_verdict(ins, base, st));
          }
          if (base.cls == AV::Cls::kBottom) break;  // unreachable so far
          // A stored parameter may end up reachable from the caller (via
          // shared memory or a returned object): treat it as escaping.
          published_params_ |= val.params;
          if (private_target(base, st)) {
            for (int s = 0; s < kMaxSites; ++s) {
              if ((base.sites & (std::uint64_t{1} << s)) != 0) {
                cell_join(st, s, ins.offset, val);
              }
            }
          } else if (val.cls != AV::Cls::kBottom) {
            // The target is not provably this function's own tx-local
            // memory (summaries report this to callers as writes_reachable).
            wrote_foreign_target_ = true;
            // The stored pointer may become shared: published.
            publish_value(val, st);
            // A mixed-provenance base (merge of captured and shared) may
            // still write into a tracked site: its field must absorb the
            // value so later loads cannot resurrect a stale proof.
            for (int s = 0; s < kMaxSites; ++s) {
              if ((base.sites & (std::uint64_t{1} << s)) != 0) {
                cell_join(st, s, ins.offset, val);
              }
            }
          }
          break;
        }
        case Op::kCall: {
          const Function* callee =
              prog_ != nullptr ? prog_->find(ins.callee) : nullptr;
          Summary s;  // default: opaque (publishes everything)
          if (callee != nullptr) s = summary_of(ins.callee);
          if (s.writes_reachable) wrote_foreign_target_ = true;
          AV result = make_unknown();
          for (std::size_t j = 0; j < ins.args.size(); ++j) {
            const AV arg = operand(st, ins.args[j]);
            if (arg.cls == AV::Cls::kBottom) continue;
            // Arguments past the bitmask width are treated as opaque:
            // always published.
            if (j >= 64 || (s.publishes & (std::uint64_t{1} << j)) != 0) {
              publish_value(arg, st);
            }
            published_params_ |= arg.params;  // callee may store it anywhere
            if (s.writes_reachable) clobber_reachable_cells(st, arg.sites);
          }
          switch (s.ret) {
            case Summary::Ret::kFresh:
              result = alloc_value(AV::Cls::kCaptured, ins.dst);
              break;
            case Summary::Ret::kParam:
              if (s.ret_param < ins.args.size()) {
                result = operand(st, ins.args[s.ret_param]);
              }
              break;
            case Summary::Ret::kStatic:
              result = AV{AV::Cls::kStatic, 0, 0, false};
              break;
            case Summary::Ret::kPrivate:
              result = AV{AV::Cls::kPrivate, 0, 0, false};
              break;
            case Summary::Ret::kUnknown:
              break;
          }
          set_env(st, ins.dst, result);
          break;
        }
      }
    }
    if (bb.term.op == TermOp::kRet) {
      ret_seen_ = true;
      ret_av_ = join(ret_av_, operand(st, bb.term.ret));
      ret_published_ |= st.published;
    }
    return st;
  }

  static void set_env(State& st, ValueId dst, const AV& nv) {
    if (dst == kNoValue) return;
    // Straight-line redefinition within the fixpoint: join keeps the state
    // monotone across repeated executions of the same block.
    AV& slot = st.env[static_cast<std::size_t>(dst)];
    slot = join(slot, nv);
  }

  const Function& f_;
  const Cfg cfg_;
  const Program* prog_;
  SummaryCache* cache_;
  std::vector<State> in_;
  std::unordered_map<ValueId, std::size_t> site_ids_;
  std::uint64_t published_params_ = 0;
  /// Stored through a pointer that is not provably this function's own
  /// unpublished tx-local memory (or called something that may have).
  bool wrote_foreign_target_ = false;
  AV ret_av_;
  std::uint64_t ret_published_ = 0;
  bool ret_seen_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// AnalysisResult queries
// ---------------------------------------------------------------------------

Verdict AnalysisResult::site_verdict(const std::string& site) const {
  bool seen = false;
  Verdict v = Verdict::kUnknown;
  for (const auto& b : barriers) {
    if (b.site != site) continue;
    if (!seen) {
      v = b.verdict;
      seen = true;
    } else if (v != b.verdict) {
      return Verdict::kUnknown;
    }
  }
  return v;
}

bool AnalysisResult::site_elidable(const std::string& site) const {
  bool seen = false;
  for (const auto& b : barriers) {
    if (b.site != site) continue;
    seen = true;
    if (!b.elidable()) return false;
  }
  return seen;
}

bool AnalysisResult::site_demoted(const std::string& site) const {
  if (site_elidable(site)) return false;
  for (const auto& b : barriers) {
    if (b.site == site && b.demoted) return true;
  }
  return false;
}

AnalysisStats AnalysisResult::stats() const {
  AnalysisStats s;
  std::unordered_set<std::string> labels;
  for (const auto& b : barriers) labels.insert(b.site);
  s.sites_total = labels.size();
  for (const auto& label : labels) {
    if (site_elidable(label)) {
      ++s.proven;
    } else if (site_demoted(label)) {
      ++s.demoted;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

AnalysisResult analyze(const Function& f) {
  if (f.blocks.empty()) return AnalysisResult{};
  Engine e(f, nullptr, nullptr, /*param_markers=*/false);
  e.run();
  return e.result();
}

AnalysisResult analyze(const Program& p, const std::string& entry,
                       int inline_depth) {
  const Function* f = p.find(entry);
  if (f == nullptr || f->blocks.empty()) return AnalysisResult{};
  SummaryCache cache;
  if (inline_depth > 0) {
    const Function inlined = inline_calls(p, *f, inline_depth);
    Engine e(inlined, &p, &cache, /*param_markers=*/false);
    e.run();
    return e.result();
  }
  Engine e(*f, &p, &cache, /*param_markers=*/false);
  e.run();
  return e.result();
}

}  // namespace cstm::txir
