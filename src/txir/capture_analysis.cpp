#include "txir/capture_analysis.hpp"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace cstm::txir {

namespace {

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------
// A value is a capture class plus provenance bitsets: `sites` names the
// allocation instructions (txalloc/alloca_tx/fresh-returning calls) the
// pointer may point into, `params` names the formal parameters it may be a
// copy of (summary mode only). `sites` survives joins to kUnknown so
// demotion accounting can tell "lost the proof" from "never had one".
// `pub` marks values that may alias memory published before this
// iteration of a loop (set on phi back-edges).

struct AV {
  enum class Cls : std::uint8_t {
    kBottom = 0,  // no definition reached yet (optimistic initial state)
    kCaptured,
    kStack,
    kStatic,
    kPrivate,
    kParam,  // summary mode: a copy of a formal parameter
    kUnknown,
  };
  Cls cls = Cls::kBottom;
  std::uint64_t sites = 0;
  std::uint64_t params = 0;
  bool pub = false;

  bool operator==(const AV&) const = default;
};

AV make_unknown() { return AV{AV::Cls::kUnknown, 0, 0, false}; }

AV join(const AV& x, const AV& y) {
  AV r;
  r.sites = x.sites | y.sites;
  r.params = x.params | y.params;
  r.pub = x.pub || y.pub;
  if (x.cls == y.cls) {
    r.cls = x.cls;
  } else if (x.cls == AV::Cls::kBottom) {
    r.cls = y.cls;
  } else if (y.cls == AV::Cls::kBottom) {
    r.cls = x.cls;
  } else {
    r.cls = AV::Cls::kUnknown;  // alias merge of distinct classes
  }
  return r;
}

bool tracked(AV::Cls c) {
  return c == AV::Cls::kCaptured || c == AV::Cls::kStack;
}

// ---------------------------------------------------------------------------
// Function summaries (interprocedural mode)
// ---------------------------------------------------------------------------

struct Summary {
  enum class Ret : std::uint8_t {
    kUnknown = 0,
    kFresh,   // a new, unpublished transaction-local heap object
    kParam,   // pass-through of parameter `ret_param`
    kStatic,
    kPrivate,
  };
  Ret ret = Ret::kUnknown;
  std::size_t ret_param = 0;
  std::uint64_t publishes = ~std::uint64_t{0};  // param bitmask (opaque: all)
  /// The callee may store through pointers it did not allocate itself —
  /// including pointers loaded out of its arguments' memory — so the
  /// caller must invalidate every field cell reachable from the call's
  /// arguments. False only for provably read-only callees.
  bool writes_reachable = true;
};

using SummaryCache = std::unordered_map<std::string, Summary>;

constexpr int kMaxSites = 64;  // provenance bitset width; overflow degrades
                               // to an always-demoted (pub) value — sound

// ---------------------------------------------------------------------------
// The dataflow engine
// ---------------------------------------------------------------------------
// The body is a linear instruction list (joins are explicit phis, loops are
// phis whose operand is defined later). The engine iterates forward passes
// to a fixpoint: value states and field cells only move up a finite
// lattice, and the published-site set at each point grows monotonically,
// so termination is immediate. Verdicts are recorded in one final pass
// using the per-point published state.

class Engine {
 public:
  Engine(const Function& f, const Program* prog, SummaryCache* cache,
         bool param_markers)
      : f_(f), prog_(prog), cache_(cache) {
    env_.assign(static_cast<std::size_t>(f.next_value), AV{});
    def_idx_.assign(static_cast<std::size_t>(f.next_value), -2);
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      const auto p = static_cast<std::size_t>(f.params[i]);
      def_idx_[p] = -1;
      env_[p] = param_markers && i < 64
                    ? AV{AV::Cls::kParam, 0, std::uint64_t{1} << i, false}
                    : make_unknown();
    }
    for (std::size_t i = 0; i < f.body.size(); ++i) {
      const ValueId d = f.body[i].dst;
      if (d != kNoValue && def_idx_[static_cast<std::size_t>(d)] == -2) {
        def_idx_[static_cast<std::size_t>(d)] = static_cast<int>(i);
      }
    }
  }

  void run() {
    // The lattice height bounds the pass count; the guard is a backstop.
    for (int i = 0; i < 1000; ++i) {
      if (!pass(nullptr)) break;
    }
  }

  AnalysisResult result() {
    AnalysisResult res;
    pass(&res.barriers);
    return res;
  }

  Summary summarize() const {
    Summary s;
    s.publishes = published_params_;
    s.writes_reachable = wrote_foreign_target_;
    // Return convention (matches inline_calls): the last defined value.
    ValueId ret = kNoValue;
    for (auto it = f_.body.rbegin(); it != f_.body.rend(); ++it) {
      if (it->dst != kNoValue) {
        ret = it->dst;
        break;
      }
    }
    if (ret == kNoValue) return s;
    const AV& r = env_[static_cast<std::size_t>(ret)];
    switch (r.cls) {
      case AV::Cls::kCaptured:
        if (!r.pub && (r.sites & published_end_) == 0) s.ret = Summary::Ret::kFresh;
        break;
      case AV::Cls::kParam:
        // Single-parameter pass-through only; a may-be-either value is
        // opaque to the caller.
        if (r.params != 0 && (r.params & (r.params - 1)) == 0) {
          s.ret = Summary::Ret::kParam;
          std::uint64_t m = r.params;
          while ((m & 1) == 0) {
            m >>= 1;
            ++s.ret_param;
          }
        }
        break;
      case AV::Cls::kStatic:
        s.ret = Summary::Ret::kStatic;
        break;
      case AV::Cls::kPrivate:
        s.ret = Summary::Ret::kPrivate;
        break;
      default:
        break;
    }
    return s;
  }

 private:
  std::uint64_t site_bit(std::size_t instr_idx) {
    auto [it, inserted] = site_ids_.try_emplace(instr_idx, site_ids_.size());
    return it->second < kMaxSites ? std::uint64_t{1} << it->second : 0;
  }

  AV alloc_value(AV::Cls cls, std::size_t instr_idx) {
    const std::uint64_t bit = site_bit(instr_idx);
    // Site-id overflow: no bit to track publication with, so pessimize the
    // value to always-demoted instead of risking a missed publication.
    return AV{cls, bit, 0, bit == 0};
  }

  AV operand(ValueId v, int at) const {
    if (v == kNoValue) return make_unknown();
    AV x = env_[static_cast<std::size_t>(v)];
    // Back-edge (the definition is textually at or after this use): the
    // value carried around the loop may have been published in the
    // previous iteration.
    if (def_idx_[static_cast<std::size_t>(v)] >= at &&
        (x.sites & published_end_) != 0) {
      x.pub = true;
    }
    return x;
  }

  /// The base points at memory no shared pointer can reach (yet).
  static bool private_target(const AV& base, std::uint64_t published) {
    return tracked(base.cls) && base.sites != 0 && !base.pub &&
           (base.sites & published) == 0;
  }

  /// Marks every site the value may point into as published, transitively
  /// publishing whatever was stored inside those sites, and records
  /// escaping parameters.
  void publish_value(const AV& v, std::uint64_t& published) {
    published_params_ |= v.params;
    std::uint64_t frontier = v.sites & ~published;
    while (frontier != 0) {
      published |= frontier;
      std::uint64_t next = 0;
      for (const auto& [key, cell] : cells_) {
        if ((std::uint64_t{1} << key.first) & frontier) {
          next |= cell.sites & ~published;
          published_params_ |= cell.params;
        }
      }
      frontier = next;
    }
  }

  void cell_join(int site, std::int64_t off, const AV& v) {
    AV& cell = cells_[{site, off}];
    const AV nv = join(cell, v);
    if (!(nv == cell)) {
      cell = nv;
      changed_ = true;
    }
  }

  /// A callee that writes through foreign pointers may overwrite any field
  /// of memory REACHABLE from its pointer arguments — it can load a stored
  /// pointer out of an argument's object and store through it — so the
  /// clobber closes over the field cells the same way publish_value does.
  /// Joining with unknown keeps each cell's provenance sites (the join
  /// unions them), so reachability is preserved for later closures.
  void clobber_reachable_cells(std::uint64_t sites) {
    std::uint64_t reach = sites;
    for (;;) {
      std::uint64_t next = reach;
      for (const auto& [key, cell] : cells_) {
        if ((std::uint64_t{1} << key.first) & reach) next |= cell.sites;
      }
      if (next == reach) break;
      reach = next;
    }
    for (auto& [key, cell] : cells_) {
      if (((std::uint64_t{1} << key.first) & reach) == 0) continue;
      const AV nv = join(cell, make_unknown());
      if (!(nv == cell)) {
        cell = nv;
        changed_ = true;
      }
    }
  }

  AccessVerdict access_verdict(const Instr& ins, const AV& base,
                               std::uint64_t published) const {
    AccessVerdict a;
    a.site = ins.site;
    a.is_store = ins.op == Op::kStore;
    const bool lost = base.pub || (base.sites & published) != 0;
    switch (base.cls) {
      case AV::Cls::kCaptured:
        a.verdict = lost ? Verdict::kUnknown : Verdict::kCaptured;
        a.demoted = lost;
        break;
      case AV::Cls::kStack:
        a.verdict = lost ? Verdict::kUnknown : Verdict::kStack;
        a.demoted = lost;
        break;
      case AV::Cls::kStatic:
        a.verdict = Verdict::kStatic;  // elidable() refuses the store case
        break;
      case AV::Cls::kPrivate:
        a.verdict = Verdict::kPrivate;
        break;
      default:
        a.verdict = Verdict::kUnknown;
        // Mixed provenance (e.g. a phi that merged a capture with a shared
        // pointer) counts as demoted: conservatism, not ignorance.
        a.demoted = base.sites != 0 || base.pub;
        break;
    }
    return a;
  }

  void set_env(ValueId dst, const AV& nv) {
    if (dst == kNoValue) return;
    AV& slot = env_[static_cast<std::size_t>(dst)];
    const AV joined = join(slot, nv);
    if (!(joined == slot)) {
      slot = joined;
      changed_ = true;
    }
  }

  Summary summary_of(const std::string& callee) {
    if (prog_ == nullptr || cache_ == nullptr) return Summary{};
    if (auto it = cache_->find(callee); it != cache_->end()) return it->second;
    const Function* fn = prog_->find(callee);
    if (fn == nullptr) return Summary{};
    // Park the opaque summary first so recursion degrades instead of
    // looping.
    cache_->emplace(callee, Summary{});
    Engine sub(*fn, prog_, cache_, /*param_markers=*/true);
    sub.run();
    const Summary s = sub.summarize();
    (*cache_)[callee] = s;
    return s;
  }

  bool pass(std::vector<AccessVerdict>* record) {
    changed_ = false;
    std::uint64_t published = 0;
    for (std::size_t i = 0; i < f_.body.size(); ++i) {
      const Instr& ins = f_.body[i];
      const int at = static_cast<int>(i);
      switch (ins.op) {
        case Op::kTxAlloc:
          set_env(ins.dst, alloc_value(AV::Cls::kCaptured, i));
          break;
        case Op::kAllocaTx:
          set_env(ins.dst, alloc_value(AV::Cls::kStack, i));
          break;
        case Op::kAllocaPre:
        case Op::kUnknown:
          set_env(ins.dst, make_unknown());
          break;
        case Op::kStaticAddr:
          set_env(ins.dst, AV{AV::Cls::kStatic, 0, 0, false});
          break;
        case Op::kPrivAddr:
          set_env(ins.dst, AV{AV::Cls::kPrivate, 0, 0, false});
          break;
        case Op::kGep:
        case Op::kMove:
          set_env(ins.dst, operand(ins.a, at));
          break;
        case Op::kPhi:
          set_env(ins.dst, join(operand(ins.a, at), operand(ins.b, at)));
          break;
        case Op::kLoad: {
          const AV base = operand(ins.a, at);
          if (record != nullptr) {
            record->push_back(access_verdict(ins, base, published));
          }
          AV v = make_unknown();
          if (private_target(base, published)) {
            // Join of everything stored into the pointed-to field across
            // the sites the base may name; a field never stored through a
            // tracked pointer holds unanalyzable bits.
            v = AV{};
            for (int s = 0; s < kMaxSites; ++s) {
              if ((base.sites & (std::uint64_t{1} << s)) == 0) continue;
              auto it = cells_.find({s, ins.offset});
              v = join(v, it == cells_.end() ? make_unknown() : it->second);
            }
            if (v.cls == AV::Cls::kBottom) v = make_unknown();
          }
          set_env(ins.dst, v);
          break;
        }
        case Op::kStore: {
          const AV base = operand(ins.a, at);
          const AV val = operand(ins.b, at);
          if (record != nullptr) {
            record->push_back(access_verdict(ins, base, published));
          }
          if (base.cls == AV::Cls::kBottom) break;  // unreachable so far
          // A stored parameter may end up reachable from the caller (via
          // shared memory or a returned object): treat it as escaping.
          published_params_ |= val.params;
          if (private_target(base, published)) {
            for (int s = 0; s < kMaxSites; ++s) {
              if ((base.sites & (std::uint64_t{1} << s)) != 0) {
                cell_join(s, ins.offset, val);
              }
            }
          } else if (val.cls != AV::Cls::kBottom) {
            // The target is not provably this function's own tx-local
            // memory (summaries report this to callers as writes_reachable).
            wrote_foreign_target_ = true;
            // The stored pointer may become shared: published.
            publish_value(val, published);
            // A mixed-provenance base (phi of captured and shared) may
            // still write into a tracked site: its field must absorb the
            // value so later loads cannot resurrect a stale proof.
            for (int s = 0; s < kMaxSites; ++s) {
              if ((base.sites & (std::uint64_t{1} << s)) != 0) {
                cell_join(s, ins.offset, val);
              }
            }
          }
          break;
        }
        case Op::kCall: {
          const Function* callee =
              prog_ != nullptr ? prog_->find(ins.callee) : nullptr;
          Summary s;  // default: opaque (publishes everything)
          if (callee != nullptr) s = summary_of(ins.callee);
          if (s.writes_reachable) wrote_foreign_target_ = true;
          AV result = make_unknown();
          for (std::size_t j = 0; j < ins.args.size(); ++j) {
            const AV arg = operand(ins.args[j], at);
            if (arg.cls == AV::Cls::kBottom) continue;
            // Arguments past the bitmask width are treated as opaque:
            // always published.
            if (j >= 64 || (s.publishes & (std::uint64_t{1} << j)) != 0) {
              publish_value(arg, published);
            }
            published_params_ |= arg.params;  // callee may store it anywhere
            if (s.writes_reachable) clobber_reachable_cells(arg.sites);
          }
          switch (s.ret) {
            case Summary::Ret::kFresh:
              result = alloc_value(AV::Cls::kCaptured, i);
              break;
            case Summary::Ret::kParam:
              if (s.ret_param < ins.args.size()) {
                result = operand(ins.args[s.ret_param], at);
              }
              break;
            case Summary::Ret::kStatic:
              result = AV{AV::Cls::kStatic, 0, 0, false};
              break;
            case Summary::Ret::kPrivate:
              result = AV{AV::Cls::kPrivate, 0, 0, false};
              break;
            case Summary::Ret::kUnknown:
              break;
          }
          set_env(ins.dst, result);
          break;
        }
      }
    }
    if (published != published_end_) {
      published_end_ |= published;
      changed_ = true;
    }
    return changed_;
  }

  const Function& f_;
  const Program* prog_;
  SummaryCache* cache_;
  std::vector<AV> env_;
  std::vector<int> def_idx_;  // -1 = parameter, -2 = never defined
  std::map<std::pair<int, std::int64_t>, AV> cells_;
  std::unordered_map<std::size_t, std::size_t> site_ids_;
  std::uint64_t published_end_ = 0;
  std::uint64_t published_params_ = 0;
  /// Stored through a pointer that is not provably this function's own
  /// unpublished tx-local memory (or called something that may have).
  bool wrote_foreign_target_ = false;
  bool changed_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// AnalysisResult queries
// ---------------------------------------------------------------------------

Verdict AnalysisResult::site_verdict(const std::string& site) const {
  bool seen = false;
  Verdict v = Verdict::kUnknown;
  for (const auto& b : barriers) {
    if (b.site != site) continue;
    if (!seen) {
      v = b.verdict;
      seen = true;
    } else if (v != b.verdict) {
      return Verdict::kUnknown;
    }
  }
  return v;
}

bool AnalysisResult::site_elidable(const std::string& site) const {
  bool seen = false;
  for (const auto& b : barriers) {
    if (b.site != site) continue;
    seen = true;
    if (!b.elidable()) return false;
  }
  return seen;
}

bool AnalysisResult::site_demoted(const std::string& site) const {
  if (site_elidable(site)) return false;
  for (const auto& b : barriers) {
    if (b.site == site && b.demoted) return true;
  }
  return false;
}

AnalysisStats AnalysisResult::stats() const {
  AnalysisStats s;
  std::unordered_set<std::string> labels;
  for (const auto& b : barriers) labels.insert(b.site);
  s.sites_total = labels.size();
  for (const auto& label : labels) {
    if (site_elidable(label)) {
      ++s.proven;
    } else if (site_demoted(label)) {
      ++s.demoted;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

AnalysisResult analyze(const Function& f) {
  Engine e(f, nullptr, nullptr, /*param_markers=*/false);
  e.run();
  return e.result();
}

AnalysisResult analyze(const Program& p, const std::string& entry,
                       int inline_depth) {
  const Function* f = p.find(entry);
  if (f == nullptr) return AnalysisResult{};
  SummaryCache cache;
  if (inline_depth > 0) {
    const Function inlined = inline_calls(p, *f, inline_depth);
    Engine e(inlined, &p, &cache, /*param_markers=*/false);
    e.run();
    return e.result();
  }
  Engine e(*f, &p, &cache, /*param_markers=*/false);
  e.run();
  return e.result();
}

}  // namespace cstm::txir
