#include "txir/capture_analysis.hpp"

namespace cstm::txir {

bool AnalysisResult::site_elidable(const std::string& site) const {
  bool seen = false;
  for (const auto& b : barriers) {
    if (b.site != site) continue;
    seen = true;
    if (!b.elidable) return false;
  }
  return seen;
}

AnalysisResult analyze(const Function& f) {
  AnalysisResult res;
  res.states.assign(static_cast<std::size_t>(f.next_value),
                    ValueState::kUnknown);
  auto state = [&](ValueId v) -> ValueState {
    return v == kNoValue ? ValueState::kUnknown
                         : res.states[static_cast<std::size_t>(v)];
  };

  // Flow-insensitive fixpoint. The lattice has two points and transfer
  // functions are monotone (a value can only be *promoted* to captured when
  // all its sources are captured), so iteration terminates quickly; the
  // loop handles defs that textually precede their operands (phis in
  // loops).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Instr& ins : f.body) {
      ValueState next = ValueState::kUnknown;
      switch (ins.op) {
        case Op::kTxAlloc:
        case Op::kAllocaTx:
          next = ValueState::kCaptured;
          break;
        case Op::kAllocaPre:
          // Live-in stack slot: not captured (needs undo logging).
          next = ValueState::kUnknown;
          break;
        case Op::kGep:
        case Op::kMove:
          next = state(ins.a);
          break;
        case Op::kPhi:
          next = (state(ins.a) == ValueState::kCaptured &&
                  state(ins.b) == ValueState::kCaptured)
                     ? ValueState::kCaptured
                     : ValueState::kUnknown;
          break;
        case Op::kLoad:
          // A value loaded from memory is opaque even when the memory is
          // captured: the stored bits could be any pointer.
          next = ValueState::kUnknown;
          break;
        case Op::kCall:
        case Op::kUnknown:
          next = ValueState::kUnknown;
          break;
        case Op::kStore:
          continue;  // no def
      }
      if (ins.dst == kNoValue) continue;
      auto& slot = res.states[static_cast<std::size_t>(ins.dst)];
      if (next != slot) {
        // Monotonicity: only ever promote towards captured; a competing
        // unknown def of the same value (shouldn't happen in well-formed
        // SSA) keeps it unknown.
        if (slot == ValueState::kUnknown && next == ValueState::kCaptured) {
          slot = next;
          changed = true;
        }
      }
    }
  }

  for (const Instr& ins : f.body) {
    if (ins.op == Op::kLoad || ins.op == Op::kStore) {
      res.barriers.push_back(BarrierDecision{
          ins.site, ins.op == Op::kStore,
          state(ins.a) == ValueState::kCaptured});
    }
  }
  return res;
}

AnalysisResult analyze(const Program& p, const std::string& entry,
                       int inline_depth) {
  const Function* f = p.find(entry);
  if (f == nullptr) return AnalysisResult{};
  if (inline_depth <= 0) return analyze(*f);
  return analyze(inline_calls(p, *f, inline_depth));
}

}  // namespace cstm::txir
