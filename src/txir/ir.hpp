// Miniature IR over which the compiler capture analysis runs (paper
// Section 3.2). The Intel compiler performed intraprocedural pointer
// analysis on C ASTs and relied on inlining to see across calls; txir
// reproduces that pipeline on an explicit IR:
//
//   %p = txalloc 64           ; heap allocation inside the transaction
//   %q = alloca_tx 16         ; stack local declared inside the atomic block
//   %r = alloca_pre 16        ; stack local live before the transaction
//   %g = static_addr          ; address of immutable static/global data
//   %t = priv_addr            ; address of an annotated thread-private block
//   %f = gep %p, 8            ; pointer arithmetic within a block
//   %v = load %p, 8           ; memory read through %p  (site of a barrier)
//   store %p, 8, %v           ; memory write through %p (site of a barrier)
//   %x = move %y              ; copy
//   %z = phi %a, %b           ; control-flow join
//   %w = call foo, %p, %q     ; call; may be inlined or summarized if known
//   %c = unknown              ; opaque value (e.g. loaded from memory)
//
// The analysis (txir/capture_analysis.hpp) computes, per access site, a
// capture Verdict; loads/stores with a non-unknown verdict need no STM
// barrier (stores to static data excepted).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cstm::txir {

using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

enum class Op : std::uint8_t {
  kTxAlloc,    // dst = transaction-local heap allocation
  kAllocaTx,   // dst = stack slot created inside the atomic block
  kAllocaPre,  // dst = stack slot that pre-exists the transaction (live-in)
  kStaticAddr, // dst = address of immutable static/global data
  kPrivAddr,   // dst = address of an annotation-registered private block
  kGep,        // dst = a + constant offset (same block)
  kMove,       // dst = a
  kPhi,        // dst = join(a, b)
  kLoad,       // dst = *(a + offset)      [read barrier site]
  kStore,      // *(a + offset) = b        [write barrier site]
  kCall,       // dst = callee(args...)
  kUnknown,    // dst = opaque
};

struct Instr {
  Instr() = default;
  explicit Instr(Op o) : op(o) {}

  Op op = Op::kUnknown;
  ValueId dst = kNoValue;
  ValueId a = kNoValue;      // base pointer / first operand
  ValueId b = kNoValue;      // stored value / second phi operand
  std::int64_t offset = 0;   // gep/load/store displacement
  std::string callee;        // kCall only
  std::vector<ValueId> args; // kCall only
  std::string site;          // label for load/store barrier sites
};

struct Function {
  std::string name;
  std::vector<ValueId> params;  // parameters are opaque pointers/values
  std::vector<Instr> body;
  ValueId next_value = 0;

  ValueId fresh() { return next_value++; }
};

/// A program is a set of functions; analysis entry points name a function.
struct Program {
  std::unordered_map<std::string, Function> functions;

  Function& add(std::string name) {
    auto [it, inserted] = functions.try_emplace(name);
    it->second.name = std::move(name);
    return it->second;
  }
  const Function* find(const std::string& name) const {
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : &it->second;
  }
};

/// Builder with a fluent interface used by tests and the kernel encodings.
class FunctionBuilder {
 public:
  explicit FunctionBuilder(Function& f) : f_(f) {}

  ValueId param() {
    const ValueId v = f_.fresh();
    f_.params.push_back(v);
    return v;
  }
  ValueId txalloc() { return emit_def(Op::kTxAlloc); }
  ValueId alloca_tx() { return emit_def(Op::kAllocaTx); }
  ValueId alloca_pre() { return emit_def(Op::kAllocaPre); }
  ValueId static_addr() { return emit_def(Op::kStaticAddr); }
  ValueId priv_addr() { return emit_def(Op::kPrivAddr); }
  ValueId unknown() { return emit_def(Op::kUnknown); }
  ValueId gep(ValueId base, std::int64_t off) {
    Instr i{Op::kGep};
    i.dst = f_.fresh();
    i.a = base;
    i.offset = off;
    f_.body.push_back(i);
    return i.dst;
  }
  ValueId move(ValueId src) {
    Instr i{Op::kMove};
    i.dst = f_.fresh();
    i.a = src;
    f_.body.push_back(i);
    return i.dst;
  }
  ValueId phi(ValueId x, ValueId y) {
    Instr i{Op::kPhi};
    i.dst = f_.fresh();
    i.a = x;
    i.b = y;
    f_.body.push_back(i);
    return i.dst;
  }
  ValueId load(ValueId base, std::int64_t off, std::string site) {
    Instr i{Op::kLoad};
    i.dst = f_.fresh();
    i.a = base;
    i.offset = off;
    i.site = std::move(site);
    f_.body.push_back(i);
    return i.dst;
  }
  void store(ValueId base, std::int64_t off, ValueId value, std::string site) {
    Instr i{Op::kStore};
    i.a = base;
    i.b = value;
    i.offset = off;
    i.site = std::move(site);
    f_.body.push_back(i);
  }
  ValueId call(std::string callee, std::vector<ValueId> args) {
    Instr i{Op::kCall};
    i.dst = f_.fresh();
    i.callee = std::move(callee);
    i.args = std::move(args);
    f_.body.push_back(i);
    return i.dst;
  }

 private:
  ValueId emit_def(Op op) {
    Instr i{op};
    i.dst = f_.fresh();
    f_.body.push_back(i);
    return i.dst;
  }
  Function& f_;
};

/// Returns a copy of @p entry with calls to functions known in @p program
/// substituted (value-renamed) up to @p depth levels. Remaining calls stay
/// opaque — exactly the paper's "intraprocedural analysis + inlining".
Function inline_calls(const Program& program, const Function& entry, int depth);

/// Human-readable dump (diagnostics and golden tests).
std::string to_string(const Function& f);

}  // namespace cstm::txir
