// Miniature IR over which the compiler capture analysis runs (paper
// Section 3.2). The Intel compiler performed intraprocedural pointer
// analysis on C ASTs and relied on inlining to see across calls; txir
// reproduces that pipeline on an explicit IR.
//
// A function is a genuine control-flow graph: a list of basic blocks,
// each a run of non-terminator instructions closed by exactly one
// terminator (`br`, `br_cond`, or `ret`). Control-flow joins use
// block-argument-style phis: a block declares parameters, and every
// branch to it passes one argument per parameter — the (pred, value)
// pairs of a classic phi, but attached to the edge where they belong.
//
//   bb0:
//     %1 = txalloc              ; heap allocation inside the transaction
//     %2 = alloca_tx            ; stack local declared inside the atomic block
//     %3 = alloca_pre           ; stack local live before the transaction
//     %4 = static_addr          ; address of immutable static/global data
//     %5 = priv_addr            ; address of an annotated thread-private block
//     %6 = gep %1, 8            ; pointer arithmetic within a block
//     %7 = load %1+8            ; memory read  (site of a barrier)
//     store %1+8, %7            ; memory write (site of a barrier)
//     %8 = move %7              ; copy
//     %9 = call foo, %1, %2     ; call; may be inlined or summarized if known
//     %10 = unknown             ; opaque value (e.g. loaded from memory)
//     br_cond %10, bb1(%1), bb2(%2)
//   bb1(%11):                   ; block argument = phi over predecessors
//     br bb2(%11)
//   bb2(%12):
//     ret %12
//
// The analysis (txir/capture_analysis.hpp) runs a worklist dataflow over
// the blocks and computes, per access site, a capture Verdict;
// loads/stores with a non-unknown verdict need no STM barrier (stores to
// static data excepted).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cstm::txir {

using ValueId = std::int32_t;
using BlockId = std::int32_t;
inline constexpr ValueId kNoValue = -1;
inline constexpr BlockId kNoBlock = -1;

enum class Op : std::uint8_t {
  kTxAlloc,     // dst = transaction-local heap allocation
  kAllocaTx,    // dst = stack slot created inside the atomic block
  kAllocaPre,   // dst = stack slot that pre-exists the transaction (live-in)
  kStaticAddr,  // dst = address of immutable static/global data
  kPrivAddr,    // dst = address of an annotation-registered private block
  kGep,         // dst = a + constant offset (same object)
  kMove,        // dst = a
  kLoad,        // dst = *(a + offset)      [read barrier site]
  kStore,       // *(a + offset) = b        [write barrier site]
  kCall,        // dst = callee(args...)
  kUnknown,     // dst = opaque
};

struct Instr {
  Instr() = default;
  explicit Instr(Op o) : op(o) {}

  Op op = Op::kUnknown;
  ValueId dst = kNoValue;
  ValueId a = kNoValue;       // base pointer / first operand
  ValueId b = kNoValue;       // stored value
  std::int64_t offset = 0;    // gep/load/store displacement
  std::string callee;         // kCall only
  std::vector<ValueId> args;  // kCall only
  std::string site;           // label for load/store barrier sites
};

enum class TermOp : std::uint8_t {
  kNone,    // unterminated (verifier error; the builder's initial state)
  kBr,      // unconditional branch to `then_`
  kBrCond,  // conditional: cond != 0 -> then_, else els
  kRet,     // function return (value optional)
};

/// A branch edge: the target block plus one argument per target parameter.
struct BranchTarget {
  BlockId block = kNoBlock;
  std::vector<ValueId> args;
};

struct Terminator {
  TermOp op = TermOp::kNone;
  ValueId cond = kNoValue;  // kBrCond only
  ValueId ret = kNoValue;   // kRet only; kNoValue = void return
  BranchTarget then_;       // kBr/kBrCond
  BranchTarget els;         // kBrCond only
};

struct BasicBlock {
  BlockId id = kNoBlock;
  std::string label;             // diagnostics only
  std::vector<ValueId> params;   // block-argument-style phis
  std::vector<Instr> body;       // non-terminator instructions
  Terminator term;
};

struct Function {
  std::string name;
  std::vector<ValueId> params;  // parameters are opaque pointers/values
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block
  ValueId next_value = 0;

  ValueId fresh() { return next_value++; }
  BasicBlock& entry() { return blocks.front(); }
  const BasicBlock& entry() const { return blocks.front(); }
};

/// A program is a set of functions; analysis entry points name a function.
struct Program {
  std::unordered_map<std::string, Function> functions;

  Function& add(std::string name) {
    auto [it, inserted] = functions.try_emplace(name);
    it->second.name = std::move(name);
    return it->second;
  }
  const Function* find(const std::string& name) const {
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : &it->second;
  }
};

/// Builder with a fluent interface used by tests and the kernel encodings.
/// Creates the entry block on construction; instructions append to the
/// current block (switch with `set_block`). Every block must be closed
/// with `br` / `br_cond` / `ret` before `verify` accepts the function.
class FunctionBuilder {
 public:
  explicit FunctionBuilder(Function& f) : f_(f) {
    if (f_.blocks.empty()) (void)block("entry");
    cur_ = 0;
  }

  /// Creates a new (empty, unterminated) block; does not switch to it.
  BlockId block(std::string label = "") {
    BasicBlock bb;
    bb.id = static_cast<BlockId>(f_.blocks.size());
    bb.label = std::move(label);
    f_.blocks.push_back(std::move(bb));
    return f_.blocks.back().id;
  }
  void set_block(BlockId b) { cur_ = b; }
  BlockId current_block() const { return cur_; }

  /// Adds a parameter (phi) to block @p b and returns its value.
  ValueId block_param(BlockId b) {
    const ValueId v = f_.fresh();
    f_.blocks[static_cast<std::size_t>(b)].params.push_back(v);
    return v;
  }

  ValueId param() {
    const ValueId v = f_.fresh();
    f_.params.push_back(v);
    return v;
  }
  ValueId txalloc() { return emit_def(Op::kTxAlloc); }
  ValueId alloca_tx() { return emit_def(Op::kAllocaTx); }
  ValueId alloca_pre() { return emit_def(Op::kAllocaPre); }
  ValueId static_addr() { return emit_def(Op::kStaticAddr); }
  ValueId priv_addr() { return emit_def(Op::kPrivAddr); }
  ValueId unknown() { return emit_def(Op::kUnknown); }
  ValueId gep(ValueId base, std::int64_t off) {
    Instr i{Op::kGep};
    i.dst = f_.fresh();
    i.a = base;
    i.offset = off;
    push(std::move(i));
    return cur().body.back().dst;
  }
  ValueId move(ValueId src) {
    Instr i{Op::kMove};
    i.dst = f_.fresh();
    i.a = src;
    push(std::move(i));
    return cur().body.back().dst;
  }
  ValueId load(ValueId base, std::int64_t off, std::string site) {
    Instr i{Op::kLoad};
    i.dst = f_.fresh();
    i.a = base;
    i.offset = off;
    i.site = std::move(site);
    push(std::move(i));
    return cur().body.back().dst;
  }
  void store(ValueId base, std::int64_t off, ValueId value, std::string site) {
    Instr i{Op::kStore};
    i.a = base;
    i.b = value;
    i.offset = off;
    i.site = std::move(site);
    push(std::move(i));
  }
  ValueId call(std::string callee, std::vector<ValueId> args) {
    Instr i{Op::kCall};
    i.dst = f_.fresh();
    i.callee = std::move(callee);
    i.args = std::move(args);
    push(std::move(i));
    return cur().body.back().dst;
  }

  void br(BlockId target, std::vector<ValueId> args = {}) {
    Terminator& t = cur().term;
    t.op = TermOp::kBr;
    t.then_ = BranchTarget{target, std::move(args)};
  }
  void br_cond(ValueId cond, BlockId then_b, std::vector<ValueId> then_args,
               BlockId else_b, std::vector<ValueId> else_args) {
    Terminator& t = cur().term;
    t.op = TermOp::kBrCond;
    t.cond = cond;
    t.then_ = BranchTarget{then_b, std::move(then_args)};
    t.els = BranchTarget{else_b, std::move(else_args)};
  }
  void br_cond(ValueId cond, BlockId then_b, BlockId else_b) {
    br_cond(cond, then_b, {}, else_b, {});
  }
  void ret(ValueId value = kNoValue) {
    Terminator& t = cur().term;
    t.op = TermOp::kRet;
    t.ret = value;
  }

 private:
  BasicBlock& cur() { return f_.blocks[static_cast<std::size_t>(cur_)]; }
  void push(Instr i) { cur().body.push_back(std::move(i)); }
  ValueId emit_def(Op op) {
    Instr i{op};
    i.dst = f_.fresh();
    push(std::move(i));
    return cur().body.back().dst;
  }
  Function& f_;
  BlockId cur_ = 0;
};

/// Derived CFG facts: successor/predecessor lists, a reverse postorder of
/// the reachable blocks, immediate dominators (Cooper-Harvey-Kennedy), and
/// the edge classification the analysis' loop handling is built on.
struct Cfg {
  std::vector<std::vector<BlockId>> succs;
  std::vector<std::vector<BlockId>> preds;
  std::vector<BlockId> rpo;       // reachable blocks in reverse postorder
  std::vector<int> rpo_index;     // block -> position in rpo; -1 unreachable
  std::vector<BlockId> idom;      // immediate dominator; entry's is itself;
                                  // kNoBlock for unreachable blocks

  /// Back-edges u->v where v dominates u: the latches of natural loops.
  std::vector<std::pair<BlockId, BlockId>> back_edges;
  /// Retreating edges u->v with rpo_index[v] <= rpo_index[u]. Every back
  /// edge retreats; a retreating edge that is NOT a back-edge means the
  /// CFG is irreducible (a loop with multiple entries).
  std::vector<std::pair<BlockId, BlockId>> retreating_edges;

  bool reachable(BlockId b) const {
    return b >= 0 && static_cast<std::size_t>(b) < rpo_index.size() &&
           rpo_index[static_cast<std::size_t>(b)] >= 0;
  }
  /// Does @p a dominate @p b? (Reflexive; false for unreachable blocks.)
  bool dominates(BlockId a, BlockId b) const;
  bool irreducible() const {
    return retreating_edges.size() != back_edges.size();
  }
};

Cfg build_cfg(const Function& f);

/// Structural verifier. Returns human-readable diagnostics; empty = valid.
/// Checks: at least one block, entry has no params, every block is
/// terminated, branch targets exist, branch argument counts match the
/// target's parameter counts, every value is defined exactly once, every
/// use is dominated by its definition (with block params defined at the
/// head of their block and branch arguments used at the end of the
/// predecessor).
std::vector<std::string> verify(const Function& f);

/// Returns a copy of @p entry with calls to functions known in @p program
/// substituted (CFG spliced, value-renamed, rets rewired to a continuation
/// block) up to @p depth levels. Remaining calls stay opaque — exactly the
/// paper's "intraprocedural analysis + inlining".
Function inline_calls(const Program& program, const Function& entry, int depth);

/// Human-readable dump (diagnostics and golden tests).
std::string to_string(const Function& f);

}  // namespace cstm::txir
