#include "txir/ir.hpp"

#include <sstream>

namespace cstm::txir {

namespace {

// Appends a renamed copy of @p callee's body to @p out, mapping the callee's
// parameters to the call's argument values. Returns the value the call's
// result maps to (the callee's last defined value, or a fresh unknown).
ValueId splice(const Program& program, Function& out, const Function& callee,
               const std::vector<ValueId>& args, int depth);

void inline_into(const Program& program, Function& out, const Function& src,
                 std::vector<ValueId>& map, int depth) {
  auto mapped = [&](ValueId v) -> ValueId {
    return v == kNoValue ? kNoValue : map[static_cast<std::size_t>(v)];
  };
  for (const Instr& ins : src.body) {
    if (ins.op == Op::kCall) {
      const Function* callee = depth > 0 ? program.find(ins.callee) : nullptr;
      if (callee != nullptr) {
        std::vector<ValueId> call_args;
        call_args.reserve(ins.args.size());
        for (ValueId a : ins.args) call_args.push_back(mapped(a));
        const ValueId result = splice(program, out, *callee, call_args, depth - 1);
        if (ins.dst != kNoValue) map[static_cast<std::size_t>(ins.dst)] = result;
        continue;
      }
    }
    Instr copy = ins;
    copy.a = mapped(ins.a);
    copy.b = mapped(ins.b);
    copy.args.clear();
    for (ValueId a : ins.args) copy.args.push_back(mapped(a));
    if (ins.dst != kNoValue) {
      copy.dst = out.fresh();
      map[static_cast<std::size_t>(ins.dst)] = copy.dst;
    }
    out.body.push_back(std::move(copy));
  }
}

ValueId splice(const Program& program, Function& out, const Function& callee,
               const std::vector<ValueId>& args, int depth) {
  std::vector<ValueId> map(static_cast<std::size_t>(callee.next_value), kNoValue);
  for (std::size_t i = 0; i < callee.params.size(); ++i) {
    const ValueId formal = callee.params[i];
    ValueId actual = kNoValue;
    if (i < args.size()) actual = args[i];
    if (actual == kNoValue) {
      // Missing argument: opaque.
      Instr u{Op::kUnknown};
      u.dst = out.fresh();
      out.body.push_back(u);
      actual = u.dst;
    }
    map[static_cast<std::size_t>(formal)] = actual;
  }
  inline_into(program, out, callee, map, depth);
  // Convention: a callee "returns" its last defined value; if it defines
  // nothing, the result is opaque.
  ValueId result = kNoValue;
  for (auto it = callee.body.rbegin(); it != callee.body.rend(); ++it) {
    if (it->dst != kNoValue) {
      result = map[static_cast<std::size_t>(it->dst)];
      break;
    }
  }
  if (result == kNoValue) {
    Instr u{Op::kUnknown};
    u.dst = out.fresh();
    out.body.push_back(u);
    result = u.dst;
  }
  return result;
}

}  // namespace

Function inline_calls(const Program& program, const Function& entry, int depth) {
  Function out;
  out.name = entry.name + ".inlined";
  std::vector<ValueId> map(static_cast<std::size_t>(entry.next_value), kNoValue);
  for (ValueId p : entry.params) {
    const ValueId np = out.fresh();
    out.params.push_back(np);
    map[static_cast<std::size_t>(p)] = np;
  }
  inline_into(program, out, entry, map, depth);
  return out;
}

std::string to_string(const Function& f) {
  std::ostringstream os;
  os << "func " << f.name << "(";
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    os << (i != 0 ? ", " : "") << "%" << f.params[i];
  }
  os << ")\n";
  auto v = [](ValueId id) {
    return id == kNoValue ? std::string("_") : "%" + std::to_string(id);
  };
  for (const Instr& ins : f.body) {
    os << "  ";
    switch (ins.op) {
      case Op::kTxAlloc: os << v(ins.dst) << " = txalloc"; break;
      case Op::kAllocaTx: os << v(ins.dst) << " = alloca_tx"; break;
      case Op::kAllocaPre: os << v(ins.dst) << " = alloca_pre"; break;
      case Op::kStaticAddr: os << v(ins.dst) << " = static_addr"; break;
      case Op::kPrivAddr: os << v(ins.dst) << " = priv_addr"; break;
      case Op::kGep:
        os << v(ins.dst) << " = gep " << v(ins.a) << ", " << ins.offset;
        break;
      case Op::kMove: os << v(ins.dst) << " = move " << v(ins.a); break;
      case Op::kPhi:
        os << v(ins.dst) << " = phi " << v(ins.a) << ", " << v(ins.b);
        break;
      case Op::kLoad:
        os << v(ins.dst) << " = load " << v(ins.a) << "+" << ins.offset
           << "  ; site " << ins.site;
        break;
      case Op::kStore:
        os << "store " << v(ins.a) << "+" << ins.offset << ", " << v(ins.b)
           << "  ; site " << ins.site;
        break;
      case Op::kCall: {
        os << v(ins.dst) << " = call " << ins.callee << "(";
        for (std::size_t i = 0; i < ins.args.size(); ++i) {
          os << (i != 0 ? ", " : "") << v(ins.args[i]);
        }
        os << ")";
        break;
      }
      case Op::kUnknown: os << v(ins.dst) << " = unknown"; break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cstm::txir
