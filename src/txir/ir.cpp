#include "txir/ir.hpp"

#include <algorithm>
#include <sstream>

namespace cstm::txir {

// ---------------------------------------------------------------------------
// CFG construction: successors, reverse postorder, dominators, edge classes
// ---------------------------------------------------------------------------

Cfg build_cfg(const Function& f) {
  Cfg cfg;
  const std::size_t n = f.blocks.size();
  cfg.succs.assign(n, {});
  cfg.preds.assign(n, {});
  cfg.rpo_index.assign(n, -1);
  cfg.idom.assign(n, kNoBlock);
  if (n == 0) return cfg;

  auto in_range = [&](BlockId b) {
    return b >= 0 && static_cast<std::size_t>(b) < n;
  };
  for (const BasicBlock& bb : f.blocks) {
    const Terminator& t = bb.term;
    if (t.op == TermOp::kBr || t.op == TermOp::kBrCond) {
      if (in_range(t.then_.block)) {
        cfg.succs[static_cast<std::size_t>(bb.id)].push_back(t.then_.block);
      }
    }
    if (t.op == TermOp::kBrCond && in_range(t.els.block)) {
      cfg.succs[static_cast<std::size_t>(bb.id)].push_back(t.els.block);
    }
  }
  for (std::size_t b = 0; b < n; ++b) {
    for (BlockId s : cfg.succs[b]) {
      cfg.preds[static_cast<std::size_t>(s)].push_back(
          static_cast<BlockId>(b));
    }
  }

  // Iterative DFS postorder from the entry block, then reverse.
  std::vector<std::uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<BlockId, std::size_t>> stack;
  std::vector<BlockId> postorder;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& succ = cfg.succs[static_cast<std::size_t>(b)];
    if (next < succ.size()) {
      const BlockId s = succ[next++];
      if (state[static_cast<std::size_t>(s)] == 0) {
        state[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[static_cast<std::size_t>(b)] = 2;
      postorder.push_back(b);
      stack.pop_back();
    }
  }
  cfg.rpo.assign(postorder.rbegin(), postorder.rend());
  for (std::size_t i = 0; i < cfg.rpo.size(); ++i) {
    cfg.rpo_index[static_cast<std::size_t>(cfg.rpo[i])] = static_cast<int>(i);
  }

  // Immediate dominators: Cooper-Harvey-Kennedy iteration over the RPO.
  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (cfg.rpo_index[static_cast<std::size_t>(a)] >
             cfg.rpo_index[static_cast<std::size_t>(b)]) {
        a = cfg.idom[static_cast<std::size_t>(a)];
      }
      while (cfg.rpo_index[static_cast<std::size_t>(b)] >
             cfg.rpo_index[static_cast<std::size_t>(a)]) {
        b = cfg.idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  cfg.idom[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : cfg.rpo) {
      if (b == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : cfg.preds[static_cast<std::size_t>(b)]) {
        if (!cfg.reachable(p) ||
            cfg.idom[static_cast<std::size_t>(p)] == kNoBlock) {
          continue;
        }
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock &&
          cfg.idom[static_cast<std::size_t>(b)] != new_idom) {
        cfg.idom[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }

  // Edge classification: retreating (rpo-backward) vs true back-edges
  // (target dominates source). A retreating edge that is not a back-edge
  // is the signature of an irreducible (multi-entry) loop.
  for (BlockId u : cfg.rpo) {
    for (BlockId v : cfg.succs[static_cast<std::size_t>(u)]) {
      if (!cfg.reachable(v)) continue;
      if (cfg.rpo_index[static_cast<std::size_t>(v)] <=
          cfg.rpo_index[static_cast<std::size_t>(u)]) {
        cfg.retreating_edges.emplace_back(u, v);
        if (cfg.dominates(v, u)) cfg.back_edges.emplace_back(u, v);
      }
    }
  }
  return cfg;
}

bool Cfg::dominates(BlockId a, BlockId b) const {
  if (!reachable(a) || !reachable(b)) return false;
  while (true) {
    if (b == a) return true;
    if (b == 0) return false;
    b = idom[static_cast<std::size_t>(b)];
  }
}

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

namespace {

struct DefPoint {
  BlockId block = kNoBlock;
  int index = 0;  // -1 = block param / function param; else body position
};

}  // namespace

std::vector<std::string> verify(const Function& f) {
  std::vector<std::string> errs;
  auto err = [&](std::string msg) {
    errs.push_back(f.name + ": " + std::move(msg));
  };
  if (f.blocks.empty()) {
    err("function has no blocks");
    return errs;
  }
  if (!f.entry().params.empty()) {
    err("entry block bb0 must not take parameters");
  }

  const std::size_t nblocks = f.blocks.size();
  auto block_name = [&](BlockId b) { return "bb" + std::to_string(b); };

  // Block ids must equal their vector index: build_cfg and the analysis
  // engine index every side table by id, so a stale/duplicated id would
  // turn into a silently wrong CFG (or an out-of-bounds access) instead
  // of a diagnostic.
  for (std::size_t i = 0; i < nblocks; ++i) {
    if (f.blocks[i].id != static_cast<BlockId>(i)) {
      err("block at index " + std::to_string(i) + " carries id " +
          std::to_string(f.blocks[i].id) + " (ids must match their index)");
    }
  }
  if (!errs.empty()) return errs;

  // Single-definition check + def points for the dominance pass.
  std::vector<DefPoint> defs;
  std::vector<bool> defined;
  const auto nvals = static_cast<std::size_t>(
      std::max<ValueId>(f.next_value, 0));
  defs.assign(nvals, DefPoint{});
  defined.assign(nvals, false);
  auto define = [&](ValueId v, BlockId b, int idx, const char* what) {
    if (v == kNoValue) return;
    if (v < 0 || static_cast<std::size_t>(v) >= nvals) {
      err(std::string(what) + " defines out-of-range value %" +
          std::to_string(v));
      return;
    }
    if (defined[static_cast<std::size_t>(v)]) {
      err(std::string(what) + " redefines value %" + std::to_string(v));
      return;
    }
    defined[static_cast<std::size_t>(v)] = true;
    defs[static_cast<std::size_t>(v)] = DefPoint{b, idx};
  };
  for (ValueId p : f.params) define(p, 0, -1, "function parameter");
  for (const BasicBlock& bb : f.blocks) {
    for (ValueId p : bb.params) {
      define(p, bb.id, -1, ("block param of " + block_name(bb.id)).c_str());
    }
    for (std::size_t i = 0; i < bb.body.size(); ++i) {
      define(bb.body[i].dst, bb.id, static_cast<int>(i),
             (block_name(bb.id) + " instruction").c_str());
    }
  }

  // Terminator structure: every block closed, targets valid, branch
  // argument arity equals the target's parameter arity.
  auto check_target = [&](const BasicBlock& bb, const BranchTarget& t,
                          const char* which) {
    if (t.block < 0 || static_cast<std::size_t>(t.block) >= nblocks) {
      err(block_name(bb.id) + " " + which + " targets nonexistent block " +
          std::to_string(t.block));
      return;
    }
    const auto& params =
        f.blocks[static_cast<std::size_t>(t.block)].params;
    if (t.args.size() != params.size()) {
      err(block_name(bb.id) + " " + which + " passes " +
          std::to_string(t.args.size()) + " args to " + block_name(t.block) +
          " which takes " + std::to_string(params.size()) + " params");
    }
  };
  for (const BasicBlock& bb : f.blocks) {
    switch (bb.term.op) {
      case TermOp::kNone:
        err(block_name(bb.id) + " is not terminated");
        break;
      case TermOp::kBr:
        check_target(bb, bb.term.then_, "br");
        break;
      case TermOp::kBrCond:
        check_target(bb, bb.term.then_, "br_cond(then)");
        check_target(bb, bb.term.els, "br_cond(else)");
        break;
      case TermOp::kRet:
        break;
    }
  }
  if (!errs.empty()) return errs;  // dominance needs a structurally sound CFG

  // Dominance of uses. Uses in a block body happen at their instruction
  // index; terminator operands (cond, ret, branch args) at body.size().
  const Cfg cfg = build_cfg(f);
  auto check_use = [&](ValueId v, BlockId b, int idx, const char* what) {
    if (v == kNoValue) return;
    if (v < 0 || static_cast<std::size_t>(v) >= nvals ||
        !defined[static_cast<std::size_t>(v)]) {
      err(block_name(b) + " " + what + " uses undefined value %" +
          std::to_string(v));
      return;
    }
    if (!cfg.reachable(b)) return;  // dead code: nothing to prove
    const DefPoint d = defs[static_cast<std::size_t>(v)];
    const bool ok = d.block == b ? d.index < idx : cfg.dominates(d.block, b);
    if (!ok) {
      err(block_name(b) + " " + what + " uses %" + std::to_string(v) +
          " which does not dominate the use");
    }
  };
  for (const BasicBlock& bb : f.blocks) {
    for (std::size_t i = 0; i < bb.body.size(); ++i) {
      const Instr& ins = bb.body[i];
      const int at = static_cast<int>(i);
      check_use(ins.a, bb.id, at, "operand");
      check_use(ins.b, bb.id, at, "operand");
      for (ValueId a : ins.args) check_use(a, bb.id, at, "call argument");
    }
    const int at = static_cast<int>(bb.body.size());
    const Terminator& t = bb.term;
    if (t.op == TermOp::kBrCond) check_use(t.cond, bb.id, at, "branch cond");
    if (t.op == TermOp::kRet) check_use(t.ret, bb.id, at, "return value");
    if (t.op == TermOp::kBr || t.op == TermOp::kBrCond) {
      for (ValueId a : t.then_.args) check_use(a, bb.id, at, "branch arg");
    }
    if (t.op == TermOp::kBrCond) {
      for (ValueId a : t.els.args) check_use(a, bb.id, at, "branch arg");
    }
  }
  return errs;
}

// ---------------------------------------------------------------------------
// Inlining: CFG splicing with continuation blocks
// ---------------------------------------------------------------------------

namespace {

class Inliner {
 public:
  Inliner(const Program& program, Function& out)
      : program_(program), out_(out) {}

  /// Copies @p src into out_. @p vmap maps src value ids to out value ids;
  /// function/block params must be pre-seeded or are assigned here. Rets
  /// are rewritten to `br cont(value)` when @p cont is a real block (void
  /// rets pass a fresh unknown). Calls to known functions are themselves
  /// spliced while @p depth > 0.
  void copy_function(const Function& src, std::vector<ValueId>& vmap,
                     BlockId cont, int depth) {
    // Pre-create one out-block per src block (calls will append extra
    // continuation blocks between them) and pre-assign every destination
    // value, so forward references in branch arguments resolve.
    std::vector<BlockId> bmap(src.blocks.size(), kNoBlock);
    for (const BasicBlock& sb : src.blocks) {
      const BlockId nb = new_block(src.name + "." + (sb.label.empty()
                                                         ? "bb" + std::to_string(sb.id)
                                                         : sb.label));
      bmap[static_cast<std::size_t>(sb.id)] = nb;
      for (ValueId p : sb.params) {
        const ValueId np = out_.fresh();
        block(nb).params.push_back(np);
        map(vmap, p, np);
      }
    }
    for (const BasicBlock& sb : src.blocks) {
      for (const Instr& ins : sb.body) {
        if (ins.dst != kNoValue && at(vmap, ins.dst) == kNoValue) {
          map(vmap, ins.dst, out_.fresh());
        }
      }
    }

    for (const BasicBlock& sb : src.blocks) {
      BlockId cursor = bmap[static_cast<std::size_t>(sb.id)];
      for (const Instr& ins : sb.body) {
        const Function* callee =
            ins.op == Op::kCall && depth > 0 ? program_.find(ins.callee)
                                             : nullptr;
        if (callee != nullptr) {
          cursor = splice_call(ins, *callee, vmap, cursor, depth);
          continue;
        }
        Instr copy = ins;
        copy.a = at(vmap, ins.a);
        copy.b = at(vmap, ins.b);
        copy.args.clear();
        for (ValueId a : ins.args) copy.args.push_back(at(vmap, a));
        if (ins.dst != kNoValue) copy.dst = at(vmap, ins.dst);
        block(cursor).body.push_back(std::move(copy));
      }
      emit_terminator(sb.term, vmap, bmap, cursor, cont);
    }
  }

 private:
  BasicBlock& block(BlockId b) {
    return out_.blocks[static_cast<std::size_t>(b)];
  }
  BlockId new_block(std::string label) {
    BasicBlock bb;
    bb.id = static_cast<BlockId>(out_.blocks.size());
    bb.label = std::move(label);
    out_.blocks.push_back(std::move(bb));
    return out_.blocks.back().id;
  }
  static ValueId at(const std::vector<ValueId>& vmap, ValueId v) {
    return v == kNoValue ? kNoValue : vmap[static_cast<std::size_t>(v)];
  }
  static void map(std::vector<ValueId>& vmap, ValueId from, ValueId to) {
    vmap[static_cast<std::size_t>(from)] = to;
  }
  ValueId emit_unknown(BlockId b) {
    Instr u{Op::kUnknown};
    u.dst = out_.fresh();
    block(b).body.push_back(u);
    return u.dst;
  }

  /// Splits the current block at a call: branch to a copy of the callee
  /// whose rets feed a continuation block whose single parameter is the
  /// call result. Returns the continuation block (the new cursor).
  BlockId splice_call(const Instr& call, const Function& callee,
                      std::vector<ValueId>& vmap, BlockId cursor, int depth) {
    const BlockId cont = new_block(call.callee + ".cont");
    // The call's pre-assigned result id becomes the continuation's param.
    // A result-less call (dst == kNoValue, representable when the Instr is
    // assembled by hand) still gets a fresh param — just no vmap entry.
    ValueId result = call.dst == kNoValue ? kNoValue : at(vmap, call.dst);
    if (result == kNoValue) {
      result = out_.fresh();
      if (call.dst != kNoValue) map(vmap, call.dst, result);
    }
    block(cont).params.push_back(result);

    std::vector<ValueId> cvmap(
        static_cast<std::size_t>(callee.next_value), kNoValue);
    for (std::size_t i = 0; i < callee.params.size(); ++i) {
      ValueId actual =
          i < call.args.size() ? at(vmap, call.args[i]) : kNoValue;
      if (actual == kNoValue) actual = emit_unknown(cursor);  // missing arg
      map(cvmap, callee.params[i], actual);
    }
    const BlockId callee_entry = static_cast<BlockId>(out_.blocks.size());
    copy_function(callee, cvmap, cont, depth - 1);
    block(cursor).term.op = TermOp::kBr;
    block(cursor).term.then_ = BranchTarget{callee_entry, {}};
    return cont;
  }

  void emit_terminator(const Terminator& t, std::vector<ValueId>& vmap,
                       const std::vector<BlockId>& bmap, BlockId cursor,
                       BlockId cont) {
    Terminator nt;
    nt.op = t.op;
    auto map_target = [&](const BranchTarget& bt) {
      BranchTarget n;
      n.block = bt.block >= 0 &&
                        static_cast<std::size_t>(bt.block) < bmap.size()
                    ? bmap[static_cast<std::size_t>(bt.block)]
                    : bt.block;
      for (ValueId a : bt.args) n.args.push_back(at(vmap, a));
      return n;
    };
    switch (t.op) {
      case TermOp::kBr:
        nt.then_ = map_target(t.then_);
        break;
      case TermOp::kBrCond:
        nt.cond = at(vmap, t.cond);
        nt.then_ = map_target(t.then_);
        nt.els = map_target(t.els);
        break;
      case TermOp::kRet:
        if (cont != kNoBlock) {
          ValueId rv = at(vmap, t.ret);
          if (rv == kNoValue) rv = emit_unknown(cursor);
          nt.op = TermOp::kBr;
          nt.then_ = BranchTarget{cont, {rv}};
        } else {
          nt.ret = at(vmap, t.ret);
        }
        break;
      case TermOp::kNone:
        break;
    }
    block(cursor).term = std::move(nt);
  }

  const Program& program_;
  Function& out_;
};

}  // namespace

Function inline_calls(const Program& program, const Function& entry,
                      int depth) {
  Function out;
  out.name = entry.name + ".inlined";
  std::vector<ValueId> vmap(static_cast<std::size_t>(entry.next_value),
                            kNoValue);
  for (ValueId p : entry.params) {
    const ValueId np = out.fresh();
    out.params.push_back(np);
    vmap[static_cast<std::size_t>(p)] = np;
  }
  Inliner(program, out).copy_function(entry, vmap, kNoBlock, depth);
  return out;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

std::string to_string(const Function& f) {
  std::ostringstream os;
  // Built with append (not `"%" + to_string(...)`) to dodge a GCC 12
  // -Wrestrict false positive on char* + string&& in system headers.
  auto v = [](ValueId id) {
    if (id == kNoValue) return std::string("_");
    std::string s = "%";
    s += std::to_string(id);
    return s;
  };
  os << "func " << f.name << "(";
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    os << (i != 0 ? ", " : "") << v(f.params[i]);
  }
  os << ")\n";
  auto target = [&](const BranchTarget& t) {
    std::ostringstream ts;
    ts << "bb" << t.block << "(";
    for (std::size_t i = 0; i < t.args.size(); ++i) {
      ts << (i != 0 ? ", " : "") << v(t.args[i]);
    }
    ts << ")";
    return ts.str();
  };
  for (const BasicBlock& bb : f.blocks) {
    os << "bb" << bb.id;
    if (!bb.params.empty()) {
      os << "(";
      for (std::size_t i = 0; i < bb.params.size(); ++i) {
        os << (i != 0 ? ", " : "") << v(bb.params[i]);
      }
      os << ")";
    }
    if (!bb.label.empty()) os << "  ; " << bb.label;
    os << ":\n";
    for (const Instr& ins : bb.body) {
      os << "  ";
      switch (ins.op) {
        case Op::kTxAlloc: os << v(ins.dst) << " = txalloc"; break;
        case Op::kAllocaTx: os << v(ins.dst) << " = alloca_tx"; break;
        case Op::kAllocaPre: os << v(ins.dst) << " = alloca_pre"; break;
        case Op::kStaticAddr: os << v(ins.dst) << " = static_addr"; break;
        case Op::kPrivAddr: os << v(ins.dst) << " = priv_addr"; break;
        case Op::kGep:
          os << v(ins.dst) << " = gep " << v(ins.a) << ", " << ins.offset;
          break;
        case Op::kMove: os << v(ins.dst) << " = move " << v(ins.a); break;
        case Op::kLoad:
          os << v(ins.dst) << " = load " << v(ins.a) << "+" << ins.offset
             << "  ; site " << ins.site;
          break;
        case Op::kStore:
          os << "store " << v(ins.a) << "+" << ins.offset << ", " << v(ins.b)
             << "  ; site " << ins.site;
          break;
        case Op::kCall: {
          os << v(ins.dst) << " = call " << ins.callee << "(";
          for (std::size_t i = 0; i < ins.args.size(); ++i) {
            os << (i != 0 ? ", " : "") << v(ins.args[i]);
          }
          os << ")";
          break;
        }
        case Op::kUnknown: os << v(ins.dst) << " = unknown"; break;
      }
      os << "\n";
    }
    os << "  ";
    switch (bb.term.op) {
      case TermOp::kNone: os << "<unterminated>"; break;
      case TermOp::kBr: os << "br " << target(bb.term.then_); break;
      case TermOp::kBrCond:
        os << "br_cond " << v(bb.term.cond) << ", " << target(bb.term.then_)
           << ", " << target(bb.term.els);
        break;
      case TermOp::kRet:
        os << "ret";
        if (bb.term.ret != kNoValue) os << " " << v(bb.term.ret);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cstm::txir
