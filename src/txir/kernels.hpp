// txir encodings of representative STAMP transactional kernels.
//
// The execution-side benchmarks (src/stamp) tag each access site with a
// static_captured flag consumed by the "compiler" configuration. These
// kernels are the analysis-side justification: tests run the capture
// analysis over them and cross-check that every site the benchmarks elide
// statically is proven captured here, and every site they keep is not.
#pragma once

#include <string>
#include <vector>

#include "txir/ir.hpp"

namespace cstm::txir {

/// Builds the kernel program (entry functions listed below plus inlinable
/// helpers such as the pvector allocator).
Program stamp_kernels();

struct KernelExpectation {
  std::string entry;
  int inline_depth;                         // 0 = strictly intraprocedural
  std::vector<std::string> elidable_sites;  // proven captured
  std::vector<std::string> barrier_sites;   // must keep the STM barrier
};

/// Ground truth table used by tests and by the stamp site tables.
std::vector<KernelExpectation> stamp_kernel_expectations();

}  // namespace cstm::txir
