// txir encodings of representative STAMP transactional kernels.
//
// The execution-side code (src/stamp, src/containers) tags each access
// site with a Site whose `verdict` field records what the static capture
// analysis proved about it. These kernels are the analysis-side
// justification: tests run the capture analysis over them and cross-check
// that every verdict the execution side bakes into a Site constant is the
// verdict the analysis actually derives — and that every site the analysis
// refuses (publication, aliasing, escape) keeps its barrier.
//
// The kernel set covers the paper's Figure 1 patterns plus the shapes that
// exercise each analysis feature — with the real control flow, not a
// linearized approximation: vacation's reservation check is a genuine
// branch diamond (attach-to-tree on one path, in-place cancellation on the
// other), genome's segment dedup walks its bucket chain in a block-param
// loop before the found/not-found diamond, and the vector grow-and-copy of
// Figure 1(b) has the real grow branch plus a cursor-advancing copy loop,
// lowered through an allocator helper that is provable both by summary
// (inline depth 0) and by inlining. Several sites in these kernels are
// provable ONLY under path-sensitive analysis (see the expectation table's
// comments) — they are the regression guard for the CFG dataflow.
#pragma once

#include <string>
#include <vector>

#include "txir/capture_analysis.hpp"
#include "txir/ir.hpp"

namespace cstm::txir {

/// Builds the kernel program (entry functions listed in the expectation
/// table plus inlinable/summarizable helpers such as the vector allocator).
Program stamp_kernels();

/// Expected analysis outcome for one site label of one kernel entry.
struct SiteExpectation {
  std::string site;
  Verdict verdict;  // expected site_verdict
  bool elidable;    // expected site_elidable (direction rules applied)
  bool demoted;     // expected site_demoted
};

struct KernelExpectation {
  std::string entry;
  int inline_depth;  // 0 = summaries only, >0 = paper-style inlining
  std::vector<SiteExpectation> sites;
};

/// Ground truth table used by tests and cross-checked against the Site
/// constants the execution-side code binds.
std::vector<KernelExpectation> stamp_kernel_expectations();

/// Per-kernel analysis precision, computed at the paper's configuration
/// (inline depth 2): the numbers behind the harness elision table.
struct KernelReport {
  std::string entry;
  AnalysisStats stats;
  std::size_t loads = 0;
  std::size_t stores = 0;
  std::size_t elided_accesses = 0;
};

std::vector<KernelReport> stamp_kernel_reports();

/// The formatted "sites total / proven / demoted" table printed by the
/// harness (figures 8-10 headers) and scripts/check.sh.
std::string kernel_report_table();

}  // namespace cstm::txir
