#include "txir/kernels.hpp"

namespace cstm::txir {

Program stamp_kernels() {
  Program p;

  // -- helper: PVECTOR_ALLOC-style allocator wrapper (inlinable) -------------
  {
    Function& f = p.add("pvector_alloc");
    FunctionBuilder b(f);
    const ValueId n = b.param();
    (void)n;
    const ValueId v = b.txalloc();
    b.store(v, 0, n, "pvector.init.size");
    b.move(v);  // "return" the vector (last def convention)
  }

  // -- list_insert: node allocated in-tx, initialized, linked into a shared
  //    list (the dominant STAMP write pattern: ~90% of write barriers hit
  //    captured memory because of inits like these).
  {
    Function& f = p.add("list_insert");
    FunctionBuilder b(f);
    const ValueId list = b.param();
    const ValueId value = b.param();
    const ValueId node = b.txalloc();
    b.store(node, 0, value, "list.node.init.value");
    const ValueId head = b.load(list, 0, "list.head.read");
    b.store(node, 8, head, "list.node.init.next");
    b.store(list, 0, node, "list.link");
  }

  // -- iter_loop: Figure 1(a): a list iterator allocated on the stack inside
  //    the transaction; iterator-state accesses are captured, node accesses
  //    through pointers loaded from memory are not.
  {
    Function& f = p.add("iter_loop");
    FunctionBuilder b(f);
    const ValueId list = b.param();
    const ValueId it = b.alloca_tx();
    const ValueId head = b.load(list, 0, "iter.list.head");
    b.store(it, 0, head, "iter.init");
    const ValueId cur = b.load(it, 0, "iter.cur.read");
    const ValueId next = b.load(cur, 8, "iter.node.next");
    b.store(it, 0, next, "iter.advance");
  }

  // -- vacation_query: Figure 1(b): a query vector allocated via a helper;
  //    provable only when the helper is inlined.
  {
    Function& f = p.add("vacation_query");
    FunctionBuilder b(f);
    const ValueId n = b.param();
    const ValueId qv = b.call("pvector_alloc", {n});
    b.store(qv, 8, n, "query.push");
    const ValueId e = b.load(qv, 8, "query.read");
    (void)e;
  }

  // -- kmeans_update: all accesses target shared cluster centers passed in
  //    from outside — zero capture opportunity (matches Fig. 8's kmeans).
  {
    Function& f = p.add("kmeans_update");
    FunctionBuilder b(f);
    const ValueId center = b.param();
    const ValueId delta = b.param();
    const ValueId old = b.load(center, 0, "kmeans.center.read");
    const ValueId sum = b.phi(old, delta);  // stand-in for arithmetic
    b.store(center, 0, sum, "kmeans.center.write");
  }

  // -- pre_tx_buffer: a stack buffer that pre-exists the transaction holds
  //    live-in values; the analysis must keep its barrier.
  {
    Function& f = p.add("pre_tx_buffer");
    FunctionBuilder b(f);
    const ValueId buf = b.alloca_pre();
    const ValueId v = b.param();
    b.store(buf, 0, v, "pretx.store");
  }

  // -- rbtree_insert: tree node allocated in-tx; field initialization is
  //    captured, rebalancing touches shared nodes.
  {
    Function& f = p.add("rbtree_insert");
    FunctionBuilder b(f);
    const ValueId tree = b.param();
    const ValueId key = b.param();
    const ValueId node = b.txalloc();
    b.store(node, 0, key, "rbtree.node.init.key");
    b.store(node, 8, key, "rbtree.node.init.value");
    const ValueId root = b.load(tree, 0, "rbtree.root.read");
    const ValueId child = b.load(root, 16, "rbtree.child.read");
    b.store(child, 24, node, "rbtree.attach");
  }

  // -- phi_merge: both sides of a join allocate in-tx => still captured;
  //    one unknown side kills the fact.
  {
    Function& f = p.add("phi_merge");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    const ValueId both = b.phi(x, y);
    b.store(both, 0, shared, "phi.both.captured");
    const ValueId mixed = b.phi(x, shared);
    b.store(mixed, 0, shared, "phi.mixed");
  }

  return p;
}

std::vector<KernelExpectation> stamp_kernel_expectations() {
  return {
      {"list_insert", 0,
       {"list.node.init.value", "list.node.init.next"},
       {"list.head.read", "list.link"}},
      {"iter_loop", 0,
       {"iter.init", "iter.cur.read", "iter.advance"},
       {"iter.list.head", "iter.node.next"}},
      // Strictly intraprocedural: the helper's allocation is invisible.
      {"vacation_query", 0, {}, {"query.push", "query.read"}},
      // With inlining (the paper's configuration) the sites become elidable.
      {"vacation_query", 2, {"query.push", "query.read", "pvector.init.size"}, {}},
      {"kmeans_update", 0, {}, {"kmeans.center.read", "kmeans.center.write"}},
      {"pre_tx_buffer", 0, {}, {"pretx.store"}},
      {"rbtree_insert", 0,
       {"rbtree.node.init.key", "rbtree.node.init.value"},
       {"rbtree.root.read", "rbtree.child.read", "rbtree.attach"}},
      {"phi_merge", 0, {"phi.both.captured"}, {"phi.mixed"}},
  };
}

}  // namespace cstm::txir
