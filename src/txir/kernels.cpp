#include "txir/kernels.hpp"

#include <cstdio>

namespace cstm::txir {

Program stamp_kernels() {
  Program p;

  // ==== Helpers (inlinable and summarizable) ================================

  // PVECTOR_ALLOC-style allocator wrapper: returns a fresh capture. The
  // summary proves callers' uses captured even at inline depth 0.
  {
    Function& f = p.add("pvector_alloc");
    FunctionBuilder b(f);
    const ValueId n = b.param();
    const ValueId v = b.txalloc();
    b.store(v, 0, n, "pvector.init.size");
    b.ret(v);
  }

  // Read-only tree probe: loads through its parameters but never stores
  // them anywhere — the summary publishes nothing, so callers keep their
  // capture proofs across the call.
  {
    Function& f = p.add("table_find");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId key = b.param();
    (void)key;
    const ValueId root = b.load(table, 0, "tfind.root.read");
    const ValueId node = b.load(root, 16, "tfind.node.read");
    b.ret(node);
  }

  // Publishing helper: stores its second parameter through the first. The
  // summary records "publishes param 1" and callers demote accordingly.
  {
    Function& f = p.add("publish_to");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId ptr = b.param();
    b.store(slot, 0, ptr, "helper.publish");
    b.ret();
  }

  // ==== Figure 1 / container shapes =========================================

  // list_insert: node allocated in-tx, initialized, linked into a shared
  // list last — the dominant STAMP write pattern (~90% of write barriers
  // hit captured memory because of inits like these). Flow-sensitivity is
  // what keeps the inits proven: they precede the publication.
  {
    Function& f = p.add("list_insert");
    FunctionBuilder b(f);
    const ValueId list = b.param();
    const ValueId value = b.param();
    const ValueId node = b.txalloc();
    b.store(node, 0, value, "list.node.init.value");
    const ValueId head = b.load(list, 0, "list.head.read");
    b.store(node, 8, head, "list.node.init.next");
    b.store(list, 0, node, "list.link");
    b.ret();
  }

  // iter_loop: Figure 1(a) as a real loop. The list iterator lives in a
  // stack slot allocated inside the transaction; the loop header tests the
  // current node and the body advances the iterator around a back-edge.
  // Iterator-state accesses are stack-captured on every iteration; node
  // accesses through loaded pointers are not.
  {
    Function& f = p.add("iter_loop");
    FunctionBuilder b(f);
    const ValueId list = b.param();
    const BlockId loop = b.block("loop");
    const BlockId body = b.block("body");
    const BlockId exit = b.block("exit");

    const ValueId it = b.alloca_tx();
    const ValueId head = b.load(list, 0, "iter.list.head");
    b.store(it, 0, head, "iter.init");
    b.br(loop);

    b.set_block(loop);
    const ValueId cur = b.load(it, 0, "iter.cur.read");
    b.br_cond(cur, body, exit);

    b.set_block(body);
    const ValueId next = b.load(cur, 8, "iter.node.next");
    b.store(it, 0, next, "iter.advance");
    b.br(loop);  // back-edge: loop dominates body

    b.set_block(exit);
    b.ret();
  }

  // ==== vacation table ops ==================================================

  // vacation_update_add (task_update_tables, add-miss path): a fresh
  // Reservation record is allocated and field-initialized inside the
  // transaction, then attached to the shared tree. The four tfield::init
  // calls in src/stamp/vacation are these four stores.
  {
    Function& f = p.add("vacation_update_add");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId price = b.param();
    const ValueId r = b.txalloc();
    b.store(r, 0, price, "vacation.res.init.used");
    b.store(r, 8, price, "vacation.res.init.free");
    b.store(r, 16, price, "vacation.res.init.total");
    b.store(r, 24, price, "vacation.res.init.price");
    const ValueId root = b.load(table, 0, "vacation.tree.root.read");
    const ValueId child = b.load(root, 16, "vacation.tree.child.read");
    b.store(child, 24, r, "vacation.tree.attach");
    b.ret();
  }

  // vacation_reserve (task_make_reservation): the real reservation-check
  // DIAMOND. The thread-private query vector of Figure 1(b) (priv_addr)
  // and the found/best_price stack scratch feed a probe of the shared
  // tree; a fresh Reservation record is allocated and priced before the
  // branch. If the reservation is available the record is attached to the
  // shared tree (publication); otherwise the record stays transaction-
  // local and its cancellation field is written IN PLACE — a store the
  // old linear IR had to demote (the attach preceded it textually) but
  // path-sensitive analysis proves: no path reaching it publishes the
  // record. After the merge the record may be published, so the merge
  // store demotes; the stack scratch is never published and stays proven
  // on every path.
  {
    Function& f = p.add("vacation_reserve");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const BlockId book = b.block("book");
    const BlockId skip = b.block("skip");
    const BlockId merge = b.block("merge");

    const ValueId qv = b.priv_addr();
    const ValueId rid = b.unknown();  // rng output
    b.store(qv, 0, rid, "vacation.query.write");
    const ValueId id = b.load(qv, 0, "vacation.query.read");
    b.store(qv, 8, rid, "vacation.query.write2");
    (void)b.load(qv, 8, "vacation.query.read2");
    const ValueId found = b.alloca_tx();
    b.store(found, 0, rid, "vacation.scratch.init");
    const ValueId best = b.alloca_tx();
    b.store(best, 0, rid, "vacation.best.init");
    const ValueId r = b.txalloc();
    b.store(r, 0, rid, "vacation.res.init.price");
    const ValueId res = b.call("table_find", {table, id});
    const ValueId ok = b.load(res, 8, "vacation.res.read");
    b.br_cond(ok, book, skip);

    b.set_block(book);
    const ValueId root = b.load(table, 0, "vacation.tree.root.read");
    b.store(root, 24, r, "vacation.tree.attach");  // publishes r
    b.store(best, 0, ok, "vacation.best.book");
    b.br(merge);

    b.set_block(skip);
    b.store(r, 8, rid, "vacation.res.cancel");  // proven: only the sibling
                                                // path publishes r
    b.store(best, 0, rid, "vacation.best.skip");
    b.br(merge);

    b.set_block(merge);
    b.store(r, 16, rid, "vacation.res.merge");  // demoted: join of paths
    const ValueId bp = b.load(best, 0, "vacation.best.read");
    b.store(found, 0, bp, "vacation.scratch.update");
    b.ret();
  }

  // ==== genome segment dedup ================================================

  // genome_dedup_insert (TxHashtable::insert) with the real found/not-found
  // control flow: hash the segment against the immutable gene table
  // (static read), walk the bucket chain in a block-param loop, and either
  // bump the existing node (through a loaded pointer — never elidable) or
  // allocate + initialize + link a fresh chain node. The inits on the miss
  // path stay proven; the bump AFTER the link demotes on that same path
  // (the runtime alloc-log still elides it; only the zero-probe static
  // path refuses).
  {
    Function& f = p.add("genome_dedup_insert");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId seg = b.param();
    const BlockId loop = b.block("loop");
    const BlockId check = b.block("check");
    const BlockId step = b.block("step");
    const BlockId hit = b.block("hit");
    const BlockId miss = b.block("miss");
    const ValueId cur = b.block_param(loop);

    const ValueId g = b.static_addr();
    (void)b.load(g, 0, "genome.gene.read");  // hash input: static table
    const ValueId head = b.load(table, 0, "genome.bucket.head.read");
    b.br(loop, {head});

    b.set_block(loop);
    b.br_cond(cur, check, miss);

    b.set_block(check);
    const ValueId k = b.load(cur, 0, "genome.chain.key.read");
    b.br_cond(k, hit, step);

    b.set_block(step);
    const ValueId nxt = b.load(cur, 16, "genome.chain.next.read");
    b.br(loop, {nxt});  // back-edge with a block argument

    b.set_block(hit);
    b.store(cur, 8, seg, "genome.hit.bump");
    b.ret();

    b.set_block(miss);
    const ValueId node = b.txalloc();
    b.store(node, 0, seg, "genome.node.init.key");
    b.store(node, 8, seg, "genome.node.init.count");
    b.store(node, 16, head, "genome.node.init.next");
    b.store(table, 0, node, "genome.bucket.link");
    b.store(node, 8, seg, "genome.count.bump");
    b.ret();
  }

  // ==== vector grow-and-copy (Figure 1(b) / TxVector::push_back) ============

  // The real grow BRANCH plus the copy LOOP. Fast path: store the element
  // through the loaded data pointer (shared — the runtime handles it).
  // Grow path: the new backing store comes from an allocator helper
  // (provable both by summary at depth 0 and by inlining); the element
  // copy advances a cursor around a back-edge — a loop-carried pointer
  // into memory that is published only AFTER the loop exits. The old
  // linear IR's phi-back-edge rule had to demote every loop-carried store
  // whose site gets published anywhere; the CFG analysis proves the loop
  // body (publication cannot flow backwards along any path) and still
  // demotes the post-publish element store, exactly the paper's division
  // of labor with the runtime heap filter.
  {
    Function& f = p.add("vector_grow_push");
    FunctionBuilder b(f);
    const ValueId vec = b.param();
    const ValueId v = b.param();
    const BlockId fast = b.block("fast");
    const BlockId grow = b.block("grow");
    const BlockId copy = b.block("copy");
    const BlockId growdone = b.block("growdone");
    const BlockId done = b.block("done");
    const ValueId dst = b.block_param(copy);

    const ValueId n = b.load(vec, 8, "vector.size.read");
    const ValueId cap = b.load(vec, 16, "vector.cap.read");
    b.br_cond(cap, fast, grow);  // stand-in for size < capacity

    b.set_block(fast);
    const ValueId data = b.load(vec, 0, "vector.data.read");
    b.store(data, 0, v, "vector.elem.store");
    b.br(done);

    b.set_block(grow);
    const ValueId bigger = b.call("pvector_alloc", {n});
    b.store(bigger, 24, n, "vector.newcap.write");
    const ValueId olddata = b.load(vec, 0, "vector.olddata.read");
    b.br(copy, {bigger});

    b.set_block(copy);
    const ValueId e = b.load(olddata, 0, "vector.copy.read");
    b.store(dst, 0, e, "vector.copy.init");  // proven: published only after
                                             // the loop, on no path back in
    const ValueId d2 = b.gep(dst, 8);
    const ValueId more = b.unknown();  // stand-in for cursor != end
    b.br_cond(more, copy, {d2}, growdone, {});

    b.set_block(growdone);
    b.store(vec, 0, bigger, "vector.data.publish");
    b.store(bigger, 16, v, "vector.elem.post_publish");  // demoted
    b.br(done);

    b.set_block(done);
    b.store(vec, 8, n, "vector.size.write");
    b.ret();
  }

  // ==== precision / soundness shapes ========================================

  // kmeans_update: all accesses target shared cluster centers passed in
  // from outside — zero capture opportunity (matches Fig. 8's kmeans).
  {
    Function& f = p.add("kmeans_update");
    FunctionBuilder b(f);
    const ValueId center = b.param();
    const ValueId delta = b.param();
    (void)delta;
    const ValueId old = b.load(center, 0, "kmeans.center.read");
    const ValueId sum = b.move(old);  // stand-in for arithmetic
    b.store(center, 0, sum, "kmeans.center.write");
    b.ret();
  }

  // pre_tx_buffer: a stack buffer that pre-exists the transaction holds
  // live-in values; the analysis must keep its barrier.
  {
    Function& f = p.add("pre_tx_buffer");
    FunctionBuilder b(f);
    const ValueId v = b.param();
    const ValueId buf = b.alloca_pre();
    b.store(buf, 0, v, "pretx.store");
    b.ret();
  }

  // branch_merge: two diamonds over block-argument joins. Both sides of
  // the first join allocate in-tx => still captured; the second joins a
  // capture with a shared parameter — an alias merge that kills the proof
  // (demotion).
  {
    Function& f = p.add("branch_merge");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const BlockId la = b.block("left.a");
    const BlockId ra = b.block("right.a");
    const BlockId m1 = b.block("merge.captured");
    const BlockId lb = b.block("left.b");
    const BlockId rb = b.block("right.b");
    const BlockId m2 = b.block("merge.mixed");
    const ValueId both = b.block_param(m1);
    const ValueId mixed = b.block_param(m2);

    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    const ValueId c = b.unknown();
    b.br_cond(c, la, ra);

    b.set_block(la);
    b.br(m1, {x});
    b.set_block(ra);
    b.br(m1, {y});

    b.set_block(m1);
    b.store(both, 0, shared, "join.both.captured");
    const ValueId c2 = b.unknown();
    b.br_cond(c2, lb, rb);

    b.set_block(lb);
    b.br(m2, {x});
    b.set_block(rb);
    b.br(m2, {shared});

    b.set_block(m2);
    b.store(mixed, 0, shared, "join.mixed");
    b.ret();
  }

  // escape_via_call: the publishing helper's summary makes the escape
  // visible without inlining; accesses before the call stay proven,
  // accesses after it demote.
  {
    Function& f = p.add("escape_via_call");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId x = b.txalloc();
    b.store(x, 0, slot, "escape.init");
    (void)b.call("publish_to", {slot, x});
    b.store(x, 8, slot, "escape.after_call");
    b.ret();
  }

  // no_escape_call: same shape, but the callee only reads — the summary
  // proves the capture survives the call (precision the opaque rule would
  // throw away).
  {
    Function& f = p.add("no_escape_call");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId y = b.txalloc();
    b.store(y, 0, slot, "noescape.init");
    (void)b.call("table_find", {y, slot});
    b.store(y, 8, slot, "noescape.after_call");
    b.ret();
  }

  // opaque_escape: an unknown callee may publish any pointer argument.
  {
    Function& f = p.add("opaque_escape");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId z = b.txalloc();
    b.store(z, 0, slot, "opaque.init");
    (void)b.call("extern_fn", {z});
    b.store(z, 8, slot, "opaque.after_call");
    b.ret();
  }

  // static_data_read: immutable static tables (genome's gene string,
  // intruder's dictionary) — reads elide, stores never do.
  {
    Function& f = p.add("static_data_read");
    FunctionBuilder b(f);
    const ValueId g = b.static_addr();
    const ValueId v = b.load(g, 0, "static.read");
    b.store(g, 0, v, "static.write");
    b.ret();
  }

  // cell_roundtrip: a captured pointer stored into captured memory and
  // loaded back keeps its classification (field tracking).
  {
    Function& f = p.add("cell_roundtrip");
    FunctionBuilder b(f);
    const ValueId outer = b.txalloc();
    const ValueId inner = b.txalloc();
    b.store(outer, 0, inner, "cell.store.inner");
    const ValueId w = b.load(outer, 0, "cell.load.inner");
    b.store(w, 0, inner, "cell.write.through");
    b.ret();
  }

  // cell_publish_closure: publishing an object transitively publishes
  // everything stored inside it — the inner object demotes too.
  {
    Function& f = p.add("cell_publish_closure");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId outer = b.txalloc();
    const ValueId inner = b.txalloc();
    b.store(outer, 0, inner, "closure.store.inner");
    b.store(slot, 0, outer, "closure.publish.outer");
    b.store(inner, 0, slot, "closure.inner.after");
    b.ret();
  }

  return p;
}

std::vector<KernelExpectation> stamp_kernel_expectations() {
  using V = Verdict;
  return {
      {"list_insert",
       0,
       {{"list.node.init.value", V::kCaptured, true, false},
        {"list.node.init.next", V::kCaptured, true, false},
        {"list.head.read", V::kUnknown, false, false},
        {"list.link", V::kUnknown, false, false}}},
      {"iter_loop",
       0,
       {{"iter.init", V::kStack, true, false},
        {"iter.cur.read", V::kStack, true, false},
        {"iter.advance", V::kStack, true, false},
        {"iter.list.head", V::kUnknown, false, false},
        {"iter.node.next", V::kUnknown, false, false}}},
      {"vacation_update_add",
       0,
       {{"vacation.res.init.used", V::kCaptured, true, false},
        {"vacation.res.init.free", V::kCaptured, true, false},
        {"vacation.res.init.total", V::kCaptured, true, false},
        {"vacation.res.init.price", V::kCaptured, true, false},
        {"vacation.tree.root.read", V::kUnknown, false, false},
        {"vacation.tree.child.read", V::kUnknown, false, false},
        {"vacation.tree.attach", V::kUnknown, false, false}}},
      // The reservation diamond: the skip path's in-place cancellation
      // store is PROVEN (publication happens only on the sibling path);
      // the post-merge store demotes; stack/private scratch is proven on
      // every path including both branch bodies.
      {"vacation_reserve",
       0,
       {{"vacation.query.write", V::kPrivate, true, false},
        {"vacation.query.read", V::kPrivate, true, false},
        {"vacation.query.write2", V::kPrivate, true, false},
        {"vacation.query.read2", V::kPrivate, true, false},
        {"vacation.scratch.init", V::kStack, true, false},
        {"vacation.best.init", V::kStack, true, false},
        {"vacation.res.init.price", V::kCaptured, true, false},
        {"vacation.res.read", V::kUnknown, false, false},
        {"vacation.tree.root.read", V::kUnknown, false, false},
        {"vacation.tree.attach", V::kUnknown, false, false},
        {"vacation.best.book", V::kStack, true, false},
        {"vacation.res.cancel", V::kCaptured, true, false},
        {"vacation.best.skip", V::kStack, true, false},
        {"vacation.res.merge", V::kUnknown, false, true},
        {"vacation.best.read", V::kStack, true, false},
        {"vacation.scratch.update", V::kStack, true, false}}},
      // With inlining the helper's own loads join the caller's site list
      // and stay barriers (they probe the shared tree); the branch
      // verdicts are unchanged.
      {"vacation_reserve",
       2,
       {{"vacation.scratch.update", V::kStack, true, false},
        {"vacation.res.cancel", V::kCaptured, true, false},
        {"vacation.res.merge", V::kUnknown, false, true},
        {"tfind.root.read", V::kUnknown, false, false},
        {"tfind.node.read", V::kUnknown, false, false}}},
      // The dedup diamond + chain-walk loop: miss-path inits proven, the
      // post-link bump demoted, every access through the loop-carried
      // chain pointer kept.
      {"genome_dedup_insert",
       0,
       {{"genome.gene.read", V::kStatic, true, false},
        {"genome.bucket.head.read", V::kUnknown, false, false},
        {"genome.chain.key.read", V::kUnknown, false, false},
        {"genome.chain.next.read", V::kUnknown, false, false},
        {"genome.hit.bump", V::kUnknown, false, false},
        {"genome.node.init.key", V::kCaptured, true, false},
        {"genome.node.init.count", V::kCaptured, true, false},
        {"genome.node.init.next", V::kCaptured, true, false},
        {"genome.bucket.link", V::kUnknown, false, false},
        {"genome.count.bump", V::kUnknown, false, true}}},
      // Summary-based: the allocator helper's return is a fresh capture
      // even without inlining. The copy-loop store is proven — the new
      // backing store is published only after the loop, and publication
      // cannot flow backwards along any path (the old linear phi-back-edge
      // rule had to demote this site).
      {"vector_grow_push",
       0,
       {{"vector.size.read", V::kUnknown, false, false},
        {"vector.cap.read", V::kUnknown, false, false},
        {"vector.data.read", V::kUnknown, false, false},
        {"vector.elem.store", V::kUnknown, false, false},
        {"vector.newcap.write", V::kCaptured, true, false},
        {"vector.olddata.read", V::kUnknown, false, false},
        {"vector.copy.read", V::kUnknown, false, false},
        {"vector.copy.init", V::kCaptured, true, false},
        {"vector.data.publish", V::kUnknown, false, false},
        {"vector.elem.post_publish", V::kUnknown, false, true},
        {"vector.size.write", V::kUnknown, false, false}}},
      // Inlined: same verdicts, plus the helper's init store joins in.
      {"vector_grow_push",
       2,
       {{"pvector.init.size", V::kCaptured, true, false},
        {"vector.copy.init", V::kCaptured, true, false},
        {"vector.elem.post_publish", V::kUnknown, false, true}}},
      {"kmeans_update",
       0,
       {{"kmeans.center.read", V::kUnknown, false, false},
        {"kmeans.center.write", V::kUnknown, false, false}}},
      {"pre_tx_buffer", 0, {{"pretx.store", V::kUnknown, false, false}}},
      {"branch_merge",
       0,
       {{"join.both.captured", V::kCaptured, true, false},
        {"join.mixed", V::kUnknown, false, true}}},
      {"escape_via_call",
       0,
       {{"escape.init", V::kCaptured, true, false},
        {"escape.after_call", V::kUnknown, false, true}}},
      {"no_escape_call",
       0,
       {{"noescape.init", V::kCaptured, true, false},
        {"noescape.after_call", V::kCaptured, true, false}}},
      {"opaque_escape",
       0,
       {{"opaque.init", V::kCaptured, true, false},
        {"opaque.after_call", V::kUnknown, false, true}}},
      {"static_data_read",
       0,
       {{"static.read", V::kStatic, true, false},
        {"static.write", V::kStatic, false, false}}},
      {"cell_roundtrip",
       0,
       {{"cell.store.inner", V::kCaptured, true, false},
        {"cell.load.inner", V::kCaptured, true, false},
        {"cell.write.through", V::kCaptured, true, false}}},
      {"cell_publish_closure",
       0,
       {{"closure.store.inner", V::kCaptured, true, false},
        {"closure.publish.outer", V::kUnknown, false, false},
        {"closure.inner.after", V::kUnknown, false, true}}},
  };
}

std::vector<KernelReport> stamp_kernel_reports() {
  // The entry list is derived from the expectation table (first occurrence
  // order, deduplicated) so a kernel added with its ground truth can never
  // silently vanish from the harness precision report.
  std::vector<std::string> entries;
  for (const KernelExpectation& e : stamp_kernel_expectations()) {
    bool seen = false;
    for (const std::string& known : entries) seen = seen || known == e.entry;
    if (!seen) entries.push_back(e.entry);
  }
  const Program p = stamp_kernels();
  std::vector<KernelReport> reports;
  for (const std::string& entry : entries) {
    // Inline depth 2 is the paper's configuration ("relies on function
    // inlining to extend the analysis results across function calls").
    const AnalysisResult r = analyze(p, entry, 2);
    KernelReport rep;
    rep.entry = entry;
    rep.stats = r.stats();
    rep.loads = r.total(false);
    rep.stores = r.total(true);
    rep.elided_accesses = r.elided(false) + r.elided(true);
    reports.push_back(std::move(rep));
  }
  return reports;
}

std::string kernel_report_table() {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %6s %7s %8s %9s %8s\n", "kernel",
                "sites", "proven", "demoted", "accesses", "elided%");
  out += line;
  AnalysisStats totals;
  std::size_t accesses = 0, elided = 0;
  for (const KernelReport& r : stamp_kernel_reports()) {
    const std::size_t acc = r.loads + r.stores;
    std::snprintf(line, sizeof(line), "%-22s %6zu %7zu %8zu %9zu %7.1f%%\n",
                  r.entry.c_str(), r.stats.sites_total, r.stats.proven,
                  r.stats.demoted, acc,
                  acc == 0 ? 0.0
                           : 100.0 * static_cast<double>(r.elided_accesses) /
                                 static_cast<double>(acc));
    out += line;
    totals.sites_total += r.stats.sites_total;
    totals.proven += r.stats.proven;
    totals.demoted += r.stats.demoted;
    accesses += acc;
    elided += r.elided_accesses;
  }
  std::snprintf(line, sizeof(line), "%-22s %6zu %7zu %8zu %9zu %7.1f%%\n",
                "ALL", totals.sites_total, totals.proven, totals.demoted,
                accesses,
                accesses == 0 ? 0.0
                              : 100.0 * static_cast<double>(elided) /
                                    static_cast<double>(accesses));
  out += line;
  return out;
}

}  // namespace cstm::txir
