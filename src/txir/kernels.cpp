#include "txir/kernels.hpp"

#include <cstdio>

namespace cstm::txir {

Program stamp_kernels() {
  Program p;

  // ==== Helpers (inlinable and summarizable) ================================

  // PVECTOR_ALLOC-style allocator wrapper: returns a fresh capture. The
  // summary proves callers' uses captured even at inline depth 0.
  {
    Function& f = p.add("pvector_alloc");
    FunctionBuilder b(f);
    const ValueId n = b.param();
    const ValueId v = b.txalloc();
    b.store(v, 0, n, "pvector.init.size");
    b.move(v);  // "return" the vector (last-def convention)
  }

  // Read-only tree probe: loads through its parameters but never stores
  // them anywhere — the summary publishes nothing, so callers keep their
  // capture proofs across the call.
  {
    Function& f = p.add("table_find");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId key = b.param();
    (void)key;
    const ValueId root = b.load(table, 0, "tfind.root.read");
    const ValueId node = b.load(root, 16, "tfind.node.read");
    b.move(node);
  }

  // Publishing helper: stores its second parameter through the first. The
  // summary records "publishes param 1" and callers demote accordingly.
  {
    Function& f = p.add("publish_to");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId ptr = b.param();
    b.store(slot, 0, ptr, "helper.publish");
  }

  // ==== Figure 1 / container shapes =========================================

  // list_insert: node allocated in-tx, initialized, linked into a shared
  // list last — the dominant STAMP write pattern (~90% of write barriers
  // hit captured memory because of inits like these). Flow-sensitivity is
  // what keeps the inits proven: they precede the publication.
  {
    Function& f = p.add("list_insert");
    FunctionBuilder b(f);
    const ValueId list = b.param();
    const ValueId value = b.param();
    const ValueId node = b.txalloc();
    b.store(node, 0, value, "list.node.init.value");
    const ValueId head = b.load(list, 0, "list.head.read");
    b.store(node, 8, head, "list.node.init.next");
    b.store(list, 0, node, "list.link");
  }

  // iter_loop: Figure 1(a): a list iterator allocated on the stack inside
  // the transaction, advanced around a loop phi; iterator-state accesses
  // are stack-captured, node accesses through loaded pointers are not.
  {
    Function& f = p.add("iter_loop");
    FunctionBuilder b(f);
    const ValueId list = b.param();
    const ValueId it = b.alloca_tx();
    const ValueId head = b.load(list, 0, "iter.list.head");
    b.store(it, 0, head, "iter.init");
    const ValueId cur = b.load(it, 0, "iter.cur.read");
    const ValueId next = b.load(cur, 8, "iter.node.next");
    b.store(it, 0, next, "iter.advance");
  }

  // ==== vacation table ops ==================================================

  // vacation_update_add (task_update_tables, add-miss path): a fresh
  // Reservation record is allocated and field-initialized inside the
  // transaction, then attached to the shared tree. The four tfield::init
  // calls in src/stamp/vacation are these four stores.
  {
    Function& f = p.add("vacation_update_add");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId price = b.param();
    const ValueId r = b.txalloc();
    b.store(r, 0, price, "vacation.res.init.used");
    b.store(r, 8, price, "vacation.res.init.free");
    b.store(r, 16, price, "vacation.res.init.total");
    b.store(r, 24, price, "vacation.res.init.price");
    const ValueId root = b.load(table, 0, "vacation.tree.root.read");
    const ValueId child = b.load(root, 16, "vacation.tree.child.read");
    b.store(child, 24, r, "vacation.tree.attach");
  }

  // vacation_reserve (task_make_reservation): the thread-private query
  // vector of Figure 1(b) — declared private, so priv_addr — plus stack
  // scratch (found/best_price) and a read-only probe into the shared tree
  // through the table_find helper. The helper's summary publishes nothing,
  // so the scratch stays provable across the call.
  {
    Function& f = p.add("vacation_reserve");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId qv = b.priv_addr();
    const ValueId rid = b.unknown();  // rng output
    b.store(qv, 0, rid, "vacation.query.write");
    const ValueId id = b.load(qv, 0, "vacation.query.read");
    const ValueId found = b.alloca_tx();
    b.store(found, 0, rid, "vacation.scratch.init");
    const ValueId res = b.call("table_find", {table, id});
    const ValueId free = b.load(res, 8, "vacation.res.read");
    b.store(found, 0, free, "vacation.scratch.update");
  }

  // ==== genome segment dedup ================================================

  // genome_dedup_insert (TxHashtable::insert): chain node initialized
  // in-tx (captured), linked into the bucket (publication), then bumped
  // once more — the bump happens *after* the link, so the analysis must
  // withdraw the static proof there (the runtime alloc-log still elides
  // it; only the zero-probe static path refuses).
  {
    Function& f = p.add("genome_dedup_insert");
    FunctionBuilder b(f);
    const ValueId table = b.param();
    const ValueId seg = b.param();
    const ValueId node = b.txalloc();
    b.store(node, 0, seg, "genome.node.init.key");
    b.store(node, 8, seg, "genome.node.init.count");
    const ValueId head = b.load(table, 0, "genome.bucket.head.read");
    b.store(node, 16, head, "genome.node.init.next");
    b.store(table, 0, node, "genome.bucket.link");
    b.store(node, 8, seg, "genome.count.bump");
  }

  // ==== vector grow-and-copy (Figure 1(b) / TxVector::push_back) ============

  // The new backing store comes from an allocator helper; the copy into it
  // is captured. Publishing the new store into the vector's data field
  // happens before the element store (matching TxVector::push_back order),
  // so the element store demotes — the runtime heap filter is what elides
  // it, exactly the paper's division of labor.
  {
    Function& f = p.add("vector_grow_push");
    FunctionBuilder b(f);
    const ValueId vec = b.param();
    const ValueId v = b.param();
    const ValueId n = b.load(vec, 8, "vector.size.read");
    const ValueId olddata = b.load(vec, 0, "vector.data.read");
    const ValueId bigger = b.call("pvector_alloc", {n});
    const ValueId e = b.load(olddata, 0, "vector.copy.read");
    b.store(bigger, 8, e, "vector.copy.init");
    b.store(vec, 0, bigger, "vector.data.publish");
    b.store(bigger, 16, v, "vector.elem.post_publish");
    b.store(vec, 8, n, "vector.size.write");
  }

  // ==== precision / soundness shapes ========================================

  // kmeans_update: all accesses target shared cluster centers passed in
  // from outside — zero capture opportunity (matches Fig. 8's kmeans).
  {
    Function& f = p.add("kmeans_update");
    FunctionBuilder b(f);
    const ValueId center = b.param();
    const ValueId delta = b.param();
    const ValueId old = b.load(center, 0, "kmeans.center.read");
    const ValueId sum = b.phi(old, delta);  // stand-in for arithmetic
    b.store(center, 0, sum, "kmeans.center.write");
  }

  // pre_tx_buffer: a stack buffer that pre-exists the transaction holds
  // live-in values; the analysis must keep its barrier.
  {
    Function& f = p.add("pre_tx_buffer");
    FunctionBuilder b(f);
    const ValueId buf = b.alloca_pre();
    const ValueId v = b.param();
    b.store(buf, 0, v, "pretx.store");
  }

  // phi_merge: both sides of a join allocate in-tx => still captured; one
  // shared side is an alias merge that kills the proof (demotion).
  {
    Function& f = p.add("phi_merge");
    FunctionBuilder b(f);
    const ValueId shared = b.param();
    const ValueId x = b.txalloc();
    const ValueId y = b.txalloc();
    const ValueId both = b.phi(x, y);
    b.store(both, 0, shared, "phi.both.captured");
    const ValueId mixed = b.phi(x, shared);
    b.store(mixed, 0, shared, "phi.mixed");
  }

  // escape_via_call: the publishing helper's summary makes the escape
  // visible without inlining; accesses before the call stay proven,
  // accesses after it demote.
  {
    Function& f = p.add("escape_via_call");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId x = b.txalloc();
    b.store(x, 0, slot, "escape.init");
    (void)b.call("publish_to", {slot, x});
    b.store(x, 8, slot, "escape.after_call");
  }

  // no_escape_call: same shape, but the callee only reads — the summary
  // proves the capture survives the call (precision the opaque rule would
  // throw away).
  {
    Function& f = p.add("no_escape_call");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId y = b.txalloc();
    b.store(y, 0, slot, "noescape.init");
    (void)b.call("table_find", {y, slot});
    b.store(y, 8, slot, "noescape.after_call");
  }

  // opaque_escape: an unknown callee may publish any pointer argument.
  {
    Function& f = p.add("opaque_escape");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId z = b.txalloc();
    b.store(z, 0, slot, "opaque.init");
    (void)b.call("extern_fn", {z});
    b.store(z, 8, slot, "opaque.after_call");
  }

  // static_data_read: immutable static tables (genome's gene string,
  // intruder's dictionary) — reads elide, stores never do.
  {
    Function& f = p.add("static_data_read");
    FunctionBuilder b(f);
    const ValueId g = b.static_addr();
    const ValueId v = b.load(g, 0, "static.read");
    b.store(g, 0, v, "static.write");
  }

  // cell_roundtrip: a captured pointer stored into captured memory and
  // loaded back keeps its classification (field tracking).
  {
    Function& f = p.add("cell_roundtrip");
    FunctionBuilder b(f);
    const ValueId outer = b.txalloc();
    const ValueId inner = b.txalloc();
    b.store(outer, 0, inner, "cell.store.inner");
    const ValueId w = b.load(outer, 0, "cell.load.inner");
    b.store(w, 0, inner, "cell.write.through");
  }

  // cell_publish_closure: publishing an object transitively publishes
  // everything stored inside it — the inner object demotes too.
  {
    Function& f = p.add("cell_publish_closure");
    FunctionBuilder b(f);
    const ValueId slot = b.param();
    const ValueId outer = b.txalloc();
    const ValueId inner = b.txalloc();
    b.store(outer, 0, inner, "closure.store.inner");
    b.store(slot, 0, outer, "closure.publish.outer");
    b.store(inner, 0, slot, "closure.inner.after");
  }

  return p;
}

std::vector<KernelExpectation> stamp_kernel_expectations() {
  using V = Verdict;
  return {
      {"list_insert",
       0,
       {{"list.node.init.value", V::kCaptured, true, false},
        {"list.node.init.next", V::kCaptured, true, false},
        {"list.head.read", V::kUnknown, false, false},
        {"list.link", V::kUnknown, false, false}}},
      {"iter_loop",
       0,
       {{"iter.init", V::kStack, true, false},
        {"iter.cur.read", V::kStack, true, false},
        {"iter.advance", V::kStack, true, false},
        {"iter.list.head", V::kUnknown, false, false},
        {"iter.node.next", V::kUnknown, false, false}}},
      {"vacation_update_add",
       0,
       {{"vacation.res.init.used", V::kCaptured, true, false},
        {"vacation.res.init.free", V::kCaptured, true, false},
        {"vacation.res.init.total", V::kCaptured, true, false},
        {"vacation.res.init.price", V::kCaptured, true, false},
        {"vacation.tree.root.read", V::kUnknown, false, false},
        {"vacation.tree.child.read", V::kUnknown, false, false},
        {"vacation.tree.attach", V::kUnknown, false, false}}},
      {"vacation_reserve",
       0,
       {{"vacation.query.write", V::kPrivate, true, false},
        {"vacation.query.read", V::kPrivate, true, false},
        {"vacation.scratch.init", V::kStack, true, false},
        {"vacation.scratch.update", V::kStack, true, false},
        {"vacation.res.read", V::kUnknown, false, false}}},
      // With inlining the helper's own loads join the caller's site list
      // and stay barriers (they probe the shared tree).
      {"vacation_reserve",
       2,
       {{"vacation.scratch.update", V::kStack, true, false},
        {"tfind.root.read", V::kUnknown, false, false},
        {"tfind.node.read", V::kUnknown, false, false}}},
      {"genome_dedup_insert",
       0,
       {{"genome.node.init.key", V::kCaptured, true, false},
        {"genome.node.init.count", V::kCaptured, true, false},
        {"genome.node.init.next", V::kCaptured, true, false},
        {"genome.bucket.head.read", V::kUnknown, false, false},
        {"genome.bucket.link", V::kUnknown, false, false},
        {"genome.count.bump", V::kUnknown, false, true}}},
      // Summary-based: the allocator helper's return is a fresh capture
      // even without inlining.
      {"vector_grow_push",
       0,
       {{"vector.size.read", V::kUnknown, false, false},
        {"vector.data.read", V::kUnknown, false, false},
        {"vector.copy.read", V::kUnknown, false, false},
        {"vector.copy.init", V::kCaptured, true, false},
        {"vector.data.publish", V::kUnknown, false, false},
        {"vector.elem.post_publish", V::kUnknown, false, true},
        {"vector.size.write", V::kUnknown, false, false}}},
      // Inlined: same verdicts, plus the helper's init store joins in.
      {"vector_grow_push",
       2,
       {{"pvector.init.size", V::kCaptured, true, false},
        {"vector.copy.init", V::kCaptured, true, false},
        {"vector.elem.post_publish", V::kUnknown, false, true}}},
      {"kmeans_update",
       0,
       {{"kmeans.center.read", V::kUnknown, false, false},
        {"kmeans.center.write", V::kUnknown, false, false}}},
      {"pre_tx_buffer", 0, {{"pretx.store", V::kUnknown, false, false}}},
      {"phi_merge",
       0,
       {{"phi.both.captured", V::kCaptured, true, false},
        {"phi.mixed", V::kUnknown, false, true}}},
      {"escape_via_call",
       0,
       {{"escape.init", V::kCaptured, true, false},
        {"escape.after_call", V::kUnknown, false, true}}},
      {"no_escape_call",
       0,
       {{"noescape.init", V::kCaptured, true, false},
        {"noescape.after_call", V::kCaptured, true, false}}},
      {"opaque_escape",
       0,
       {{"opaque.init", V::kCaptured, true, false},
        {"opaque.after_call", V::kUnknown, false, true}}},
      {"static_data_read",
       0,
       {{"static.read", V::kStatic, true, false},
        {"static.write", V::kStatic, false, false}}},
      {"cell_roundtrip",
       0,
       {{"cell.store.inner", V::kCaptured, true, false},
        {"cell.load.inner", V::kCaptured, true, false},
        {"cell.write.through", V::kCaptured, true, false}}},
      {"cell_publish_closure",
       0,
       {{"closure.store.inner", V::kCaptured, true, false},
        {"closure.publish.outer", V::kUnknown, false, false},
        {"closure.inner.after", V::kUnknown, false, true}}},
  };
}

std::vector<KernelReport> stamp_kernel_reports() {
  // The entry list is derived from the expectation table (first occurrence
  // order, deduplicated) so a kernel added with its ground truth can never
  // silently vanish from the harness precision report.
  std::vector<std::string> entries;
  for (const KernelExpectation& e : stamp_kernel_expectations()) {
    bool seen = false;
    for (const std::string& known : entries) seen = seen || known == e.entry;
    if (!seen) entries.push_back(e.entry);
  }
  const Program p = stamp_kernels();
  std::vector<KernelReport> reports;
  for (const std::string& entry : entries) {
    // Inline depth 2 is the paper's configuration ("relies on function
    // inlining to extend the analysis results across function calls").
    const AnalysisResult r = analyze(p, entry, 2);
    KernelReport rep;
    rep.entry = entry;
    rep.stats = r.stats();
    rep.loads = r.total(false);
    rep.stores = r.total(true);
    rep.elided_accesses = r.elided(false) + r.elided(true);
    reports.push_back(std::move(rep));
  }
  return reports;
}

std::string kernel_report_table() {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %6s %7s %8s %9s %8s\n", "kernel",
                "sites", "proven", "demoted", "accesses", "elided%");
  out += line;
  AnalysisStats totals;
  std::size_t accesses = 0, elided = 0;
  for (const KernelReport& r : stamp_kernel_reports()) {
    const std::size_t acc = r.loads + r.stores;
    std::snprintf(line, sizeof(line), "%-22s %6zu %7zu %8zu %9zu %7.1f%%\n",
                  r.entry.c_str(), r.stats.sites_total, r.stats.proven,
                  r.stats.demoted, acc,
                  acc == 0 ? 0.0
                           : 100.0 * static_cast<double>(r.elided_accesses) /
                                 static_cast<double>(acc));
    out += line;
    totals.sites_total += r.stats.sites_total;
    totals.proven += r.stats.proven;
    totals.demoted += r.stats.demoted;
    accesses += acc;
    elided += r.elided_accesses;
  }
  std::snprintf(line, sizeof(line), "%-22s %6zu %7zu %8zu %9zu %7.1f%%\n",
                "ALL", totals.sites_total, totals.proven, totals.demoted,
                accesses,
                accesses == 0 ? 0.0
                              : 100.0 * static_cast<double>(elided) /
                                    static_cast<double>(accesses));
  out += line;
  return out;
}

}  // namespace cstm::txir
