// Compiler capture analysis (paper Section 3.2): a conservative,
// flow-insensitive, intraprocedural pointer analysis that classifies each
// IR value as definitely-captured or unknown, then decides per load/store
// whether its STM barrier can be statically elided.
//
// Key transactional insight encoded here: storing a captured pointer into
// shared memory does NOT un-capture the memory it points to — transaction
// isolation keeps newly allocated memory private until commit. Hence stores
// and opaque calls never kill capture facts; the only sources of
// imprecision are values whose provenance the analysis cannot see (loads
// from memory, parameters, opaque call results).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "txir/ir.hpp"

namespace cstm::txir {

enum class ValueState : std::uint8_t {
  kUnknown = 0,   // may point anywhere
  kCaptured = 1,  // definitely points into transaction-local memory
};

struct BarrierDecision {
  std::string site;   // load/store site label
  bool is_store;
  bool elidable;      // true => compiler removes the STM barrier
};

struct AnalysisResult {
  std::vector<ValueState> states;        // indexed by ValueId
  std::vector<BarrierDecision> barriers; // one per load/store, body order

  std::size_t total(bool stores) const {
    std::size_t n = 0;
    for (const auto& b : barriers) n += (b.is_store == stores);
    return n;
  }
  std::size_t elided(bool stores) const {
    std::size_t n = 0;
    for (const auto& b : barriers) n += (b.is_store == stores && b.elidable);
    return n;
  }
  /// True iff the named site's barrier is elided (all occurrences agree;
  /// if any occurrence needs a barrier the site keeps its barrier).
  bool site_elidable(const std::string& site) const;
};

/// Analyzes a single function (no inlining).
AnalysisResult analyze(const Function& f);

/// Inlines known callees up to @p inline_depth, then analyzes — the paper's
/// configuration ("relies on function inlining to extend the analysis
/// results across function calls").
AnalysisResult analyze(const Program& p, const std::string& entry,
                       int inline_depth);

}  // namespace cstm::txir
