// Static capture analysis over TxIR (paper Section 3.2, grown from the
// paper's flow-insensitive two-point analysis into the pipeline that feeds
// the typed API's Site verdicts).
//
// The analysis is flow- and path-sensitive and interprocedural: a worklist
// dataflow over the function's basic blocks. Each block has an IN abstract
// state (per-value abstract pointers, per-allocation-site field cells, and
// the set of allocation sites that may already be published on some path
// reaching the block); the transfer function executes the block and pushes
// the OUT state along each CFG edge, binding branch arguments to the
// target's block parameters. States from multiple predecessors JOIN at the
// target (pointwise value join, field-cell join, publication-set union),
// so a store that publishes a captured pointer on one branch demotes
// accesses at and after the merge but leaves the non-publishing branch's
// own accesses proven. Loops need no special casing: publication inside a
// loop body flows around the back-edge into the loop head's IN state and
// the worklist iterates to a fixpoint (the lattice is finite and all
// transfer functions are monotone) — which is exactly the loop-carried
// publication rule the old linear IR approximated with a phi-back-edge
// textual check. Irreducible CFGs (multi-entry loops) degrade
// conservatively through the same join: merged states only ever grow.
//
// Per value the engine tracks an abstract pointer: a capture class plus
// the set of allocation sites it may point into; per captured/stack
// allocation site it additionally tracks the abstract contents of each
// field (so a pointer stored into captured memory and loaded back keeps
// its classification). Each load/store access site receives a Verdict
// from the same lattice the runtime Site descriptors use (stm/site.hpp):
//
//   kCaptured — heap memory allocated since the transaction started
//   kStack    — a stack slot created inside the atomic block
//   kStatic   — immutable static data (read elision only)
//   kPrivate  — an annotation-registered thread-private block
//   kUnknown  — everything else: the barrier stays
//
// Conservatism rules (each is a soundness requirement for *static* elision,
// which compiles to a plain access with zero runtime probes and therefore
// has no fallback when the proof is wrong):
//
//  * Publication: storing a captured pointer into memory that may be
//    shared (an unknown base, an already-published object, an opaque call
//    argument, a callee-published parameter) publishes the allocation site
//    — transitively through anything stored inside it — and every access
//    through it *after* that program point is demoted to kUnknown. The
//    runtime filters (alloc log, stack range) keep eliding such accesses;
//    only the static proof is withdrawn. Flow-sensitivity is what keeps
//    the common STAMP shape (initialize fields, then link) fully proven:
//    the inits precede the publication on every path that reaches them.
//  * Alias merges: a block parameter (phi) joining captured and unknown
//    inputs is unknown.
//  * Loads: a value loaded from shared, published, static, or private
//    memory is opaque (the bits could be any pointer). Loads from
//    *unpublished* captured memory return the join of everything stored
//    into that site's field.
//  * Calls: unknown callees may publish every pointer argument. Known
//    callees are either inlined (analyze with inline_depth > 0) or
//    summarized: the summary records which parameters the callee may
//    publish and whether the return value is a fresh capture, a parameter
//    pass-through, static, or private. Recursion degrades to the opaque
//    summary.
//
// Accesses whose pointer had captured/stack provenance but lost the proof
// to one of these rules are reported as "demoted" — the analysis-precision
// number the harness prints per kernel (sites total / proven / demoted).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stm/site.hpp"
#include "txir/ir.hpp"

namespace cstm::txir {

/// One load/store access site occurrence (blocks in reverse postorder,
/// body order within a block; unreachable blocks are not analyzed).
struct AccessVerdict {
  std::string site;  // site label of the load/store
  bool is_store = false;
  Verdict verdict = Verdict::kUnknown;
  /// The pointer had tx-local provenance but publication/alias/escape
  /// conservatism withdrew the static proof (barrier kept).
  bool demoted = false;

  /// Whether the compiler deletes this barrier (stores to static data keep
  /// theirs — mirroring Site::read_elidable/write_elidable).
  bool elidable() const {
    if (verdict == Verdict::kUnknown) return false;
    if (is_store && verdict == Verdict::kStatic) return false;
    return true;
  }
};

/// Site-level aggregate over unique site labels.
struct AnalysisStats {
  std::size_t sites_total = 0;
  std::size_t proven = 0;   // every occurrence elidable
  std::size_t demoted = 0;  // not proven, and conservatism (not ignorance)
                            // is what kept at least one occurrence
};

struct AnalysisResult {
  std::vector<AccessVerdict> barriers;  // one per reachable load/store, in
                                        // RPO-block / body order

  /// The verdict all occurrences of the named site agree on (kUnknown when
  /// the site never appears or occurrences disagree).
  Verdict site_verdict(const std::string& site) const;
  /// True iff the named site appears and every occurrence is elidable.
  bool site_elidable(const std::string& site) const;
  /// True iff the named site keeps its barrier due to demotion.
  bool site_demoted(const std::string& site) const;

  AnalysisStats stats() const;

  std::size_t total(bool stores) const {
    std::size_t n = 0;
    for (const auto& b : barriers) n += (b.is_store == stores);
    return n;
  }
  std::size_t elided(bool stores) const {
    std::size_t n = 0;
    for (const auto& b : barriers) n += (b.is_store == stores && b.elidable());
    return n;
  }
};

/// Analyzes a single function with no program context: every call is
/// opaque (publishes its pointer arguments, returns unknown).
AnalysisResult analyze(const Function& f);

/// Inlines known callees up to @p inline_depth, then analyzes; calls that
/// remain (depth exhausted, or depth 0) are resolved through function
/// summaries when the callee is known, and treated as opaque otherwise.
AnalysisResult analyze(const Program& p, const std::string& entry,
                       int inline_depth);

}  // namespace cstm::txir
