// intruder: network intrusion detection (STAMP intruder reimplementation).
//
// Flows are fragmented; fragments arrive interleaved on a shared queue.
// Threads pop fragments, reassemble flows in a transactional map (flow
// state allocated inside the transaction on first fragment — captured
// memory), and scan completed flows for a planted attack signature.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "containers/txmap.hpp"
#include "containers/txqueue.hpp"
#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"

namespace cstm::stamp {

class IntruderApp : public App {
 public:
  const char* name() const override { return "intruder"; }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;
  std::unique_ptr<RequestSource> open_request_stream(int tid) override;
  ~IntruderApp() override;

 private:
  friend class IntruderRequestSource;
  struct FlowState {
    tfield<std::uint64_t, intruder_sites::kFlowField> received;
    tfield<std::uint64_t, intruder_sites::kFlowField> total;
  };

  AppParams params_;
  std::size_t num_flows_ = 0;
  int fragments_per_flow_ = 0;
  std::size_t planted_attacks_ = 0;

  std::vector<std::vector<std::uint8_t>> flow_data_;  // read-only after setup
  std::unique_ptr<TxQueue<std::uint64_t>> arrivals_;  // flow<<16 | frag
  std::unique_ptr<TxMap<std::uint64_t, FlowState*>> reassembly_;
  std::unique_ptr<TxQueue<std::uint64_t>> completed_;
  alignas(64) tvar<std::uint64_t, intruder_sites::kCounter> attacks_found_{0};
  alignas(64) tvar<std::uint64_t, intruder_sites::kCounter> flows_done_{0};
};

}  // namespace cstm::stamp
