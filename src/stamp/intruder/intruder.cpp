#include "stamp/intruder/intruder.hpp"

#include <algorithm>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

namespace {
// The attack signature scanned for in completed flows.
constexpr std::uint8_t kSignature[] = {0xde, 0xad, 0xbe, 0xef};
}  // namespace

IntruderApp::~IntruderApp() = default;

void IntruderApp::setup(const AppParams& params) {
  params_ = params;
  num_flows_ = static_cast<std::size_t>(2048 * params.scale);
  if (num_flows_ < 64) num_flows_ = 64;
  fragments_per_flow_ = 4;

  Xoshiro256 rng(params.seed);
  flow_data_.assign(num_flows_, {});
  planted_attacks_ = 0;
  for (std::size_t f = 0; f < num_flows_; ++f) {
    auto& data = flow_data_[f];
    data.resize(64 + rng.below(64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(250));
    if (rng.below(10) == 0) {  // plant an attack in ~10% of flows
      const std::size_t pos = rng.below(data.size() - sizeof(kSignature));
      std::copy(std::begin(kSignature), std::end(kSignature),
                data.begin() + static_cast<long>(pos));
      ++planted_attacks_;
    }
  }

  // Interleave fragment arrivals: shuffle (flow, fragment) pairs.
  std::vector<std::uint64_t> fragments;
  fragments.reserve(num_flows_ * static_cast<std::size_t>(fragments_per_flow_));
  for (std::size_t f = 0; f < num_flows_; ++f) {
    for (int i = 0; i < fragments_per_flow_; ++i) {
      fragments.push_back((static_cast<std::uint64_t>(f) << 16) |
                          static_cast<std::uint64_t>(i));
    }
  }
  for (std::size_t i = fragments.size(); i-- > 1;) {
    std::swap(fragments[i], fragments[rng.below(i + 1)]);
  }

  arrivals_ = std::make_unique<TxQueue<std::uint64_t>>();
  reassembly_ = std::make_unique<TxMap<std::uint64_t, FlowState*>>();
  completed_ = std::make_unique<TxQueue<std::uint64_t>>();
  attacks_found_.poke(0);
  flows_done_.poke(0);
  Tx& tx = current_tx();
  for (const std::uint64_t frag : fragments) arrivals_->push(tx, frag);
}

void IntruderApp::worker(int /*tid*/) {
  for (;;) {
    std::uint64_t frag = 0;
    bool got = false;
    atomic([&](Tx& tx) { got = arrivals_->pop(tx, &frag); });
    if (!got) break;
    const std::uint64_t flow = frag >> 16;

    // Reassembly transaction: per-flow state is allocated inside the
    // transaction on first fragment (captured initialization).
    bool complete = false;
    atomic([&](Tx& tx) {
      complete = false;
      FlowState* state = nullptr;
      if (!reassembly_->find(tx, flow, &state)) {
        state = tx_new<FlowState>(tx);
        state->received.init(tx, 0);
        state->total.init(tx, static_cast<std::uint64_t>(fragments_per_flow_));
        reassembly_->insert(tx, flow, state);
      }
      const std::uint64_t recv = state->received.get(tx) + 1;
      state->received.set(tx, recv);
      if (recv == state->total.get(tx)) {
        reassembly_->erase(tx, flow);
        tx_delete(tx, state);
        completed_->push(tx, flow);
        complete = true;
      }
    });
    (void)complete;

    // Detection: drain completed flows, scan outside any transaction (the
    // flow is now exclusively ours), record findings transactionally.
    for (;;) {
      std::uint64_t done_flow = 0;
      bool have = false;
      atomic([&](Tx& tx) { have = completed_->pop(tx, &done_flow); });
      if (!have) break;
      const auto& data = flow_data_[done_flow];
      const bool attack =
          std::search(data.begin(), data.end(), std::begin(kSignature),
                      std::end(kSignature)) != data.end();
      atomic([&](Tx& tx) {
        flows_done_.add(tx, 1);
        if (attack) {
          attacks_found_.add(tx, 1);
        }
      });
    }
  }
}

/// Request-stream adapter (txbatch `--batch` mode). One request = pop one
/// fragment and advance its flow's reassembly; when the flow completes, the
/// signature scan runs inline over the immutable flow bytes (plain reads —
/// flow_data_ is read-only after setup) and the result counters are bumped
/// in the same transaction, so the completed_ hand-off queue is never
/// touched. This is the strongest capture showcase in the suite: merge a
/// flow's four fragments into one outer transaction and the FlowState plus
/// the reassembly-map nodes allocated by the first fragment are CAPTURED
/// memory for the other three.
class IntruderRequestSource : public RequestSource {
 public:
  IntruderRequestSource(IntruderApp& app, int tid) : app_(app) {
    const auto total = static_cast<std::uint64_t>(app.num_flows_) *
                       static_cast<std::uint64_t>(app.fragments_per_flow_);
    const auto threads = static_cast<std::uint64_t>(app.params_.threads);
    remaining_ = total / threads +
                 (static_cast<std::uint64_t>(tid) < total % threads ? 1 : 0);
  }

  std::function<void(Tx&)> next() override {
    if (remaining_ == 0) return {};
    --remaining_;
    return [this](Tx& tx) {
      std::uint64_t frag = 0;
      if (!app_.arrivals_->pop(tx, &frag)) return;
      const std::uint64_t flow = frag >> 16;
      IntruderApp::FlowState* state = nullptr;
      if (!app_.reassembly_->find(tx, flow, &state)) {
        state = tx_new<IntruderApp::FlowState>(tx);
        state->received.init(tx, 0);
        state->total.init(
            tx, static_cast<std::uint64_t>(app_.fragments_per_flow_));
        app_.reassembly_->insert(tx, flow, state);
      }
      const std::uint64_t recv = state->received.get(tx) + 1;
      state->received.set(tx, recv);
      if (recv == state->total.get(tx)) {
        app_.reassembly_->erase(tx, flow);
        tx_delete(tx, state);
        const auto& data = app_.flow_data_[flow];
        const bool attack =
            std::search(data.begin(), data.end(), std::begin(kSignature),
                        std::end(kSignature)) != data.end();
        app_.flows_done_.add(tx, 1);
        if (attack) app_.attacks_found_.add(tx, 1);
      }
    };
  }

 private:
  IntruderApp& app_;
  std::uint64_t remaining_ = 0;
};

std::unique_ptr<RequestSource> IntruderApp::open_request_stream(int tid) {
  return std::make_unique<IntruderRequestSource>(*this, tid);
}

bool IntruderApp::verify() {
  Tx& tx = current_tx();
  return flows_done_.peek() == num_flows_ &&
         attacks_found_.peek() == planted_attacks_ &&
         reassembly_->size(tx) == 0 && completed_->empty(tx);
}

}  // namespace cstm::stamp
