#include "stamp/intruder/intruder.hpp"

#include <algorithm>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

namespace {
// The attack signature scanned for in completed flows.
constexpr std::uint8_t kSignature[] = {0xde, 0xad, 0xbe, 0xef};
}  // namespace

IntruderApp::~IntruderApp() = default;

void IntruderApp::setup(const AppParams& params) {
  params_ = params;
  num_flows_ = static_cast<std::size_t>(2048 * params.scale);
  if (num_flows_ < 64) num_flows_ = 64;
  fragments_per_flow_ = 4;

  Xoshiro256 rng(params.seed);
  flow_data_.assign(num_flows_, {});
  planted_attacks_ = 0;
  for (std::size_t f = 0; f < num_flows_; ++f) {
    auto& data = flow_data_[f];
    data.resize(64 + rng.below(64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(250));
    if (rng.below(10) == 0) {  // plant an attack in ~10% of flows
      const std::size_t pos = rng.below(data.size() - sizeof(kSignature));
      std::copy(std::begin(kSignature), std::end(kSignature),
                data.begin() + static_cast<long>(pos));
      ++planted_attacks_;
    }
  }

  // Interleave fragment arrivals: shuffle (flow, fragment) pairs.
  std::vector<std::uint64_t> fragments;
  fragments.reserve(num_flows_ * static_cast<std::size_t>(fragments_per_flow_));
  for (std::size_t f = 0; f < num_flows_; ++f) {
    for (int i = 0; i < fragments_per_flow_; ++i) {
      fragments.push_back((static_cast<std::uint64_t>(f) << 16) |
                          static_cast<std::uint64_t>(i));
    }
  }
  for (std::size_t i = fragments.size(); i-- > 1;) {
    std::swap(fragments[i], fragments[rng.below(i + 1)]);
  }

  arrivals_ = std::make_unique<TxQueue<std::uint64_t>>();
  reassembly_ = std::make_unique<TxMap<std::uint64_t, FlowState*>>();
  completed_ = std::make_unique<TxQueue<std::uint64_t>>();
  attacks_found_.poke(0);
  flows_done_.poke(0);
  Tx& tx = current_tx();
  for (const std::uint64_t frag : fragments) arrivals_->push(tx, frag);
}

void IntruderApp::worker(int /*tid*/) {
  for (;;) {
    std::uint64_t frag = 0;
    bool got = false;
    atomic([&](Tx& tx) { got = arrivals_->pop(tx, &frag); });
    if (!got) break;
    const std::uint64_t flow = frag >> 16;

    // Reassembly transaction: per-flow state is allocated inside the
    // transaction on first fragment (captured initialization).
    bool complete = false;
    atomic([&](Tx& tx) {
      complete = false;
      FlowState* state = nullptr;
      if (!reassembly_->find(tx, flow, &state)) {
        state = tx_new<FlowState>(tx);
        state->received.init(tx, 0);
        state->total.init(tx, static_cast<std::uint64_t>(fragments_per_flow_));
        reassembly_->insert(tx, flow, state);
      }
      const std::uint64_t recv = state->received.get(tx) + 1;
      state->received.set(tx, recv);
      if (recv == state->total.get(tx)) {
        reassembly_->erase(tx, flow);
        tx_delete(tx, state);
        completed_->push(tx, flow);
        complete = true;
      }
    });
    (void)complete;

    // Detection: drain completed flows, scan outside any transaction (the
    // flow is now exclusively ours), record findings transactionally.
    for (;;) {
      std::uint64_t done_flow = 0;
      bool have = false;
      atomic([&](Tx& tx) { have = completed_->pop(tx, &done_flow); });
      if (!have) break;
      const auto& data = flow_data_[done_flow];
      const bool attack =
          std::search(data.begin(), data.end(), std::begin(kSignature),
                      std::end(kSignature)) != data.end();
      atomic([&](Tx& tx) {
        flows_done_.add(tx, 1);
        if (attack) {
          attacks_found_.add(tx, 1);
        }
      });
    }
  }
}

bool IntruderApp::verify() {
  Tx& tx = current_tx();
  return flows_done_.peek() == num_flows_ &&
         attacks_found_.peek() == planted_attacks_ &&
         reassembly_->size(tx) == 0 && completed_->empty(tx);
}

}  // namespace cstm::stamp
