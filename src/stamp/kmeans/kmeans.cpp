#include "stamp/kmeans/kmeans.hpp"

#include <atomic>
#include <barrier>
#include <cmath>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

void KmeansApp::setup(const AppParams& params) {
  params_ = params;
  num_points_ = static_cast<std::size_t>(16384 * params.scale);
  if (num_points_ < 256) num_points_ = 256;
  num_clusters_ = high_ ? 8 : 40;

  Xoshiro256 rng(params.seed);
  points_.resize(num_points_ * kDims);
  for (auto& p : points_) p = static_cast<float>(rng.uniform01());
  centers_.resize(static_cast<std::size_t>(num_clusters_) * kDims);
  for (int c = 0; c < num_clusters_; ++c) {
    const std::size_t p = rng.below(num_points_);
    for (int d = 0; d < kDims; ++d) {
      centers_[static_cast<std::size_t>(c) * kDims + d] =
          points_[p * kDims + d];
    }
  }
  new_centers_.assign(centers_.size(), 0.0f);
  new_len_.assign(static_cast<std::size_t>(num_clusters_), 0);
  membership_.assign(num_points_, -1);
  assigned_total_.poke(0);
}

void KmeansApp::worker(int tid) {
  const int threads = params_.threads;
  const std::size_t chunk = (num_points_ + threads - 1) / threads;
  const std::size_t begin = static_cast<std::size_t>(tid) * chunk;
  const std::size_t end = std::min(num_points_, begin + chunk);

  for (int iter = 0; iter < kIterations; ++iter) {
    std::uint64_t local_assigned = 0;
    for (std::size_t p = begin; p < end; ++p) {
      // Nearest center: pure computation on this thread's chunk.
      int best = 0;
      float best_d = 1e30f;
      for (int c = 0; c < num_clusters_; ++c) {
        float d2 = 0.0f;
        for (int d = 0; d < kDims; ++d) {
          const float diff = points_[p * kDims + d] -
                             centers_[static_cast<std::size_t>(c) * kDims + d];
          d2 += diff * diff;
        }
        if (d2 < best_d) {
          best_d = d2;
          best = c;
        }
      }
      membership_[p] = best;
      ++local_assigned;
      // Shared accumulator update: the transactional kernel. Floats travel
      // through the word barriers unchanged.
      atomic([&](Tx& tx) {
        tspan<std::uint64_t, kmeans_sites::kAccum> lens(new_len_);
        lens.add(tx, static_cast<std::size_t>(best), 1);
        tspan<float, kmeans_sites::kAccum> centers(new_centers_);
        for (int d = 0; d < kDims; ++d) {
          centers.add(tx, static_cast<std::size_t>(best) * kDims + d,
                      points_[p * kDims + d]);
        }
      });
    }
    atomic([&](Tx& tx) { assigned_total_.add(tx, local_assigned); });
  }
}

bool KmeansApp::verify() {
  // Every point was assigned in every iteration...
  if (assigned_total_.peek() !=
      static_cast<std::uint64_t>(num_points_) * kIterations) {
    return false;
  }
  // ...and the accumulator counts add up to points * iterations.
  std::uint64_t total = 0;
  for (std::uint64_t n : new_len_) total += n;
  return total == static_cast<std::uint64_t>(num_points_) * kIterations;
}

}  // namespace cstm::stamp
