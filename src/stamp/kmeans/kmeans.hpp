// kmeans: transactional k-means clustering (STAMP kmeans reimplementation).
//
// Threads scan disjoint chunks of points, find the nearest center (pure
// computation), then update the shared new-center accumulators inside a
// transaction. Every transactional access targets shared accumulators —
// kmeans has essentially no capture opportunity (paper Fig. 8), so runtime
// capture checks are pure overhead here and the paper measures a slowdown.
//
// High contention: few clusters (all threads fight over the same
// accumulators). Low contention: many clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"
#include "stm/stm.hpp"

namespace cstm::stamp {

class KmeansApp : public App {
 public:
  explicit KmeansApp(bool high_contention) : high_(high_contention) {}

  const char* name() const override {
    return high_ ? "kmeans-high" : "kmeans-low";
  }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;

 private:
  static constexpr int kDims = 8;
  static constexpr int kIterations = 4;

  bool high_;
  AppParams params_;
  std::size_t num_points_ = 0;
  int num_clusters_ = 0;

  std::vector<float> points_;          // num_points_ x kDims
  std::vector<float> centers_;         // num_clusters_ x kDims (read-only in pass)
  std::vector<float> new_centers_;     // shared accumulators (transactional)
  std::vector<std::uint64_t> new_len_; // shared counts (transactional)
  std::vector<int> membership_;        // per point, written by owner thread
  alignas(64) tvar<std::uint64_t, kmeans_sites::kAccum> assigned_total_{0};
};

}  // namespace cstm::stamp
