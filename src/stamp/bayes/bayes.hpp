// bayes: Bayesian network structure learning (STAMP bayes, structurally
// simplified).
//
// The STAMP learner pulls tasks off a shared task list with a stack
// iterator (the paper's Figure 1(a) snippet is literally this code),
// evaluates a score over thread-local query vectors (Figure 1(b) —
// annotated with addPrivateMemoryBlock here), and mutates the network's
// parent lists transactionally. This reimplementation keeps exactly those
// three transactional access patterns; the score function is a
// deterministic surrogate for the log-likelihood computation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "containers/txlist.hpp"
#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"

namespace cstm::stamp {

class BayesApp : public App {
 public:
  const char* name() const override { return "bayes"; }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;

 private:
  static constexpr std::size_t kQueryVectorWords = 32;

  AppParams params_;
  std::size_t num_vars_ = 0;
  std::size_t initial_tasks_ = 0;
  std::unique_ptr<TxList<std::uint64_t>> task_list_;   // packed (score, var)
  std::vector<std::unique_ptr<TxList<std::uint64_t>>> parents_;  // per var
  std::vector<std::uint64_t> records_;                 // read-only samples
  alignas(64) tvar<std::uint64_t, bayes_sites::kCounter> tasks_done_{0};
  alignas(64) tvar<std::uint64_t, bayes_sites::kCounter> tasks_created_{0};
  alignas(64) tvar<std::uint64_t, bayes_sites::kCounter> arcs_added_{0};
};

}  // namespace cstm::stamp
