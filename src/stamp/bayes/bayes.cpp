#include "stamp/bayes/bayes.hpp"

#include "capture/private_registry.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

namespace {
constexpr std::uint64_t pack_task(std::uint64_t score, std::uint64_t var) {
  return (score << 24) | var;
}
constexpr std::uint64_t task_var(std::uint64_t t) { return t & 0xffffffu; }
}  // namespace

void BayesApp::setup(const AppParams& params) {
  params_ = params;
  num_vars_ = static_cast<std::size_t>(96 * params.scale);
  if (num_vars_ < 24) num_vars_ = 24;
  initial_tasks_ = num_vars_ * 24;

  Xoshiro256 rng(params.seed);
  records_.resize(num_vars_ * 16);
  for (auto& r : records_) r = rng.next();

  task_list_ = std::make_unique<TxList<std::uint64_t>>(/*allow_duplicates=*/true);
  parents_.clear();
  for (std::size_t v = 0; v < num_vars_; ++v) {
    parents_.push_back(std::make_unique<TxList<std::uint64_t>>());
  }
  Tx& tx = current_tx();
  for (std::size_t t = 0; t < initial_tasks_; ++t) {
    task_list_->insert(
        tx, pack_task(rng.below(1u << 20), rng.below(num_vars_)));
  }
  tasks_created_.poke(initial_tasks_);
  tasks_done_.poke(0);
  arcs_added_.poke(0);
}

void BayesApp::worker(int tid) {
  Xoshiro256 rng(params_.seed * 31 + static_cast<std::uint64_t>(tid));

  // Figure 1(b): a per-thread query vector, annotated as private so the
  // annotation-aware runtime elides its barriers.
  tvar_array<std::uint64_t, kQueryVectorWords, bayes_sites::kQueryVec>
      query_vector;
  add_private_memory_block(query_vector.data(), query_vector.size_bytes());

  for (;;) {
    std::uint64_t task = 0;
    bool got = false;
    bool finished = false;
    // Figure 1(a), verbatim structure: iterator on the transaction-local
    // stack; the learner scans a window of the task list for the
    // best-scoring task before removing it (as STAMP's learner does).
    atomic([&](Tx& tx) {
      got = false;
      finished = false;
      typename TxList<std::uint64_t>::Iterator it;
      // The running best lives on the transaction-local stack too.
      tvar<std::uint64_t, kAutoCapturedSite> best{0};
      std::uint64_t scanned = 0;
      task_list_->iter_reset(tx, &it);
      while (task_list_->iter_has_next(tx, &it) && scanned < 32) {
        const std::uint64_t cand = task_list_->iter_next(tx, &it);
        if (cand >= best.get(tx)) {
          best.set(tx, cand);
        }
        ++scanned;
      }
      if (scanned > 0) {
        task = best.get(tx);
        got = task_list_->remove(tx, task);
      } else if (tasks_done_.get(tx) == tasks_created_.get(tx)) {
        finished = true;
      }
    });
    if (finished) break;
    if (!got) continue;  // raced with another learner; rescan

    const std::uint64_t var = task_var(task);

    // Score the candidate parent: populate the private query vector and
    // compute a local log-likelihood surrogate over the read-only records.
    std::uint64_t parent = 0;
    std::uint64_t score = 0;
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < kQueryVectorWords; ++i) {
        query_vector.set(tx, i, records_[(var * 16 + i) % records_.size()]);
      }
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < kQueryVectorWords; ++i) {
        acc ^= query_vector.get(tx, i) * (i + 1);
      }
      parent = acc % num_vars_;
      score = acc >> 44;
    });

    // Apply: add the parent arc if absent and acyclic-by-ordering (parent
    // id must be smaller — a cheap DAG guarantee), occasionally spawning a
    // follow-up refinement task.
    const bool spawn = rng.below(8) == 0;
    atomic([&](Tx& tx) {
      if (parent < var && parents_[var]->insert(tx, parent)) {
        arcs_added_.add(tx, 1);
      }
      if (spawn && tasks_created_.get(tx) < initial_tasks_ * 2) {
        task_list_->insert(tx, pack_task(score, parent));
        tasks_created_.add(tx, 1);
      }
      tasks_done_.add(tx, 1);
    });
  }

  remove_private_memory_block(query_vector.data(), query_vector.size_bytes());
}

bool BayesApp::verify() {
  if (tasks_done_.peek() != tasks_created_.peek()) return false;
  // DAG by construction: every arc must point from a smaller id.
  Tx& tx = current_tx();
  bool ok = true;
  std::uint64_t arcs = 0;
  for (std::size_t v = 0; v < num_vars_; ++v) {
    typename TxList<std::uint64_t>::Iterator it;
    parents_[v]->iter_reset(tx, &it);
    while (parents_[v]->iter_has_next(tx, &it)) {
      if (parents_[v]->iter_next(tx, &it) >= v) ok = false;
      ++arcs;
    }
  }
  return ok && arcs == arcs_added_.peek() && task_list_->empty(tx);
}

}  // namespace cstm::stamp
