#include "stamp/bayes/bayes.hpp"

#include "capture/private_registry.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

namespace sites {
inline constexpr Site kCounter{"bayes.counter", true, false};
// Thread-local query vector (Figure 1(b)): elidable only via annotations.
inline constexpr Site kQueryVec{"bayes.query.vec", false, false};
}  // namespace sites

namespace {
constexpr std::uint64_t pack_task(std::uint64_t score, std::uint64_t var) {
  return (score << 24) | var;
}
constexpr std::uint64_t task_var(std::uint64_t t) { return t & 0xffffffu; }
}  // namespace

void BayesApp::setup(const AppParams& params) {
  params_ = params;
  num_vars_ = static_cast<std::size_t>(96 * params.scale);
  if (num_vars_ < 24) num_vars_ = 24;
  initial_tasks_ = num_vars_ * 24;

  Xoshiro256 rng(params.seed);
  records_.resize(num_vars_ * 16);
  for (auto& r : records_) r = rng.next();

  task_list_ = std::make_unique<TxList<std::uint64_t>>(/*allow_duplicates=*/true);
  parents_.clear();
  for (std::size_t v = 0; v < num_vars_; ++v) {
    parents_.push_back(std::make_unique<TxList<std::uint64_t>>());
  }
  Tx& tx = current_tx();
  for (std::size_t t = 0; t < initial_tasks_; ++t) {
    task_list_->insert(
        tx, pack_task(rng.below(1u << 20), rng.below(num_vars_)));
  }
  tasks_created_ = initial_tasks_;
  tasks_done_ = 0;
  arcs_added_ = 0;
}

void BayesApp::worker(int tid) {
  Xoshiro256 rng(params_.seed * 31 + static_cast<std::uint64_t>(tid));

  // Figure 1(b): a per-thread query vector, annotated as private so the
  // annotation-aware runtime elides its barriers.
  std::uint64_t query_vector[kQueryVectorWords] = {};
  add_private_memory_block(query_vector, sizeof(query_vector));

  for (;;) {
    std::uint64_t task = 0;
    bool got = false;
    bool finished = false;
    // Figure 1(a), verbatim structure: iterator on the transaction-local
    // stack; the learner scans a window of the task list for the
    // best-scoring task before removing it (as STAMP's learner does).
    atomic([&](Tx& tx) {
      got = false;
      finished = false;
      typename TxList<std::uint64_t>::Iterator it;
      std::uint64_t best = 0;
      std::uint64_t scanned = 0;
      task_list_->iter_reset(tx, &it);
      while (task_list_->iter_has_next(tx, &it) && scanned < 32) {
        const std::uint64_t cand = task_list_->iter_next(tx, &it);
        // The running best lives on the transaction-local stack too.
        if (cand >= tm_read(tx, &best, kAutoCapturedSite)) {
          tm_write(tx, &best, cand, kAutoCapturedSite);
        }
        ++scanned;
      }
      if (scanned > 0) {
        task = tm_read(tx, &best, kAutoCapturedSite);
        got = task_list_->remove(tx, task);
      } else if (tm_read(tx, &tasks_done_, sites::kCounter) ==
                 tm_read(tx, &tasks_created_, sites::kCounter)) {
        finished = true;
      }
    });
    if (finished) break;
    if (!got) continue;  // raced with another learner; rescan

    const std::uint64_t var = task_var(task);

    // Score the candidate parent: populate the private query vector and
    // compute a local log-likelihood surrogate over the read-only records.
    std::uint64_t parent = 0;
    std::uint64_t score = 0;
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < kQueryVectorWords; ++i) {
        tm_write(tx, &query_vector[i],
                 records_[(var * 16 + i) % records_.size()],
                 sites::kQueryVec);
      }
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < kQueryVectorWords; ++i) {
        acc ^= tm_read(tx, &query_vector[i], sites::kQueryVec) * (i + 1);
      }
      parent = acc % num_vars_;
      score = acc >> 44;
    });

    // Apply: add the parent arc if absent and acyclic-by-ordering (parent
    // id must be smaller — a cheap DAG guarantee), occasionally spawning a
    // follow-up refinement task.
    const bool spawn = rng.below(8) == 0;
    atomic([&](Tx& tx) {
      if (parent < var && parents_[var]->insert(tx, parent)) {
        tm_add(tx, &arcs_added_, std::uint64_t{1}, sites::kCounter);
      }
      if (spawn && tm_read(tx, &tasks_created_, sites::kCounter) <
                       initial_tasks_ * 2) {
        task_list_->insert(tx, pack_task(score, parent));
        tm_add(tx, &tasks_created_, std::uint64_t{1}, sites::kCounter);
      }
      tm_add(tx, &tasks_done_, std::uint64_t{1}, sites::kCounter);
    });
  }

  remove_private_memory_block(query_vector, sizeof(query_vector));
}

bool BayesApp::verify() {
  if (tasks_done_ != tasks_created_) return false;
  // DAG by construction: every arc must point from a smaller id.
  Tx& tx = current_tx();
  bool ok = true;
  std::uint64_t arcs = 0;
  for (std::size_t v = 0; v < num_vars_; ++v) {
    typename TxList<std::uint64_t>::Iterator it;
    parents_[v]->iter_reset(tx, &it);
    while (parents_[v]->iter_has_next(tx, &it)) {
      if (parents_[v]->iter_next(tx, &it) >= v) ok = false;
      ++arcs;
    }
  }
  return ok && arcs == arcs_added_ && task_list_->empty(tx);
}

}  // namespace cstm::stamp
