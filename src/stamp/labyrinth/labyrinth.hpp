// labyrinth: Lee-style maze router (STAMP labyrinth reimplementation).
//
// Threads pop (src, dst) work items, compute a candidate path with a BFS
// over a *private snapshot* of the grid (outside any transaction), then
// atomically validate-and-claim the path's cells on the shared grid. All
// transactional accesses target the shared grid — labyrinth is the paper's
// "zero redundant barriers" benchmark (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "containers/txqueue.hpp"
#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"

namespace cstm::stamp {

class LabyrinthApp : public App {
 public:
  const char* name() const override { return "labyrinth"; }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;

 private:
  struct Work {
    std::uint32_t src;
    std::uint32_t dst;
  };

  std::size_t index(std::size_t x, std::size_t y) const { return y * width_ + x; }

  AppParams params_;
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::size_t num_paths_ = 0;
  // 0 = free, otherwise 1 + path id that claimed the cell.
  std::vector<std::uint64_t> grid_;
  TxQueue<std::uint64_t> work_;  // packed (src<<32 | dst)
  std::vector<Work> planned_;
  alignas(64) tvar<std::uint64_t, labyrinth_sites::kCounter> routed_{0};
  alignas(64) tvar<std::uint64_t, labyrinth_sites::kCounter> failed_{0};
};

}  // namespace cstm::stamp
