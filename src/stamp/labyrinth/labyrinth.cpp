#include "stamp/labyrinth/labyrinth.hpp"

#include <algorithm>
#include <deque>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

void LabyrinthApp::setup(const AppParams& params) {
  params_ = params;
  width_ = static_cast<std::size_t>(64 * params.scale);
  if (width_ < 24) width_ = 24;
  height_ = width_;
  num_paths_ = width_;  // enough to congest the grid without saturating it

  grid_.assign(width_ * height_, 0);
  routed_.poke(0);
  failed_.poke(0);

  Xoshiro256 rng(params.seed);
  Tx& tx = current_tx();
  planned_.clear();
  for (std::size_t i = 0; i < num_paths_; ++i) {
    const auto sx = rng.below(width_);
    const auto sy = rng.below(height_);
    const auto dx = rng.below(width_);
    const auto dy = rng.below(height_);
    const std::uint32_t src = static_cast<std::uint32_t>(index(sx, sy));
    const std::uint32_t dst = static_cast<std::uint32_t>(index(dx, dy));
    if (src == dst) continue;
    work_.push(tx, planned_.size());  // work item = index into planned_
    planned_.push_back(Work{src, dst});
  }
}

void LabyrinthApp::worker(int /*tid*/) {
  // Thread-private grid snapshot, reused across work items (outside the
  // transactions, exactly as the paper notes for labyrinth's manual code).
  std::vector<std::uint64_t> snapshot(grid_.size());
  std::vector<std::int32_t> dist(grid_.size());
  std::deque<std::size_t> frontier;

  for (;;) {
    std::uint64_t item = 0;
    bool got = false;
    atomic([&](Tx& tx) { got = work_.pop(tx, &item); });
    if (!got) return;
    const auto src = static_cast<std::size_t>(planned_[item].src);
    const auto dst = static_cast<std::size_t>(planned_[item].dst);

    bool routed_this = false;
    for (int attempt = 0; attempt < 3 && !routed_this; ++attempt) {
      // Expansion phase on the private snapshot. The snapshot read races
      // with concurrent claim commits by design (stale paths fail the
      // claim-phase validation); relaxed loads keep that race defined.
      tspan<std::uint64_t, labyrinth_sites::kGrid>(grid_).snapshot_to(
          snapshot.data());
      std::fill(dist.begin(), dist.end(), -1);
      frontier.clear();
      dist[src] = 0;
      frontier.push_back(src);
      while (!frontier.empty() && dist[dst] < 0) {
        const std::size_t cur = frontier.front();
        frontier.pop_front();
        const std::size_t x = cur % width_;
        const std::size_t y = cur / width_;
        const std::size_t neighbors[4] = {
            x > 0 ? cur - 1 : cur, x + 1 < width_ ? cur + 1 : cur,
            y > 0 ? cur - width_ : cur, y + 1 < height_ ? cur + width_ : cur};
        for (const std::size_t nb : neighbors) {
          if (nb == cur || dist[nb] >= 0) continue;
          if (snapshot[nb] != 0 && nb != dst) continue;  // occupied
          dist[nb] = dist[cur] + 1;
          frontier.push_back(nb);
        }
      }
      if (dist[dst] < 0) break;  // unreachable in snapshot: give up

      // Traceback to collect the candidate path.
      std::vector<std::size_t> path;
      std::size_t cur = dst;
      path.push_back(cur);
      while (cur != src) {
        const std::size_t x = cur % width_;
        const std::size_t y = cur / width_;
        const std::size_t neighbors[4] = {
            x > 0 ? cur - 1 : cur, x + 1 < width_ ? cur + 1 : cur,
            y > 0 ? cur - width_ : cur, y + 1 < height_ ? cur + width_ : cur};
        std::size_t next = cur;
        for (const std::size_t nb : neighbors) {
          if (nb != cur && dist[nb] >= 0 && dist[nb] == dist[cur] - 1) {
            next = nb;
            break;
          }
        }
        if (next == cur) break;  // traceback failed (shouldn't happen)
        cur = next;
        path.push_back(cur);
      }
      if (cur != src) break;

      // Claim phase: one transaction validates the path is still free on
      // the shared grid and writes the claim. Purely shared accesses.
      const std::uint64_t claim = item + 1;  // unique nonzero marker
      bool claimed = false;
      atomic([&](Tx& tx) {
        claimed = false;
        tspan<std::uint64_t, labyrinth_sites::kGrid> grid(grid_);
        for (const std::size_t cell : path) {
          if (grid.get(tx, cell) != 0) return;  // stale
        }
        for (const std::size_t cell : path) {
          grid.set(tx, cell, claim);
        }
        claimed = true;
      });
      routed_this = claimed;
    }

    atomic([&](Tx& tx) {
      if (routed_this) {
        routed_.add(tx, 1);
      } else {
        failed_.add(tx, 1);
      }
    });
  }
}

bool LabyrinthApp::verify() {
  // Each attempted path accounted exactly once.
  if (routed_.peek() + failed_.peek() != planned_.size()) return false;
  // Claimed cells carry a single claimant id; count distinct claims and
  // confirm it matches the number of routed paths.
  std::vector<std::uint64_t> claims;
  for (const std::uint64_t cell : grid_) {
    if (cell != 0) claims.push_back(cell);
  }
  std::sort(claims.begin(), claims.end());
  claims.erase(std::unique(claims.begin(), claims.end()), claims.end());
  return claims.size() == routed_.peek();
}

}  // namespace cstm::stamp
