// yada: Delaunay mesh refinement (STAMP yada, structurally simplified).
//
// The real yada retriangulates cavities around bad triangles. This
// reimplementation keeps the transactional skeleton that drives yada's
// barrier profile — pop a bad element from a shared work heap, remove it
// and its neighbors from the shared element map, allocate replacement
// elements inside the transaction (captured initialization), re-insert and
// re-queue still-bad ones — while replacing the geometry with a quality
// metric that provably improves each refinement step, guaranteeing
// termination. Allocation-heavy transactions with many writes: the paper
// reports ~60% of yada's barriers are elidable, mostly writes.
#pragma once

#include <cstdint>
#include <memory>

#include "containers/txheap.hpp"
#include "containers/txmap.hpp"
#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"

namespace cstm::stamp {

class YadaApp : public App {
 public:
  const char* name() const override { return "yada"; }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;
  ~YadaApp() override;

 private:
  struct Element {
    tfield<std::uint64_t, yada_sites::kElemField> id;
    // Refinement improves quality monotonically.
    tfield<std::uint64_t, yada_sites::kElemField> quality;
    // Refinement depth (diagnostics).
    tfield<std::uint64_t, yada_sites::kElemField> generation;
  };

  static constexpr std::uint64_t kGoodQuality = 30;

  AppParams params_;
  std::size_t initial_elements_ = 0;
  std::unique_ptr<TxMap<std::uint64_t, Element*>> mesh_;
  std::unique_ptr<TxHeap<std::uint64_t>> work_;  // bad element ids (max-heap)
  alignas(64) tvar<std::uint64_t, yada_sites::kCounter> next_id_{0};
  alignas(64) tvar<std::uint64_t, yada_sites::kCounter> refinements_{0};
};

}  // namespace cstm::stamp
