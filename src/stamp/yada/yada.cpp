#include "stamp/yada/yada.hpp"

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

YadaApp::~YadaApp() {
  if (mesh_) {
    mesh_->for_each_sequential(
        [](std::uint64_t, Element* e) { Pool::deallocate(e); });
  }
}

void YadaApp::setup(const AppParams& params) {
  params_ = params;
  initial_elements_ = static_cast<std::size_t>(4096 * params.scale);
  if (initial_elements_ < 128) initial_elements_ = 128;

  mesh_ = std::make_unique<TxMap<std::uint64_t, Element*>>();
  work_ = std::make_unique<TxHeap<std::uint64_t>>(initial_elements_);
  refinements_.poke(0);

  Xoshiro256 rng(params.seed);
  Tx& tx = current_tx();
  for (std::uint64_t id = 0; id < initial_elements_; ++id) {
    auto* e = static_cast<Element*>(Pool::local().allocate(sizeof(Element)));
    e->id.poke(id);
    e->quality.poke(rng.below(100));
    e->generation.poke(0);
    mesh_->insert(tx, id, e);
    if (e->quality.peek() < kGoodQuality) work_->push(tx, id);
  }
  next_id_.poke(initial_elements_);
}

void YadaApp::worker(int tid) {
  Xoshiro256 rng(params_.seed * 131 + static_cast<std::uint64_t>(tid));
  for (;;) {
    bool done = false;
    atomic([&](Tx& tx) {
      done = false;
      std::uint64_t bad_id = 0;
      if (!work_->pop(tx, &bad_id)) {
        done = true;
        return;
      }
      Element* bad = nullptr;
      if (!mesh_->find(tx, bad_id, &bad)) return;  // refined away already
      const std::uint64_t quality = bad->quality.get(tx);
      if (quality >= kGoodQuality) return;  // repaired by a neighbor cavity
      const std::uint64_t generation = bad->generation.get(tx);

      // "Cavity": the bad element plus up to two id-adjacent neighbors.
      mesh_->erase(tx, bad_id);
      tx_delete(tx, bad);
      int cavity = 1;
      for (const std::uint64_t nb : {bad_id - 1, bad_id + 1}) {
        Element* n = nullptr;
        if (nb < initial_elements_ && mesh_->find(tx, nb, &n)) {
          mesh_->erase(tx, nb);
          tx_delete(tx, n);
          ++cavity;
        }
      }

      // Retriangulate: cavity+1 new elements, each strictly better than the
      // destroyed bad one (guarantees termination).
      for (int i = 0; i <= cavity; ++i) {
        const std::uint64_t id = next_id_.add(tx, 1);  // fetch-add: old value
        auto* e = tx_new<Element>(tx);
        e->id.init(tx, id);
        const std::uint64_t q = quality + 10 + rng.below(40);
        e->quality.init(tx, q);
        e->generation.init(tx, generation + 1);
        mesh_->insert(tx, id, e);
        if (q < kGoodQuality) work_->push(tx, id);
      }
      refinements_.add(tx, 1);
    });
    if (done) return;
  }
}

bool YadaApp::verify() {
  Tx& tx = current_tx();
  if (!work_->empty(tx)) return false;
  bool ok = true;
  mesh_->for_each_sequential([&](std::uint64_t id, Element* e) {
    if (e->quality.peek() < kGoodQuality || e->id.peek() != id) ok = false;
  });
  return ok && refinements_.peek() > 0;
}

}  // namespace cstm::stamp
