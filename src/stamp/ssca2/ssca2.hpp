// ssca2: scalable synthetic compact applications graph kernel 1 (STAMP
// ssca2 reimplementation): threads insert a pre-generated edge list into
// adjacency arrays using tiny transactions (one index bump + one slot write
// each). Short transactions over pre-allocated shared arrays leave no
// capture opportunity — ssca2 sits at the "nothing to elide" end of Fig. 8.
#pragma once

#include <cstdint>
#include <vector>

#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"
#include "stm/stm.hpp"

namespace cstm::stamp {

class Ssca2App : public App {
 public:
  const char* name() const override { return "ssca2"; }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;

 private:
  AppParams params_;
  std::size_t num_vertices_ = 0;
  std::size_t num_edges_ = 0;
  std::vector<std::uint32_t> edge_src_;
  std::vector<std::uint32_t> edge_dst_;
  std::vector<std::uint64_t> degree_;      // transactional counters
  std::vector<std::uint64_t> offsets_;     // prefix sums (sequential phase)
  std::vector<std::uint32_t> adjacency_;   // transactional slot writes
  std::vector<std::uint64_t> fill_;        // per-vertex fill cursor (tx)
};

}  // namespace cstm::stamp
