#include "stamp/ssca2/ssca2.hpp"

#include <algorithm>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

void Ssca2App::setup(const AppParams& params) {
  params_ = params;
  num_vertices_ = static_cast<std::size_t>(4096 * params.scale);
  if (num_vertices_ < 128) num_vertices_ = 128;
  num_edges_ = num_vertices_ * 8;

  // R-MAT-flavoured edge generation: skewed towards low vertex ids, which
  // concentrates contention on popular vertices.
  Xoshiro256 rng(params.seed);
  edge_src_.resize(num_edges_);
  edge_dst_.resize(num_edges_);
  auto skewed = [&]() -> std::uint32_t {
    std::size_t range = num_vertices_;
    std::size_t base = 0;
    while (range > 1) {
      range /= 2;
      if (rng.uniform01() > 0.55) base += range;  // bias to low half
    }
    return static_cast<std::uint32_t>(base);
  };
  for (std::size_t e = 0; e < num_edges_; ++e) {
    edge_src_[e] = skewed();
    edge_dst_[e] = skewed();
  }

  // Phase 1 is sequential in kernel 1's reference formulation: compute
  // degrees to size the adjacency arrays.
  degree_.assign(num_vertices_, 0);
  for (std::size_t e = 0; e < num_edges_; ++e) ++degree_[edge_src_[e]];
  offsets_.assign(num_vertices_ + 1, 0);
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    offsets_[v + 1] = offsets_[v] + degree_[v];
  }
  adjacency_.assign(num_edges_, 0xffffffffu);
  fill_.assign(num_vertices_, 0);
}

void Ssca2App::worker(int tid) {
  const int threads = params_.threads;
  const std::size_t chunk = (num_edges_ + threads - 1) / threads;
  const std::size_t begin = static_cast<std::size_t>(tid) * chunk;
  const std::size_t end = std::min(num_edges_, begin + chunk);
  for (std::size_t e = begin; e < end; ++e) {
    const std::uint32_t src = edge_src_[e];
    const std::uint32_t dst = edge_dst_[e];
    // The kernel transaction: claim a slot in src's adjacency run and fill
    // it. Two shared reads + two shared writes, nothing captured.
    atomic([&](Tx& tx) {
      tspan<std::uint64_t, ssca2_sites::kAdj> fills(fill_);
      const std::uint64_t idx = fills.add(tx, src, 1);  // fetch-add
      tspan<std::uint32_t, ssca2_sites::kAdj> adjacency(adjacency_);
      adjacency.set(tx, offsets_[src] + idx, dst);
    });
  }
}

bool Ssca2App::verify() {
  // Every vertex's run is exactly full and no slot was left unwritten.
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    if (fill_[v] != degree_[v]) return false;
  }
  return std::none_of(adjacency_.begin(), adjacency_.end(),
                      [](std::uint32_t s) { return s == 0xffffffffu; });
}

}  // namespace cstm::stamp
