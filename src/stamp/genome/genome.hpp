// genome: gene sequencing by segment deduplication and matching (STAMP
// genome reimplementation, simplified phase structure).
//
// Segments are 16-nucleotide windows packed into uint64 keys (2 bits per
// base). Phase 1 deduplicates segments into a transactional hash table —
// insert-heavy, so node initialization dominates (captured memory). Phase 2
// claims every sampled segment position exactly once through a
// transactional bitmap and cross-checks it against the unique-segment
// table.
#pragma once

#include <cstdint>
#include <vector>

#include "containers/txbitmap.hpp"
#include "containers/txhashtable.hpp"
#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"

namespace cstm::stamp {

class GenomeApp : public App {
 public:
  const char* name() const override { return "genome"; }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;

 private:
  static constexpr int kSegmentLength = 16;

  AppParams params_;
  std::size_t gene_length_ = 0;
  std::size_t num_segments_ = 0;
  std::vector<std::uint8_t> gene_;            // bases, 0..3
  std::vector<std::uint64_t> segments_;       // packed sampled segments
  std::size_t reference_unique_ = 0;          // sequential ground truth
  std::unique_ptr<TxHashtable<std::uint64_t, std::uint64_t>> unique_;
  std::unique_ptr<TxBitmap> claimed_;
  // Phase-2 matches.
  alignas(64) tvar<std::uint64_t, genome_sites::kMatch> matched_{0};
};

}  // namespace cstm::stamp
