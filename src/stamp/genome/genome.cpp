#include "stamp/genome/genome.hpp"

#include <algorithm>
#include <unordered_set>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

void GenomeApp::setup(const AppParams& params) {
  params_ = params;
  gene_length_ = static_cast<std::size_t>(8192 * params.scale);
  if (gene_length_ < 256) gene_length_ = 256;
  num_segments_ = gene_length_ * 4;  // 4x coverage

  Xoshiro256 rng(params.seed);
  gene_.resize(gene_length_);
  for (auto& b : gene_) b = static_cast<std::uint8_t>(rng.below(4));

  segments_.resize(num_segments_);
  for (auto& s : segments_) {
    const std::size_t start = rng.below(gene_length_ - kSegmentLength);
    std::uint64_t packed = 0;
    for (int i = 0; i < kSegmentLength; ++i) {
      packed = (packed << 2) | gene_[start + static_cast<std::size_t>(i)];
    }
    // Tag with the packed value only (identical windows dedup together).
    s = packed;
  }

  std::unordered_set<std::uint64_t> ref(segments_.begin(), segments_.end());
  reference_unique_ = ref.size();

  unique_ = std::make_unique<TxHashtable<std::uint64_t, std::uint64_t>>(
      num_segments_ / 2);
  claimed_ = std::make_unique<TxBitmap>(num_segments_);
  matched_.poke(0);
}

void GenomeApp::worker(int tid) {
  const int threads = params_.threads;
  const std::size_t chunk = (num_segments_ + threads - 1) / threads;
  const std::size_t begin = static_cast<std::size_t>(tid) * chunk;
  const std::size_t end = std::min(num_segments_, begin + chunk);

  // Phase 1: deduplicate this thread's segments into the shared table.
  // Insert allocates chain nodes inside the transaction (captured inits).
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint64_t seg = segments_[i];
    atomic([&](Tx& tx) { unique_->insert(tx, seg, 1); });
  }

  // Phase 2: claim each sampled position exactly once; every claimed
  // position's segment must already be in the unique table (it was inserted
  // by phase 1 of some thread — threads synchronize through the claims:
  // a position is only claimable after its own phase-1 insert, which this
  // thread performed above).
  std::uint64_t local_matches = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint64_t seg = segments_[i];
    atomic([&](Tx& tx) {
      if (!claimed_->set(tx, i)) return;   // someone already claimed it
      std::uint64_t count = 0;
      if (unique_->find(tx, seg, &count)) {
        unique_->put(tx, seg, count + 1);  // bump the match count
      }
    });
    ++local_matches;
  }
  atomic([&](Tx& tx) { matched_.add(tx, local_matches); });
}

bool GenomeApp::verify() {
  Tx& tx = current_tx();  // sequential: plain accesses
  if (unique_->size(tx) != reference_unique_) return false;
  if (claimed_->count_sequential() != num_segments_) return false;
  return matched_.peek() == num_segments_;
}

}  // namespace cstm::stamp
