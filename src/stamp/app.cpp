#include "stamp/app.hpp"

#include <atomic>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <thread>

#include "stamp/bayes/bayes.hpp"
#include "stamp/genome/genome.hpp"
#include "stamp/intruder/intruder.hpp"
#include "stamp/kmeans/kmeans.hpp"
#include "stamp/labyrinth/labyrinth.hpp"
#include "stamp/ssca2/ssca2.hpp"
#include "stamp/vacation/vacation.hpp"
#include "stamp/yada/yada.hpp"
#include "support/timer.hpp"
#include "txbatch/batcher.hpp"

namespace cstm::stamp {

std::unique_ptr<App> make_app(const std::string& name) {
  if (name == "bayes") return std::make_unique<BayesApp>();
  if (name == "genome") return std::make_unique<GenomeApp>();
  if (name == "intruder") return std::make_unique<IntruderApp>();
  if (name == "kmeans-high") return std::make_unique<KmeansApp>(true);
  if (name == "kmeans-low") return std::make_unique<KmeansApp>(false);
  if (name == "labyrinth") return std::make_unique<LabyrinthApp>();
  if (name == "ssca2") return std::make_unique<Ssca2App>();
  if (name == "vacation-high") return std::make_unique<VacationApp>(true);
  if (name == "vacation-low") return std::make_unique<VacationApp>(false);
  if (name == "yada") return std::make_unique<YadaApp>();
  throw std::out_of_range("unknown app: " + name);
}

const std::vector<std::string>& app_names() {
  static const std::vector<std::string> names = {
      "bayes",     "genome",       "intruder",     "kmeans-high",
      "kmeans-low", "labyrinth",   "ssca2",        "vacation-high",
      "vacation-low", "yada"};
  return names;
}

double run_app(App& app, const AppParams& params) {
  app.setup(params);
  const int n = params.threads;
  double elapsed = 0.0;
  Timer timer;
  std::barrier sync(n + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      sync.arrive_and_wait();  // line up
      app.worker(tid);
      sync.arrive_and_wait();  // all done
    });
  }
  sync.arrive_and_wait();
  timer.reset();
  sync.arrive_and_wait();
  elapsed = timer.seconds();
  for (auto& t : threads) t.join();
  if (!app.verify()) {
    std::fprintf(stderr, "FATAL: %s failed verification (threads=%d)\n",
                 app.name(), n);
    std::abort();
  }
  return elapsed;
}

double run_app_stream(App& app, const AppParams& params, std::size_t batch,
                      std::uint64_t* requests_out) {
  app.setup(params);
  const int n = params.threads;
  std::atomic<std::uint64_t> total_requests{0};
  double elapsed = 0.0;
  Timer timer;
  std::barrier sync(n + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::atomic<bool> not_batchable{false};
  for (int tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      std::unique_ptr<RequestSource> source = app.open_request_stream(tid);
      if (source == nullptr) {
        not_batchable.store(true);
        sync.arrive_and_wait();
        sync.arrive_and_wait();
        return;
      }
      txbatch::BatcherOptions opts;
      opts.max_batch = batch;
      txbatch::Batcher batcher(opts);
      sync.arrive_and_wait();  // line up
      std::uint64_t replayed = 0;
      for (std::function<void(Tx&)> fn = source->next(); fn;
           fn = source->next()) {
        batcher.enqueue(std::move(fn));
        ++replayed;
      }
      batcher.drain();
      total_requests.fetch_add(replayed);
      sync.arrive_and_wait();  // all done
    });
  }
  sync.arrive_and_wait();
  timer.reset();
  sync.arrive_and_wait();
  elapsed = timer.seconds();
  for (auto& t : threads) t.join();
  if (not_batchable.load()) {
    std::fprintf(stderr, "FATAL: %s has no request-stream adapter\n",
                 app.name());
    std::abort();
  }
  if (!app.verify()) {
    std::fprintf(stderr,
                 "FATAL: %s failed verification (threads=%d, batch=%zu)\n",
                 app.name(), n, batch);
    std::abort();
  }
  if (requests_out != nullptr) *requests_out = total_requests.load();
  return elapsed;
}

}  // namespace cstm::stamp
