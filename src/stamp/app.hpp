// Benchmark application framework for the STAMP reimplementations.
//
// Each application is a fresh object per run: setup() builds the input
// sequentially (untimed), worker() is executed by every thread (timed),
// verify() checks application invariants afterwards. The ten registered
// configurations match the rows of the paper's Tables 1-2: bayes, genome,
// intruder, kmeans-high, kmeans-low, labyrinth, ssca2, vacation-high,
// vacation-low, yada.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cstm::stamp {

struct AppParams {
  int threads = 1;
  std::uint64_t seed = 20090811;  // SPAA'09 started Aug 11, 2009
  double scale = 1.0;             // workload multiplier (1.0 = CI-sized)
};

class App {
 public:
  virtual ~App() = default;
  virtual const char* name() const = 0;

  /// Builds input data. Runs sequentially before timing starts.
  virtual void setup(const AppParams& params) = 0;

  /// The timed parallel region; called concurrently by params.threads
  /// threads with tid in [0, threads).
  virtual void worker(int tid) = 0;

  /// Post-run invariant check (sequential).
  virtual bool verify() = 0;
};

/// Instantiates a registered application by name; throws std::out_of_range
/// for unknown names.
std::unique_ptr<App> make_app(const std::string& name);

/// The ten paper benchmark rows, in the paper's table order.
const std::vector<std::string>& app_names();

/// Runs one complete execution of @p app under the *current* global STM
/// configuration and returns the elapsed wall-clock seconds of the parallel
/// region. Aborts the process with a diagnostic if verify() fails — a
/// benchmark that computes wrong answers must never report a time.
double run_app(App& app, const AppParams& params);

}  // namespace cstm::stamp
