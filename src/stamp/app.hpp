// Benchmark application framework for the STAMP reimplementations.
//
// Each application is a fresh object per run: setup() builds the input
// sequentially (untimed), worker() is executed by every thread (timed),
// verify() checks application invariants afterwards. The ten registered
// configurations match the rows of the paper's Tables 1-2: bayes, genome,
// intruder, kmeans-high, kmeans-low, labyrinth, ssca2, vacation-high,
// vacation-low, yada.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cstm {
class Tx;
}

namespace cstm::stamp {

struct AppParams {
  int threads = 1;
  std::uint64_t seed = 20090811;  // SPAA'09 started Aug 11, 2009
  double scale = 1.0;             // workload multiplier (1.0 = CI-sized)
};

/// An ordered stream of small single-transaction request closures — the
/// txbatch adapter surface. Each next() yields one user-level request (one
/// reservation task, one fragment reassembly, ...) suitable for running
/// alone in its own transaction OR merged with its successors into one
/// outer transaction by txbatch::Batcher. A source is a same-thread object:
/// one per worker thread, FIFO semantics.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  /// The next request, or an empty function once the stream is exhausted.
  virtual std::function<void(Tx&)> next() = 0;
};

class App {
 public:
  virtual ~App() = default;
  virtual const char* name() const = 0;

  /// Builds input data. Runs sequentially before timing starts.
  virtual void setup(const AppParams& params) = 0;

  /// The timed parallel region; called concurrently by params.threads
  /// threads with tid in [0, threads).
  virtual void worker(int tid) = 0;

  /// Post-run invariant check (sequential).
  virtual bool verify() = 0;

  /// Apps that can replay their workload as a stream of independent
  /// requests override this (txbatch harness mode, `--batch`). Call after
  /// setup(), once per worker thread. The default says "not batchable".
  virtual std::unique_ptr<RequestSource> open_request_stream(int /*tid*/) {
    return nullptr;
  }
};

/// Instantiates a registered application by name; throws std::out_of_range
/// for unknown names.
std::unique_ptr<App> make_app(const std::string& name);

/// The ten paper benchmark rows, in the paper's table order.
const std::vector<std::string>& app_names();

/// Runs one complete execution of @p app under the *current* global STM
/// configuration and returns the elapsed wall-clock seconds of the parallel
/// region. Aborts the process with a diagnostic if verify() fails — a
/// benchmark that computes wrong answers must never report a time.
double run_app(App& app, const AppParams& params);

/// Batched analogue of run_app: each thread opens a request stream and
/// feeds it through a txbatch::Batcher flushing at @p batch ops, so batch
/// sizes 1 vs N replay the SAME request sequence under different merge
/// factors. Aborts the process if the app is not batchable or fails
/// verification. @p requests_out (optional) receives the total number of
/// requests replayed across all threads.
double run_app_stream(App& app, const AppParams& params, std::size_t batch,
                      std::uint64_t* requests_out = nullptr);

}  // namespace cstm::stamp
