#include "stamp/vacation/vacation.hpp"

#include <mutex>

#include "capture/private_registry.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

namespace sites {
// Reservation bookkeeping: original STAMP instruments these by hand.
inline constexpr Site kResField{"vacation.res.field", true, false};
// Freshly allocated reservation/customer records initialized in-tx:
// over-instrumented by a naive compiler, provably captured.
inline constexpr Site kResInit{"vacation.res.init", false, true};
inline constexpr Site kCustField{"vacation.cust.field", true, false};
// Query vector accesses: thread-local data (Figure 1(b)); only the
// annotation APIs can elide these, so static_captured stays false.
inline constexpr Site kQueryVec{"vacation.query.vec", false, false};
}  // namespace sites

namespace {

constexpr std::uint64_t pack_booking(std::uint64_t type, std::uint64_t id,
                                     std::uint64_t price) {
  return (type << 56) | (id << 24) | price;
}
constexpr std::uint64_t booking_price(std::uint64_t b) {
  return b & 0xffffffu;
}

/// Per-worker context: the thread-local query vector of the paper's
/// Figure 1(b), registered with addPrivateMemoryBlock so the runtime can
/// elide barriers on it when annotation checks are enabled.
class WorkerCtxImpl {
 public:
  static constexpr std::size_t kMaxQueries = 8;
  explicit WorkerCtxImpl(std::uint64_t seed) : rng(seed) {
    add_private_memory_block(query_ids, sizeof(query_ids));
  }
  ~WorkerCtxImpl() { remove_private_memory_block(query_ids, sizeof(query_ids)); }

  Xoshiro256 rng;
  std::uint64_t query_ids[kMaxQueries] = {};
};

}  // namespace

class WorkerCtx : public WorkerCtxImpl {
 public:
  using WorkerCtxImpl::WorkerCtxImpl;
};

VacationApp::~VacationApp() {
  auto free_table = [](Table& t) {
    t.for_each_sequential([](std::uint64_t, Reservation* r) {
      Pool::deallocate(r);
    });
  };
  free_table(cars_);
  free_table(rooms_);
  free_table(flights_);
  for (Customer* c : all_customers_) {
    delete c->bookings;
    Pool::deallocate(c);
  }
}

void VacationApp::setup(const AppParams& params) {
  params_ = params;
  relations_ = static_cast<std::uint64_t>(2048 * params.scale);
  if (relations_ < 64) relations_ = 64;
  total_tasks_ = static_cast<std::uint64_t>(8192 * params.scale);
  if (total_tasks_ < 64) total_tasks_ = 64;
  queries_per_task_ = high_ ? 4 : 2;
  user_percent_ = high_ ? 90 : 98;
  const int range_percent = high_ ? 60 : 90;
  query_range_ = relations_ * static_cast<std::uint64_t>(range_percent) / 100;

  Xoshiro256 rng(params.seed);
  Tx& tx = current_tx();  // setup runs outside transactions: plain accesses
  for (std::uint64_t id = 0; id < relations_; ++id) {
    for (Kind k : {kCar, kRoom, kFlight}) {
      auto* r = static_cast<Reservation*>(Pool::local().allocate(sizeof(Reservation)));
      r->num_used = 0;
      r->num_total = rng.between(1, 5);
      r->num_free = r->num_total;
      r->price = rng.between(100, 999);
      table_of(k).insert(tx, id, r);
    }
    auto* c = static_cast<Customer*>(Pool::local().allocate(sizeof(Customer)));
    c->id = id;
    c->bill = 0;
    c->bookings = new TxList<std::uint64_t>(/*allow_duplicates=*/true);
    customers_.insert(tx, id, c);
    all_customers_.push_back(c);
  }
}

void VacationApp::task_make_reservation(Tx& tx, WorkerCtx& ctx) {
  const std::uint64_t customer_id = ctx.rng.below(query_range_);
  // Address-taken locals inside the atomic block: a naive compiler
  // instruments every access to them (they escape into helper calls in the
  // original C), producing exactly the captured-stack barriers of Fig. 8.
  // The compiler capture analysis proves them transaction-local.
  std::uint64_t chosen_id[3] = {0, 0, 0};
  std::uint64_t found[3] = {0, 0, 0};
  std::uint64_t best_price[3] = {0, 0, 0};
  for (int k = 0; k < 3; ++k) {
    // Populate the thread-local query vector inside the transaction
    // (TMpopulateQueryVectors in Figure 1(b)).
    const int nq = queries_per_task_;
    for (int q = 0; q < nq; ++q) {
      tm_write(tx, &ctx.query_ids[q], ctx.rng.below(query_range_),
               sites::kQueryVec);
    }
    for (int q = 0; q < nq; ++q) {
      const std::uint64_t id = tm_read(tx, &ctx.query_ids[q], sites::kQueryVec);
      Reservation* r = nullptr;
      if (!table_of(static_cast<Kind>(k)).find(tx, id, &r)) continue;
      const std::uint64_t free = tm_read(tx, &r->num_free, sites::kResField);
      const std::uint64_t price = tm_read(tx, &r->price, sites::kResField);
      if (free > 0 && (tm_read(tx, &found[k], kAutoCapturedSite) == 0 ||
                       price > tm_read(tx, &best_price[k], kAutoCapturedSite))) {
        tm_write(tx, &found[k], std::uint64_t{1}, kAutoCapturedSite);
        tm_write(tx, &best_price[k], price, kAutoCapturedSite);
        tm_write(tx, &chosen_id[k], id, kAutoCapturedSite);
      }
    }
  }
  Customer* customer = nullptr;
  if (!customers_.find(tx, customer_id, &customer)) return;  // deleted
  for (int k = 0; k < 3; ++k) {
    if (tm_read(tx, &found[k], kAutoCapturedSite) == 0) continue;
    const std::uint64_t id = tm_read(tx, &chosen_id[k], kAutoCapturedSite);
    const std::uint64_t price = tm_read(tx, &best_price[k], kAutoCapturedSite);
    Reservation* r = nullptr;
    if (!table_of(static_cast<Kind>(k)).find(tx, id, &r)) continue;
    const std::uint64_t free = tm_read(tx, &r->num_free, sites::kResField);
    if (free == 0) continue;
    tm_write(tx, &r->num_free, free - 1, sites::kResField);
    tm_add(tx, &r->num_used, std::uint64_t{1}, sites::kResField);
    customer->bookings->insert(
        tx, pack_booking(static_cast<std::uint64_t>(k), id, price));
    tm_add(tx, &customer->bill, price, sites::kCustField);
  }
}

void VacationApp::task_delete_customer(Tx& tx, WorkerCtx& ctx) {
  const std::uint64_t customer_id = ctx.rng.below(query_range_);
  Customer* customer = nullptr;
  if (!customers_.find(tx, customer_id, &customer)) return;
  // Refund every booking (Figure 1(a)-style iteration: the iterator lives
  // on the transaction-local stack).
  typename TxList<std::uint64_t>::Iterator it;
  customer->bookings->iter_reset(tx, &it);
  while (customer->bookings->iter_has_next(tx, &it)) {
    const std::uint64_t booking = customer->bookings->iter_next(tx, &it);
    const auto type = static_cast<Kind>(booking >> 56);
    const std::uint64_t id = (booking >> 24) & 0xffffffffu;
    Reservation* r = nullptr;
    if (table_of(type).find(tx, id, &r)) {
      tm_add(tx, &r->num_free, std::uint64_t{1}, sites::kResField);
      const std::uint64_t used = tm_read(tx, &r->num_used, sites::kResField);
      tm_write(tx, &r->num_used, used - 1, sites::kResField);
    }
    tm_add(tx, &customer->bill,
           std::uint64_t{0} - booking_price(booking), sites::kCustField);
  }
  customer->bookings->clear(tx);
}

void VacationApp::task_update_tables(Tx& tx, WorkerCtx& ctx, bool add) {
  const int nq = queries_per_task_;
  for (int q = 0; q < nq; ++q) {
    const auto kind = static_cast<Kind>(ctx.rng.below(3));
    const std::uint64_t id = ctx.rng.below(query_range_);
    Reservation* r = nullptr;
    if (add) {
      if (table_of(kind).find(tx, id, &r)) {
        // Grow existing inventory.
        tm_add(tx, &r->num_total, std::uint64_t{1}, sites::kResField);
        tm_add(tx, &r->num_free, std::uint64_t{1}, sites::kResField);
      } else {
        // Fresh reservation record allocated inside the transaction: its
        // initialization is captured memory.
        r = static_cast<Reservation*>(tx_malloc(tx, sizeof(Reservation)));
        tm_write(tx, &r->num_used, std::uint64_t{0}, sites::kResInit);
        tm_write(tx, &r->num_free, std::uint64_t{1}, sites::kResInit);
        tm_write(tx, &r->num_total, std::uint64_t{1}, sites::kResInit);
        tm_write(tx, &r->price, ctx.rng.between(100, 999), sites::kResInit);
        table_of(kind).insert(tx, id, r);
      }
    } else {
      if (table_of(kind).find(tx, id, &r)) {
        const std::uint64_t total = tm_read(tx, &r->num_total, sites::kResField);
        const std::uint64_t free = tm_read(tx, &r->num_free, sites::kResField);
        if (free == total && total > 0) {
          // Retire one unit; drop the record when empty.
          tm_write(tx, &r->num_total, total - 1, sites::kResField);
          tm_write(tx, &r->num_free, free - 1, sites::kResField);
          if (total - 1 == 0) {
            table_of(kind).erase(tx, id);
            tx_free(tx, r);
          }
        }
      }
    }
  }
}

void VacationApp::worker(int tid) {
  WorkerCtx ctx(params_.seed * 7919 + static_cast<std::uint64_t>(tid));
  // Fixed total work split across threads (as in STAMP's -t tasks).
  const auto threads = static_cast<std::uint64_t>(params_.threads);
  const std::uint64_t tasks =
      total_tasks_ / threads +
      (static_cast<std::uint64_t>(tid) < total_tasks_ % threads ? 1 : 0);
  for (std::uint64_t t = 0; t < tasks; ++t) {
    const std::uint64_t dice = ctx.rng.below(100);
    if (dice < static_cast<std::uint64_t>(user_percent_)) {
      atomic([&](Tx& tx) { task_make_reservation(tx, ctx); });
    } else if (dice % 2 == 0) {
      atomic([&](Tx& tx) { task_delete_customer(tx, ctx); });
    } else {
      atomic([&](Tx& tx) { task_update_tables(tx, ctx, ctx.rng.below(2) == 0); });
    }
  }
}

bool VacationApp::verify() {
  bool ok = true;
  auto check_table = [&](Table& t) {
    t.for_each_sequential([&](std::uint64_t, Reservation* r) {
      if (r->num_used + r->num_free != r->num_total) ok = false;
    });
  };
  check_table(cars_);
  check_table(rooms_);
  check_table(flights_);
  return ok;
}

}  // namespace cstm::stamp
