#include "stamp/vacation/vacation.hpp"

#include <mutex>

#include "capture/private_registry.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm::stamp {

namespace {

constexpr std::uint64_t pack_booking(std::uint64_t type, std::uint64_t id,
                                     std::uint64_t price) {
  return (type << 56) | (id << 24) | price;
}
constexpr std::uint64_t booking_price(std::uint64_t b) {
  return b & 0xffffffu;
}

/// Per-worker context: the thread-local query vector of the paper's
/// Figure 1(b), registered with addPrivateMemoryBlock so the runtime can
/// elide barriers on it when annotation checks are enabled.
class WorkerCtxImpl {
 public:
  static constexpr std::size_t kMaxQueries = 8;
  explicit WorkerCtxImpl(std::uint64_t seed) : rng(seed) {
    add_private_memory_block(query_ids.data(), query_ids.size_bytes());
  }
  ~WorkerCtxImpl() {
    remove_private_memory_block(query_ids.data(), query_ids.size_bytes());
  }

  Xoshiro256 rng;
  tvar_array<std::uint64_t, kMaxQueries, vacation_sites::kQueryVec> query_ids;
};

}  // namespace

class WorkerCtx : public WorkerCtxImpl {
 public:
  using WorkerCtxImpl::WorkerCtxImpl;
};

VacationApp::~VacationApp() {
  auto free_table = [](Table& t) {
    t.for_each_sequential([](std::uint64_t, Reservation* r) {
      Pool::deallocate(r);
    });
  };
  free_table(cars_);
  free_table(rooms_);
  free_table(flights_);
  for (Customer* c : all_customers_) {
    delete c->bookings;
    Pool::deallocate(c);
  }
}

void VacationApp::setup(const AppParams& params) {
  params_ = params;
  relations_ = static_cast<std::uint64_t>(2048 * params.scale);
  if (relations_ < 64) relations_ = 64;
  total_tasks_ = static_cast<std::uint64_t>(8192 * params.scale);
  if (total_tasks_ < 64) total_tasks_ = 64;
  queries_per_task_ = high_ ? 4 : 2;
  user_percent_ = high_ ? 90 : 98;
  const int range_percent = high_ ? 60 : 90;
  query_range_ = relations_ * static_cast<std::uint64_t>(range_percent) / 100;

  Xoshiro256 rng(params.seed);
  Tx& tx = current_tx();  // setup runs outside transactions: plain accesses
  for (std::uint64_t id = 0; id < relations_; ++id) {
    for (Kind k : {kCar, kRoom, kFlight}) {
      auto* r = static_cast<Reservation*>(Pool::local().allocate(sizeof(Reservation)));
      r->num_used.poke(0);
      r->num_total.poke(rng.between(1, 5));
      r->num_free.poke(r->num_total.peek());
      r->price.poke(rng.between(100, 999));
      table_of(k).insert(tx, id, r);
    }
    auto* c = static_cast<Customer*>(Pool::local().allocate(sizeof(Customer)));
    c->id = id;
    c->bill.poke(0);
    c->bookings = new TxList<std::uint64_t>(/*allow_duplicates=*/true);
    customers_.insert(tx, id, c);
    all_customers_.push_back(c);
  }
}

void VacationApp::task_make_reservation(Tx& tx, WorkerCtx& ctx) {
  task_make_reservation(tx, ctx, ctx.rng.below(query_range_));
}

void VacationApp::task_make_reservation(Tx& tx, WorkerCtx& ctx,
                                        std::uint64_t customer_id) {
  // Address-taken locals inside the atomic block: a naive compiler
  // instruments every access to them (they escape into helper calls in the
  // original C), producing exactly the captured-stack barriers of Fig. 8.
  // The compiler capture analysis proves them transaction-local stack.
  tvar_array<std::uint64_t, 3, kAutoStackSite> chosen_id;
  tvar_array<std::uint64_t, 3, kAutoStackSite> found;
  tvar_array<std::uint64_t, 3, kAutoStackSite> best_price;
  for (int k = 0; k < 3; ++k) {
    // Populate the thread-local query vector inside the transaction
    // (TMpopulateQueryVectors in Figure 1(b)).
    const int nq = queries_per_task_;
    for (int q = 0; q < nq; ++q) {
      ctx.query_ids.set(tx, static_cast<std::size_t>(q),
                        ctx.rng.below(query_range_));
    }
    for (int q = 0; q < nq; ++q) {
      const std::uint64_t id = ctx.query_ids.get(tx, static_cast<std::size_t>(q));
      Reservation* r = nullptr;
      if (!table_of(static_cast<Kind>(k)).find(tx, id, &r)) continue;
      const std::uint64_t free = r->num_free.get(tx);
      const std::uint64_t price = r->price.get(tx);
      if (free > 0 && (found.get(tx, k) == 0 || price > best_price.get(tx, k))) {
        found.set(tx, k, 1);
        best_price.set(tx, k, price);
        chosen_id.set(tx, k, id);
      }
    }
  }
  Customer* customer = nullptr;
  if (!customers_.find(tx, customer_id, &customer)) return;  // deleted
  for (int k = 0; k < 3; ++k) {
    if (found.get(tx, k) == 0) continue;
    const std::uint64_t id = chosen_id.get(tx, k);
    const std::uint64_t price = best_price.get(tx, k);
    Reservation* r = nullptr;
    if (!table_of(static_cast<Kind>(k)).find(tx, id, &r)) continue;
    const std::uint64_t free = r->num_free.get(tx);
    if (free == 0) continue;
    r->num_free.set(tx, free - 1);
    r->num_used.add(tx, 1);
    customer->bookings->insert(
        tx, pack_booking(static_cast<std::uint64_t>(k), id, price));
    customer->bill.add(tx, price);
  }
}

void VacationApp::task_delete_customer(Tx& tx, WorkerCtx& ctx) {
  task_delete_customer(tx, ctx.rng.below(query_range_));
}

void VacationApp::task_delete_customer(Tx& tx, std::uint64_t customer_id) {
  Customer* customer = nullptr;
  if (!customers_.find(tx, customer_id, &customer)) return;
  // Refund every booking (Figure 1(a)-style iteration: the iterator lives
  // on the transaction-local stack).
  typename TxList<std::uint64_t>::Iterator it;
  customer->bookings->iter_reset(tx, &it);
  while (customer->bookings->iter_has_next(tx, &it)) {
    const std::uint64_t booking = customer->bookings->iter_next(tx, &it);
    const auto type = static_cast<Kind>(booking >> 56);
    const std::uint64_t id = (booking >> 24) & 0xffffffffu;
    Reservation* r = nullptr;
    if (table_of(type).find(tx, id, &r)) {
      r->num_free.add(tx, 1);
      r->num_used.set(tx, r->num_used.get(tx) - 1);
    }
    customer->bill.add(tx, std::uint64_t{0} - booking_price(booking));
  }
  customer->bookings->clear(tx);
}

void VacationApp::task_update_tables(Tx& tx, WorkerCtx& ctx, bool add) {
  const int nq = queries_per_task_;
  for (int q = 0; q < nq; ++q) {
    const auto kind = static_cast<Kind>(ctx.rng.below(3));
    const std::uint64_t id = ctx.rng.below(query_range_);
    Reservation* r = nullptr;
    if (add) {
      if (table_of(kind).find(tx, id, &r)) {
        // Grow existing inventory.
        r->num_total.add(tx, 1);
        r->num_free.add(tx, 1);
      } else {
        // Fresh reservation record allocated inside the transaction: its
        // initialization is captured memory (tfield::init).
        r = tx_new<Reservation>(tx);
        r->num_used.init(tx, 0);
        r->num_free.init(tx, 1);
        r->num_total.init(tx, 1);
        r->price.init(tx, ctx.rng.between(100, 999));
        table_of(kind).insert(tx, id, r);
      }
    } else {
      if (table_of(kind).find(tx, id, &r)) {
        const std::uint64_t total = r->num_total.get(tx);
        const std::uint64_t free = r->num_free.get(tx);
        if (free == total && total > 0) {
          // Retire one unit; drop the record when empty.
          r->num_total.set(tx, total - 1);
          r->num_free.set(tx, free - 1);
          if (total - 1 == 0) {
            table_of(kind).erase(tx, id);
            tx_delete(tx, r);
          }
        }
      }
    }
  }
}

void VacationApp::worker(int tid) {
  WorkerCtx ctx(params_.seed * 7919 + static_cast<std::uint64_t>(tid));
  // Fixed total work split across threads (as in STAMP's -t tasks).
  const auto threads = static_cast<std::uint64_t>(params_.threads);
  const std::uint64_t tasks =
      total_tasks_ / threads +
      (static_cast<std::uint64_t>(tid) < total_tasks_ % threads ? 1 : 0);
  for (std::uint64_t t = 0; t < tasks; ++t) {
    const std::uint64_t dice = ctx.rng.below(100);
    if (dice < static_cast<std::uint64_t>(user_percent_)) {
      atomic([&](Tx& tx) { task_make_reservation(tx, ctx); });
    } else if (dice % 2 == 0) {
      atomic([&](Tx& tx) { task_delete_customer(tx, ctx); });
    } else {
      atomic([&](Tx& tx) { task_update_tables(tx, ctx, ctx.rng.below(2) == 0); });
    }
  }
}

/// Request-stream adapter (txbatch `--batch` mode). Emits the worker()'s
/// task mix one closure at a time, structured as customer SESSIONS: one
/// customer issues a run of kSessionLen requests (mostly reservations,
/// occasional table updates) and the session finale deletes the customer,
/// refunding everything booked during the session. Sessions are what make
/// merging pay: a reservation inserts nodes into the customer's booking
/// list, so when a batch spans the session, every later request's list
/// traversal — and the finale's full refund walk — reads memory ALLOCATED
/// EARLIER IN THE SAME MERGED TRANSACTION, i.e. captured memory. At batch 1
/// those same nodes were committed by earlier transactions and pay full
/// barriers.
///
/// Two RNGs keep the stream identical across batch sizes: the GENERATION
/// rng decides each task's type and session customer when next() is
/// called, while every draw a task makes while running comes from the
/// execution WorkerCtx rng — and since the Batcher executes closures
/// strictly in enqueue order, those draws land in the same order whether
/// requests run one-per-transaction or merged 64 at a time.
class VacationRequestSource : public RequestSource {
 public:
  VacationRequestSource(VacationApp& app, int tid)
      : app_(app),
        ctx_(app.params_.seed * 7919 + static_cast<std::uint64_t>(tid)),
        gen_rng_(app.params_.seed * 104729 + static_cast<std::uint64_t>(tid)) {
    const auto threads = static_cast<std::uint64_t>(app.params_.threads);
    remaining_ = app.total_tasks_ / threads +
                 (static_cast<std::uint64_t>(tid) < app.total_tasks_ % threads
                      ? 1
                      : 0);
  }

  std::function<void(Tx&)> next() override {
    if (remaining_ == 0) return {};
    --remaining_;
    if (session_left_ == 0) {
      session_customer_ = gen_rng_.below(app_.query_range_);
      session_left_ = kSessionLen;
    }
    --session_left_;
    const std::uint64_t dice = gen_rng_.below(100);
    const std::uint64_t customer = session_customer_;
    if (session_left_ == 0) {
      // Session finale: the customer checks out, refunding every booking
      // made during the session (a walk over the session's allocations).
      return [this, customer](Tx& tx) {
        app_.task_delete_customer(tx, customer);
      };
    }
    if (dice < static_cast<std::uint64_t>(app_.user_percent_)) {
      return [this, customer](Tx& tx) {
        app_.task_make_reservation(tx, ctx_, customer);
      };
    }
    return [this](Tx& tx) {
      app_.task_update_tables(tx, ctx_, ctx_.rng.below(2) == 0);
    };
  }

 private:
  // A session long enough that merge factors below 64 only span part of
  // it, so the captured fraction keeps climbing across the whole sweep.
  static constexpr std::uint64_t kSessionLen = 64;

  VacationApp& app_;
  WorkerCtx ctx_;
  Xoshiro256 gen_rng_;
  std::uint64_t remaining_ = 0;
  std::uint64_t session_customer_ = 0;
  std::uint64_t session_left_ = 0;
};

std::unique_ptr<RequestSource> VacationApp::open_request_stream(int tid) {
  return std::make_unique<VacationRequestSource>(*this, tid);
}

bool VacationApp::verify() {
  bool ok = true;
  auto check_table = [&](Table& t) {
    t.for_each_sequential([&](std::uint64_t, Reservation* r) {
      if (r->num_used.peek() + r->num_free.peek() != r->num_total.peek()) {
        ok = false;
      }
    });
  };
  check_table(cars_);
  check_table(rooms_);
  check_table(flights_);
  return ok;
}

}  // namespace cstm::stamp
