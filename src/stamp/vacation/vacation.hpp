// vacation: travel reservation system (STAMP vacation reimplementation).
//
// A manager keeps four ordered maps (cars, rooms, flights, customers).
// Client threads run three task types inside transactions: make a
// reservation (query n items per category through a thread-local query
// vector — the paper's Figure 1(b) pattern — then book the best), delete a
// customer (refund bookings), and update tables (add/remove inventory,
// allocating reservation records inside the transaction — captured memory).
//
// High contention: n=4 queries spanning 60% of relations, 90% user tasks.
// Low contention: n=2 queries spanning 90% of relations, 98% user tasks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "containers/txlist.hpp"
#include "containers/txmap.hpp"
#include "generated/site_verdicts.hpp"
#include "stamp/app.hpp"

namespace cstm::stamp {

class VacationApp : public App {
 public:
  explicit VacationApp(bool high_contention) : high_(high_contention) {}
  ~VacationApp() override;

  const char* name() const override {
    return high_ ? "vacation-high" : "vacation-low";
  }
  void setup(const AppParams& params) override;
  void worker(int tid) override;
  bool verify() override;
  std::unique_ptr<RequestSource> open_request_stream(int tid) override;

 private:
  friend class VacationRequestSource;
  struct Reservation {
    tfield<std::uint64_t, vacation_sites::kResField> num_used;
    tfield<std::uint64_t, vacation_sites::kResField> num_free;
    tfield<std::uint64_t, vacation_sites::kResField> num_total;
    tfield<std::uint64_t, vacation_sites::kResField> price;
  };
  struct Customer {
    std::uint64_t id;  // immutable after setup: never accessed in-tx
    tfield<std::uint64_t, vacation_sites::kCustField> bill;
    // Booked (type, id, price) triples packed into uint64 list entries.
    TxList<std::uint64_t>* bookings;
  };

  using Table = TxMap<std::uint64_t, Reservation*>;

  enum Kind : std::uint64_t { kCar = 0, kRoom = 1, kFlight = 2 };

  Table& table_of(Kind k) {
    switch (k) {
      case kCar: return cars_;
      case kRoom: return rooms_;
      default: return flights_;
    }
  }

  void task_make_reservation(Tx& tx, class WorkerCtx& ctx);
  void task_make_reservation(Tx& tx, class WorkerCtx& ctx,
                             std::uint64_t customer_id);
  void task_delete_customer(Tx& tx, class WorkerCtx& ctx);
  void task_delete_customer(Tx& tx, std::uint64_t customer_id);
  void task_update_tables(Tx& tx, class WorkerCtx& ctx, bool add);

  bool high_;
  AppParams params_;
  std::uint64_t relations_ = 0;
  std::uint64_t total_tasks_ = 0;
  std::uint64_t query_range_ = 0;  // ids are drawn from [0, query_range_)
  int queries_per_task_ = 0;
  int user_percent_ = 0;

  Table cars_, rooms_, flights_;
  TxMap<std::uint64_t, Customer*> customers_;
  std::vector<Customer*> all_customers_;  // for teardown/verify
};

}  // namespace cstm::stamp
