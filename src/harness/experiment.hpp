// Experiment driver: runs the STAMP applications under the paper's STM
// configurations and prints each table/figure of Section 4. One bench
// binary per experiment calls exactly one of these printers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stamp/app.hpp"
#include "stm/config.hpp"
#include "stm/stats.hpp"

namespace cstm::harness {

struct Options {
  double scale = 0.25;  // CI-sized by default; --scale 1 approaches paper-size
  int reps = 3;
  int threads = 16;     // the paper's maximum thread count
  std::uint64_t seed = 20090811;
  std::size_t batch = 0;  // --batch N: txbatch merge factor (0 = sweep 1/4/16/64)
  std::string json;     // when set: also write machine-readable results here
  /// --capture-log {tree|array|filter|adaptive}: pins the allocation-log
  /// structure for the experiments that take one (txbatch_stream's merge
  /// sweep, adaptive_sweep's config filter). Empty = experiment default.
  std::string capture_log;
};

/// Parses --scale/--reps/--threads/--seed/--batch/--capture-log/--json;
/// unknown flags abort with usage.
Options parse_options(int argc, char** argv);

struct RunResult {
  double seconds = 0.0;
  TxStats stats;
};

/// One complete benchmark execution under @p cfg. Installs the config,
/// resets statistics, runs, and collects the stats snapshot.
RunResult run_once(const std::string& app, int threads, const TxConfig& cfg,
                   const Options& opt);

/// The five named configurations of Tables 1-2 (baseline, tree, array,
/// filter, compiler) in paper order.
std::vector<std::pair<std::string, TxConfig>> table_configs();

// -- Experiment printers (paper Section 4) -----------------------------------

/// Static-analysis precision header: the per-kernel "sites total / proven /
/// demoted" table from the txir pipeline (src/txir/kernels.hpp). Printed at
/// the top of the figure-8/9/10 experiments so every elision figure carries
/// the compiler-elision ratios it depends on, and by scripts/check.sh so
/// analysis-precision regressions are visible in every CI run.
void analysis_stats();

void fig8_breakdown(const Options& opt);        // Figure 8 (a, b, c)
void fig9_removed(const Options& opt);          // Figure 9 (a, b)
void fig10_single_thread(const Options& opt);   // Figure 10
void fig11a_configs(const Options& opt);        // Figure 11 (a)
/// Thread-count sweep (1,2,4,...,opt.threads) of the fig11 contenders,
/// printing raw seconds per app x config x thread count. With --json this
/// writes the BENCH_scaling.json record a multi-core box will commit
/// (schema consumed, advisorily, by scripts/bench_gate.py).
void fig11a_scaling(const Options& opt);
void fig11b_structures(const Options& opt);     // Figure 11 (b)
void table1_aborts(const Options& opt);         // Table 1
void table2_variance(const Options& opt);       // Table 2

/// txbatch throughput-vs-merge-factor sweep: replays the vacation-low and
/// intruder request streams through txbatch::Batcher at batch sizes
/// {1, 4, 16, 64} (or just opt.batch when --batch is given) and prints a
/// per-row stats block — requests/s plus the capture-hit-rate% and
/// barriers-elided% that explain the curve. With --json this writes the
/// BENCH_txbatch.json record (schema consumed, advisorily, by
/// scripts/bench_gate.py).
void txbatch_stream(const Options& opt);

/// Adaptive capture-log selection vs the three fixed structures, in the
/// fig11b family (runtime heap-W — the family where the structure choice
/// dominates). Prints the improvement-over-baseline table plus a per-app
/// adaptive profile block (transaction distribution across structures,
/// switches, array-overflow% and capture-hit%), and with --json writes the
/// BENCH_adaptive.json record (speedup_table row schema + an
/// "adaptive_profile" object per row; consumed advisorily by
/// scripts/bench_gate.py). --capture-log restricts the sweep to one column.
void adaptive_sweep(const Options& opt);

/// Durable mode across STAMP: seconds for the non-durable reference
/// (runtime stack+heap RW, filter log) vs the same config with durability
/// on vs capture-disabled durable (the flush-everything baseline), plus
/// the flushes-elided% and pwb/redo-entry counts that explain the gap. A
/// scratch DurableHeap backs the redo log so the flush traffic is real.
/// With --json this writes the BENCH_durable.json record (consumed
/// advisorily by scripts/bench_gate.py).
void durable_sweep(const Options& opt);

}  // namespace cstm::harness
