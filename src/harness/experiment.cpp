#include "harness/experiment.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <string>

#include "durable/durable_heap.hpp"
#include "stm/stm.hpp"
#include "support/stats.hpp"
#include "txir/kernels.hpp"

namespace cstm::harness {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scale") == 0) {
      opt.scale = std::atof(need_value("--scale"));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      opt.reps = std::atoi(need_value("--reps"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      opt.batch = static_cast<std::size_t>(
          std::strtoull(need_value("--batch"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = need_value("--json");
    } else if (std::strcmp(argv[i], "--capture-log") == 0) {
      opt.capture_log = need_value("--capture-log");
      AllocLogKind parsed;
      if (!alloc_log_from_name(opt.capture_log, &parsed)) {
        std::fprintf(stderr,
                     "--capture-log wants tree|array|filter|adaptive, got %s\n",
                     opt.capture_log.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // ctest bit-rot gate: exercise every code path in seconds, not minutes.
      opt.scale = 0.01;
      opt.reps = 1;
      opt.threads = 2;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--reps N] [--threads T] [--seed X] "
                   "[--batch B] [--capture-log tree|array|filter|adaptive] "
                   "[--json FILE] [--smoke]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

RunResult run_once(const std::string& app, int threads, const TxConfig& cfg,
                   const Options& opt) {
  set_global_config(cfg);
  auto instance = stamp::make_app(app);
  stamp::AppParams params;
  params.threads = threads;
  params.seed = opt.seed;
  params.scale = opt.scale;
  stats_reset();
  RunResult result;
  result.seconds = stamp::run_app(*instance, params);
  result.stats = stats_snapshot();
  set_global_config(TxConfig::baseline());
  return result;
}

std::vector<std::pair<std::string, TxConfig>> table_configs() {
  return {
      {"baseline", TxConfig::baseline()},
      {"tree", TxConfig::runtime_rw(AllocLogKind::kTree)},
      {"array", TxConfig::runtime_rw(AllocLogKind::kArray)},
      {"filtering", TxConfig::runtime_rw(AllocLogKind::kFilter)},
      {"compiler", TxConfig::compiler()},
  };
}

namespace {

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
}

double median_seconds(const std::string& app, int threads, const TxConfig& cfg,
                      const Options& opt, TxStats* stats_out = nullptr) {
  std::vector<double> times;
  TxStats last;
  for (int r = 0; r < opt.reps; ++r) {
    const RunResult res = run_once(app, threads, cfg, opt);
    times.push_back(res.seconds);
    last = res.stats;
  }
  std::sort(times.begin(), times.end());
  if (stats_out != nullptr) *stats_out = last;
  return times[times.size() / 2];
}

void print_speedup_header() {
  std::printf("%-15s", "app");
}

}  // namespace

void analysis_stats() {
  std::printf("# Static capture analysis precision (txir kernels, inline depth 2)\n");
  std::printf("%s", txir::kernel_report_table().c_str());
}

void fig8_breakdown(const Options& opt) {
  analysis_stats();
  std::printf("# Figure 8: breakdown of compiler-inserted STM barriers (1 thread)\n");
  std::printf("# categories: captured-heap / captured-stack / not-required-other / required\n");
  std::printf("%-15s %10s %8s %8s %8s %8s   %10s %8s %8s %8s %8s\n", "app",
              "reads", "heap%", "stack%", "other%", "req%", "writes", "heap%",
              "stack%", "other%", "req%");
  TxStats all_sum;
  for (const auto& app : stamp::app_names()) {
    const RunResult res = run_once(app, 1, TxConfig::counting(), opt);
    const TxStats& s = res.stats;
    std::printf("%-15s %10llu %8.1f %8.1f %8.1f %8.1f   %10llu %8.1f %8.1f %8.1f %8.1f\n",
                app.c_str(),
                static_cast<unsigned long long>(s.reads),
                pct(s.read_cap_heap, s.reads), pct(s.read_cap_stack, s.reads),
                pct(s.read_not_required, s.reads), pct(s.read_required, s.reads),
                static_cast<unsigned long long>(s.writes),
                pct(s.write_cap_heap, s.writes), pct(s.write_cap_stack, s.writes),
                pct(s.write_not_required, s.writes),
                pct(s.write_required, s.writes));
    all_sum.add(s);
  }
  const std::uint64_t accesses = all_sum.reads + all_sum.writes;
  std::printf("%-15s %10llu  combined: heap+stack %.1f%%, other %.1f%%, required %.1f%%\n",
              "ALL", static_cast<unsigned long long>(accesses),
              pct(all_sum.read_cap_heap + all_sum.read_cap_stack +
                      all_sum.write_cap_heap + all_sum.write_cap_stack,
                  accesses),
              pct(all_sum.read_not_required + all_sum.write_not_required, accesses),
              pct(all_sum.read_required + all_sum.write_required, accesses));
}

void fig9_removed(const Options& opt) {
  analysis_stats();
  std::printf("# Figure 9: portion of barriers removed by each technique (1 thread)\n");
  const std::vector<std::pair<std::string, TxConfig>> techniques = {
      {"tree", TxConfig::runtime_rw(AllocLogKind::kTree)},
      {"array", TxConfig::runtime_rw(AllocLogKind::kArray)},
      {"filtering", TxConfig::runtime_rw(AllocLogKind::kFilter)},
      {"compiler", TxConfig::compiler()},
  };
  std::printf("%-15s", "app");
  for (const auto& [name, cfg] : techniques) {
    std::printf(" %9s-R %9s-W", name.c_str(), name.c_str());
  }
  std::printf("\n");
  for (const auto& app : stamp::app_names()) {
    std::printf("%-15s", app.c_str());
    for (const auto& [name, cfg] : techniques) {
      const RunResult res = run_once(app, 1, cfg, opt);
      const TxStats& s = res.stats;
      std::printf(" %10.1f%% %10.1f%%", pct(s.read_elided(), s.reads),
                  pct(s.write_elided(), s.writes));
    }
    std::printf("\n");
  }
}

namespace {

/// Prints the app x config improvement table and, when opt.json is set,
/// writes the same data as machine-readable JSON (one object per app with
/// baseline seconds and per-config improvement percentages). The JSON is
/// the perf-trajectory record format consumed by scripts/bench_json.sh.
void speedup_table(const char* experiment, const Options& opt, int threads,
                   const std::vector<std::pair<std::string, TxConfig>>& configs) {
  std::FILE* json = nullptr;
  if (!opt.json.empty()) {
    json = std::fopen(opt.json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", opt.json.c_str());
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"experiment\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"threads\": %d,\n  \"reps\": %d,\n  \"seed\": %llu,\n"
                 "  \"rows\": [",
                 experiment, opt.scale, threads, opt.reps,
                 static_cast<unsigned long long>(opt.seed));
  }
  print_speedup_header();
  for (const auto& [name, cfg] : configs) std::printf(" %14s", name.c_str());
  std::printf("\n");
  bool first_row = true;
  for (const auto& app : stamp::app_names()) {
    const double base = median_seconds(app, threads, TxConfig::baseline(), opt);
    std::printf("%-15s", app.c_str());
    if (json != nullptr) {
      std::fprintf(json,
                   "%s\n    {\"app\": \"%s\", \"baseline_seconds\": %.6f, "
                   "\"improvement_percent\": {",
                   first_row ? "" : ",", app.c_str(), base);
      first_row = false;
    }
    bool first_cfg = true;
    for (const auto& [name, cfg] : configs) {
      const double t = median_seconds(app, threads, cfg, opt);
      const double improvement = (base / t - 1.0) * 100.0;
      std::printf(" %13.1f%%", improvement);
      if (json != nullptr) {
        std::fprintf(json, "%s\"%s\": %.2f", first_cfg ? "" : ", ",
                     name.c_str(), improvement);
        first_cfg = false;
      }
    }
    std::printf("  (baseline %.4fs)\n", base);
    if (json != nullptr) std::fprintf(json, "}}");
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("# wrote %s\n", opt.json.c_str());
  }
}

}  // namespace

void fig10_single_thread(const Options& opt) {
  analysis_stats();
  std::printf("# Figure 10: performance improvement over baseline at 1 thread\n");
  std::printf("# positive = faster than baseline, negative = runtime-check overhead\n");
  speedup_table("fig10", opt, 1,
                {{"rt-stack+heap-RW", TxConfig::runtime_rw()},
                 {"rt-stack+heap-W", TxConfig::runtime_w()},
                 {"rt-heap-W", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
                 {"compiler", TxConfig::compiler()}});
}

void fig11a_configs(const Options& opt) {
  std::printf("# Figure 11(a): improvement over baseline at %d threads (runtime tree configs + compiler)\n",
              opt.threads);
  speedup_table("fig11a", opt, opt.threads,
                {{"rt-stack+heap-RW", TxConfig::runtime_rw()},
                 {"rt-stack+heap-W", TxConfig::runtime_w()},
                 {"rt-heap-W", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
                 {"compiler", TxConfig::compiler()}});
}

void fig11a_scaling(const Options& opt) {
  // Thread-count sweep for the fig11 contenders: raw seconds (not
  // improvement) per app x config x thread count, so a multi-core box can
  // record BENCH_scaling.json and the gate can compare shapes, not just
  // endpoints. On the 1-core CI box this only demonstrates the schema —
  // every "scaling" curve is flat-to-degrading under oversubscription.
  std::vector<int> counts;
  for (int t = 1; t <= opt.threads; t *= 2) counts.push_back(t);
  if (counts.empty() || counts.back() != opt.threads) {
    counts.push_back(opt.threads);
  }
  const std::vector<std::pair<std::string, TxConfig>> configs = {
      {"baseline", TxConfig::baseline()},
      {"rt-heap-W", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
      {"compiler", TxConfig::compiler()},
  };
  std::printf("# Scaling sweep: median seconds per app/config across thread counts\n");
  std::printf("%-15s %-12s", "app", "config");
  for (int t : counts) std::printf(" %8dT", t);
  std::printf("\n");

  std::FILE* json = nullptr;
  if (!opt.json.empty()) {
    json = std::fopen(opt.json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", opt.json.c_str());
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"experiment\": \"scaling\",\n  \"scale\": %g,\n"
                 "  \"reps\": %d,\n  \"seed\": %llu,\n  \"threads\": [",
                 opt.scale, opt.reps,
                 static_cast<unsigned long long>(opt.seed));
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::fprintf(json, "%s%d", i == 0 ? "" : ", ", counts[i]);
    }
    std::fprintf(json, "],\n  \"rows\": [");
  }
  bool first_row = true;
  for (const auto& app : stamp::app_names()) {
    for (const auto& [name, cfg] : configs) {
      std::printf("%-15s %-12s", app.c_str(), name.c_str());
      if (json != nullptr) {
        std::fprintf(json, "%s\n    {\"app\": \"%s\", \"config\": \"%s\", \"seconds\": [",
                     first_row ? "" : ",", app.c_str(), name.c_str());
        first_row = false;
      }
      bool first_t = true;
      for (int t : counts) {
        const double secs = median_seconds(app, t, cfg, opt);
        std::printf(" %8.4fs", secs);
        if (json != nullptr) {
          std::fprintf(json, "%s%.6f", first_t ? "" : ", ", secs);
          first_t = false;
        }
      }
      std::printf("\n");
      if (json != nullptr) std::fprintf(json, "]}");
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("# wrote %s\n", opt.json.c_str());
  }
}

void fig11b_structures(const Options& opt) {
  std::printf("# Figure 11(b): improvement over baseline at %d threads\n", opt.threads);
  std::printf("# runtime checks: write barriers only, transaction-local heap only\n");
  speedup_table("fig11b", opt, opt.threads,
                {{"tree", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
                 {"array", TxConfig::runtime_heap_w(AllocLogKind::kArray)},
                 {"filter", TxConfig::runtime_heap_w(AllocLogKind::kFilter)},
                 {"compiler", TxConfig::compiler()}});
}

void table1_aborts(const Options& opt) {
  std::printf("# Table 1: abort-to-commit ratio at %d threads\n", opt.threads);
  std::printf("%-15s", "app");
  for (const auto& [name, cfg] : table_configs()) std::printf(" %10s", name.c_str());
  std::printf("\n");
  for (const auto& app : stamp::app_names()) {
    std::printf("%-15s", app.c_str());
    for (const auto& [name, cfg] : table_configs()) {
      const RunResult res = run_once(app, opt.threads, cfg, opt);
      std::printf(" %10.2f", res.stats.abort_to_commit_ratio());
    }
    std::printf("\n");
  }
}

void table2_variance(const Options& opt) {
  const int reps = opt.reps < 5 ? 5 : opt.reps;  // the paper uses 5 runs
  std::printf("# Table 2: percent relative standard deviation over %d runs at %d threads\n",
              reps, opt.threads);
  std::printf("%-15s", "app");
  for (const auto& [name, cfg] : table_configs()) std::printf(" %10s", name.c_str());
  std::printf("\n");
  for (const auto& app : stamp::app_names()) {
    std::printf("%-15s", app.c_str());
    for (const auto& [name, cfg] : table_configs()) {
      std::vector<double> times;
      for (int r = 0; r < reps; ++r) {
        times.push_back(run_once(app, opt.threads, cfg, opt).seconds);
      }
      const Summary s = summarize(times);
      std::printf(" %10.2f", s.rsd_percent);
    }
    std::printf("\n");
  }
}

namespace {

/// run_once's streaming twin: same config install / stats-reset protocol,
/// but the workload is replayed through txbatch::Batcher at @p batch.
RunResult run_stream_once(const std::string& app, int threads,
                          std::size_t batch, const TxConfig& cfg,
                          const Options& opt, std::uint64_t* requests_out) {
  set_global_config(cfg);
  auto instance = stamp::make_app(app);
  stamp::AppParams params;
  params.threads = threads;
  params.seed = opt.seed;
  params.scale = opt.scale;
  stats_reset();
  RunResult result;
  result.seconds = stamp::run_app_stream(*instance, params, batch, requests_out);
  result.stats = stats_snapshot();
  set_global_config(TxConfig::baseline());
  return result;
}

}  // namespace

void txbatch_stream(const Options& opt) {
  // The merge layer's one job: make a larger fraction of each transaction's
  // footprint CAPTURED. Run under the runtime stack+heap config with the
  // O(1)-miss filter log: most accesses in any real stream are capture
  // MISSES, and a log whose miss cost grows with the merged footprint (the
  // tree) would charge the batch for its own size, burying the fixed-cost
  // amortization this experiment exists to show. (The bounded array log is
  // out too — it overflows outright at batch 64.) --capture-log overrides,
  // e.g. `adaptive` lets the online policy track the merge factor itself
  // (Batcher::flush feeds it the batch size as a pre-escalation hint).
  AllocLogKind log_kind = AllocLogKind::kFilter;
  if (!opt.capture_log.empty()) {
    alloc_log_from_name(opt.capture_log, &log_kind);  // validated at parse
  }
  const TxConfig cfg = TxConfig::runtime_rw(log_kind);
  std::vector<std::size_t> batches;
  if (opt.batch > 0) {
    batches.push_back(opt.batch);
  } else {
    batches = {1, 4, 16, 64};
  }
  const std::vector<std::string> apps = {"vacation-low", "intruder"};

  std::printf("# txbatch: request-stream throughput vs merge factor "
              "(%d thread%s, runtime stack+heap RW, %s log)\n",
              opt.threads, opt.threads == 1 ? "" : "s", to_string(log_kind));
  std::printf("# capture-hit%% = accesses hitting captured (tx-local "
              "stack/heap) memory; elided%% = any elision mechanism; "
              "ovf%% = allocations dropped by a full array log\n");
  std::printf("%-15s %6s %10s %12s %12s %9s %10s %6s %8s %9s %7s\n", "app",
              "batch", "seconds", "requests", "req/s", "cap-hit%", "elided%",
              "ovf%", "commits", "flushes", "comp");

  std::FILE* json = nullptr;
  if (!opt.json.empty()) {
    json = std::fopen(opt.json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", opt.json.c_str());
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"experiment\": \"txbatch\",\n  \"scale\": %g,\n"
                 "  \"threads\": %d,\n  \"reps\": %d,\n  \"seed\": %llu,\n"
                 "  \"batch_sizes\": [",
                 opt.scale, opt.threads, opt.reps,
                 static_cast<unsigned long long>(opt.seed));
    for (std::size_t i = 0; i < batches.size(); ++i) {
      std::fprintf(json, "%s%zu", i == 0 ? "" : ", ", batches[i]);
    }
    std::fprintf(json, "],\n  \"rows\": [");
  }
  bool first_row = true;
  for (const auto& app : apps) {
    for (const std::size_t batch : batches) {
      std::vector<double> times;
      TxStats stats;
      std::uint64_t requests = 0;
      for (int r = 0; r < opt.reps; ++r) {
        const RunResult res =
            run_stream_once(app, opt.threads, batch, cfg, opt, &requests);
        times.push_back(res.seconds);
        stats = res.stats;
      }
      std::sort(times.begin(), times.end());
      const double secs = times[times.size() / 2];
      const double rps = secs > 0.0 ? static_cast<double>(requests) / secs : 0.0;
      std::printf("%-15s %6zu %10.4f %12llu %12.0f %9.1f %10.1f %6.1f %8llu %9llu %7llu\n",
                  app.c_str(), batch, secs,
                  static_cast<unsigned long long>(requests), rps,
                  stats.capture_hit_percent(), stats.elided_percent(),
                  stats.capture_overflow_percent(),
                  static_cast<unsigned long long>(stats.commits),
                  static_cast<unsigned long long>(stats.batch_flushes),
                  static_cast<unsigned long long>(stats.batch_op_compensations));
      if (json != nullptr) {
        std::fprintf(
            json,
            "%s\n    {\"app\": \"%s\", \"batch\": %zu, \"seconds\": %.6f, "
            "\"requests\": %llu, \"req_per_sec\": %.1f, "
            "\"capture_hit_percent\": %.2f, \"elided_percent\": %.2f, "
            "\"commits\": %llu, \"aborts\": %llu, \"batch_flushes\": %llu, "
            "\"batch_ops\": %llu, \"batch_op_compensations\": %llu}",
            first_row ? "" : ",", app.c_str(), batch, secs,
            static_cast<unsigned long long>(requests), rps,
            stats.capture_hit_percent(), stats.elided_percent(),
            static_cast<unsigned long long>(stats.commits),
            static_cast<unsigned long long>(stats.aborts),
            static_cast<unsigned long long>(stats.batch_flushes),
            static_cast<unsigned long long>(stats.batch_ops),
            static_cast<unsigned long long>(stats.batch_op_compensations));
        first_row = false;
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("# wrote %s\n", opt.json.c_str());
  }
}

void adaptive_sweep(const Options& opt) {
  // The online policy against each hand-picked structure, in the fig11b
  // family (write barriers only, tx-local heap only) where the structure
  // choice dominates the outcome. The contract being measured: adaptive
  // should track the best fixed log everywhere and beat the worst one on
  // the apps fig11b shows diverging (genome, bayes) — without per-workload
  // tuning.
  std::vector<std::pair<std::string, TxConfig>> configs = {
      {"tree", TxConfig::runtime_heap_w(AllocLogKind::kTree)},
      {"array", TxConfig::runtime_heap_w(AllocLogKind::kArray)},
      {"filter", TxConfig::runtime_heap_w(AllocLogKind::kFilter)},
      {"adaptive", TxConfig::runtime_heap_w(AllocLogKind::kAdaptive)},
  };
  if (!opt.capture_log.empty()) {
    std::erase_if(configs, [&](const auto& c) {
      return c.first != opt.capture_log;
    });
  }

  std::printf("# Adaptive capture-log selection: improvement over baseline "
              "at %d thread%s (runtime heap-W family)\n",
              opt.threads, opt.threads == 1 ? "" : "s");
  std::printf("# profile: %% of adaptive transactions run on each structure "
              "(a=array f=filter t=tree), plan switches,\n"
              "# array-overflow%% of allocations, capture-hit%% of accesses\n");
  std::printf("%-15s", "app");
  for (const auto& [name, cfg] : configs) std::printf(" %9s", name.c_str());
  std::printf("   profile a/f/t%%      sw   ovf%%   cap%%\n");

  std::FILE* json = nullptr;
  if (!opt.json.empty()) {
    json = std::fopen(opt.json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", opt.json.c_str());
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"experiment\": \"adaptive\",\n  \"scale\": %g,\n"
                 "  \"threads\": %d,\n  \"reps\": %d,\n  \"seed\": %llu,\n"
                 "  \"rows\": [",
                 opt.scale, opt.threads, opt.reps,
                 static_cast<unsigned long long>(opt.seed));
  }
  bool first_row = true;
  for (const auto& app : stamp::app_names()) {
    const double base = median_seconds(app, opt.threads, TxConfig::baseline(), opt);
    std::printf("%-15s", app.c_str());
    if (json != nullptr) {
      std::fprintf(json,
                   "%s\n    {\"app\": \"%s\", \"baseline_seconds\": %.6f, "
                   "\"improvement_percent\": {",
                   first_row ? "" : ",", app.c_str(), base);
      first_row = false;
    }
    TxStats adaptive_stats;
    bool have_adaptive = false;
    bool first_cfg = true;
    for (const auto& [name, cfg] : configs) {
      TxStats stats;
      const double t = median_seconds(app, opt.threads, cfg, opt, &stats);
      const double improvement = (base / t - 1.0) * 100.0;
      std::printf(" %8.1f%%", improvement);
      if (name == "adaptive") {
        adaptive_stats = stats;
        have_adaptive = true;
      }
      if (json != nullptr) {
        std::fprintf(json, "%s\"%s\": %.2f", first_cfg ? "" : ", ",
                     name.c_str(), improvement);
        first_cfg = false;
      }
    }
    if (json != nullptr) std::fprintf(json, "}");
    if (have_adaptive) {
      const TxStats& s = adaptive_stats;
      const std::uint64_t atxs = s.adaptive_txs_array + s.adaptive_txs_filter +
                                 s.adaptive_txs_tree;
      std::printf("   %3.0f/%3.0f/%3.0f %9llu %6.1f %6.1f",
                  pct(s.adaptive_txs_array, atxs),
                  pct(s.adaptive_txs_filter, atxs),
                  pct(s.adaptive_txs_tree, atxs),
                  static_cast<unsigned long long>(s.adaptive_switches),
                  s.capture_overflow_percent(), s.capture_hit_percent());
      if (json != nullptr) {
        std::fprintf(
            json,
            ", \"adaptive_profile\": {\"switches\": %llu, "
            "\"txs_array\": %llu, \"txs_filter\": %llu, \"txs_tree\": %llu, "
            "\"array_overflow_percent\": %.2f, \"capture_hit_percent\": %.2f}",
            static_cast<unsigned long long>(s.adaptive_switches),
            static_cast<unsigned long long>(s.adaptive_txs_array),
            static_cast<unsigned long long>(s.adaptive_txs_filter),
            static_cast<unsigned long long>(s.adaptive_txs_tree),
            s.capture_overflow_percent(), s.capture_hit_percent());
      }
    }
    std::printf("  (baseline %.4fs)\n", base);
    if (json != nullptr) std::fprintf(json, "}");
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("# wrote %s\n", opt.json.c_str());
  }
}

void durable_sweep(const Options& opt) {
  // Durability cost and what capture elision buys back. Three cells per
  // app: the non-durable reference (runtime stack+heap RW, filter log —
  // the txbatch_stream config), the same config made durable, and durable
  // with capture disabled (every instrumented store redo-logged and
  // flushed). A scratch heap file backs the log so commits pay real
  // serialization + write-back; STAMP's data stays volatile, so entries
  // are flush-accounted but never replayed.
  const TxConfig ref = TxConfig::runtime_rw(AllocLogKind::kFilter);
  const TxConfig dur_cap = ref.with_durable();
  const TxConfig dur_nocap = TxConfig::durable_baseline();

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string heap_path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                                "/cstm_bench_durable_" +
                                std::to_string(::getpid()) + ".heap";
  std::remove(heap_path.c_str());
  dur::DurableHeap heap;
  if (!heap.open(heap_path)) {
    std::fprintf(stderr, "cannot open scratch durable heap %s\n",
                 heap_path.c_str());
    std::exit(1);
  }
  heap.activate();

  std::printf("# Durable mode: overhead vs non-durable and flush elision "
              "(%d thread%s, runtime stack+heap RW, filter log)\n",
              opt.threads, opt.threads == 1 ? "" : "s");
  std::printf("# flush-elided%% = captured stores that skipped redo "
              "logging+flushing; nocap = durable with capture disabled\n");
  std::printf("%-15s %10s %10s %8s %10s %8s %9s %10s %10s %10s\n", "app",
              "ref-s", "dur-s", "ovh%", "nocap-s", "ovh%", "elided%", "pwbs",
              "nocap-pwb", "logged");

  std::FILE* json = nullptr;
  if (!opt.json.empty()) {
    json = std::fopen(opt.json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", opt.json.c_str());
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"experiment\": \"durable\",\n  \"scale\": %g,\n"
                 "  \"threads\": %d,\n  \"reps\": %d,\n  \"seed\": %llu,\n"
                 "  \"rows\": [",
                 opt.scale, opt.threads, opt.reps,
                 static_cast<unsigned long long>(opt.seed));
  }
  bool first_row = true;
  for (const auto& app : stamp::app_names()) {
    const double base = median_seconds(app, opt.threads, ref, opt);
    TxStats cap_stats;
    const double t_cap = median_seconds(app, opt.threads, dur_cap, opt,
                                        &cap_stats);
    TxStats nocap_stats;
    const double t_nocap = median_seconds(app, opt.threads, dur_nocap, opt,
                                          &nocap_stats);
    const double ovh_cap = (t_cap / base - 1.0) * 100.0;
    const double ovh_nocap = (t_nocap / base - 1.0) * 100.0;
    std::printf(
        "%-15s %10.4f %10.4f %7.1f%% %10.4f %7.1f%% %8.1f%% %10llu %10llu "
        "%10llu\n",
        app.c_str(), base, t_cap, ovh_cap, t_nocap, ovh_nocap,
        cap_stats.flushes_elided_percent(),
        static_cast<unsigned long long>(cap_stats.durable_pwbs),
        static_cast<unsigned long long>(nocap_stats.durable_pwbs),
        static_cast<unsigned long long>(cap_stats.durable_stores_logged));
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s\n    {\"app\": \"%s\", \"nondurable_seconds\": %.6f, "
          "\"durable_seconds\": %.6f, \"durable_overhead_percent\": %.2f, "
          "\"durable_nocapture_seconds\": %.6f, "
          "\"durable_nocapture_overhead_percent\": %.2f, "
          "\"flushes_elided_percent\": %.2f, \"pwbs\": %llu, "
          "\"pwbs_nocapture\": %llu, \"stores_logged\": %llu, "
          "\"stores_logged_nocapture\": %llu, \"durable_commits\": %llu}",
          first_row ? "" : ",", app.c_str(), base, t_cap, ovh_cap, t_nocap,
          ovh_nocap, cap_stats.flushes_elided_percent(),
          static_cast<unsigned long long>(cap_stats.durable_pwbs),
          static_cast<unsigned long long>(nocap_stats.durable_pwbs),
          static_cast<unsigned long long>(cap_stats.durable_stores_logged),
          static_cast<unsigned long long>(nocap_stats.durable_stores_logged),
          static_cast<unsigned long long>(cap_stats.durable_commits));
      first_row = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("# wrote %s\n", opt.json.c_str());
  }
  heap.deactivate();
  heap.close();
  std::remove(heap_path.c_str());
}

}  // namespace cstm::harness
