// Transactional chained hash table (STAMP lib/hashtable equivalent): a
// fixed bucket array of singly-linked chains. Used by genome (segment
// dedup) and intruder (per-flow reassembly maps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "stm/stm.hpp"

namespace cstm {

namespace hash_sites {
inline constexpr Site kNodeInit{"hashtable.node.init", false, true};
inline constexpr Site kLink{"hashtable.link", true, false};
inline constexpr Site kTraverse{"hashtable.traverse", true, false};
inline constexpr Site kSize{"hashtable.size", true, false};
}  // namespace hash_sites

template <typename K, typename V, typename Hash = std::hash<K>>
  requires TmValue<K> && TmValue<V>
class TxHashtable {
 public:
  explicit TxHashtable(std::size_t buckets = 1024)
      : mask_(round_up_pow2(buckets) - 1),
        buckets_(new Node*[mask_ + 1]()) {}

  ~TxHashtable() {
    for (std::size_t b = 0; b <= mask_; ++b) {
      Node* n = buckets_[b];
      while (n != nullptr) {
        Node* next = n->next;
        Pool::deallocate(n);
        n = next;
      }
    }
  }
  TxHashtable(const TxHashtable&) = delete;
  TxHashtable& operator=(const TxHashtable&) = delete;

  /// Inserts (k, v); returns false if the key already exists.
  bool insert(Tx& tx, const K& k, const V& v) {
    Node** bucket = &buckets_[slot(k)];
    Node* cur = tm_read(tx, bucket, hash_sites::kTraverse);
    Node* head = cur;
    while (cur != nullptr) {
      if (tm_read(tx, &cur->key, hash_sites::kTraverse) == k) return false;
      cur = tm_read(tx, &cur->next, hash_sites::kTraverse);
    }
    Node* node = static_cast<Node*>(tx_malloc(tx, sizeof(Node)));
    tm_write(tx, &node->key, k, hash_sites::kNodeInit);
    tm_write(tx, &node->value, v, hash_sites::kNodeInit);
    tm_write(tx, &node->next, head, hash_sites::kNodeInit);
    tm_write(tx, bucket, node, hash_sites::kLink);
    tm_add(tx, &size_, std::size_t{1}, hash_sites::kSize);
    return true;
  }

  /// Looks up @p k; stores the value into *out when found.
  bool find(Tx& tx, const K& k, V* out = nullptr) {
    Node* cur = tm_read(tx, &buckets_[slot(k)], hash_sites::kTraverse);
    while (cur != nullptr) {
      if (tm_read(tx, &cur->key, hash_sites::kTraverse) == k) {
        if (out != nullptr) *out = tm_read(tx, &cur->value, hash_sites::kTraverse);
        return true;
      }
      cur = tm_read(tx, &cur->next, hash_sites::kTraverse);
    }
    return false;
  }

  bool contains(Tx& tx, const K& k) { return find(tx, k, nullptr); }

  /// Updates the value of an existing key; inserts when absent.
  void put(Tx& tx, const K& k, const V& v) {
    Node* cur = tm_read(tx, &buckets_[slot(k)], hash_sites::kTraverse);
    while (cur != nullptr) {
      if (tm_read(tx, &cur->key, hash_sites::kTraverse) == k) {
        tm_write(tx, &cur->value, v, hash_sites::kLink);
        return;
      }
      cur = tm_read(tx, &cur->next, hash_sites::kTraverse);
    }
    insert(tx, k, v);
  }

  bool erase(Tx& tx, const K& k) {
    Node** bucket = &buckets_[slot(k)];
    Node* prev = nullptr;
    Node* cur = tm_read(tx, bucket, hash_sites::kTraverse);
    while (cur != nullptr) {
      Node* next = tm_read(tx, &cur->next, hash_sites::kTraverse);
      if (tm_read(tx, &cur->key, hash_sites::kTraverse) == k) {
        if (prev == nullptr) {
          tm_write(tx, bucket, next, hash_sites::kLink);
        } else {
          tm_write(tx, &prev->next, next, hash_sites::kLink);
        }
        tm_add(tx, &size_, static_cast<std::size_t>(-1), hash_sites::kSize);
        tx_free(tx, cur);
        return true;
      }
      prev = cur;
      cur = next;
    }
    return false;
  }

  std::size_t size(Tx& tx) { return tm_read(tx, &size_, hash_sites::kSize); }
  std::size_t bucket_count() const { return mask_ + 1; }

 private:
  struct Node {
    K key;
    V value;
    Node* next;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t slot(const K& k) const {
    // Mix the hash so contiguous keys spread across buckets.
    const std::uint64_t h = Hash{}(k) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  std::size_t mask_;
  std::unique_ptr<Node*[]> buckets_;
  std::size_t size_ = 0;
};

}  // namespace cstm
