// Transactional chained hash table (STAMP lib/hashtable equivalent): a
// fixed bucket array of singly-linked chains. Used by genome (segment
// dedup) and intruder (per-flow reassembly maps). Bucket slots are reached
// through a tspan view; node fields are tfields initialized after tx_new.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"

namespace cstm {

template <typename K, typename V, typename Hash = std::hash<K>>
  requires TmValue<K> && TmValue<V>
class TxHashtable {
 public:
  explicit TxHashtable(std::size_t buckets = 1024)
      : mask_(round_up_pow2(buckets) - 1),
        buckets_(new Node*[mask_ + 1]()) {}

  ~TxHashtable() {
    for (std::size_t b = 0; b <= mask_; ++b) {
      Node* n = buckets_[b];
      while (n != nullptr) {
        Node* next = n->next.peek();
        Pool::deallocate(n);
        n = next;
      }
    }
  }
  TxHashtable(const TxHashtable&) = delete;
  TxHashtable& operator=(const TxHashtable&) = delete;

  /// Inserts (k, v); returns false if the key already exists.
  bool insert(Tx& tx, const K& k, const V& v) {
    const std::size_t b = slot(k);
    Node* head = bucket_view().get(tx, b);
    Node* cur = head;
    while (cur != nullptr) {
      if (cur->key.get(tx) == k) return false;
      cur = cur->next.get(tx);
    }
    Node* node = tx_new<Node>(tx);
    node->key.init(tx, k);
    node->value.init(tx, v);
    node->next.init(tx, head);
    bucket_view().set(tx, b, node);
    size_.add(tx, 1);
    return true;
  }

  /// Looks up @p k; stores the value into *out when found.
  bool find(Tx& tx, const K& k, V* out = nullptr) {
    Node* cur = bucket_view().get(tx, slot(k));
    while (cur != nullptr) {
      if (cur->key.get(tx) == k) {
        if (out != nullptr) *out = cur->value.get(tx);
        return true;
      }
      cur = cur->next.get(tx);
    }
    return false;
  }

  bool contains(Tx& tx, const K& k) { return find(tx, k, nullptr); }

  /// Updates the value of an existing key; inserts when absent.
  void put(Tx& tx, const K& k, const V& v) {
    Node* cur = bucket_view().get(tx, slot(k));
    while (cur != nullptr) {
      if (cur->key.get(tx) == k) {
        cur->value.set(tx, v);
        return;
      }
      cur = cur->next.get(tx);
    }
    insert(tx, k, v);
  }

  bool erase(Tx& tx, const K& k) {
    const std::size_t b = slot(k);
    Node* prev = nullptr;
    Node* cur = bucket_view().get(tx, b);
    while (cur != nullptr) {
      Node* next = cur->next.get(tx);
      if (cur->key.get(tx) == k) {
        if (prev == nullptr) {
          bucket_view().set(tx, b, next);
        } else {
          prev->next.set(tx, next);
        }
        size_.add(tx, static_cast<std::size_t>(-1));
        tx_delete(tx, cur);
        return true;
      }
      prev = cur;
      cur = next;
    }
    return false;
  }

  std::size_t size(Tx& tx) { return size_.get(tx); }
  std::size_t bucket_count() const { return mask_ + 1; }

 private:
  struct Node {
    tfield<K, hash_sites::kKey> key;
    tfield<V, hash_sites::kValue> value;
    tfield<Node*, hash_sites::kNext> next;
  };

  tspan<Node*, hash_sites::kBucket> bucket_view() {
    return tspan<Node*, hash_sites::kBucket>(buckets_.get(), mask_ + 1);
  }

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t slot(const K& k) const {
    // Mix the hash so contiguous keys spread across buckets.
    const std::uint64_t h = Hash{}(k) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  std::size_t mask_;
  std::unique_ptr<Node*[]> buckets_;
  tvar<std::size_t, hash_sites::kSize> size_{0};
};

}  // namespace cstm
