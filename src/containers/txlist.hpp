// Transactional sorted singly-linked list (STAMP lib/list equivalent).
//
// Every transactional access goes through a typed tfield/tvar accessor
// whose Site is bound at the field type, emulating naive compiler
// instrumentation with the capture metadata centralized per field:
//  * node fields are initialized with tfield::init after tx_new — original
//    STAMP used plain stores there (the compiler over-instruments them;
//    capture analysis elides them);
//  * link/traversal/size accessors carry manual=true Sites — STAMP's
//    TM_SHARED_*.
//  * iterator state is `manual=false, verdict=kStack` (proven by the
//    iter_loop kernel in src/txir/kernels.cpp); iterators MUST be declared
//    inside the atomic block (as in STAMP's Figure 1(a) usage) for that
//    verdict to be sound.
#pragma once

#include <cstddef>
#include <functional>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"

namespace cstm {

template <typename T, typename Compare = std::less<T>>
  requires TmValue<T>
class TxList {
 public:
  struct Node {
    tfield<T, list_sites::kValue> value;
    tfield<Node*, list_sites::kNext> next;
  };

  struct Iterator {
    tfield<Node*, list_sites::kIter> cur{nullptr};
  };

  explicit TxList(bool allow_duplicates = false)
      : allow_duplicates_(allow_duplicates) {}

  ~TxList() {
    Node* n = head_.next.peek();
    while (n != nullptr) {
      Node* next = n->next.peek();
      Pool::deallocate(n);
      n = next;
    }
  }

  TxList(const TxList&) = delete;
  TxList& operator=(const TxList&) = delete;

  /// Inserts @p v keeping the list sorted. Returns false for a duplicate
  /// when duplicates are disallowed.
  bool insert(Tx& tx, const T& v) {
    Node* prev = &head_;
    Node* cur = prev->next.get(tx);
    while (cur != nullptr) {
      const T cv = cur->value.get(tx);
      if (!cmp_(cv, v)) {
        if (!cmp_(v, cv) && !allow_duplicates_) return false;  // equal
        break;
      }
      prev = cur;
      cur = cur->next.get(tx);
    }
    Node* node = tx_new<Node>(tx);
    // Initialization of freshly captured memory: over-instrumented by a
    // naive compiler, elidable by capture analysis.
    node->value.init(tx, v);
    node->next.init(tx, cur);
    prev->next.set(tx, node);
    size_.add(tx, 1);
    return true;
  }

  /// Removes one occurrence of @p v. Returns false if absent.
  bool remove(Tx& tx, const T& v) {
    Node* prev = &head_;
    Node* cur = prev->next.get(tx);
    while (cur != nullptr) {
      const T cv = cur->value.get(tx);
      if (!cmp_(cv, v)) {
        if (cmp_(v, cv)) return false;  // passed the slot: absent
        prev->next.set(tx, cur->next.get(tx));
        size_.add(tx, static_cast<std::size_t>(-1));
        tx_delete(tx, cur);
        return true;
      }
      prev = cur;
      cur = cur->next.get(tx);
    }
    return false;
  }

  bool contains(Tx& tx, const T& v) {
    Node* cur = head_.next.get(tx);
    while (cur != nullptr) {
      const T cv = cur->value.get(tx);
      if (!cmp_(cv, v)) return !cmp_(v, cv);
      cur = cur->next.get(tx);
    }
    return false;
  }

  std::size_t size(Tx& tx) { return size_.get(tx); }
  bool empty(Tx& tx) { return size(tx) == 0; }

  /// Removes every element (transactionally).
  void clear(Tx& tx) {
    Node* cur = head_.next.get(tx);
    while (cur != nullptr) {
      Node* next = cur->next.get(tx);
      tx_delete(tx, cur);
      cur = next;
    }
    head_.next.set(tx, nullptr);
    size_.set(tx, 0);
  }

  // -- STAMP-style iteration (Figure 1(a)). The Iterator object must live
  //    inside the atomic block; its fields are then transaction-local.
  void iter_reset(Tx& tx, Iterator* it) { it->cur.set(tx, head_.next.get(tx)); }

  bool iter_has_next(Tx& tx, Iterator* it) {
    return it->cur.get(tx) != nullptr;
  }

  T iter_next(Tx& tx, Iterator* it) {
    Node* cur = it->cur.get(tx);
    const T v = cur->value.get(tx);
    it->cur.set(tx, cur->next.get(tx));
    return v;
  }

 private:
  Node head_{T{}, nullptr};
  tvar<std::size_t, list_sites::kSize> size_{0};
  bool allow_duplicates_;
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace cstm
