// Transactional sorted singly-linked list (STAMP lib/list equivalent).
//
// Every memory access inside a transactional method goes through an STM
// barrier, emulating naive compiler instrumentation. Site flags encode the
// paper's measurement methodology:
//  * node-initialization stores after tx_new are `manual=false,
//    static_captured=true` — original STAMP used plain stores there (the
//    compiler over-instruments them; capture analysis elides them);
//  * link/traversal accesses are `manual=true` — STAMP's TM_SHARED_*.
//  * iterator-state accesses are `manual=false, static_captured=true`;
//    iterators MUST be declared inside the atomic block (as in STAMP's
//    Figure 1(a) usage) for that flag to be sound.
#pragma once

#include <cstddef>
#include <functional>

#include "stm/stm.hpp"

namespace cstm {

namespace list_sites {
inline constexpr Site kNodeInit{"list.node.init", false, true};
inline constexpr Site kLink{"list.link", true, false};
inline constexpr Site kTraverse{"list.traverse", true, false};
inline constexpr Site kSize{"list.size", true, false};
inline constexpr Site kIter{"list.iter", false, true};
}  // namespace list_sites

template <typename T, typename Compare = std::less<T>>
  requires TmValue<T>
class TxList {
 public:
  struct Node {
    T value;
    Node* next;
  };

  struct Iterator {
    Node* cur = nullptr;
  };

  explicit TxList(bool allow_duplicates = false)
      : allow_duplicates_(allow_duplicates) {}

  ~TxList() {
    Node* n = head_.next;
    while (n != nullptr) {
      Node* next = n->next;
      Pool::deallocate(n);
      n = next;
    }
  }

  TxList(const TxList&) = delete;
  TxList& operator=(const TxList&) = delete;

  /// Inserts @p v keeping the list sorted. Returns false for a duplicate
  /// when duplicates are disallowed.
  bool insert(Tx& tx, const T& v) {
    Node* prev = &head_;
    Node* cur = tm_read(tx, &prev->next, list_sites::kTraverse);
    while (cur != nullptr) {
      const T cv = tm_read(tx, &cur->value, list_sites::kTraverse);
      if (!cmp_(cv, v)) {
        if (!cmp_(v, cv) && !allow_duplicates_) return false;  // equal
        break;
      }
      prev = cur;
      cur = tm_read(tx, &cur->next, list_sites::kTraverse);
    }
    Node* node = static_cast<Node*>(tx_malloc(tx, sizeof(Node)));
    // Initialization of freshly captured memory: over-instrumented by a
    // naive compiler, elidable by capture analysis.
    tm_write(tx, &node->value, v, list_sites::kNodeInit);
    tm_write(tx, &node->next, cur, list_sites::kNodeInit);
    tm_write(tx, &prev->next, node, list_sites::kLink);
    tm_add(tx, &size_, std::size_t{1}, list_sites::kSize);
    return true;
  }

  /// Removes one occurrence of @p v. Returns false if absent.
  bool remove(Tx& tx, const T& v) {
    Node* prev = &head_;
    Node* cur = tm_read(tx, &prev->next, list_sites::kTraverse);
    while (cur != nullptr) {
      const T cv = tm_read(tx, &cur->value, list_sites::kTraverse);
      if (!cmp_(cv, v)) {
        if (cmp_(v, cv)) return false;  // passed the slot: absent
        Node* next = tm_read(tx, &cur->next, list_sites::kTraverse);
        tm_write(tx, &prev->next, next, list_sites::kLink);
        tm_add(tx, &size_, static_cast<std::size_t>(-1), list_sites::kSize);
        tx_free(tx, cur);
        return true;
      }
      prev = cur;
      cur = tm_read(tx, &cur->next, list_sites::kTraverse);
    }
    return false;
  }

  bool contains(Tx& tx, const T& v) {
    Node* cur = tm_read(tx, &head_.next, list_sites::kTraverse);
    while (cur != nullptr) {
      const T cv = tm_read(tx, &cur->value, list_sites::kTraverse);
      if (!cmp_(cv, v)) return !cmp_(v, cv);
      cur = tm_read(tx, &cur->next, list_sites::kTraverse);
    }
    return false;
  }

  std::size_t size(Tx& tx) { return tm_read(tx, &size_, list_sites::kSize); }
  bool empty(Tx& tx) { return size(tx) == 0; }

  /// Removes every element (transactionally).
  void clear(Tx& tx) {
    Node* cur = tm_read(tx, &head_.next, list_sites::kTraverse);
    while (cur != nullptr) {
      Node* next = tm_read(tx, &cur->next, list_sites::kTraverse);
      tx_free(tx, cur);
      cur = next;
    }
    tm_write(tx, &head_.next, static_cast<Node*>(nullptr), list_sites::kLink);
    tm_write(tx, &size_, std::size_t{0}, list_sites::kSize);
  }

  // -- STAMP-style iteration (Figure 1(a)). The Iterator object must live
  //    inside the atomic block; its fields are then transaction-local.
  void iter_reset(Tx& tx, Iterator* it) {
    tm_write(tx, &it->cur, tm_read(tx, &head_.next, list_sites::kTraverse),
             list_sites::kIter);
  }

  bool iter_has_next(Tx& tx, Iterator* it) {
    return tm_read(tx, &it->cur, list_sites::kIter) != nullptr;
  }

  T iter_next(Tx& tx, Iterator* it) {
    Node* cur = tm_read(tx, &it->cur, list_sites::kIter);
    const T v = tm_read(tx, &cur->value, list_sites::kTraverse);
    tm_write(tx, &it->cur, tm_read(tx, &cur->next, list_sites::kTraverse),
             list_sites::kIter);
    return v;
  }

 private:
  Node head_{T{}, nullptr};
  std::size_t size_ = 0;
  bool allow_duplicates_;
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace cstm
