// Transactional FIFO queue (STAMP lib/queue equivalent), linked
// implementation: enqueue allocates a node inside the transaction, so node
// initialization is captured — the same over-instrumentation profile as the
// list.
#pragma once

#include <cstddef>

#include "stm/stm.hpp"

namespace cstm {

namespace queue_sites {
inline constexpr Site kNodeInit{"queue.node.init", false, true};
inline constexpr Site kLink{"queue.link", true, false};
inline constexpr Site kSize{"queue.size", true, false};
}  // namespace queue_sites

template <typename T>
  requires TmValue<T>
class TxQueue {
 public:
  TxQueue() = default;
  ~TxQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      Pool::deallocate(n);
      n = next;
    }
  }
  TxQueue(const TxQueue&) = delete;
  TxQueue& operator=(const TxQueue&) = delete;

  void push(Tx& tx, const T& v) {
    Node* node = static_cast<Node*>(tx_malloc(tx, sizeof(Node)));
    tm_write(tx, &node->value, v, queue_sites::kNodeInit);
    tm_write(tx, &node->next, static_cast<Node*>(nullptr),
             queue_sites::kNodeInit);
    Node* tail = tm_read(tx, &tail_, queue_sites::kLink);
    if (tail == nullptr) {
      tm_write(tx, &head_, node, queue_sites::kLink);
    } else {
      tm_write(tx, &tail->next, node, queue_sites::kLink);
    }
    tm_write(tx, &tail_, node, queue_sites::kLink);
    tm_add(tx, &size_, std::size_t{1}, queue_sites::kSize);
  }

  /// Pops the front element into *out; false when empty.
  bool pop(Tx& tx, T* out) {
    Node* head = tm_read(tx, &head_, queue_sites::kLink);
    if (head == nullptr) return false;
    *out = tm_read(tx, &head->value, queue_sites::kLink);
    Node* next = tm_read(tx, &head->next, queue_sites::kLink);
    tm_write(tx, &head_, next, queue_sites::kLink);
    if (next == nullptr) {
      tm_write(tx, &tail_, static_cast<Node*>(nullptr), queue_sites::kLink);
    }
    tm_add(tx, &size_, static_cast<std::size_t>(-1), queue_sites::kSize);
    tx_free(tx, head);
    return true;
  }

  bool empty(Tx& tx) {
    return tm_read(tx, &head_, queue_sites::kLink) == nullptr;
  }
  std::size_t size(Tx& tx) { return tm_read(tx, &size_, queue_sites::kSize); }

 private:
  struct Node {
    T value;
    Node* next;
  };
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace cstm
