// Transactional FIFO queue (STAMP lib/queue equivalent), linked
// implementation: enqueue allocates a node inside the transaction, so node
// initialization is captured (tfield::init) — the same over-instrumentation
// profile as the list.
#pragma once

#include <cstddef>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"

namespace cstm {

template <typename T>
  requires TmValue<T>
class TxQueue {
 public:
  TxQueue() = default;
  ~TxQueue() {
    Node* n = head_.peek();
    while (n != nullptr) {
      Node* next = n->next.peek();
      Pool::deallocate(n);
      n = next;
    }
  }
  TxQueue(const TxQueue&) = delete;
  TxQueue& operator=(const TxQueue&) = delete;

  void push(Tx& tx, const T& v) {
    Node* node = tx_new<Node>(tx);
    node->value.init(tx, v);
    node->next.init(tx, nullptr);
    Node* tail = tail_.get(tx);
    if (tail == nullptr) {
      head_.set(tx, node);
    } else {
      tail->next.set(tx, node);
    }
    tail_.set(tx, node);
    size_.add(tx, 1);
  }

  /// Pops the front element into *out; false when empty.
  bool pop(Tx& tx, T* out) {
    Node* head = head_.get(tx);
    if (head == nullptr) return false;
    *out = head->value.get(tx);
    Node* next = head->next.get(tx);
    head_.set(tx, next);
    if (next == nullptr) {
      tail_.set(tx, nullptr);
    }
    size_.add(tx, static_cast<std::size_t>(-1));
    tx_delete(tx, head);
    return true;
  }

  bool empty(Tx& tx) { return head_.get(tx) == nullptr; }
  std::size_t size(Tx& tx) { return size_.get(tx); }

 private:
  struct Node {
    tfield<T, queue_sites::kValue> value;
    tfield<Node*, queue_sites::kNext> next;
  };
  tvar<Node*, queue_sites::kLink> head_{nullptr};
  tvar<Node*, queue_sites::kLink> tail_{nullptr};
  tvar<std::size_t, queue_sites::kSize> size_{0};
};

}  // namespace cstm
