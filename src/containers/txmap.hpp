// Transactional ordered map (STAMP lib/rbtree equivalent).
//
// Implemented as a treap: rotations are local and parent-pointer-free,
// which keeps the transactional implementation auditable while preserving
// the balanced-BST access profile the paper's benchmarks exercise
// (traversal reads are shared/manual; node initialization after tx_malloc
// is captured; structural link writes are shared/manual). Priorities come
// from a thread-local PRNG, making balance independent of insertion order
// (vacation inserts sequential ids at setup).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {

namespace map_sites {
inline constexpr Site kNodeInit{"map.node.init", false, true};
inline constexpr Site kLink{"map.link", true, false};
inline constexpr Site kTraverse{"map.traverse", true, false};
inline constexpr Site kSize{"map.size", true, false};
}  // namespace map_sites

template <typename K, typename V, typename Compare = std::less<K>>
  requires TmValue<K> && TmValue<V>
class TxMap {
 public:
  TxMap() = default;
  ~TxMap() { destroy(root_); }
  TxMap(const TxMap&) = delete;
  TxMap& operator=(const TxMap&) = delete;

  /// Inserts (k, v); returns false (no change) if the key exists.
  bool insert(Tx& tx, const K& k, const V& v) {
    bool inserted = false;
    Node* old_root = tm_read(tx, &root_, map_sites::kTraverse);
    Node* new_root = insert_rec(tx, old_root, k, v, &inserted);
    if (new_root != old_root) tm_write(tx, &root_, new_root, map_sites::kLink);
    if (inserted) tm_add(tx, &size_, std::size_t{1}, map_sites::kSize);
    return inserted;
  }

  /// Inserts or overwrites.
  void put(Tx& tx, const K& k, const V& v) {
    if (Node* n = find_node(tx, k)) {
      tm_write(tx, &n->value, v, map_sites::kLink);
      return;
    }
    insert(tx, k, v);
  }

  bool erase(Tx& tx, const K& k) {
    bool erased = false;
    Node* old_root = tm_read(tx, &root_, map_sites::kTraverse);
    Node* new_root = erase_rec(tx, old_root, k, &erased);
    if (new_root != old_root) tm_write(tx, &root_, new_root, map_sites::kLink);
    if (erased) tm_add(tx, &size_, static_cast<std::size_t>(-1), map_sites::kSize);
    return erased;
  }

  bool find(Tx& tx, const K& k, V* out = nullptr) {
    if (Node* n = find_node(tx, k)) {
      if (out != nullptr) *out = tm_read(tx, &n->value, map_sites::kTraverse);
      return true;
    }
    return false;
  }

  bool contains(Tx& tx, const K& k) { return find(tx, k, nullptr); }

  /// Greatest key <= k (floor query, used by reservation pricing sweeps).
  bool find_floor(Tx& tx, const K& k, K* key_out, V* val_out = nullptr) {
    Node* cur = tm_read(tx, &root_, map_sites::kTraverse);
    Node* best = nullptr;
    while (cur != nullptr) {
      const K ck = tm_read(tx, &cur->key, map_sites::kTraverse);
      if (cmp_(k, ck)) {
        cur = tm_read(tx, &cur->left, map_sites::kTraverse);
      } else {
        best = cur;
        cur = tm_read(tx, &cur->right, map_sites::kTraverse);
      }
    }
    if (best == nullptr) return false;
    if (key_out != nullptr) *key_out = tm_read(tx, &best->key, map_sites::kTraverse);
    if (val_out != nullptr) *val_out = tm_read(tx, &best->value, map_sites::kTraverse);
    return true;
  }

  std::size_t size(Tx& tx) { return tm_read(tx, &size_, map_sites::kSize); }
  bool empty(Tx& tx) { return size(tx) == 0; }

  /// Sequential (non-transactional) in-order visit for verification code.
  template <typename F>
  void for_each_sequential(F&& f) const {
    visit(root_, f);
  }

 private:
  struct Node {
    K key;
    V value;
    std::uint64_t prio;
    Node* left;
    Node* right;
  };

  static std::uint64_t draw_priority() {
    thread_local Xoshiro256 rng(0x7a3e9f5ull ^
                                reinterpret_cast<std::uintptr_t>(&rng));
    return rng.next();
  }

  Node* find_node(Tx& tx, const K& k) {
    Node* cur = tm_read(tx, &root_, map_sites::kTraverse);
    while (cur != nullptr) {
      const K ck = tm_read(tx, &cur->key, map_sites::kTraverse);
      if (cmp_(k, ck)) {
        cur = tm_read(tx, &cur->left, map_sites::kTraverse);
      } else if (cmp_(ck, k)) {
        cur = tm_read(tx, &cur->right, map_sites::kTraverse);
      } else {
        return cur;
      }
    }
    return nullptr;
  }

  Node* insert_rec(Tx& tx, Node* n, const K& k, const V& v, bool* inserted) {
    if (n == nullptr) {
      Node* node = static_cast<Node*>(tx_malloc(tx, sizeof(Node)));
      tm_write(tx, &node->key, k, map_sites::kNodeInit);
      tm_write(tx, &node->value, v, map_sites::kNodeInit);
      tm_write(tx, &node->prio, draw_priority(), map_sites::kNodeInit);
      tm_write(tx, &node->left, static_cast<Node*>(nullptr), map_sites::kNodeInit);
      tm_write(tx, &node->right, static_cast<Node*>(nullptr), map_sites::kNodeInit);
      *inserted = true;
      return node;
    }
    const K nk = tm_read(tx, &n->key, map_sites::kTraverse);
    if (cmp_(k, nk)) {
      Node* old = tm_read(tx, &n->left, map_sites::kTraverse);
      Node* child = insert_rec(tx, old, k, v, inserted);
      if (child != old) tm_write(tx, &n->left, child, map_sites::kLink);
      if (*inserted && prio_of(tx, child) > prio_of(tx, n)) {
        return rotate_right(tx, n, child);
      }
    } else if (cmp_(nk, k)) {
      Node* old = tm_read(tx, &n->right, map_sites::kTraverse);
      Node* child = insert_rec(tx, old, k, v, inserted);
      if (child != old) tm_write(tx, &n->right, child, map_sites::kLink);
      if (*inserted && prio_of(tx, child) > prio_of(tx, n)) {
        return rotate_left(tx, n, child);
      }
    }
    return n;  // equal key: no change
  }

  Node* erase_rec(Tx& tx, Node* n, const K& k, bool* erased) {
    if (n == nullptr) return nullptr;
    const K nk = tm_read(tx, &n->key, map_sites::kTraverse);
    if (cmp_(k, nk)) {
      Node* old = tm_read(tx, &n->left, map_sites::kTraverse);
      Node* child = erase_rec(tx, old, k, erased);
      if (child != old) tm_write(tx, &n->left, child, map_sites::kLink);
      return n;
    }
    if (cmp_(nk, k)) {
      Node* old = tm_read(tx, &n->right, map_sites::kTraverse);
      Node* child = erase_rec(tx, old, k, erased);
      if (child != old) tm_write(tx, &n->right, child, map_sites::kLink);
      return n;
    }
    *erased = true;
    return unlink(tx, n);
  }

  /// Rotates @p n to a leaf by priority, detaches and frees it; returns the
  /// subtree that replaces it.
  Node* unlink(Tx& tx, Node* n) {
    Node* l = tm_read(tx, &n->left, map_sites::kTraverse);
    Node* r = tm_read(tx, &n->right, map_sites::kTraverse);
    if (l == nullptr && r == nullptr) {
      tx_free(tx, n);
      return nullptr;
    }
    if (l == nullptr) {
      tx_free(tx, n);
      return r;
    }
    if (r == nullptr) {
      tx_free(tx, n);
      return l;
    }
    if (prio_of(tx, l) > prio_of(tx, r)) {
      // Rotate right: l up, n descends into l's right subtree.
      Node* lr = tm_read(tx, &l->right, map_sites::kTraverse);
      tm_write(tx, &n->left, lr, map_sites::kLink);
      Node* repl = unlink(tx, n);
      tm_write(tx, &l->right, repl, map_sites::kLink);
      return l;
    }
    Node* rl = tm_read(tx, &r->left, map_sites::kTraverse);
    tm_write(tx, &n->right, rl, map_sites::kLink);
    Node* repl = unlink(tx, n);
    tm_write(tx, &r->left, repl, map_sites::kLink);
    return r;
  }

  std::uint64_t prio_of(Tx& tx, Node* n) {
    return tm_read(tx, &n->prio, map_sites::kTraverse);
  }

  /// child == n->left, child's priority beats n's: child becomes the root.
  Node* rotate_right(Tx& tx, Node* n, Node* child) {
    Node* cr = tm_read(tx, &child->right, map_sites::kTraverse);
    tm_write(tx, &n->left, cr, map_sites::kLink);
    tm_write(tx, &child->right, n, map_sites::kLink);
    return child;
  }

  Node* rotate_left(Tx& tx, Node* n, Node* child) {
    Node* cl = tm_read(tx, &child->left, map_sites::kTraverse);
    tm_write(tx, &n->right, cl, map_sites::kLink);
    tm_write(tx, &child->left, n, map_sites::kLink);
    return child;
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    Pool::deallocate(n);
  }

  template <typename F>
  static void visit(const Node* n, F&& f) {
    if (n == nullptr) return;
    visit(n->left, f);
    f(n->key, n->value);
    visit(n->right, f);
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace cstm
