// Transactional ordered map (STAMP lib/rbtree equivalent).
//
// Implemented as a treap: rotations are local and parent-pointer-free,
// which keeps the transactional implementation auditable while preserving
// the balanced-BST access profile the paper's benchmarks exercise
// (traversal reads are shared/manual; node initialization after tx_new is
// captured; structural link writes are shared/manual). Priorities come
// from a thread-local PRNG, making balance independent of insertion order
// (vacation inserts sequential ids at setup). All barrier + Site decisions
// live in the tfield/tvar types of Node and the map header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"
#include "support/random.hpp"

namespace cstm {

template <typename K, typename V, typename Compare = std::less<K>>
  requires TmValue<K> && TmValue<V>
class TxMap {
 public:
  TxMap() = default;
  ~TxMap() { destroy(root_.peek()); }
  TxMap(const TxMap&) = delete;
  TxMap& operator=(const TxMap&) = delete;

  /// Inserts (k, v); returns false (no change) if the key exists.
  bool insert(Tx& tx, const K& k, const V& v) {
    bool inserted = false;
    Node* old_root = root_.get(tx);
    Node* new_root = insert_rec(tx, old_root, k, v, &inserted);
    if (new_root != old_root) root_.set(tx, new_root);
    if (inserted) size_.add(tx, 1);
    return inserted;
  }

  /// Inserts or overwrites.
  void put(Tx& tx, const K& k, const V& v) {
    if (Node* n = find_node(tx, k)) {
      n->value.set(tx, v);
      return;
    }
    insert(tx, k, v);
  }

  bool erase(Tx& tx, const K& k) {
    bool erased = false;
    Node* old_root = root_.get(tx);
    Node* new_root = erase_rec(tx, old_root, k, &erased);
    if (new_root != old_root) root_.set(tx, new_root);
    if (erased) size_.add(tx, static_cast<std::size_t>(-1));
    return erased;
  }

  bool find(Tx& tx, const K& k, V* out = nullptr) {
    if (Node* n = find_node(tx, k)) {
      if (out != nullptr) *out = n->value.get(tx);
      return true;
    }
    return false;
  }

  bool contains(Tx& tx, const K& k) { return find(tx, k, nullptr); }

  /// Greatest key <= k (floor query, used by reservation pricing sweeps).
  bool find_floor(Tx& tx, const K& k, K* key_out, V* val_out = nullptr) {
    Node* cur = root_.get(tx);
    Node* best = nullptr;
    while (cur != nullptr) {
      const K ck = cur->key.get(tx);
      if (cmp_(k, ck)) {
        cur = cur->left.get(tx);
      } else {
        best = cur;
        cur = cur->right.get(tx);
      }
    }
    if (best == nullptr) return false;
    if (key_out != nullptr) *key_out = best->key.get(tx);
    if (val_out != nullptr) *val_out = best->value.get(tx);
    return true;
  }

  std::size_t size(Tx& tx) { return size_.get(tx); }
  bool empty(Tx& tx) { return size(tx) == 0; }

  /// Sequential (non-transactional) in-order visit for verification code.
  template <typename F>
  void for_each_sequential(F&& f) const {
    visit(root_.peek(), f);
  }

 private:
  struct Node {
    tfield<K, map_sites::kKey> key;
    tfield<V, map_sites::kValue> value;
    tfield<std::uint64_t, map_sites::kPrio> prio;
    tfield<Node*, map_sites::kChild> left;
    tfield<Node*, map_sites::kChild> right;
  };

  static std::uint64_t draw_priority() {
    thread_local Xoshiro256 rng(0x7a3e9f5ull ^
                                reinterpret_cast<std::uintptr_t>(&rng));
    return rng.next();
  }

  Node* find_node(Tx& tx, const K& k) {
    Node* cur = root_.get(tx);
    while (cur != nullptr) {
      const K ck = cur->key.get(tx);
      if (cmp_(k, ck)) {
        cur = cur->left.get(tx);
      } else if (cmp_(ck, k)) {
        cur = cur->right.get(tx);
      } else {
        return cur;
      }
    }
    return nullptr;
  }

  Node* insert_rec(Tx& tx, Node* n, const K& k, const V& v, bool* inserted) {
    if (n == nullptr) {
      Node* node = tx_new<Node>(tx);
      node->key.init(tx, k);
      node->value.init(tx, v);
      node->prio.init(tx, draw_priority());
      node->left.init(tx, nullptr);
      node->right.init(tx, nullptr);
      *inserted = true;
      return node;
    }
    const K nk = n->key.get(tx);
    if (cmp_(k, nk)) {
      Node* old = n->left.get(tx);
      Node* child = insert_rec(tx, old, k, v, inserted);
      if (child != old) n->left.set(tx, child);
      if (*inserted && prio_of(tx, child) > prio_of(tx, n)) {
        return rotate_right(tx, n, child);
      }
    } else if (cmp_(nk, k)) {
      Node* old = n->right.get(tx);
      Node* child = insert_rec(tx, old, k, v, inserted);
      if (child != old) n->right.set(tx, child);
      if (*inserted && prio_of(tx, child) > prio_of(tx, n)) {
        return rotate_left(tx, n, child);
      }
    }
    return n;  // equal key: no change
  }

  Node* erase_rec(Tx& tx, Node* n, const K& k, bool* erased) {
    if (n == nullptr) return nullptr;
    const K nk = n->key.get(tx);
    if (cmp_(k, nk)) {
      Node* old = n->left.get(tx);
      Node* child = erase_rec(tx, old, k, erased);
      if (child != old) n->left.set(tx, child);
      return n;
    }
    if (cmp_(nk, k)) {
      Node* old = n->right.get(tx);
      Node* child = erase_rec(tx, old, k, erased);
      if (child != old) n->right.set(tx, child);
      return n;
    }
    *erased = true;
    return unlink(tx, n);
  }

  /// Rotates @p n to a leaf by priority, detaches and frees it; returns the
  /// subtree that replaces it.
  Node* unlink(Tx& tx, Node* n) {
    Node* l = n->left.get(tx);
    Node* r = n->right.get(tx);
    if (l == nullptr && r == nullptr) {
      tx_delete(tx, n);
      return nullptr;
    }
    if (l == nullptr) {
      tx_delete(tx, n);
      return r;
    }
    if (r == nullptr) {
      tx_delete(tx, n);
      return l;
    }
    if (prio_of(tx, l) > prio_of(tx, r)) {
      // Rotate right: l up, n descends into l's right subtree.
      n->left.set(tx, l->right.get(tx));
      Node* repl = unlink(tx, n);
      l->right.set(tx, repl);
      return l;
    }
    n->right.set(tx, r->left.get(tx));
    Node* repl = unlink(tx, n);
    r->left.set(tx, repl);
    return r;
  }

  std::uint64_t prio_of(Tx& tx, Node* n) { return n->prio.get(tx); }

  /// child == n->left, child's priority beats n's: child becomes the root.
  Node* rotate_right(Tx& tx, Node* n, Node* child) {
    n->left.set(tx, child->right.get(tx));
    child->right.set(tx, n);
    return child;
  }

  Node* rotate_left(Tx& tx, Node* n, Node* child) {
    n->right.set(tx, child->left.get(tx));
    child->left.set(tx, n);
    return child;
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.peek());
    destroy(n->right.peek());
    Pool::deallocate(n);
  }

  template <typename F>
  static void visit(const Node* n, F&& f) {
    if (n == nullptr) return;
    visit(n->left.peek(), f);
    f(n->key.peek(), n->value.peek());
    visit(n->right.peek(), f);
  }

  tvar<Node*, map_sites::kRoot> root_{nullptr};
  tvar<std::size_t, map_sites::kSize> size_{0};
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace cstm
