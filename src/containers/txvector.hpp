// Transactional growable array (STAMP lib/vector equivalent).
//
// push_back growth allocates the new backing store inside the transaction
// and copies into it — the copy targets captured memory, which is exactly
// the query-vector pattern of the paper's Figure 1(b).
#pragma once

#include <cstddef>

#include "stm/stm.hpp"

namespace cstm {

namespace vector_sites {
inline constexpr Site kGrowCopy{"vector.grow.copy", false, true};
inline constexpr Site kData{"vector.data", true, false};
inline constexpr Site kMeta{"vector.meta", true, false};
}  // namespace vector_sites

template <typename T>
  requires TmValue<T>
class TxVector {
 public:
  explicit TxVector(std::size_t initial_capacity = 8) {
    capacity_ = initial_capacity < 2 ? 2 : initial_capacity;
    data_ = static_cast<T*>(
        Pool::local().allocate(capacity_ * sizeof(T)));
  }
  ~TxVector() { Pool::deallocate(data_); }
  TxVector(const TxVector&) = delete;
  TxVector& operator=(const TxVector&) = delete;

  void push_back(Tx& tx, const T& v) {
    const std::size_t n = tm_read(tx, &size_, vector_sites::kMeta);
    std::size_t cap = tm_read(tx, &capacity_, vector_sites::kMeta);
    T* data = tm_read(tx, &data_, vector_sites::kMeta);
    if (n == cap) {
      cap *= 2;
      T* bigger = static_cast<T*>(tx_malloc(tx, cap * sizeof(T)));
      for (std::size_t i = 0; i < n; ++i) {
        // Copy into freshly captured memory (Figure 1(b) profile).
        tm_write(tx, &bigger[i], tm_read(tx, &data[i], vector_sites::kData),
                 vector_sites::kGrowCopy);
      }
      tx_free(tx, data);
      tm_write(tx, &data_, bigger, vector_sites::kMeta);
      tm_write(tx, &capacity_, cap, vector_sites::kMeta);
      data = bigger;
    }
    tm_write(tx, &data[n], v, vector_sites::kData);
    tm_write(tx, &size_, n + 1, vector_sites::kMeta);
  }

  T at(Tx& tx, std::size_t i) {
    T* data = tm_read(tx, &data_, vector_sites::kMeta);
    return tm_read(tx, &data[i], vector_sites::kData);
  }

  void set(Tx& tx, std::size_t i, const T& v) {
    T* data = tm_read(tx, &data_, vector_sites::kMeta);
    tm_write(tx, &data[i], v, vector_sites::kData);
  }

  std::size_t size(Tx& tx) { return tm_read(tx, &size_, vector_sites::kMeta); }
  bool empty(Tx& tx) { return size(tx) == 0; }
  void clear(Tx& tx) { tm_write(tx, &size_, std::size_t{0}, vector_sites::kMeta); }

  /// Removes and returns the last element (precondition: non-empty).
  T pop_back(Tx& tx) {
    const std::size_t n = tm_read(tx, &size_, vector_sites::kMeta);
    T* data = tm_read(tx, &data_, vector_sites::kMeta);
    const T v = tm_read(tx, &data[n - 1], vector_sites::kData);
    tm_write(tx, &size_, n - 1, vector_sites::kMeta);
    return v;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace cstm
