// Transactional growable array (STAMP lib/vector equivalent).
//
// push_back growth allocates the new backing store inside the transaction
// and copies into it — the copy targets captured memory, which is exactly
// the query-vector pattern of the paper's Figure 1(b). Element accesses go
// through a tspan view; the captured grow-copy uses tspan::init.
#pragma once

#include <cstddef>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"

namespace cstm {

template <typename T>
  requires TmValue<T>
class TxVector {
 public:
  explicit TxVector(std::size_t initial_capacity = 8) {
    const std::size_t cap = initial_capacity < 2 ? 2 : initial_capacity;
    capacity_.poke(cap);
    data_.poke(static_cast<T*>(Pool::local().allocate(cap * sizeof(T))));
  }
  ~TxVector() { Pool::deallocate(data_.peek()); }
  TxVector(const TxVector&) = delete;
  TxVector& operator=(const TxVector&) = delete;

  void push_back(Tx& tx, const T& v) {
    const std::size_t n = size_.get(tx);
    std::size_t cap = capacity_.get(tx);
    Elements data(data_.get(tx), cap);
    if (n == cap) {
      cap *= 2;
      T* bigger = static_cast<T*>(tx_malloc(tx, cap * sizeof(T)));
      Elements grown(bigger, cap);
      for (std::size_t i = 0; i < n; ++i) {
        // Copy into freshly captured memory (Figure 1(b) profile).
        grown.init(tx, i, data.get(tx, i));
      }
      tx_free(tx, data.data());
      data_.set(tx, bigger);
      capacity_.set(tx, cap);
      data = grown;
    }
    data.set(tx, n, v);
    size_.set(tx, n + 1);
  }

  T at(Tx& tx, std::size_t i) {
    return Elements(data_.get(tx), i + 1).get(tx, i);
  }

  void set(Tx& tx, std::size_t i, const T& v) {
    Elements(data_.get(tx), i + 1).set(tx, i, v);
  }

  std::size_t size(Tx& tx) { return size_.get(tx); }
  bool empty(Tx& tx) { return size(tx) == 0; }
  void clear(Tx& tx) { size_.set(tx, 0); }

  /// Removes and returns the last element (precondition: non-empty).
  T pop_back(Tx& tx) {
    const std::size_t n = size_.get(tx);
    const T v = Elements(data_.get(tx), n).get(tx, n - 1);
    size_.set(tx, n - 1);
    return v;
  }

 private:
  using Elements = tspan<T, vector_sites::kData>;

  tvar<T*, vector_sites::kMeta> data_{nullptr};
  tvar<std::size_t, vector_sites::kMeta> size_{0};
  tvar<std::size_t, vector_sites::kMeta> capacity_{0};
};

}  // namespace cstm
