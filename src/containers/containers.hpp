// Umbrella header for the transactional containers.
#pragma once

#include "containers/txbitmap.hpp"
#include "containers/txhashtable.hpp"
#include "containers/txheap.hpp"
#include "containers/txlist.hpp"
#include "containers/txmap.hpp"
#include "containers/txqueue.hpp"
#include "containers/txvector.hpp"
