// Transactional bitmap (STAMP lib/bitmap equivalent; ssca2 and intruder use
// it to claim work items exactly once). Word accesses go through a tspan
// view with the Site bound at the type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"

namespace cstm {

class TxBitmap {
 public:
  explicit TxBitmap(std::size_t bits)
      : bits_(bits), words_(new std::uint64_t[(bits + 63) / 64]()) {}

  TxBitmap(const TxBitmap&) = delete;
  TxBitmap& operator=(const TxBitmap&) = delete;

  /// Sets bit @p i; returns false if it was already set (claim semantics).
  bool set(Tx& tx, std::size_t i) {
    Words words = word_view();
    const std::uint64_t mask = 1ull << (i % 64);
    const std::uint64_t old = words.get(tx, i / 64);
    if ((old & mask) != 0) return false;
    words.set(tx, i / 64, old | mask);
    return true;
  }

  bool test(Tx& tx, std::size_t i) {
    return (word_view().get(tx, i / 64) & (1ull << (i % 64))) != 0;
  }

  void clear(Tx& tx, std::size_t i) {
    Words words = word_view();
    const std::uint64_t old = words.get(tx, i / 64);
    words.set(tx, i / 64, old & ~(1ull << (i % 64)));
  }

  std::size_t size() const { return bits_; }

  /// Sequential popcount for verification.
  std::size_t count_sequential() const {
    std::size_t total = 0;
    for (std::size_t w = 0; w < (bits_ + 63) / 64; ++w) {
      total += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
    }
    return total;
  }

 private:
  using Words = tspan<std::uint64_t, bitmap_sites::kWord>;

  Words word_view() { return Words(words_.get(), (bits_ + 63) / 64); }

  std::size_t bits_;
  std::unique_ptr<std::uint64_t[]> words_;
};

}  // namespace cstm
