// Transactional binary max-heap (STAMP lib/heap equivalent; yada's work
// queue of bad elements). Array-backed; growth allocates the new backing
// store inside the transaction (captured copy via tspan::init).
#pragma once

#include <cstddef>
#include <functional>

#include "generated/site_verdicts.hpp"
#include "stm/stm.hpp"

namespace cstm {

template <typename T, typename Less = std::less<T>>
  requires TmValue<T>
class TxHeap {
 public:
  explicit TxHeap(std::size_t initial_capacity = 16) {
    const std::size_t cap = initial_capacity < 2 ? 2 : initial_capacity;
    capacity_.poke(cap);
    data_.poke(static_cast<T*>(Pool::local().allocate(cap * sizeof(T))));
  }
  ~TxHeap() { Pool::deallocate(data_.peek()); }
  TxHeap(const TxHeap&) = delete;
  TxHeap& operator=(const TxHeap&) = delete;

  void push(Tx& tx, const T& v) {
    std::size_t n = size_.get(tx);
    std::size_t cap = capacity_.get(tx);
    Elements data(data_.get(tx), cap);
    if (n == cap) {
      cap *= 2;
      T* bigger = static_cast<T*>(tx_malloc(tx, cap * sizeof(T)));
      Elements grown(bigger, cap);
      for (std::size_t i = 0; i < n; ++i) {
        grown.init(tx, i, data.get(tx, i));
      }
      tx_free(tx, data.data());
      data_.set(tx, bigger);
      capacity_.set(tx, cap);
      data = grown;
    }
    // Sift up.
    std::size_t i = n;
    data.set(tx, i, v);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      const T pv = data.get(tx, parent);
      const T cv = data.get(tx, i);
      if (!less_(pv, cv)) break;
      data.set(tx, parent, cv);
      data.set(tx, i, pv);
      i = parent;
    }
    size_.set(tx, n + 1);
  }

  /// Pops the maximum into *out; false when empty.
  bool pop(Tx& tx, T* out) {
    const std::size_t n = size_.get(tx);
    if (n == 0) return false;
    Elements data(data_.get(tx), n);
    *out = data.get(tx, 0);
    const T last = data.get(tx, n - 1);
    size_.set(tx, n - 1);
    const std::size_t m = n - 1;
    if (m == 0) return true;
    data.set(tx, 0, last);
    // Sift down.
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t largest = i;
      T lv = data.get(tx, i);
      T best = lv;
      if (l < m) {
        const T v = data.get(tx, l);
        if (less_(best, v)) {
          largest = l;
          best = v;
        }
      }
      if (r < m) {
        const T v = data.get(tx, r);
        if (less_(best, v)) {
          largest = r;
          best = v;
        }
      }
      if (largest == i) break;
      data.set(tx, i, best);
      data.set(tx, largest, lv);
      i = largest;
    }
    return true;
  }

  std::size_t size(Tx& tx) { return size_.get(tx); }
  bool empty(Tx& tx) { return size(tx) == 0; }

 private:
  using Elements = tspan<T, heap_sites::kData>;

  tvar<T*, heap_sites::kMeta> data_{nullptr};
  tvar<std::size_t, heap_sites::kMeta> size_{0};
  tvar<std::size_t, heap_sites::kMeta> capacity_{0};
  [[no_unique_address]] Less less_{};
};

}  // namespace cstm
