// Transactional binary max-heap (STAMP lib/heap equivalent; yada's work
// queue of bad elements). Array-backed; growth allocates the new backing
// store inside the transaction (captured copy).
#pragma once

#include <cstddef>
#include <functional>

#include "stm/stm.hpp"

namespace cstm {

namespace heap_sites {
inline constexpr Site kGrowCopy{"heap.grow.copy", false, true};
inline constexpr Site kData{"heap.data", true, false};
inline constexpr Site kMeta{"heap.meta", true, false};
}  // namespace heap_sites

template <typename T, typename Less = std::less<T>>
  requires TmValue<T>
class TxHeap {
 public:
  explicit TxHeap(std::size_t initial_capacity = 16) {
    capacity_ = initial_capacity < 2 ? 2 : initial_capacity;
    data_ = static_cast<T*>(Pool::local().allocate(capacity_ * sizeof(T)));
  }
  ~TxHeap() { Pool::deallocate(data_); }
  TxHeap(const TxHeap&) = delete;
  TxHeap& operator=(const TxHeap&) = delete;

  void push(Tx& tx, const T& v) {
    std::size_t n = tm_read(tx, &size_, heap_sites::kMeta);
    std::size_t cap = tm_read(tx, &capacity_, heap_sites::kMeta);
    T* data = tm_read(tx, &data_, heap_sites::kMeta);
    if (n == cap) {
      cap *= 2;
      T* bigger = static_cast<T*>(tx_malloc(tx, cap * sizeof(T)));
      for (std::size_t i = 0; i < n; ++i) {
        tm_write(tx, &bigger[i], tm_read(tx, &data[i], heap_sites::kData),
                 heap_sites::kGrowCopy);
      }
      tx_free(tx, data);
      tm_write(tx, &data_, bigger, heap_sites::kMeta);
      tm_write(tx, &capacity_, cap, heap_sites::kMeta);
      data = bigger;
    }
    // Sift up.
    std::size_t i = n;
    tm_write(tx, &data[i], v, heap_sites::kData);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      const T pv = tm_read(tx, &data[parent], heap_sites::kData);
      const T cv = tm_read(tx, &data[i], heap_sites::kData);
      if (!less_(pv, cv)) break;
      tm_write(tx, &data[parent], cv, heap_sites::kData);
      tm_write(tx, &data[i], pv, heap_sites::kData);
      i = parent;
    }
    tm_write(tx, &size_, n + 1, heap_sites::kMeta);
  }

  /// Pops the maximum into *out; false when empty.
  bool pop(Tx& tx, T* out) {
    const std::size_t n = tm_read(tx, &size_, heap_sites::kMeta);
    if (n == 0) return false;
    T* data = tm_read(tx, &data_, heap_sites::kMeta);
    *out = tm_read(tx, &data[0], heap_sites::kData);
    const T last = tm_read(tx, &data[n - 1], heap_sites::kData);
    tm_write(tx, &size_, n - 1, heap_sites::kMeta);
    const std::size_t m = n - 1;
    if (m == 0) return true;
    tm_write(tx, &data[0], last, heap_sites::kData);
    // Sift down.
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t largest = i;
      T lv = tm_read(tx, &data[i], heap_sites::kData);
      T best = lv;
      if (l < m) {
        const T v = tm_read(tx, &data[l], heap_sites::kData);
        if (less_(best, v)) {
          largest = l;
          best = v;
        }
      }
      if (r < m) {
        const T v = tm_read(tx, &data[r], heap_sites::kData);
        if (less_(best, v)) {
          largest = r;
          best = v;
        }
      }
      if (largest == i) break;
      tm_write(tx, &data[i], best, heap_sites::kData);
      tm_write(tx, &data[largest], lv, heap_sites::kData);
      i = largest;
    }
    return true;
  }

  std::size_t size(Tx& tx) { return tm_read(tx, &size_, heap_sites::kMeta); }
  bool empty(Tx& tx) { return size(tx) == 0; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  [[no_unique_address]] Less less_{};
};

}  // namespace cstm
