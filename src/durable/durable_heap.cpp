// Durable heap implementation: mmap plumbing, recovery, and the redo-log
// commit protocol (see durable_heap.hpp for the model).
#include "durable/durable_heap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "durable/pwb.hpp"
#include "stm/barriers.hpp"
#include "stm/descriptor.hpp"

namespace cstm::dur {

namespace {

// Redo record, serialized at log offset 0:
//   [0]  u64 seq         monotonically increasing commit number
//   [8]  u32 count       redo entries that follow
//   [12] u32 reserved
//   [16] count * {u64 where, u64 value, u32 len, u32 kind}   (24 B each)
//   [..] u64 checksum    FNV-1a over bytes [0, 16 + 24*count)
// kind 0: `where` is a volatile address — flush-accounted, never replayed.
// kind 1: `where` is an offset into the data area — replayed at recovery.
constexpr std::size_t kRecHeader = 16;
constexpr std::size_t kRecEntry = 24;
constexpr std::uint32_t kKindVolatile = 0;
constexpr std::uint32_t kKindRegion = 1;

std::uint64_t fnv1a(const unsigned char* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void wr64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
void wr32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
std::uint64_t rd64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
std::uint32_t rd32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Durable-commit globals. One mutex serializes every durable commit in
/// the process (the log is a single slot); the fallback log backs durable
/// transactions running without an active heap — identical serialization
/// and accounting, volatile storage, no recovery.
struct Runtime {
  std::mutex commit_mutex;
  std::atomic<DurableHeap*> active{nullptr};
  std::vector<unsigned char> fallback_log;
  std::uint64_t fallback_seq = 0;
};

Runtime& runtime() {
  static Runtime rt;
  return rt;
}

[[noreturn]] void fatal(const char* what) {
  std::fprintf(stderr, "cstm durable: %s\n", what);
  std::abort();
}

}  // namespace

const char* crash_point_name(CrashPoint p) {
  switch (p) {
    case CrashPoint::kBeforeCommit: return "before-commit";
    case CrashPoint::kAfterCapturedWriteback: return "after-captured-writeback";
    case CrashPoint::kAfterEntriesWrite: return "after-entries-write";
    case CrashPoint::kAfterEntriesFlush: return "after-entries-flush";
    case CrashPoint::kAfterEntriesFence: return "after-entries-fence";
    case CrashPoint::kAfterCommitRecordWrite: return "after-record-write";
    case CrashPoint::kAfterCommitRecordFlush: return "after-record-flush";
    case CrashPoint::kAfterCommitRecordFence: return "after-record-fence";
    case CrashPoint::kDuringDataWriteback: return "during-data-writeback";
    case CrashPoint::kAfterDataWriteback: return "after-data-writeback";
    case CrashPoint::kAfterWatermark: return "after-watermark";
    case CrashPoint::kCount: break;
  }
  return "?";
}

void set_crash_hook(CrashHook hook) {
  detail::g_crash_hook.store(hook, std::memory_order_relaxed);
}

DurableHeap::~DurableHeap() { close(); }

bool DurableHeap::open(const std::string& path, const HeapOptions& opt,
                       OpenResult* result) {
  if (is_open()) return false;
  OpenResult res;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return false;
  struct stat st {};
  if (fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  std::size_t data_bytes = opt.data_bytes;
  std::size_t log_bytes = opt.log_bytes;
  const bool created = st.st_size == 0;
  if (created) {
    if (ftruncate(fd_, static_cast<off_t>(kHeaderBytes + log_bytes +
                                          data_bytes)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
  }
  // Map the header first to learn an existing file's geometry.
  if (!created) {
    Header hdr{};
    if (pread(fd_, &hdr, sizeof(hdr), 0) != sizeof(hdr) ||
        hdr.magic != kMagic || hdr.version != kVersion) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    data_bytes = hdr.data_bytes;
    log_bytes = hdr.log_bytes;
  }
  const std::size_t total = kHeaderBytes + log_bytes + data_bytes;
  void* map = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  backing_ = static_cast<unsigned char*>(map);
  backing_log_ = backing_ + kHeaderBytes;
  backing_data_ = backing_log_ + log_bytes;
  data_bytes_ = data_bytes;
  log_bytes_ = log_bytes;
  if (created) {
    Header* h = header();
    h->magic = kMagic;
    h->version = kVersion;
    h->reserved = 0;
    h->data_bytes = data_bytes;
    h->log_bytes = log_bytes;
    h->applied_seq = 0;
    // Fresh data area: the bump cursor starts past the root line. The
    // file was just truncated up from zero, so everything else is 0.
    wr64(backing_data_, kUserBase);
    res.created = true;
  } else {
    // Recovery: replay a complete record the crashed process durably
    // committed but did not finish writing back. An incomplete record
    // (checksum mismatch — the commit point was never reached) or a stale
    // one (seq at or below the watermark) is discarded: the medium already
    // holds the exact pre-transaction state.
    const std::uint64_t seq = rd64(backing_log_);
    const std::uint64_t count = rd32(backing_log_ + 8);
    const std::size_t bytes = kRecHeader + kRecEntry * count + 8;
    if (bytes <= log_bytes_ && seq > header()->applied_seq) {
      const std::uint64_t want = rd64(backing_log_ + bytes - 8);
      if (fnv1a(backing_log_, bytes - 8) == want) {
        for (std::uint64_t i = 0; i < count; ++i) {
          const unsigned char* e = backing_log_ + kRecHeader + kRecEntry * i;
          if (rd32(e + 20) != kKindRegion) continue;
          const std::uint64_t off = rd64(e);
          const std::uint32_t len = rd32(e + 16);
          if (off + len > data_bytes_) fatal("redo entry out of range");
          std::memcpy(backing_data_ + off, e + 8, len);
          ++res.replayed_entries;
        }
        header()->applied_seq = seq;
        res.replayed_commit = true;
      }
    }
  }
  next_seq_ = header()->applied_seq + 1;
#if defined(CSTM_DURABLE_REAL_PM)
  working_log_ = backing_log_;
  working_data_ = backing_data_;
#else
  working_log_ = static_cast<unsigned char*>(std::calloc(1, log_bytes_));
  working_data_ = static_cast<unsigned char*>(std::malloc(data_bytes_));
  if (working_log_ == nullptr || working_data_ == nullptr) {
    fatal("working-copy allocation failed");
  }
  std::memcpy(working_data_, backing_data_, data_bytes_);
#endif
  if (result != nullptr) *result = res;
  return true;
}

void DurableHeap::close() {
  if (!is_open()) return;
  if (active() == this) deactivate();
  msync(backing_, kHeaderBytes + log_bytes_ + data_bytes_, MS_SYNC);
  munmap(backing_, kHeaderBytes + log_bytes_ + data_bytes_);
#if !defined(CSTM_DURABLE_REAL_PM)
  std::free(working_log_);
  std::free(working_data_);
#endif
  backing_ = backing_log_ = backing_data_ = nullptr;
  working_log_ = working_data_ = nullptr;
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t* DurableHeap::root_slot(std::size_t i) {
  if (i >= kRootSlots) fatal("root slot out of range");
  return reinterpret_cast<std::uint64_t*>(working_data_) + 1 + i;
}

bool DurableHeap::contains(const void* p, std::size_t n) const {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const auto lo = reinterpret_cast<std::uintptr_t>(working_data_);
  return a >= lo && a + n <= lo + data_bytes_;
}

std::uint64_t DurableHeap::offset_of(const void* p) const {
  return static_cast<std::uint64_t>(static_cast<const unsigned char*>(p) -
                                    working_data_);
}

void* DurableHeap::alloc(Tx& tx, std::size_t n) {
  if (!tx.in_tx()) fatal("DurableHeap::alloc outside a transaction");
  n = (n + kPwbLine - 1) & ~(kPwbLine - 1);
  auto* cur = reinterpret_cast<std::uint64_t*>(working_data_);
  // The cursor is ordinary transactional data: its redo entry makes the
  // bump durable exactly when the allocating transaction commits, and the
  // undo log rolls it back on any abort. Contending allocators serialize
  // on its orec like any other conflicting writers.
  const std::uint64_t off = tm_read(tx, cur);
  if (off + n > data_bytes_) throw std::bad_alloc{};
  tm_write(tx, cur, off + n);
  unsigned char* p = working_data_ + off;
  // Zero the block before registering it captured: from here to commit the
  // cursor orec is held, so [off, off+n) is exclusively ours.
  std::memset(p, 0, n);
  tx.durable_note_alloc(p, n);
  return p;
}

void DurableHeap::activate() {
  runtime().active.store(this, std::memory_order_release);
}

void DurableHeap::deactivate() {
  runtime().active.store(nullptr, std::memory_order_release);
}

DurableHeap* DurableHeap::active() {
  return runtime().active.load(std::memory_order_acquire);
}

void DurableHeap::writeback_data(const void* working_ptr, std::size_t len,
                                 std::uint64_t* pwbs) {
  const std::size_t off = static_cast<const unsigned char*>(working_ptr) -
                          working_data_;
#if defined(CSTM_DURABLE_REAL_PM)
  const auto base = reinterpret_cast<std::uintptr_t>(backing_data_ + off);
  for (std::uintptr_t a = base / kPwbLine * kPwbLine; a < base + len;
       a += kPwbLine) {
    hw_writeback_line(reinterpret_cast<void*>(a));
  }
#else
  std::memcpy(backing_data_ + off, working_data_ + off, len);
#endif
  *pwbs += lines_spanned(reinterpret_cast<std::uintptr_t>(working_ptr), len);
}

void DurableHeap::writeback_log(std::size_t off, std::size_t len,
                                std::uint64_t* pwbs) {
#if defined(CSTM_DURABLE_REAL_PM)
  const auto base = reinterpret_cast<std::uintptr_t>(backing_log_ + off);
  for (std::uintptr_t a = base / kPwbLine * kPwbLine; a < base + len;
       a += kPwbLine) {
    hw_writeback_line(reinterpret_cast<void*>(a));
  }
#else
  std::memcpy(backing_log_ + off, working_log_ + off, len);
#endif
  *pwbs += lines_spanned(off, len);
}

void commit_tx(Tx& tx) {
  Runtime& rt = runtime();
  DurableHeap* heap = DurableHeap::active();
  std::lock_guard<std::mutex> lk(rt.commit_mutex);
  std::uint64_t pwbs = 0;
  std::uint64_t fences = 0;
  crash_point(CrashPoint::kBeforeCommit);

  // (a) Captured durable-region blocks carry no redo entries — their whole
  // body goes to the medium up front. Safe before the commit point: the
  // blocks are unreachable until the (redo-logged, non-captured) pointer
  // store publishing them is replayed or written back, so a crash here
  // leaves them as garbage in free space.
  for (const DurableAlloc& b : tx.durable_allocs) {
    if (heap != nullptr && heap->contains(b.ptr, b.size)) {
      heap->writeback_data(b.ptr, b.size, &pwbs);
      ++tx.stats.durable_captured_writebacks;
    }
  }
  crash_point(CrashPoint::kAfterCapturedWriteback);

  // (b) Serialize redo entries into the log working copy.
  const std::size_t count = tx.dlog.size();
  const std::size_t bytes = kRecHeader + kRecEntry * count + 8;
  unsigned char* log = nullptr;
  std::uint64_t seq = 0;
  if (heap != nullptr) {
    if (bytes > heap->log_bytes_) {
      fatal("redo record exceeds log capacity — raise HeapOptions::log_bytes");
    }
    log = heap->working_log_;
    seq = heap->next_seq_++;
  } else {
    rt.fallback_log.resize(bytes);
    log = rt.fallback_log.data();
    seq = ++rt.fallback_seq;
  }
  wr64(log, seq);
  wr32(log + 8, static_cast<std::uint32_t>(count));
  wr32(log + 12, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const DurableWrite& w = tx.dlog[i];
    unsigned char* e = log + kRecHeader + kRecEntry * i;
    // w.value was captured at record time: w.addr may be a dead stack slot
    // by now (baseline plans log transaction-local stores too). Entries are
    // replayed in log order, so write-after-write lands on the last value.
    const std::uint64_t value = w.value;
    if (heap != nullptr && heap->contains(w.addr, w.len)) {
      wr64(e, heap->offset_of(w.addr));
      wr32(e + 20, kKindRegion);
    } else {
      wr64(e, reinterpret_cast<std::uintptr_t>(w.addr));
      wr32(e + 20, kKindVolatile);
    }
    wr64(e + 8, value);
    wr32(e + 16, w.len);
  }
  crash_point(CrashPoint::kAfterEntriesWrite);
  if (heap != nullptr) {
    heap->writeback_log(0, bytes - 8, &pwbs);
  } else {
    pwbs += lines_spanned(0, bytes - 8);
  }
  crash_point(CrashPoint::kAfterEntriesFlush);
  pfence();
  ++fences;
  crash_point(CrashPoint::kAfterEntriesFence);

  // (c) Commit record: a checksum over everything flushed so far. Once it
  // is on the medium the transaction is durably decided.
  wr64(log + bytes - 8, fnv1a(log, bytes - 8));
  crash_point(CrashPoint::kAfterCommitRecordWrite);
  if (heap != nullptr) {
    heap->writeback_log(bytes - 8, 8, &pwbs);
  } else {
    pwbs += 1;
  }
  crash_point(CrashPoint::kAfterCommitRecordFlush);
  pfence();
  ++fences;
  crash_point(CrashPoint::kAfterCommitRecordFence);

  // (d) In-place write-back of the redo'd bytes, making the log slot
  // obsolete (recovery would replay the identical values).
  bool announced = false;
  for (std::size_t i = 0; i < count; ++i) {
    const DurableWrite& w = tx.dlog[i];
    if (heap != nullptr && heap->contains(w.addr, w.len)) {
      heap->writeback_data(w.addr, w.len, &pwbs);
    } else {
      pwbs += lines_spanned(reinterpret_cast<std::uintptr_t>(w.addr), w.len);
    }
    if (!announced) {
      crash_point(CrashPoint::kDuringDataWriteback);
      announced = true;
    }
  }
  if (!announced) crash_point(CrashPoint::kDuringDataWriteback);
  pfence();
  ++fences;
  crash_point(CrashPoint::kAfterDataWriteback);

  // (e) Advance the watermark so recovery never re-applies this record.
  // Purely an optimization — replay is idempotent — but it bounds recovery
  // to "at most the one in-flight record".
  if (heap != nullptr) heap->header()->applied_seq = seq;
  pwbs += 1;
  pfence();
  ++fences;
  crash_point(CrashPoint::kAfterWatermark);

  ++tx.stats.durable_commits;
  tx.stats.durable_pwbs += pwbs;
  tx.stats.durable_pfences += fences;
  tx.stats.durable_log_bytes += bytes;
}

}  // namespace cstm::dur
