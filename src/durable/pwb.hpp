// Persistence primitives behind a portable shim (ROADMAP direction 2).
//
// Real persistent-memory code orders stores with a cache-line write-back
// (clwb / clflushopt / clflush) followed by a store fence; this repo must
// also run — and crash-test — on machines with no PM at all. The shim
// therefore has two modes:
//
//  * Simulated PM (default). The durable heap keeps TWO copies of its
//    state: a volatile working copy that transactions read and write (the
//    "CPU cache") and a file-backed mmap (the "persistent medium"). pwb
//    copies bytes working→backing; pfence is a compiler barrier. A process
//    that dies loses exactly the bytes it never wrote back — which is what
//    makes the fork-based crash-injection harness deterministic and
//    meaningful (tests/test_durable_recovery.cpp).
//  * Real PM (-DCSTM_DURABLE_REAL_PM, x86-64 only). The working copy IS
//    the mapping and hw_writeback_line/hw_sfence below issue the actual
//    instructions. Untested in CI (no PM hardware); kept deliberately
//    thin.
//
// The CrashPoint hook is the heart of the recovery harness: commit_tx
// announces every step of the flush/fence sequence through crash_point(),
// and the test installs a hook that _exit()s the forked child at a chosen
// step. Production builds leave the hook null — one relaxed load per
// durable commit step, nothing per access.
#pragma once

#include <atomic>
#include <cstdint>

namespace cstm::dur {

/// Every step of the durable commit sequence, in execution order. The
/// recovery invariant the crash harness enforces: crashing at any point
/// strictly before kAfterCommitRecordFlush recovers the full pre-tx state;
/// crashing at kAfterCommitRecordFlush or later recovers the full post-tx
/// state. Never a torn mix.
enum class CrashPoint : int {
  kBeforeCommit = 0,        // durable work identified, nothing persisted yet
  kAfterCapturedWriteback,  // captured blocks copied to the medium (still
                            // unreachable: no committed pointer to them)
  kAfterEntriesWrite,       // redo entries serialized to the log working copy
  kAfterEntriesFlush,       // ...and written back to the medium
  kAfterEntriesFence,       // ...and fenced
  kAfterCommitRecordWrite,  // checksum written to the log working copy
  kAfterCommitRecordFlush,  // checksum on the medium: COMMIT POINT
  kAfterCommitRecordFence,
  kDuringDataWriteback,     // first redo'd line written back in place
  kAfterDataWriteback,      // all lines written back + fenced
  kAfterWatermark,          // applied_seq advanced: log slot reusable
  kCount
};

const char* crash_point_name(CrashPoint p);

using CrashHook = void (*)(CrashPoint);

/// Installs @p hook (nullptr to disarm). Test-only; not thread-safe against
/// concurrent durable commits by design — the crash harness is
/// single-threaded up to the _exit.
void set_crash_hook(CrashHook hook);

namespace detail {
inline std::atomic<CrashHook> g_crash_hook{nullptr};
}

inline void crash_point(CrashPoint p) {
  CrashHook h = detail::g_crash_hook.load(std::memory_order_relaxed);
  if (h != nullptr) [[unlikely]] h(p);
}

inline constexpr std::size_t kPwbLine = 64;

/// Cache lines spanned by [addr, addr+len) — the unit pwb traffic is
/// counted in, both in simulation and on real hardware.
inline std::uint64_t lines_spanned(std::uintptr_t addr, std::size_t len) {
  if (len == 0) return 0;
  return (addr + len - 1) / kPwbLine - addr / kPwbLine + 1;
}

// -- Real-PM instruction wrappers -------------------------------------------
// Always compiled (so they cannot bit-rot) but only *called* when
// CSTM_DURABLE_REAL_PM maps the working copy directly onto the medium.

#if defined(__x86_64__)
inline void hw_writeback_line(void* p) {
#if defined(__CLWB__)
  __builtin_ia32_clwb(p);
#elif defined(__CLFLUSHOPT__)
  __builtin_ia32_clflushopt(p);
#else
  __builtin_ia32_clflush(p);
#endif
}
inline void hw_sfence() { __builtin_ia32_sfence(); }
#else
inline void hw_writeback_line(void*) {}
inline void hw_sfence() { std::atomic_thread_fence(std::memory_order_seq_cst); }
#endif

/// Store fence. Simulation mode needs only a compiler barrier: the
/// simulated medium is updated synchronously by pwb, so ordering is the
/// program order of the writeback calls. Counted by the caller.
inline void pfence() {
#if defined(CSTM_DURABLE_REAL_PM)
  hw_sfence();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace cstm::dur
