// Durable heap: a file-backed region plus a single-slot redo log giving
// transactions failure atomicity (ROADMAP direction 2, after "Persistent
// Memory Transactions" and architecture-aware PM-STM designs; PAPERS.md).
//
// Model. The file is [header | log area | data area]. In the default
// simulated-PM mode the data and log areas each have a volatile WORKING
// copy that transactions actually access; the mmap is the persistent
// medium and only pwb() moves bytes onto it (src/durable/pwb.hpp). The STM
// remains in-place and undo-based on the working copy — durability is
// a commit-time concern only:
//
//   commit:  write-back captured blocks → serialize redo entries →
//            flush(entries) → fence → flush(commit record) → fence →
//            in-place write-back of redo'd bytes → fence → advance
//            watermark
//   recover: on open, a complete commit record (checksum valid) with
//            seq > applied watermark is replayed into the medium;
//            anything else is discarded. Replay is idempotent.
//
// Because every commit finishes its own data write-back before releasing
// the commit mutex, at most ONE transaction's record is ever live — the
// log is a single slot at offset 0, rewritten by each durable commit.
//
// The capture connection (this repo's contribution): stores the barrier
// plan classifies as captured never reach the redo log — the block either
// dies with the transaction (volatile captured memory) or is written back
// wholesale in step one (blocks from DurableHeap::alloc, which are
// unreachable until a non-captured pointer store carried by the redo log
// commits). TxStats::flushes_elided_percent() reports the win.
//
// Limits, by design: one active heap at a time (activate()); allocation is
// a line-granular bump allocator with no free; blocks from alloc() must
// not be passed to tx_free. The log slot must fit one transaction's write
// set — overflow is a loud abort, sized by HeapOptions::log_bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cstm {
class Tx;
}

namespace cstm::dur {

struct HeapOptions {
  std::size_t data_bytes = std::size_t{1} << 20;
  std::size_t log_bytes = std::size_t{1} << 22;
};

/// What open() found: a fresh file, a clean image, or a completed commit
/// record that recovery replayed.
struct OpenResult {
  bool created = false;
  bool replayed_commit = false;
  std::uint64_t replayed_entries = 0;
};

class DurableHeap {
 public:
  DurableHeap() = default;
  ~DurableHeap();
  DurableHeap(const DurableHeap&) = delete;
  DurableHeap& operator=(const DurableHeap&) = delete;

  /// Maps (creating if absent) the heap file and runs recovery. Returns
  /// false on I/O or format errors. Sizes are taken from the header when
  /// the file already exists.
  bool open(const std::string& path, const HeapOptions& opt = {},
            OpenResult* result = nullptr);
  void close();
  bool is_open() const { return backing_ != nullptr; }

  /// User data area (working copy), after the allocator root line. All
  /// access must go through tm_read/tm_write inside transactions.
  void* data() { return working_data_ + kUserBase; }
  std::size_t user_bytes() const { return data_bytes_ - kUserBase; }

  /// Named root cells (u64, tm-accessed) for applications to anchor their
  /// structures — typically holding offsets returned by offset_of().
  static constexpr std::size_t kRootSlots = 6;
  std::uint64_t* root_slot(std::size_t i);

  /// Transactional line-granular bump allocation from the data area. The
  /// block is zeroed, registered with the transaction's capture log (so
  /// its stores elide both STM barriers and redo logging), and written
  /// back wholesale at commit. Aborts — full or partial — unwind the
  /// cursor and the capture entries. Throws std::bad_alloc when the data
  /// area is exhausted.
  void* alloc(Tx& tx, std::size_t n);

  bool contains(const void* p, std::size_t n) const;
  std::uint64_t offset_of(const void* p) const;
  void* at(std::uint64_t off) { return working_data_ + off; }

  /// Makes this heap the target of durable commits (redo entries whose
  /// address falls inside the data area replay at recovery; everything
  /// else is flush-accounted only). Without an active heap, durable
  /// transactions pay the full serialization and flush accounting against
  /// a process-local volatile log — same code path, no recovery story.
  void activate();
  void deactivate();
  static DurableHeap* active();

 private:
  friend void commit_tx(Tx& tx);

  static constexpr std::uint64_t kMagic = 0x4353544d44555231ull;  // CSTMDUR1
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 4096;
  /// Line 0 of the data area: [0] bump cursor, [1..] root slots.
  static constexpr std::size_t kUserBase = 64;

  struct Header {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t data_bytes;
    std::uint64_t log_bytes;
    std::uint64_t applied_seq;
  };

  Header* header() { return reinterpret_cast<Header*>(backing_); }

  /// Byte-precise working→medium copy for data-area bytes, counting line
  /// traffic. Byte precision (not whole lines) keeps concurrent
  /// transactions' uncommitted working bytes off the medium when they
  /// share a line; alloc()'s line rounding makes blocks line-exclusive
  /// anyway, belt and braces.
  void writeback_data(const void* working_ptr, std::size_t len,
                      std::uint64_t* pwbs);
  void writeback_log(std::size_t off, std::size_t len, std::uint64_t* pwbs);

  unsigned char* backing_ = nullptr;  // whole-file mapping
  unsigned char* backing_log_ = nullptr;
  unsigned char* backing_data_ = nullptr;
  unsigned char* working_log_ = nullptr;
  unsigned char* working_data_ = nullptr;
  std::size_t data_bytes_ = 0;
  std::size_t log_bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  int fd_ = -1;
};

/// The durable leg of Tx::commit_top, called after read-set validation and
/// before orec release (so no other transaction observes state that is not
/// yet durable). Serializes under a global commit mutex.
void commit_tx(Tx& tx);

}  // namespace cstm::dur
