// Search-tree allocation log (paper Section 3.1.2, Figure 5): precise
// membership over disjoint allocated ranges.
//
// The paper describes an envelope tree (internal nodes hold min/max of their
// children). Because allocator blocks are pairwise disjoint, an AVL tree
// keyed by block base with a floor search is equivalent and precise: the
// candidate block containing an address is exactly the one with the greatest
// base <= address. Misses terminate after O(log n) comparisons, satisfying
// the paper's "optimize the miss path" design principle.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/alloc_log.hpp"

namespace cstm {

class TreeAllocLog {
 public:
  TreeAllocLog();

  void insert(const void* addr, std::size_t size);
  void erase(const void* addr, std::size_t size);
  bool contains(const void* addr, std::size_t size) const;
  void clear();
  std::size_t entries() const { return count_; }
  const char* name() const { return "tree"; }

  /// Height of the AVL tree (diagnostic, exercised by tests).
  int height() const;

 private:
  static constexpr std::int32_t kNil = -1;

  struct Node {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::int32_t left = kNil;
    std::int32_t right = kNil;
    std::int32_t height = 1;
  };

  std::int32_t node_height(std::int32_t n) const {
    return n == kNil ? 0 : nodes_[static_cast<std::size_t>(n)].height;
  }
  void update(std::int32_t n);
  std::int32_t rotate_left(std::int32_t n);
  std::int32_t rotate_right(std::int32_t n);
  std::int32_t rebalance(std::int32_t n);
  std::int32_t insert_rec(std::int32_t n, std::uintptr_t begin, std::uintptr_t end);
  std::int32_t erase_rec(std::int32_t n, std::uintptr_t begin, bool& erased);
  std::int32_t detach_min(std::int32_t n, std::int32_t& min_out);
  std::int32_t alloc_node(std::uintptr_t begin, std::uintptr_t end);
  void free_node(std::int32_t n);

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_list_;
  std::int32_t root_ = kNil;
  std::size_t count_ = 0;
};

static_assert(CaptureLog<TreeAllocLog>);

}  // namespace cstm
