// Hash-filter allocation log (paper Section 3.1.2 "Filtering"): a hash table
// in which every word of an allocated block is marked with its exact
// address. A capture check is one hash + one compare. Collisions overwrite
// older marks, producing false negatives only — never false positives — so
// the filter stays conservative. Unlike the paper's description, entries are
// epoch-stamped so that clearing the log at transaction end is O(1) instead
// of O(table size).
//
// The hot membership probe is the static contains_in(), written against a
// (table, shift, epoch) view so the barrier fast path can run it straight
// off the CaptureFrame's cached copy of those three words and inline the
// whole check. The member contains() is the same code applied to this
// object's own state.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/alloc_log.hpp"

namespace cstm {

class FilterAllocLog {
 public:
  struct Entry {
    std::uintptr_t word = 0;
    std::uint64_t epoch = 0;
  };

  static constexpr std::size_t kDefaultTableBits = 12;  // 4096 entries

  /// Caps the per-block marking work; words beyond the cap go untracked
  /// (conservative). The paper notes insertion cost grows with block size —
  /// this bound keeps worst-case allocation cost predictable.
  static constexpr std::size_t kMaxWordsPerBlock = 4096;

  explicit FilterAllocLog(std::size_t table_bits = kDefaultTableBits);

  void insert(const void* addr, std::size_t size);
  void erase(const void* addr, std::size_t size);
  bool contains(const void* addr, std::size_t size) const {
    return contains_in(table_.data(), shift_, epoch_, addr, size);
  }
  void clear();
  std::size_t entries() const { return blocks_; }
  const char* name() const { return "filter"; }

  /// One probe (hash + word compare + epoch compare) per covered word,
  /// against an explicit (table, shift, epoch) view. The CaptureFrame
  /// caches that view at transaction begin and calls this directly.
  static bool contains_in(const Entry* table, unsigned shift,
                          std::uint64_t epoch, const void* addr,
                          std::size_t size) {
    if (size == 0) return false;
    const auto begin = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t first = begin & kWordMask;
    const std::uintptr_t last = (begin + size - 1) & kWordMask;
    for (std::uintptr_t w = first; w <= last; w += 8) {
      const Entry& e = table[slot_in(w, shift)];
      if (e.word != w || e.epoch != epoch) return false;
    }
    return true;
  }

  // -- Hot-state view cached by the CaptureFrame ----------------------------
  // The table never reallocates after construction; only the epoch moves
  // (bumped by clear()), so the frame re-caches epoch() once per
  // transaction begin.
  const Entry* table_data() const { return table_.data(); }
  unsigned shift() const { return shift_; }
  std::uint64_t epoch() const { return epoch_; }

  std::size_t table_size() const { return table_.size(); }
  std::uint64_t words_skipped() const { return words_skipped_; }

  /// Live occupancy: table slots holding a current-epoch mark RIGHT NOW.
  /// clear() is an epoch bump that invalidates every mark at once, so this
  /// resets to zero with it — the count the adaptive policy and stats must
  /// see, where entries() historically kept counting blocks the epoch had
  /// already retired.
  std::size_t occupancy() const { return words_live_; }

  /// Cumulative words marked by insert() since construction. Epoch bumps do
  /// NOT reset it (occupancy() does that), so per-epoch deltas measure the
  /// filter's marking pressure — the adaptive policy's signal for "this
  /// workload pays per-word insertion cost the tree would not".
  std::uint64_t words_marked() const { return words_marked_; }

 private:
  static constexpr std::uintptr_t kWordMask = ~static_cast<std::uintptr_t>(7);

  static std::size_t slot_in(std::uintptr_t word, unsigned shift) {
    return static_cast<std::size_t>((word >> 3) * 0x9e3779b97f4a7c15ull >>
                                    shift);
  }
  std::size_t slot_of(std::uintptr_t word) const {
    return slot_in(word, shift_);
  }

  std::vector<Entry> table_;
  unsigned shift_;
  std::uint64_t epoch_ = 1;
  std::size_t blocks_ = 0;
  std::size_t words_live_ = 0;
  std::uint64_t words_marked_ = 0;
  std::uint64_t words_skipped_ = 0;
};

static_assert(CaptureLog<FilterAllocLog>);

}  // namespace cstm
