// Hash-filter allocation log (paper Section 3.1.2 "Filtering"): a hash table
// in which every word of an allocated block is marked with its exact
// address. A capture check is one hash + one compare. Collisions overwrite
// older marks, producing false negatives only — never false positives — so
// the filter stays conservative. Unlike the paper's description, entries are
// epoch-stamped so that clearing the log at transaction end is O(1) instead
// of O(table size).
#pragma once

#include <cstdint>
#include <vector>

#include "capture/alloc_log.hpp"

namespace cstm {

class FilterAllocLog final : public AllocLog {
 public:
  static constexpr std::size_t kDefaultTableBits = 12;  // 4096 entries

  /// Caps the per-block marking work; words beyond the cap go untracked
  /// (conservative). The paper notes insertion cost grows with block size —
  /// this bound keeps worst-case allocation cost predictable.
  static constexpr std::size_t kMaxWordsPerBlock = 4096;

  explicit FilterAllocLog(std::size_t table_bits = kDefaultTableBits);

  void insert(const void* addr, std::size_t size) override;
  void erase(const void* addr, std::size_t size) override;
  bool contains(const void* addr, std::size_t size) const override;
  void clear() override;
  std::size_t entries() const override { return blocks_; }
  const char* name() const override { return "filter"; }

  std::size_t table_size() const { return table_.size(); }
  std::uint64_t words_skipped() const { return words_skipped_; }

 private:
  struct Entry {
    std::uintptr_t word = 0;
    std::uint64_t epoch = 0;
  };

  std::size_t slot_of(std::uintptr_t word) const {
    return static_cast<std::size_t>((word >> 3) * 0x9e3779b97f4a7c15ull >>
                                    shift_);
  }

  std::vector<Entry> table_;
  unsigned shift_;
  std::uint64_t epoch_ = 1;
  std::size_t blocks_ = 0;
  std::uint64_t words_skipped_ = 0;
};

}  // namespace cstm
