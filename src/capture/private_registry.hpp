// Private-region registry backing the data-annotation APIs (paper
// Section 3.1.3 and Figure 7). A thread annotates address ranges as
// thread-local or read-only; barriers executed by that thread may then
// access the ranges directly. Unlike the per-transaction allocation log the
// registry persists across transactions — it is only modified by the
// annotation APIs. Incorrect annotations can introduce data races, exactly
// as the paper warns.
#pragma once

#include <cstddef>

#include "capture/tree_log.hpp"

namespace cstm {

class PrivateRegistry {
 public:
  void add(const void* addr, std::size_t size) { log_.insert(addr, size); }
  void remove(const void* addr, std::size_t size) { log_.erase(addr, size); }
  bool contains(const void* addr, std::size_t size) const {
    return log_.contains(addr, size);
  }
  std::size_t entries() const { return log_.entries(); }
  void clear() { log_.clear(); }

 private:
  TreeAllocLog log_;
};

/// The calling thread's registry (thread-local storage).
PrivateRegistry& thread_private_registry();

// -- Public annotation API (paper Figure 7 names, snake_cased) --------------

/// Declares [addr, addr+size) safe for direct access by the calling thread
/// (thread-local or read-only data). Affects only this thread's barriers.
void add_private_memory_block(void* addr, std::size_t size);

/// Revokes a previous annotation; the range becomes shared again.
void remove_private_memory_block(void* addr, std::size_t size);

}  // namespace cstm
