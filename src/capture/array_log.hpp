// Array allocation log (paper Section 3.1.2, Figure 6): an unsorted array of
// (begin, end) ranges sized to exactly one cache line, so a capture check
// touches a single line. When the array is full further allocations are
// simply not tracked — a conservative approximation the paper justifies by
// observing that most transactions perform few allocations.
//
// The whole structure is a flat, trivially-embeddable value: it lives inline
// inside the CaptureFrame of every transaction descriptor, so the hot
// membership scan and the stack-bounds check share adjacent cache lines.
#pragma once

#include <cstdint>

#include "capture/alloc_log.hpp"
#include "support/cacheline.hpp"

namespace cstm {

class ArrayAllocLog {
 public:
  /// (begin, end) pairs of std::uintptr_t; one 64-byte line holds 4 on LP64.
  static constexpr std::size_t kCapacity =
      kCacheLineSize / (2 * sizeof(std::uintptr_t));

  void insert(const void* addr, std::size_t size) {
    if (size == 0) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(addr);
    for (auto& r : ranges_) {
      if (r.begin == 0 && r.end == 0) {
        r.begin = begin;
        r.end = begin + size;
        ++count_;
        if (count_ > peak_) peak_ = count_;
        return;
      }
    }
    ++dropped_;  // full: block goes untracked (conservative miss)
  }

  void erase(const void* addr, std::size_t /*size*/) {
    const auto begin = reinterpret_cast<std::uintptr_t>(addr);
    for (auto& r : ranges_) {
      if (r.begin == begin && r.end != 0) {
        r.begin = r.end = 0;
        --count_;
        return;
      }
    }
  }

  bool contains(const void* addr, std::size_t size) const {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    for (const auto& r : ranges_) {
      if (a >= r.begin && a + size <= r.end) return true;
    }
    return false;
  }

  void clear() {
    for (auto& r : ranges_) r.begin = r.end = 0;
    count_ = 0;
  }

  std::size_t entries() const { return count_; }
  const char* name() const { return "array"; }

  /// Cumulative number of allocations that did not fit (diagnostic; clear()
  /// does NOT reset it, so the adaptive policy and TxStats::array_overflows
  /// read per-epoch overflow pressure as deltas of this counter).
  std::uint64_t dropped() const { return dropped_; }

  /// High-water mark of entries() since construction (diagnostic: how close
  /// the workload comes to the one-cache-line capacity without overflowing).
  std::size_t peak() const { return peak_; }

 private:
  struct Range {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
  };

  alignas(kCacheLineSize) Range ranges_[kCapacity] = {};
  std::size_t count_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t dropped_ = 0;
};

static_assert(CaptureLog<ArrayAllocLog>);
static_assert(sizeof(std::uintptr_t) == 8, "capstm assumes LP64");

}  // namespace cstm
