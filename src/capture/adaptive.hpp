// Adaptive capture-log selection (ROADMAP direction 3).
//
// BENCH_fig11b's lesson is that no single allocation-log structure wins
// everywhere: genome loses 46% runtime on the array and 52% on the filter
// while the tree nearly breaks even; kmeans prefers the array; labyrinth the
// tree; bayes barely cares. Until now the structure was a compile-time
// preset the user had to hand-pick per workload. This file makes it an
// online decision: a per-thread profile of the signals the CaptureFrame and
// TxStats already centralize — allocations per transaction, barrier probe
// volume, array-log overflow (ArrayAllocLog::dropped, previously a silent
// conservative miss), filter marking pressure (FilterAllocLog::words_marked)
// — feeds a hysteresis-guarded state machine that re-plans the log at
// begin_top.
//
// Steady-state barriers stay zero-branch and vtable-free: the policy only
// ever substitutes a CONCRETE AllocLogKind into the BarrierPlan compilation
// (the kAdaptive tag never reaches a barrier), so the per-access fast paths
// are the same PathSpec template instantiations the fixed presets use. The
// entire adaptation cost is an inlined counter bump per top-level begin plus
// one evaluation every `epoch_txs` transactions.
//
// The state machine (escalate fast, decay slow):
//
//             overflow burst                   probe volume high
//    array ────────────────────▶ filter ◀──────────────────────── tree
//      ▲ ▲                        │  │      few probes, many allocs,
//      │ │                        │  └──────────────────────────────▶
//      │ └────────────────────────┘          or heavy word marking
//      └──────────────────────────────────────────────────────────┘
//            `decay_epochs` CONSECUTIVE quiet epochs (from either)
//
// Escalation fires after a single pressure epoch (fast attack: every tx on
// the wrong structure pays real barrier cost), while decay back to the array
// requires `decay_epochs` consecutive quiet epochs (slow release). An
// oscillation across the escalation threshold therefore causes at most one
// switch per direction per decay window — the bounded-switching property
// tests/test_adaptive.cpp proves.
//
// Switching structures is always SAFE, never a correctness decision: every
// log obeys the conservativeness contract (false negatives only), so the
// worst a bad choice costs is elision opportunity. That is what lets the
// differential suite demand bit-identical results from adaptive and
// fixed-log runs of the same workload.
#pragma once

#include <cstdint>

#include "capture/alloc_log.hpp"
#include "capture/array_log.hpp"

namespace cstm {

/// Thresholds of the escalation/decay state machine. Defaults are derived
/// from structure geometry (array capacity, filter marking cost) rather
/// than tuned per app — the policy must help the apps fig11b shows
/// diverging without per-workload knobs. All "per tx" values compare
/// against per-epoch averages.
struct AdaptiveTuning {
  /// Transactions per profiling epoch. Policy work (a dozen compares) runs
  /// once per epoch; everything else is one increment per begin_top.
  std::uint32_t epoch_txs = 32;

  /// Consecutive quiet epochs before decaying back to the array.
  std::uint32_t decay_epochs = 4;

  /// An epoch is "quiet" when the average transaction's allocations fit the
  /// inline array and no overflow occurred.
  std::uint64_t array_fit_allocs = ArrayAllocLog::kCapacity;

  /// Below this probe volume the per-probe advantage of filter/array over
  /// the tree stops mattering; with many allocations the tree's precise
  /// O(log n) ranges beat marking every word of every block.
  std::uint64_t low_probes_per_tx = 64;

  /// Above this probe volume the filter's O(1) probe beats the tree's
  /// O(log n) walk regardless of allocation pattern.
  std::uint64_t high_probes_per_tx = 1024;

  /// Allocations per tx past which an overflowing array escalates to the
  /// tree rather than the filter (when probes are also low): the tree logs
  /// one range per block; the filter pays per word.
  std::uint64_t tree_allocs_per_tx = 32;

  /// Filter words marked per tx past which insertion cost dominates and the
  /// tree's range representation wins (large-block workloads).
  std::uint64_t filter_words_per_tx = 512;

  /// txbatch hint: a merge factor at or above this pre-escalates array →
  /// filter, because a merged transaction's allocation footprint is the sum
  /// of its sub-ops' and will not fit one cache line.
  std::uint64_t batch_hint_min = 2 * ArrayAllocLog::kCapacity;
};

/// Cumulative per-thread counters sampled at begin_top. The policy works on
/// epoch DELTAS, so the sources may be the live TxStats counters; a
/// stats_reset() mid-run shows up as a backwards jump and yields one empty
/// epoch instead of garbage.
struct AdaptiveSample {
  std::uint64_t allocs = 0;           // TxStats::tx_allocs
  std::uint64_t probes = 0;           // TxStats::reads + writes
  std::uint64_t array_overflows = 0;  // TxStats::array_overflows
  std::uint64_t filter_words = 0;     // FilterAllocLog::words_marked
};

/// One profiling epoch, as deltas. on_begin derives these from cumulative
/// samples; unit tests feed synthetic epochs to observe_epoch directly.
struct AdaptiveEpoch {
  std::uint64_t txs = 1;
  std::uint64_t allocs = 0;
  std::uint64_t probes = 0;
  std::uint64_t overflows = 0;
  std::uint64_t filter_words = 0;
};

class AdaptiveLogPolicy {
 public:
  AdaptiveLogPolicy() = default;
  explicit AdaptiveLogPolicy(const AdaptiveTuning& t) : tuning_(t) {}

  /// The concrete structure transactions should run on right now. Never
  /// kAdaptive.
  AllocLogKind current() const { return current_; }

  std::uint64_t switches() const { return switches_; }
  std::uint64_t epochs() const { return epochs_; }
  const AdaptiveTuning& tuning() const { return tuning_; }
  void set_tuning(const AdaptiveTuning& t) { tuning_ = t; }

  /// Back to the start state (array, empty streaks, no pending hint).
  /// Called when the global config changes so every run of a workload sees
  /// the same deterministic decision sequence. Tuning is preserved.
  void reset() {
    current_ = AllocLogKind::kArray;
    snap_ = AdaptiveSample{};
    txs_in_epoch_ = 0;
    quiet_streak_ = 0;
    hint_merge_ = 0;
    hint_pending_ = false;
  }

  /// Per-top-level-begin fast path: one increment until the epoch rolls
  /// over, then one evaluation. Returns the structure to compile into the
  /// plan.
  AllocLogKind on_begin(const AdaptiveSample& cum) {
    if (hint_pending_) apply_hint();
    if (++txs_in_epoch_ >= tuning_.epoch_txs) {
      txs_in_epoch_ = 0;
      evaluate(cum);
    }
    return current_;
  }

  /// Workload hint from the txbatch merge layer: the next flush merges
  /// @p merge_factor ops into one transaction, multiplying its allocation
  /// footprint before any counter can show it. Applied at the next
  /// on_begin (the policy is only consulted between transactions).
  void note_batch(std::uint64_t merge_factor) {
    if (merge_factor > hint_merge_) hint_merge_ = merge_factor;
    hint_pending_ = true;
  }

  /// One step of the state machine on an explicit epoch (the unit-testable
  /// core; on_begin feeds it real counter deltas).
  void observe_epoch(const AdaptiveEpoch& e);

 private:
  void evaluate(const AdaptiveSample& cum);
  void apply_hint();
  void switch_to(AllocLogKind k) {
    if (k != current_) {
      current_ = k;
      ++switches_;
    }
  }

  AdaptiveTuning tuning_{};
  AllocLogKind current_ = AllocLogKind::kArray;
  AdaptiveSample snap_{};       // counters at the last epoch boundary
  std::uint32_t txs_in_epoch_ = 0;
  std::uint32_t quiet_streak_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t hint_merge_ = 0;
  bool hint_pending_ = false;
};

}  // namespace cstm
