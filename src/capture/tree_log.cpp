#include "capture/tree_log.hpp"

#include <algorithm>

namespace cstm {

TreeAllocLog::TreeAllocLog() { nodes_.reserve(64); }

std::int32_t TreeAllocLog::alloc_node(std::uintptr_t begin, std::uintptr_t end) {
  std::int32_t idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
    nodes_[static_cast<std::size_t>(idx)] = Node{begin, end, kNil, kNil, 1};
  } else {
    idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{begin, end, kNil, kNil, 1});
  }
  return idx;
}

void TreeAllocLog::free_node(std::int32_t n) { free_list_.push_back(n); }

void TreeAllocLog::update(std::int32_t n) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  node.height = 1 + std::max(node_height(node.left), node_height(node.right));
}

std::int32_t TreeAllocLog::rotate_left(std::int32_t n) {
  Node& x = nodes_[static_cast<std::size_t>(n)];
  const std::int32_t r = x.right;
  Node& y = nodes_[static_cast<std::size_t>(r)];
  x.right = y.left;
  y.left = n;
  update(n);
  update(r);
  return r;
}

std::int32_t TreeAllocLog::rotate_right(std::int32_t n) {
  Node& x = nodes_[static_cast<std::size_t>(n)];
  const std::int32_t l = x.left;
  Node& y = nodes_[static_cast<std::size_t>(l)];
  x.left = y.right;
  y.right = n;
  update(n);
  update(l);
  return l;
}

std::int32_t TreeAllocLog::rebalance(std::int32_t n) {
  update(n);
  Node& node = nodes_[static_cast<std::size_t>(n)];
  const std::int32_t balance = node_height(node.left) - node_height(node.right);
  if (balance > 1) {
    Node& l = nodes_[static_cast<std::size_t>(node.left)];
    if (node_height(l.left) < node_height(l.right)) {
      node.left = rotate_left(node.left);
    }
    return rotate_right(n);
  }
  if (balance < -1) {
    Node& r = nodes_[static_cast<std::size_t>(node.right)];
    if (node_height(r.right) < node_height(r.left)) {
      node.right = rotate_right(node.right);
    }
    return rotate_left(n);
  }
  return n;
}

std::int32_t TreeAllocLog::insert_rec(std::int32_t n, std::uintptr_t begin,
                                      std::uintptr_t end) {
  if (n == kNil) return alloc_node(begin, end);
  Node& node = nodes_[static_cast<std::size_t>(n)];
  if (begin < node.begin) {
    const std::int32_t child = insert_rec(node.left, begin, end);
    nodes_[static_cast<std::size_t>(n)].left = child;
  } else if (begin > node.begin) {
    const std::int32_t child = insert_rec(node.right, begin, end);
    nodes_[static_cast<std::size_t>(n)].right = child;
  } else {
    // Same base re-inserted (allocator reuse after an erase the caller
    // skipped): keep the wider extent, stay conservative about count.
    node.end = std::max(node.end, end);
    return n;
  }
  return rebalance(n);
}

std::int32_t TreeAllocLog::detach_min(std::int32_t n, std::int32_t& min_out) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  if (node.left == kNil) {
    min_out = n;
    return node.right;
  }
  const std::int32_t child = detach_min(node.left, min_out);
  nodes_[static_cast<std::size_t>(n)].left = child;
  return rebalance(n);
}

std::int32_t TreeAllocLog::erase_rec(std::int32_t n, std::uintptr_t begin,
                                     bool& erased) {
  if (n == kNil) return kNil;
  Node& node = nodes_[static_cast<std::size_t>(n)];
  if (begin < node.begin) {
    const std::int32_t child = erase_rec(node.left, begin, erased);
    nodes_[static_cast<std::size_t>(n)].left = child;
  } else if (begin > node.begin) {
    const std::int32_t child = erase_rec(node.right, begin, erased);
    nodes_[static_cast<std::size_t>(n)].right = child;
  } else {
    erased = true;
    const std::int32_t left = node.left;
    const std::int32_t right = node.right;
    if (left == kNil || right == kNil) {
      free_node(n);
      return left == kNil ? right : left;
    }
    std::int32_t successor;
    const std::int32_t new_right = detach_min(right, successor);
    Node& succ = nodes_[static_cast<std::size_t>(successor)];
    succ.left = left;
    succ.right = new_right;
    free_node(n);
    return rebalance(successor);
  }
  return rebalance(n);
}

void TreeAllocLog::insert(const void* addr, std::size_t size) {
  if (size == 0) return;
  const auto begin = reinterpret_cast<std::uintptr_t>(addr);
  root_ = insert_rec(root_, begin, begin + size);
  ++count_;
}

void TreeAllocLog::erase(const void* addr, std::size_t /*size*/) {
  bool erased = false;
  root_ = erase_rec(root_, reinterpret_cast<std::uintptr_t>(addr), erased);
  if (erased && count_ > 0) --count_;
}

bool TreeAllocLog::contains(const void* addr, std::size_t size) const {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  // Floor search: greatest begin <= a.
  std::int32_t cur = root_;
  std::int32_t best = kNil;
  while (cur != kNil) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.begin <= a) {
      best = cur;
      cur = node.right;
    } else {
      cur = node.left;
    }
  }
  if (best == kNil) return false;
  const Node& node = nodes_[static_cast<std::size_t>(best)];
  return a + size <= node.end;
}

void TreeAllocLog::clear() {
  nodes_.clear();
  free_list_.clear();
  root_ = kNil;
  count_ = 0;
}

int TreeAllocLog::height() const { return node_height(root_); }

}  // namespace cstm
