// The capture frame: every piece of state the barrier fast paths touch to
// classify an access as captured, packed into one contiguous block of the
// transaction descriptor.
//
// The paper's argument (Section 3.1) is that the runtime capture check must
// be cheap enough to pay for itself on every access. Scattering the check's
// inputs — stack bounds here, an allocation log behind a pointer there, a
// registry somewhere else — costs cache lines and indirections before the
// first compare runs. The frame fixes the layout instead:
//
//   line 0: tx stack bound, the filter log's (table, shift, epoch) view,
//           the tree-log and private-registry pointers, the nested-undo
//           policy bit — everything a hit or miss decision reads first.
//   line 1+: the cache-line array log, inline (Figure 6's whole point is
//           that a membership scan touches a single line).
//
// Which of these fields matter for a given transaction is decided once at
// begin_top by the barrier plan (stm/barrier_plan.hpp); the specialized
// fast paths then read the frame with zero indirect calls. The tree log's
// membership test stays an out-of-line direct call (it walks an AVL tree);
// array and filter membership inline completely.
#pragma once

#include <cstddef>
#include <cstdint>

#include "capture/array_log.hpp"
#include "capture/filter_log.hpp"
#include "capture/private_registry.hpp"
#include "capture/tree_log.hpp"
#include "support/cacheline.hpp"

namespace cstm {

struct alignas(kCacheLineSize) CaptureFrame {
  // -- Line 0: bounds + resolved membership views ---------------------------
  /// Stack pointer at outermost begin (Fig. 3); the transaction-local stack
  /// is everything below it.
  std::uintptr_t stack_begin = 0;

  /// Filter-log view, cached at transaction begin (the table never moves;
  /// the epoch changes only at clear, i.e. between transactions).
  const FilterAllocLog::Entry* filter_table = nullptr;
  std::uint64_t filter_epoch = 0;
  std::uint32_t filter_shift = 0;

  /// cfg.nested_undo_for_captured, resolved at begin so captured-write fast
  /// paths never read the config.
  bool nested_undo = true;

  /// Precise log for the tree-backed plans and count-mode classification.
  const TreeAllocLog* tree = nullptr;

  /// The thread's annotation registry (Section 3.1.3); set at every
  /// begin_top, so non-null whenever a transaction is active.
  const PrivateRegistry* priv = nullptr;

  // -- Line 1+: the array log lives inline ----------------------------------
  ArrayAllocLog array;

  // -- Membership checks (the barrier fast paths call these) ----------------

  /// The single range check of Figure 4: the transaction-local stack is the
  /// region between the current stack pointer and the stack pointer at
  /// transaction begin (stack grows downwards on x86-64).
  bool on_tx_stack(const void* addr, std::size_t n) const {
    char probe;  // approximates the current stack pointer
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return a >= reinterpret_cast<std::uintptr_t>(&probe) &&
           a + n <= stack_begin;
  }

  bool tree_contains(const void* addr, std::size_t n) const {
    return tree->contains(addr, n);  // direct call, O(log n) AVL walk
  }
  bool array_contains(const void* addr, std::size_t n) const {
    return array.contains(addr, n);  // one-line scan, fully inlined
  }
  bool filter_contains(const void* addr, std::size_t n) const {
    return FilterAllocLog::contains_in(filter_table, filter_shift,
                                       filter_epoch, addr, n);
  }
  bool priv_contains(const void* addr, std::size_t n) const {
    return priv->contains(addr, n);
  }
};

}  // namespace cstm
