#include "capture/adaptive.hpp"

namespace cstm {

namespace {

/// Saturating delta: a cumulative counter that moved backwards means
/// stats_reset() ran mid-stream — treat the epoch as empty rather than
/// wrapping to a huge unsigned value.
std::uint64_t delta(std::uint64_t now, std::uint64_t before) {
  return now >= before ? now - before : 0;
}

}  // namespace

void AdaptiveLogPolicy::evaluate(const AdaptiveSample& cum) {
  AdaptiveEpoch e;
  e.txs = tuning_.epoch_txs != 0 ? tuning_.epoch_txs : 1;
  e.allocs = delta(cum.allocs, snap_.allocs);
  e.probes = delta(cum.probes, snap_.probes);
  e.overflows = delta(cum.array_overflows, snap_.array_overflows);
  e.filter_words = delta(cum.filter_words, snap_.filter_words);
  snap_ = cum;
  observe_epoch(e);
}

void AdaptiveLogPolicy::observe_epoch(const AdaptiveEpoch& e) {
  ++epochs_;
  const std::uint64_t txs = e.txs != 0 ? e.txs : 1;
  const std::uint64_t allocs_per_tx = e.allocs / txs;
  const std::uint64_t probes_per_tx = e.probes / txs;
  const std::uint64_t words_per_tx = e.filter_words / txs;
  const bool overflow = e.overflows > 0;

  // Quiet = the average transaction's blocks fit the inline array and none
  // were dropped. Only a streak of these decays; any loud epoch restarts it.
  const bool quiet = !overflow && allocs_per_tx <= tuning_.array_fit_allocs;

  // Precision pays when blocks are many but probes are few (the filter
  // would mark every word of every block for checks that rarely happen) or
  // when marking volume itself is the dominant cost.
  const bool precision_pays =
      (probes_per_tx < tuning_.low_probes_per_tx &&
       allocs_per_tx >= tuning_.tree_allocs_per_tx) ||
      words_per_tx >= tuning_.filter_words_per_tx;

  switch (current_) {
    case AllocLogKind::kArray:
      quiet_streak_ = 0;  // the array IS the decayed state
      if (overflow) {
        switch_to(precision_pays ? AllocLogKind::kTree
                                 : AllocLogKind::kFilter);
      }
      break;
    case AllocLogKind::kFilter:
      if (quiet) {
        if (++quiet_streak_ >= tuning_.decay_epochs) {
          quiet_streak_ = 0;
          switch_to(AllocLogKind::kArray);
        }
      } else {
        quiet_streak_ = 0;
        if (precision_pays) switch_to(AllocLogKind::kTree);
      }
      break;
    case AllocLogKind::kTree:
      if (quiet) {
        if (++quiet_streak_ >= tuning_.decay_epochs) {
          quiet_streak_ = 0;
          switch_to(AllocLogKind::kArray);
        }
      } else {
        quiet_streak_ = 0;
        if (probes_per_tx >= tuning_.high_probes_per_tx &&
            words_per_tx < tuning_.filter_words_per_tx) {
          switch_to(AllocLogKind::kFilter);
        }
      }
      break;
    case AllocLogKind::kAdaptive:
      // current_ is always a concrete structure; restore the invariant.
      current_ = AllocLogKind::kArray;
      break;
  }
}

void AdaptiveLogPolicy::apply_hint() {
  if (current_ == AllocLogKind::kArray &&
      hint_merge_ >= tuning_.batch_hint_min) {
    // Merged transactions overflow the array before the first epoch ends;
    // skip straight to the filter instead of paying an epoch of dropped
    // blocks. Decay applies as usual if the merge factor shrinks again.
    switch_to(AllocLogKind::kFilter);
    quiet_streak_ = 0;
  }
  hint_pending_ = false;
  hint_merge_ = 0;
}

}  // namespace cstm
