#include "capture/filter_log.hpp"

namespace cstm {

FilterAllocLog::FilterAllocLog(std::size_t table_bits)
    : table_(std::size_t{1} << table_bits),
      shift_(static_cast<unsigned>(64 - table_bits)) {}

void FilterAllocLog::insert(const void* addr, std::size_t size) {
  if (size == 0) return;
  const auto begin = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t first = begin & kWordMask;
  const std::uintptr_t last = (begin + size - 1) & kWordMask;
  std::size_t marked = 0;
  for (std::uintptr_t w = first; w <= last; w += 8) {
    if (marked++ >= kMaxWordsPerBlock) {
      ++words_skipped_;
      continue;
    }
    Entry& e = table_[slot_of(w)];
    // A slot already live this epoch is a collision overwrite (or a re-mark
    // of the same word): occupancy does not grow, the old mark is evicted.
    if (e.epoch != epoch_) ++words_live_;
    e.word = w;
    e.epoch = epoch_;
    ++words_marked_;
  }
  ++blocks_;
}

void FilterAllocLog::erase(const void* addr, std::size_t size) {
  const auto begin = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t first = begin & kWordMask;
  const std::uintptr_t last = (begin + size - 1) & kWordMask;
  bool any_live = false;
  for (std::uintptr_t w = first; w <= last; w += 8) {
    Entry& e = table_[slot_of(w)];
    if (e.word == w && e.epoch == epoch_) {
      e.epoch = 0;
      any_live = true;
      if (words_live_ > 0) --words_live_;
    }
  }
  // Only blocks actually live this epoch count down: erasing a block whose
  // marks predate the last clear() (or were never inserted) used to
  // decrement blocks_ anyway, so entries() under-reported until the next
  // clear and the occupancy signal was garbage.
  if (any_live && blocks_ > 0) --blocks_;
}

void FilterAllocLog::clear() {
  ++epoch_;
  blocks_ = 0;
  words_live_ = 0;
}

}  // namespace cstm
