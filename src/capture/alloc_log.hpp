// Allocation-log interface for runtime capture analysis (paper Section 3.1.2).
//
// Every memory block allocated inside a transaction is recorded in a
// transaction-local allocation log; the read/write barriers consult the log
// to decide whether an access targets captured memory and can skip the full
// STM barrier. Three implementations are compared in the paper and provided
// here: a search tree (precise), a cache-line-sized array (bounded,
// conservative) and a hash filter (conservative, false negatives allowed).
//
// Conservativeness contract: contains() may return false for logged memory
// (missed elision) but must never return true for memory that was not logged
// by the current transaction. Our STM does in-place updates, for which the
// paper notes capture analysis may be arbitrarily imprecise yet remain safe.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cstm {

enum class AllocLogKind : std::uint8_t { kTree = 0, kArray = 1, kFilter = 2 };

inline const char* to_string(AllocLogKind k) {
  switch (k) {
    case AllocLogKind::kTree: return "tree";
    case AllocLogKind::kArray: return "array";
    case AllocLogKind::kFilter: return "filter";
  }
  return "?";
}

class AllocLog {
 public:
  virtual ~AllocLog() = default;

  /// Records a block [addr, addr+size). Blocks are disjoint (they come from
  /// the allocator). May silently drop the block (conservative).
  virtual void insert(const void* addr, std::size_t size) = 0;

  /// Removes a block previously inserted with the same base address.
  virtual void erase(const void* addr, std::size_t size) = 0;

  /// True if [addr, addr+size) lies entirely inside one logged block.
  virtual bool contains(const void* addr, std::size_t size) const = 0;

  /// Empties the log (called at transaction end, commit or abort).
  virtual void clear() = 0;

  /// Number of blocks currently tracked (diagnostic).
  virtual std::size_t entries() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace cstm
