// Allocation-log vocabulary for runtime capture analysis (paper
// Section 3.1.2).
//
// Every memory block allocated inside a transaction is recorded in a
// transaction-local allocation log; the read/write barriers consult the log
// to decide whether an access targets captured memory and can skip the full
// STM barrier. Three implementations are compared in the paper and provided
// here: a search tree (precise), a cache-line-sized array (bounded,
// conservative) and a hash filter (conservative, false negatives allowed).
//
// The three logs are plain concrete types sharing the duck-typed CaptureLog
// interface below — deliberately no abstract base class. The barrier fast
// paths reach membership state through the CaptureFrame
// (capture/capture_frame.hpp) and the per-transaction barrier plan
// (stm/barrier_plan.hpp), which resolve the log choice once at transaction
// begin; an indirect call per access would dominate the very check the
// paper wants to make nearly free. The `devirtualized_fast_path` ctest
// greps this directory to keep it that way.
//
// Conservativeness contract: contains() may return false for logged memory
// (missed elision) but must never return true for memory that was not logged
// by the current transaction. Our STM does in-place updates, for which the
// paper notes capture analysis may be arbitrarily imprecise yet remain safe.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cstm {

/// kTree/kArray/kFilter name a concrete structure. kAdaptive is a TAG, not a
/// structure: it asks the runtime to pick among the three online
/// (capture/adaptive.hpp). It is resolved to a concrete kind when the
/// BarrierPlan is compiled at begin_top, so no barrier ever dispatches on it.
enum class AllocLogKind : std::uint8_t {
  kTree = 0,
  kArray = 1,
  kFilter = 2,
  kAdaptive = 3
};

inline const char* to_string(AllocLogKind k) {
  switch (k) {
    case AllocLogKind::kTree: return "tree";
    case AllocLogKind::kArray: return "array";
    case AllocLogKind::kFilter: return "filter";
    case AllocLogKind::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Parses a `--capture-log` style name. Returns false (leaving @p out
/// untouched) on anything but tree/array/filter/adaptive.
inline bool alloc_log_from_name(std::string_view name, AllocLogKind* out) {
  if (name == "tree") *out = AllocLogKind::kTree;
  else if (name == "array") *out = AllocLogKind::kArray;
  else if (name == "filter") *out = AllocLogKind::kFilter;
  else if (name == "adaptive") *out = AllocLogKind::kAdaptive;
  else return false;
  return true;
}

/// The interface every allocation log models, checked statically:
///
///  * insert(addr, size)   — records a block [addr, addr+size). Blocks are
///    disjoint (they come from the allocator). May silently drop the block
///    (conservative).
///  * erase(addr, size)    — removes a block previously inserted with the
///    same base address.
///  * contains(addr, size) — true only if [addr, addr+size) lies entirely
///    inside one logged block (false negatives allowed, false positives
///    never).
///  * clear()              — empties the log (transaction end).
///  * entries()            — number of blocks currently tracked (diagnostic).
///  * name()               — short identifier for diagnostics.
template <typename L>
concept CaptureLog =
    requires(L& log, const L& clog, const void* addr, std::size_t size) {
      { log.insert(addr, size) } -> std::same_as<void>;
      { log.erase(addr, size) } -> std::same_as<void>;
      { clog.contains(addr, size) } -> std::same_as<bool>;
      { log.clear() } -> std::same_as<void>;
      { clog.entries() } -> std::same_as<std::size_t>;
      { clog.name() } -> std::convertible_to<const char*>;
    };

}  // namespace cstm
