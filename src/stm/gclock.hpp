// Epoch-batched global version clock for optimistic-reader validation.
//
// The classic TL2/TinySTM clock is one cache line that every writing commit
// fetch_add's — the first commit-path serialization cliff once real cores
// exist. This clock splits that line's two jobs apart:
//
//  * `reserve_`   — a range allocator. A thread reserves a BATCH of
//    timestamps with one fetch_add and then stamps its next commits from
//    the thread-local remainder (`ClockReservation`), so the allocator line
//    is touched once per kBatch commits in the burst case, not once per
//    commit.
//  * `published_` — the epoch readers snapshot and validate against. It is
//    the single serialization point: a commit makes its stamp `wv` visible
//    here, via a conditional CAS-max, BEFORE releasing any ownership
//    record with version `wv`.
//
// The publication invariants the whole snapshot argument rests on (and
// that tests/test_clock_orec.cpp property-checks):
//
//  (1) Monotonic publication: `published_` only grows, and only ever takes
//      values that some transaction actually stamped.
//  (2) Publish-before-release: when an unlocked orec carries version `wv`,
//      `published_ >= wv` already holds — no reader can observe a
//      timestamp from an unpublished reservation. Hence a reader whose
//      snapshot `start_ts >= wv` took that snapshot AFTER the writer's
//      publication point, which is after the writer acquired every lock in
//      its write set: the reader either sees the lock (conflict path) or
//      the released post-publication state. A reader with
//      `start_ts < wv` revalidates lazily (Tx::extend) against
//      `published_`, which invariant (2) guarantees has caught up.
//  (3) Uniqueness: stamps come from disjoint reserved ranges and a
//      discarded range is never drawn from again, so released orec
//      versions are globally fresh (the anti-ABA requirement of the abort
//      path).
//
// Staleness: a reservation is usable only while its stamps still exceed
// `published_`. If another thread publishes past our range (interleaved
// commits), the CAS-max observes `published_ >= wv` and the remainder of
// the range is DISCARDED — those timestamps are simply never used; the
// thread re-reserves above the new epoch. Ranges therefore amortize clock
// traffic exactly when commits arrive in per-thread bursts, and degrade to
// one reserve + one publish per commit under adversarial interleaving —
// never to anything unsound. Exhaustion (the thread's cursor walking off
// the end of its range) falls back to the same re-reservation path.
//
// 63-bit timestamp space (orec words store `version << 1`): at one billion
// commits per second exhausting it takes ~290 years, so wraparound of the
// *global* counters is out of scope by construction (documented, not
// handled); wraparound of a thread's local RANGE cursor is the exhaustion
// path above.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/cacheline.hpp"

namespace cstm {

/// A thread's unconsumed slice of reserved timestamps: stamps
/// [next, end) remain drawable. Plain (non-atomic) fields — only the
/// owning thread touches it.
struct ClockReservation {
  std::uint64_t next = 0;
  std::uint64_t end = 0;
};

class GlobalClock {
 public:
  /// Default timestamp-range size reserved per fetch_add on the shared
  /// counter. 64 keeps the worst-case skip (a discarded range) tiny
  /// relative to the 63-bit space while amortizing the allocator line
  /// across a burst of commits.
  static constexpr std::uint64_t kDefaultBatch = 64;

  explicit GlobalClock(std::uint64_t batch = kDefaultBatch,
                       std::uint64_t initial = 0)
      : batch_(batch == 0 ? 1 : batch) {
    reserve_.value.store(initial, std::memory_order_relaxed);
    published_.value.store(initial, std::memory_order_relaxed);
  }

  /// The published epoch: every timestamp <= this value is from a commit
  /// (or abort) whose publication point has passed. Readers snapshot this
  /// at begin and re-snapshot it in Tx::extend.
  std::uint64_t load() const {
    return published_.value.load(std::memory_order_acquire);
  }

  /// What one stamp_and_publish call did, for the caller's statistics.
  struct Stamp {
    std::uint64_t ts = 0;              // the commit timestamp, published
    std::uint64_t prev_published = 0;  // epoch the publication replaced
    std::uint32_t reservations = 0;    // shared-counter fetch_adds performed
    std::uint32_t discards = 0;        // ranges thrown away as stale
  };

  /// Draws the next timestamp from @p r (re-reserving on exhaustion or
  /// staleness) and publishes it. On return `load() >= ts` holds and
  /// `prev_published` was the epoch this stamp replaced — when it equals a
  /// committer's begin snapshot, nothing was published in between and the
  /// read set is trivially still valid (the batched form of the classic
  /// `wv == start_ts + 1` validation skip).
  Stamp stamp_and_publish(ClockReservation& r) {
    Stamp out;
    for (;;) {
      if (r.next >= r.end) {
        reserve(r);
        ++out.reservations;
      }
      const std::uint64_t wv = r.next;
      std::uint64_t p = published_.value.load(std::memory_order_acquire);
      while (p < wv) {
        // acq_rel: the success store is the publication point every
        // subsequent orec release (memory_order_release) is ordered after.
        if (published_.value.compare_exchange_weak(p, wv,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_acquire)) {
          r.next = wv + 1;
          out.ts = wv;
          out.prev_published = p;
          return out;
        }
      }
      // p >= wv: the epoch overtook this range while it sat in our pocket.
      // Invariant (3) forbids stamping below the epoch, so the remainder
      // is dead — discard it and reserve a fresh range above `p`.
      r.next = r.end;
      ++out.discards;
    }
  }

  /// Highest timestamp handed to any reservation so far (>= load() always);
  /// exposed for the property tests.
  std::uint64_t reserved_watermark() const {
    return reserve_.value.load(std::memory_order_acquire);
  }

  std::uint64_t batch() const { return batch_; }

 private:
  void reserve(ClockReservation& r) {
    // fetch_add returns a base >= published_ (published values are always
    // previously reserved ones), so a fresh range is never born stale.
    const std::uint64_t base =
        reserve_.value.fetch_add(batch_, std::memory_order_acq_rel);
    r.next = base + 1;
    r.end = base + 1 + batch_;
  }

  Padded<std::atomic<std::uint64_t>> reserve_{};
  Padded<std::atomic<std::uint64_t>> published_{};
  const std::uint64_t batch_;
};

/// The process-wide clock. Never reset — monotonicity keeps stale ownership
/// record versions from previous runs harmless.
GlobalClock& global_clock();

}  // namespace cstm
