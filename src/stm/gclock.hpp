// Global version clock for optimistic-reader validation (TL2/TinySTM style).
#pragma once

#include <atomic>
#include <cstdint>

#include "support/cacheline.hpp"

namespace cstm {

class GlobalClock {
 public:
  std::uint64_t load() const {
    return clock_.value.load(std::memory_order_acquire);
  }

  /// Advances the clock by one and returns the new value; used as the commit
  /// timestamp of a writing transaction.
  std::uint64_t advance() {
    return clock_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  Padded<std::atomic<std::uint64_t>> clock_{};
};

/// The process-wide clock. Never reset — monotonicity keeps stale ownership
/// record versions from previous runs harmless.
GlobalClock& global_clock();

}  // namespace cstm
