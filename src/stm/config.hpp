// Runtime configuration: which capture checks run inside the barriers, which
// allocation-log data structure backs the heap check, and the contention
// policy. The named presets correspond exactly to the configurations the
// paper evaluates in Figures 9-11 and Tables 1-2.
#pragma once

#include <cstdint>

#include "capture/alloc_log.hpp"

namespace cstm {

enum class ContentionPolicy : std::uint8_t {
  kBackoff = 0,        // abort self, exponential backoff before retry (paper)
  kSuicide = 1,        // abort self, retry immediately
  kSpinThenAbort = 2,  // bounded spin on the lock, then abort self
  kKarma = 3,          // priority = work invested (Scherer & Scott); loser aborts
  kGreedy = 4          // oldest-first by begin ticket (Guerraoui et al.)
};

struct TxConfig {
  // Runtime capture checks (Section 3.1), separately for reads and writes to
  // reproduce the paper's "write barriers only" configurations.
  bool stack_read = false;
  bool stack_write = false;
  bool heap_read = false;
  bool heap_write = false;

  // Annotation-registry checks (Section 3.1.3, thread-local/read-only data).
  bool private_read = false;
  bool private_write = false;

  // Compiler capture analysis (Section 3.2): honor Site::verdict.
  bool static_elision = false;

  // Fig. 8 counting mode: classify every barrier with the precise tree log
  // but still execute the full barrier (measurement, not optimization).
  bool count_mode = false;

  // Undo-log writes to captured memory inside nested transactions so that a
  // partial abort can restore them (Section 2.2.1).
  bool nested_undo_for_captured = true;

  // Durable mode (ROADMAP direction 2): non-captured stores are redo-logged
  // and commit runs the flush/fence protocol in src/durable/. Compiled into
  // BarrierPlan::durable — zero per-access branches when off, one branch in
  // the outlined full-write slow path when on. Orthogonal to the capture
  // presets, like the contention axis.
  bool durable = false;

  AllocLogKind alloc_log = AllocLogKind::kTree;
  ContentionPolicy contention = ContentionPolicy::kBackoff;

  constexpr bool any_read_check() const { return stack_read || heap_read || private_read; }
  constexpr bool any_write_check() const {
    return stack_write || heap_write || private_write;
  }

  /// Same barrier configuration, different contention manager. CM choice is
  /// orthogonal to the capture presets, so the differential matrix crosses
  /// the two axes with this helper.
  constexpr TxConfig with_contention(ContentionPolicy p) const {
    TxConfig c = *this;
    c.contention = p;
    return c;
  }

  /// Same barrier configuration, with durability on. Crossed over the
  /// capture presets exactly like with_contention — the differential suite
  /// checks that durability never changes committed state.
  constexpr TxConfig with_durable() const {
    TxConfig c = *this;
    c.durable = true;
    return c;
  }
  // -- Presets matching the paper's measured configurations -----------------

  /// No optimization applied.
  static constexpr TxConfig baseline() { return TxConfig{}; }

  /// Runtime checks for tx-local stack and heap in read AND write barriers.
  static constexpr TxConfig runtime_rw(AllocLogKind k = AllocLogKind::kTree) {
    TxConfig c;
    c.stack_read = c.stack_write = c.heap_read = c.heap_write = true;
    c.private_read = c.private_write = true;
    c.alloc_log = k;
    return c;
  }

  /// Runtime checks for tx-local stack and heap in write barriers only.
  static constexpr TxConfig runtime_w(AllocLogKind k = AllocLogKind::kTree) {
    TxConfig c;
    c.stack_write = c.heap_write = true;
    c.private_write = true;
    c.alloc_log = k;
    return c;
  }

  /// Runtime checks for tx-local heap only, write barriers only (the
  /// configuration of Figure 11(b)).
  static constexpr TxConfig runtime_heap_w(AllocLogKind k = AllocLogKind::kTree) {
    TxConfig c;
    c.heap_write = true;
    c.alloc_log = k;
    return c;
  }

  /// Beyond the paper: full runtime checks with the allocation-log
  /// structure chosen ONLINE per thread (capture/adaptive.hpp). The
  /// kAdaptive tag resolves to a concrete tree/array/filter plan at every
  /// begin_top; barriers stay as specialized as with a fixed preset.
  static constexpr TxConfig adaptive() {
    return runtime_rw(AllocLogKind::kAdaptive);
  }

  /// Compiler capture analysis: statically elided barriers, no runtime cost.
  static constexpr TxConfig compiler() {
    TxConfig c;
    c.static_elision = true;
    return c;
  }

  /// Durable mode with full runtime capture checks: the configuration
  /// where capture elides both STM barriers AND redo-log flushes (the
  /// durable quickstart preset; see docs/ARCHITECTURE.md).
  static constexpr TxConfig durable_rw(AllocLogKind k = AllocLogKind::kTree) {
    return runtime_rw(k).with_durable();
  }

  /// Durable mode with no capture checks: every instrumented store is
  /// redo-logged and flushed. The comparison baseline for
  /// flushes_elided_percent().
  static constexpr TxConfig durable_baseline() {
    return baseline().with_durable();
  }

  /// Fig. 8 barrier-breakdown measurement.
  static constexpr TxConfig counting() {
    TxConfig c;
    c.count_mode = true;
    c.alloc_log = AllocLogKind::kTree;  // precise classification
    return c;
  }
};

/// Installs the configuration picked up by transactions at begin. Threads
/// observe the change on their next top-level transaction.
void set_global_config(const TxConfig& cfg);
TxConfig global_config();

}  // namespace cstm
