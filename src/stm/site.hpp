// Static access-site descriptors.
//
// The paper's compiler instruments every memory access inside an atomic
// block with an STM barrier, then runs a capture analysis (Section 3.2)
// to delete barriers it can prove unnecessary. We emulate that
// instrumentation explicitly: each barrier call carries a Site describing
// the static program point, and the Site carries the *verdict* the static
// capture analysis (src/txir) produced for that point:
//
//  * `manual` — whether the original, hand-instrumented STAMP code had a
//    TM_SHARED_READ/WRITE at this point. Section 4.1 counts manual sites as
//    "required" barriers; everything else is compiler over-instrumentation.
//  * `verdict` — the analysis classification of the accessed memory. A
//    non-kUnknown verdict means the barrier compiles to the statically
//    elided path (zero runtime log probes) under TxConfig::compiler().
//
// The verdict lattice (mirrored by cstm::txir's analysis):
//
//  | verdict   | proven target                         | elides reads | elides writes |
//  |-----------|---------------------------------------|--------------|---------------|
//  | kUnknown  | anything (top)                        | no           | no            |
//  | kCaptured | heap allocated since tx start         | yes          | yes           |
//  | kStack    | stack slot created inside the tx      | yes          | yes           |
//  | kStatic   | immutable static/global data          | yes          | no            |
//  | kPrivate  | annotated thread-private block (§3.1.3)| yes          | yes           |
//
// kStatic never elides a write: the proof is "this data is read-only", so a
// store through it is an analysis bug the runtime refuses to honor.
#pragma once

#include <cstdint>

namespace cstm {

/// Static capture-analysis verdict for one access site (see table above).
enum class Verdict : std::uint8_t {
  kUnknown = 0,
  kCaptured,
  kStack,
  kStatic,
  kPrivate,
};

constexpr const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kUnknown: return "unknown";
    case Verdict::kCaptured: return "captured";
    case Verdict::kStack: return "stack";
    case Verdict::kStatic: return "static";
    case Verdict::kPrivate: return "private";
  }
  return "?";
}

struct Site {
  const char* name = "anon";
  bool manual = true;
  Verdict verdict = Verdict::kUnknown;

  /// True when the compiler config may elide a read barrier at this site.
  constexpr bool read_elidable() const { return verdict != Verdict::kUnknown; }
  /// True when the compiler config may elide a write barrier at this site
  /// (kStatic proves read-only data — never a write elision).
  constexpr bool write_elidable() const {
    return verdict != Verdict::kUnknown && verdict != Verdict::kStatic;
  }
};

/// Shared access the original benchmark instrumented by hand ("required").
inline constexpr Site kSharedSite{"shared", true};

/// Compiler-added barrier that static capture analysis cannot classify.
inline constexpr Site kAutoSite{"auto", false};

/// Compiler-added barrier proven to hit heap memory captured by this tx.
inline constexpr Site kAutoCapturedSite{"auto-captured", false,
                                        Verdict::kCaptured};

/// Compiler-added barrier proven to hit a tx-local stack slot.
inline constexpr Site kAutoStackSite{"auto-stack", false, Verdict::kStack};

/// Compiler-added barrier proven to hit immutable static data (reads only).
inline constexpr Site kAutoStaticSite{"auto-static", false, Verdict::kStatic};

/// Compiler-added barrier proven to hit an annotated thread-private block.
inline constexpr Site kAutoPrivateSite{"auto-private", false,
                                       Verdict::kPrivate};

}  // namespace cstm
