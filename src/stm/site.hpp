// Static access-site descriptors.
//
// The paper's compiler instruments every memory access inside an atomic
// block with an STM barrier. We emulate that instrumentation explicitly:
// each barrier call in benchmark code carries a Site describing the static
// program point. Two flags reproduce the paper's methodology:
//
//  * `manual` — whether the original, hand-instrumented STAMP code had a
//    TM_SHARED_READ/WRITE at this point. Section 4.1 counts manual sites as
//    "required" barriers; everything else is compiler over-instrumentation.
//  * `static_captured` — whether the compiler capture analysis (Section 3.2,
//    reproduced in src/txir) proves the access targets memory allocated in
//    the current transaction, so the barrier can be statically elided.
#pragma once

namespace cstm {

struct Site {
  const char* name = "anon";
  bool manual = true;
  bool static_captured = false;
};

/// Shared access the original benchmark instrumented by hand ("required").
inline constexpr Site kSharedSite{"shared", true, false};

/// Compiler-added barrier that static analysis cannot prove captured.
inline constexpr Site kAutoSite{"auto", false, false};

/// Compiler-added barrier that static capture analysis proves captured.
inline constexpr Site kAutoCapturedSite{"auto-captured", false, true};

}  // namespace cstm
