// Ownership records ("transaction records" in the paper, Section 2.1).
//
// A system-wide table maps each memory address, at cache-line granularity,
// to an ownership record. The record word encodes either
//   version << 1          (unlocked; version taken from the global clock) or
//   descriptor-ptr | 1    (locked by the writing transaction).
// Distinct addresses hashing to the same record produce false conflicts —
// the effect the paper's optimizations reduce by eliding barriers entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace cstm {

namespace orec {

inline constexpr std::uint64_t kLockBit = 1;

inline bool is_locked(std::uint64_t word) { return (word & kLockBit) != 0; }
inline std::uint64_t version_of(std::uint64_t word) { return word >> 1; }
inline std::uint64_t make_version(std::uint64_t version) { return version << 1; }
inline std::uint64_t make_lock(const void* owner) {
  return reinterpret_cast<std::uintptr_t>(owner) | kLockBit;
}
inline void* owner_of(std::uint64_t word) {
  return reinterpret_cast<void*>(word & ~kLockBit);
}

}  // namespace orec

class OrecTable {
 public:
  static constexpr std::size_t kSizeLog2 = 20;
  static constexpr std::size_t kSize = std::size_t{1} << kSizeLog2;
  static constexpr std::size_t kGranularityLog2 = 6;  // cache line

  OrecTable() : slots_(new std::atomic<std::uint64_t>[kSize]) {
    for (std::size_t i = 0; i < kSize; ++i) {
      slots_[i].store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t>& slot(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return slots_[(a >> kGranularityLog2) & (kSize - 1)];
  }

  /// Index helper exposed for tests exercising false-conflict behaviour.
  static std::size_t index_of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return (a >> kGranularityLog2) & (kSize - 1);
  }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
};

/// The process-wide ownership record table.
OrecTable& orec_table();

}  // namespace cstm
