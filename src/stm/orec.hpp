// Ownership records ("transaction records" in the paper, Section 2.1).
//
// A system-wide table maps each memory address, at cache-line granularity,
// to an ownership record. The record word encodes either
//   version << 1          (unlocked; version taken from the global clock) or
//   descriptor-ptr | 1    (locked by the writing transaction).
// Distinct addresses hashing to the same record produce false conflicts —
// the effect the paper's optimizations reduce by eliding barriers entirely.
//
// Layout: the table is sharded into cache-line-aligned STRIPES of eight
// records each, and addresses are spread across stripes with a Fibonacci
// multiplicative mixing hash instead of the old linear `(addr >> 6) & mask`.
// Two reasons, both commit-path scalability (ROADMAP direction 1):
//
//  * Padding/alignment: a stripe is exactly one cache line, so record
//    index i and record index i+8 can never share a line — writers hammering
//    neighbouring records don't false-share beyond what the hash maps
//    together.
//  * Mixing: the linear hash sends arrays (sequentially adjacent cache
//    lines) to sequentially adjacent records, concentrating a hot array's
//    locks in a few lines. The multiplicative hash scatters them across the
//    whole table while staying deterministic and cheap (one imul + shift).
//
// The hash keeps both properties the false-conflict tests rely on:
// addresses on the SAME cache line always map to the same record, and
// ADJACENT cache lines always map to different records — the index delta of
// lines differing by d is d * (kMix >> (64 - kIndexBits)) mod table size,
// which is provably nonzero for small d (see tests/test_clock_orec.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "support/cacheline.hpp"

namespace cstm {

namespace orec {

inline constexpr std::uint64_t kLockBit = 1;

inline bool is_locked(std::uint64_t word) { return (word & kLockBit) != 0; }
inline std::uint64_t version_of(std::uint64_t word) { return word >> 1; }
inline std::uint64_t make_version(std::uint64_t version) { return version << 1; }
inline std::uint64_t make_lock(const void* owner) {
  return reinterpret_cast<std::uintptr_t>(owner) | kLockBit;
}
inline void* owner_of(std::uint64_t word) {
  return reinterpret_cast<void*>(word & ~kLockBit);
}

}  // namespace orec

class OrecTable {
 public:
  static constexpr std::size_t kSizeLog2 = 20;
  static constexpr std::size_t kSize = std::size_t{1} << kSizeLog2;
  static constexpr std::size_t kGranularityLog2 = 6;  // cache line

  /// Records per stripe: one cache line of 8-byte atomics.
  static constexpr std::size_t kStripeSlots =
      kCacheLineSize / sizeof(std::atomic<std::uint64_t>);
  static constexpr std::size_t kStripes = kSize / kStripeSlots;

  /// Fibonacci multiplicative constant (2^64 / phi). Its top-kSizeLog2
  /// slice is odd, so consecutive cache lines step the index by a nonzero
  /// odd constant mod kSize — adjacent lines never collide.
  static constexpr std::uint64_t kMix = 0x9e3779b97f4a7c15ull;

  struct alignas(kCacheLineSize) Stripe {
    std::atomic<std::uint64_t> slots[kStripeSlots];
  };
  static_assert(sizeof(Stripe) == kCacheLineSize,
                "a stripe must be exactly one cache line");
  static_assert(alignof(Stripe) == kCacheLineSize,
                "stripes must be cache-line aligned");
  static_assert(kStripes * kStripeSlots == kSize, "stripes must tile the table");

  OrecTable() : stripes_(new Stripe[kStripes]) {
    for (std::size_t s = 0; s < kStripes; ++s) {
      for (std::size_t i = 0; i < kStripeSlots; ++i) {
        stripes_[s].slots[i].store(0, std::memory_order_relaxed);
      }
    }
  }

  std::atomic<std::uint64_t>& slot(const void* addr) {
    const std::size_t idx = index_of(addr);
    return stripes_[idx / kStripeSlots].slots[idx % kStripeSlots];
  }

  /// Index helper exposed for tests exercising false-conflict behaviour.
  /// Same cache line => same index; the mixing multiply acts on the line
  /// number only.
  static std::size_t index_of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uint64_t line = static_cast<std::uint64_t>(a) >> kGranularityLog2;
    return static_cast<std::size_t>((line * kMix) >> (64 - kSizeLog2));
  }

  /// Stripe number of @p addr, exposed for the striping tests.
  static std::size_t stripe_of(const void* addr) {
    return index_of(addr) / kStripeSlots;
  }

 private:
  std::unique_ptr<Stripe[]> stripes_;
};

/// The process-wide ownership record table.
OrecTable& orec_table();

}  // namespace cstm
