// Transaction control: cstm::atomic() runs a callable as a transaction with
// single-lock-atomicity semantics, retrying on conflict aborts. Nested calls
// form closed-nested transactions with partial abort (Section 2.2.1).
#pragma once

#include "stm/descriptor.hpp"

namespace cstm {

/// Aborts the innermost transaction: a nested transaction partially rolls
/// back and control resumes after its atomic() call; a top-level transaction
/// cancels (no retry).
[[noreturn]] inline void abort_tx() { throw TxUserAbort{}; }

namespace detail {

// These trampolines must never be inlined into the caller: their frame base
// is the transaction's start_sp (Figure 3). Inlining would place the
// caller's pre-transaction locals *below* start_sp and misclassify them as
// transaction-local — a correctness bug, since live-in locals need undo
// logging. Keeping the body invocation inside the trampoline guarantees all
// locals created during the transaction sit below start_sp.

template <typename F>
[[gnu::noinline]] void run_nested(Tx& tx, F&& body) {
  tx.begin_nested(__builtin_frame_address(0));
  try {
    body(tx);
    tx.commit_nested();
  } catch (const TxUserAbort&) {
    tx.abort_nested();
  }
  // TxAbortException propagates: abort_self() already rolled back all
  // levels; only the top-level loop may retry.
}

template <typename F>
[[gnu::noinline]] void run_top(Tx& tx, F&& body) {
  const void* sp = __builtin_frame_address(0);
  for (;;) {
    tx.begin_top(sp);
    try {
      body(tx);
      tx.commit_top();
      return;
    } catch (const TxAbortException&) {
      // Conflict: state already rolled back; the plan's contention manager
      // decides whether (and how long) to pause before the retry.
      tx.after_abort_pause();
    } catch (const TxUserAbort&) {
      tx.cancel();
      return;
    } catch (...) {
      tx.cancel();
      throw;
    }
  }
}

}  // namespace detail

/// Executes @p body transactionally. The callable receives the transaction
/// descriptor used with tm_read/tm_write/tx_malloc. Exceptions other than
/// the internal control-flow types cancel the transaction and propagate.
template <typename F>
void atomic(F&& body) {
  Tx& tx = current_tx();
  if (tx.in_tx()) {
    detail::run_nested(tx, body);
  } else {
    detail::run_top(tx, body);
  }
}

}  // namespace cstm
