// Runtime globals and transaction lifecycle.
#include <pthread.h>

#include <mutex>
#include <vector>

#include "capture/private_registry.hpp"
#include "durable/durable_heap.hpp"
#include "stm/config.hpp"
#include "stm/descriptor.hpp"
#include "stm/gclock.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "support/cacheline.hpp"
#include "txmalloc/pool.hpp"

namespace cstm {

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

GlobalClock& global_clock() {
  static GlobalClock clock;
  return clock;
}

OrecTable& orec_table() {
  static OrecTable table;
  return table;
}

namespace {

std::mutex g_config_mutex;
TxConfig g_config{};
std::atomic<std::uint64_t> g_config_epoch{1};

struct StatsRegistry {
  std::mutex mutex;
  std::vector<Tx*> live;
  TxStats retired;
};

StatsRegistry& stats_registry() {
  static StatsRegistry registry;
  return registry;
}

thread_local std::uint64_t tls_seed_counter = 0;

std::uint64_t next_backoff_seed() {
  static std::atomic<std::uint64_t> counter{0x1234abcd};
  return counter.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) +
         (++tls_seed_counter);
}

// Quarantined blocks of threads that exited before their frees quiesced.
std::mutex g_orphan_mutex;
std::vector<Tx::QuarantinedBlock> g_orphans;

// Greedy contention manager: global age counter. Assigned once per
// top-level transaction (kept across its retries) in begin_top.
std::atomic<std::uint64_t> g_greedy_ticket{0};

/// Smallest snapshot timestamp among active transactions; kIdleEpoch when
/// none are active. A block freed at epoch e may be reused once
/// min_active_start() > e: no transaction that could hold a stale pointer
/// to it remains.
std::uint64_t min_active_start() {
  StatsRegistry& reg = stats_registry();
  std::lock_guard<std::mutex> lk(reg.mutex);
  std::uint64_t min_active = Tx::kIdleEpoch;
  for (Tx* t : reg.live) {
    const std::uint64_t a = t->active_since.load(std::memory_order_acquire);
    if (a < min_active) min_active = a;
  }
  return min_active;
}

/// Stamps and publishes a fresh timestamp from this descriptor's reserved
/// range, folding the clock traffic into its statistics. Every version that
/// ever reaches an unlocked orec word — commit, abort, cancel, nested abort
/// — comes through here, so released versions are always <= the published
/// epoch (a reader's extend() can always catch up; see gclock.hpp).
GlobalClock::Stamp stamp_and_count(Tx& tx) {
  const GlobalClock::Stamp s = global_clock().stamp_and_publish(tx.tclock);
  tx.stats.clock_reservations += s.reservations;
  tx.stats.clock_stale_discards += s.discards;
  return s;
}

/// Snapshots a conflicting lock owner's contention-manager priority. The
/// registry lock pins the descriptor: Tx::~Tx erases itself under the same
/// mutex, so a Tx* found in reg.live cannot be destroyed while we read it.
/// Returns false when the owner is no longer live — its lock word is a
/// leftover about to be irrelevant, so the caller simply waits it out.
bool owner_priority(const void* owner, bool want_ticket, std::uint64_t* out) {
  StatsRegistry& reg = stats_registry();
  std::lock_guard<std::mutex> lk(reg.mutex);
  for (Tx* t : reg.live) {
    if (t == owner) {
      *out = want_ticket ? t->cm_ticket.load(std::memory_order_relaxed)
                         : t->cm_karma.load(std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

/// Bounded wait for a lock we won the arbitration against (all policies are
/// suicide variants: we never abort the owner, we outwait it). Returns true
/// as soon as the word moves — released or re-locked, either way the
/// barrier should re-sample. Bounded so an owner preempted mid-commit can
/// never wedge us: on timeout the caller aborts self (deadlock safety).
bool wait_for_release(std::atomic<std::uint64_t>* rec,
                      std::uint64_t locked_word) {
  for (int i = 0; i < 2048; ++i) {
    cpu_relax();
    if (rec->load(std::memory_order_acquire) != locked_word) return true;
  }
  return false;
}

}  // namespace

void set_global_config(const TxConfig& cfg) {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  g_config = cfg;
  g_config_epoch.fetch_add(1, std::memory_order_release);
}

TxConfig global_config() {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  return g_config;
}

PrivateRegistry& thread_private_registry() {
  thread_local PrivateRegistry registry;
  return registry;
}

void add_private_memory_block(void* addr, std::size_t size) {
  thread_private_registry().add(addr, size);
}

void remove_private_memory_block(void* addr, std::size_t size) {
  thread_private_registry().remove(addr, size);
}

TxStats stats_snapshot() {
  StatsRegistry& reg = stats_registry();
  std::lock_guard<std::mutex> lk(reg.mutex);
  TxStats sum = reg.retired;
  for (Tx* tx : reg.live) sum.add(tx->stats);
  return sum;
}

void stats_reset() {
  StatsRegistry& reg = stats_registry();
  std::lock_guard<std::mutex> lk(reg.mutex);
  reg.retired.reset();
  for (Tx* tx : reg.live) tx->stats.reset();
}

// ---------------------------------------------------------------------------
// Descriptor lifecycle
// ---------------------------------------------------------------------------

Tx::Tx() : backoff_(next_backoff_seed()) {
  // Cache this thread's stack bounds: undo rollback must skip every entry
  // in [stack_low, start_sp) — memory that did not exist when the
  // transaction began is dead on abort, and by rollback time those
  // addresses may hold the live frames of the rollback code itself.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      stack_low = reinterpret_cast<std::uintptr_t>(addr);
    }
    pthread_attr_destroy(&attr);
  }
  StatsRegistry& reg = stats_registry();
  std::lock_guard<std::mutex> lk(reg.mutex);
  reg.live.push_back(this);
}

Tx::~Tx() {
  // Thread exit: hand any unquiesced frees to the global orphan list so
  // surviving threads release them once it is safe. (The thread-local pool
  // may already be parked at this point, so no direct deallocation here.)
  {
    std::lock_guard<std::mutex> lk(g_orphan_mutex);
    g_orphans.insert(g_orphans.end(), quarantine.begin(), quarantine.end());
  }
  quarantine.clear();
  StatsRegistry& reg = stats_registry();
  std::lock_guard<std::mutex> lk(reg.mutex);
  reg.retired.add(stats);
  std::erase(reg.live, this);
}

void Tx::flush_quarantine(bool force) {
  if (!force && quarantine.size() < 64) return;
  if (quarantine.empty() && !force) return;
  const std::uint64_t min_active = min_active_start();
  std::size_t kept = 0;
  for (const QuarantinedBlock& q : quarantine) {
    if (q.epoch < min_active) {
      Pool::deallocate(q.ptr);
    } else {
      quarantine[kept++] = q;
    }
  }
  quarantine.resize(kept);
  // Opportunistically drain orphaned quarantine from exited threads.
  std::vector<QuarantinedBlock> eligible;
  {
    std::lock_guard<std::mutex> lk(g_orphan_mutex);
    std::size_t okept = 0;
    for (const QuarantinedBlock& q : g_orphans) {
      if (q.epoch < min_active) {
        eligible.push_back(q);
      } else {
        g_orphans[okept++] = q;
      }
    }
    g_orphans.resize(okept);
  }
  for (const QuarantinedBlock& q : eligible) Pool::deallocate(q.ptr);
}

Tx& current_tx() {
  thread_local Tx tx;
  return tx;
}

void Tx::reset_logs() {
  rs.clear();
  ws.clear();
  undo.clear();
  levels.clear();
  freed_events.clear();
  alloc.clear();
  dlog.clear();
  durable_allocs.clear();
  // Only the plan's log is maintained, so only it needs a reset; tree_log()
  // and filter_log() construct the structure on the first transaction that
  // actually selects it.
  with_active_log([](auto& log) { log.clear(); });
  // Fold the array log's overflow counter (cumulative across clears, by
  // design) into the stats as a delta. Every transaction exit path — commit,
  // abort, cancel — and begin_top come through reset_logs, so the counter is
  // current whenever anyone snapshots stats or the adaptive policy samples.
  const std::uint64_t dropped = frame.array.dropped();
  if (dropped > array_dropped_seen_) {
    stats.array_overflows += dropped - array_dropped_seen_;
    array_dropped_seen_ = dropped;
  }
}

namespace {
thread_local std::uint64_t tls_cfg_epoch = 0;
}

void Tx::begin_top(const void* sp) {
  // Pick up configuration changes made between runs, and compile them into
  // this descriptor's barrier plan: every per-access config decision the
  // barriers used to make is resolved here, once.
  const std::uint64_t epoch = g_config_epoch.load(std::memory_order_acquire);
  if (epoch != tls_cfg_epoch) {
    cfg = global_config();
    tls_cfg_epoch = epoch;
    plan = BarrierPlan::compile(cfg);
    frame.nested_undo = cfg.nested_undo_for_captured;
    // A fresh config restarts the adaptive decision sequence from the
    // policy's start state (matching what compile() just normalized the
    // kAdaptive tag to), so identical runs of a workload make identical
    // decisions — the differential suite's bit-identical guarantee rests
    // on this determinism.
    adapt.reset();
    adapt_kind_ = AllocLogKind::kArray;
  }
  if (cfg.alloc_log == AllocLogKind::kAdaptive && !cfg.count_mode &&
      (cfg.heap_read || cfg.heap_write)) {
    // Online re-specialization: feed the policy this thread's cumulative
    // profile, and if its structure choice moved, recompile the plan with
    // the concrete kind substituted. Confined to begin_top: the barriers
    // keep dispatching on the compiled plan, zero extra branches per
    // access. Switching is safe mid-run because every structure is
    // conservative (false negatives only) and the outgoing log was cleared
    // when its last transaction ended.
    AdaptiveSample s;
    s.allocs = stats.tx_allocs;
    s.probes = stats.reads + stats.writes;
    s.array_overflows = stats.array_overflows;
    s.filter_words = filter_log_ ? filter_log_->words_marked() : 0;
    const AllocLogKind k = adapt.on_begin(s);
    switch (k) {
      case AllocLogKind::kTree: ++stats.adaptive_txs_tree; break;
      case AllocLogKind::kArray: ++stats.adaptive_txs_array; break;
      case AllocLogKind::kFilter: ++stats.adaptive_txs_filter; break;
      case AllocLogKind::kAdaptive: break;  // policy never returns the tag
    }
    if (k != adapt_kind_) {
      adapt_kind_ = k;
      ++stats.adaptive_switches;
      TxConfig concrete = cfg;
      concrete.alloc_log = k;
      plan = BarrierPlan::compile(concrete);
    }
  }
  flush_quarantine(/*force=*/false);
  if (plan.cm == ContentionPolicy::kGreedy &&
      cm_ticket.load(std::memory_order_relaxed) == kNoTicket) {
    // First attempt of this transaction: draw an age ticket. Retries keep
    // it (the transaction only gets older), commit/cancel clears it.
    cm_ticket.store(g_greedy_ticket.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  start_ts = global_clock().load();
  active_since.store(start_ts, std::memory_order_release);
  frame.stack_begin = reinterpret_cast<std::uintptr_t>(sp);
  depth = 1;
  frame.priv = &thread_private_registry();
  reset_logs();
  if (plan.log == ActiveLog::kFilter) {
    // The filter's O(1) clear is an epoch bump; re-cache the frame's view.
    frame.filter_epoch = filter_log().epoch();
  }
}

void Tx::begin_nested(const void* sp) {
  levels.push_back(LevelMark{rs.size(), ws.size(), undo.size(),
                             alloc.allocs.size(), alloc.deferred_frees.size(),
                             freed_events.size(), dlog.size(),
                             durable_allocs.size(), sp});
  ++depth;
}

void Tx::commit_nested() {
  levels.pop_back();
  --depth;
}

void Tx::commit_top() {
  if (!ws.empty()) {
    const GlobalClock::Stamp s = stamp_and_count(*this);
    // If our publication replaced exactly our begin snapshot, nothing was
    // published in between and the read set is trivially still valid — the
    // batched-clock form of the classic `wv == start_ts + 1` skip.
    // Otherwise revalidate before releasing. (Publication precedes the
    // releases below: invariant (2) in gclock.hpp.)
    if (s.prev_published != start_ts && !validate()) abort_self();
    // Durable leg BEFORE the orec releases below: no other transaction may
    // observe post-state that is not yet durably decided. (Durable work
    // with an empty write set cannot exist — every redo entry and every
    // durable alloc's cursor bump owns an orec.)
    if (plan.durable && (!dlog.empty() || !durable_allocs.empty())) {
      dur::commit_tx(*this);
    }
    const std::uint64_t word = orec::make_version(s.ts);
    for (const OwnedOrec& w : ws) {
      w.rec->store(word, std::memory_order_release);
    }
  }
  // Allocator commit actions. Blocks both allocated and freed inside this
  // transaction never escaped (their publishing writes were locked), so
  // they are released directly. Frees of *pre-transaction* memory are
  // quarantined: a doomed concurrent transaction may still write through a
  // stale pointer, and those bytes must not become allocator metadata until
  // every such transaction is gone (cf. McRT-Malloc's deferred reclamation).
  for (const AllocRecord& r : alloc.allocs) {
    if (r.freed_in_tx) Pool::deallocate(r.ptr);
  }
  if (!alloc.deferred_frees.empty()) {
    const std::uint64_t epoch = global_clock().load();
    for (void* p : alloc.deferred_frees) {
      quarantine.push_back(QuarantinedBlock{p, epoch});
    }
  }
  reset_logs();
  depth = 0;
  active_since.store(kIdleEpoch, std::memory_order_release);
  ++stats.commits;
  consecutive_aborts = 0;
  cm_karma.store(0, std::memory_order_relaxed);
  cm_ticket.store(kNoTicket, std::memory_order_relaxed);
}

void Tx::abort_self() {
  // Roll back memory, release ownership, undo allocations, in that order:
  // undo entries may point into blocks about to be returned to the pool.
  // Undo entries into the transaction's own (now possibly dead) stack
  // window are skipped — see UndoLog::rollback.
  //
  // Released records get a *fresh* clock version, not their pre-lock one:
  // restoring the old word would let a reader whose two orec samples
  // straddle our whole lock/dirty-write/rollback/release cycle accept a
  // dirty value (ABA on the version word). The bump forces revalidation —
  // occasionally spurious, never unsafe. Batched-clock note: stamps are
  // globally unique and discarded ranges are never reused (gclock.hpp
  // invariant (3)), so the freshness argument survives batching.
  undo.rollback(0, stack_low, frame.stack_begin);
  if (!ws.empty()) {
    const std::uint64_t av = orec::make_version(stamp_and_count(*this).ts);
    for (std::size_t i = ws.size(); i-- > 0;) {
      ws[i].rec->store(av, std::memory_order_release);
    }
  }
  for (std::size_t i = alloc.allocs.size(); i-- > 0;) {
    Pool::deallocate(alloc.allocs[i].ptr);
  }
  if (plan.cm == ContentionPolicy::kKarma) {
    // Work invested in the failed attempt raises next attempt's priority.
    cm_karma.fetch_add(rs.size() + ws.size() + 1, std::memory_order_relaxed);
  }
  // Deferred frees are dropped: the transaction did not happen.
  reset_logs();
  depth = 0;
  active_since.store(kIdleEpoch, std::memory_order_release);
  ++stats.aborts;
  ++consecutive_aborts;
  throw TxAbortException{};
}

void Tx::cancel() {
  undo.rollback(0, stack_low, frame.stack_begin);
  if (!ws.empty()) {
    const std::uint64_t av = orec::make_version(stamp_and_count(*this).ts);
    for (std::size_t i = ws.size(); i-- > 0;) {
      ws[i].rec->store(av, std::memory_order_release);
    }
  }
  for (std::size_t i = alloc.allocs.size(); i-- > 0;) {
    Pool::deallocate(alloc.allocs[i].ptr);
  }
  reset_logs();
  depth = 0;
  active_since.store(kIdleEpoch, std::memory_order_release);
  cm_karma.store(0, std::memory_order_relaxed);
  cm_ticket.store(kNoTicket, std::memory_order_relaxed);
}

void Tx::abort_nested() {
  const LevelMark m = levels.back();
  levels.pop_back();
  // Skip only the aborted level's dead stack window; locals of enclosing
  // levels (between level_sp and start_sp) are live-in for this child and
  // must be restored (Section 2.2.1).
  undo.rollback(m.undo, stack_low,
                reinterpret_cast<std::uintptr_t>(m.level_sp));
  if (ws.size() > m.ws) {
    const std::uint64_t av = orec::make_version(stamp_and_count(*this).ts);
    for (std::size_t i = ws.size(); i-- > m.ws;) {
      ws[i].rec->store(av, std::memory_order_release);
      // The fresh stamp protects CONCURRENT readers from ABA, but it must
      // not doom the surviving enclosing levels: if an outer level read
      // this record before the aborted child locked it (observed ==
      // the child's pre-lock word), the value it read is still there — we
      // held the lock from acquisition to this very release and the undo
      // above restored the pre-lock bytes. Advance those read entries to
      // the released version, i.e. apply the validate() rule for
      // self-locked records eagerly, at the moment the lock disappears.
      // Without this the parent's commit validation fails against its own
      // child's release stamp — deterministically, so the merged batch
      // (or any nested-abort-then-commit pattern) retries forever.
      for (std::size_t j = 0; j < m.rs; ++j) {
        if (rs[j].rec == ws[i].rec && rs[j].observed == ws[i].prev) {
          rs[j].observed = av;
        }
      }
    }
  }
  ws.truncate(m.ws);
  rs.truncate(m.rs);
  // Undo frees performed in the aborted level on blocks allocated by an
  // ancestor: restore their live status (and their capture-log entries).
  for (std::size_t i = freed_events.size(); i-- > m.freed_events;) {
    const std::size_t idx = freed_events[i];
    if (idx < m.allocs) {
      alloc.allocs[idx].freed_in_tx = false;
      alloc_log_insert(alloc.allocs[idx].ptr, alloc.allocs[idx].size);
    }
  }
  freed_events.resize(m.freed_events);
  // Undo allocations performed in the aborted level.
  for (std::size_t i = alloc.allocs.size(); i-- > m.allocs;) {
    const AllocRecord& r = alloc.allocs[i];
    if (!r.freed_in_tx) alloc_log_erase(r.ptr, r.size);
    Pool::deallocate(r.ptr);
  }
  alloc.allocs.resize(m.allocs);
  alloc.deferred_frees.resize(m.frees);
  // Durable mode: drop the aborted level's redo entries and unwind its
  // durable-region allocations (the bump cursor itself was restored by the
  // undo rollback above — it is ordinary transactional data).
  dlog.truncate(m.dlog);
  for (std::size_t i = durable_allocs.size(); i-- > m.dallocs;) {
    alloc_log_erase(durable_allocs[i].ptr, durable_allocs[i].size);
  }
  durable_allocs.resize(m.dallocs);
  --depth;
  ++stats.nested_partial_aborts;
}

bool Tx::validate() const {
  for (const ReadEntry& e : rs) {
    const std::uint64_t cur = e.rec->load(std::memory_order_acquire);
    if (cur == e.observed) continue;
    if (orec::is_locked(cur) && orec::owner_of(cur) == this) {
      // We locked this record after reading it; valid iff the pre-lock
      // version matches what the read observed.
      bool ok = false;
      for (const OwnedOrec& w : ws) {
        if (w.rec == e.rec) {
          ok = (w.prev == e.observed);
          break;
        }
      }
      if (ok) continue;
    }
    return false;
  }
  return true;
}

bool Tx::extend() {
  // Lazy revalidation against the published epoch: the snapshot moves
  // forward only after the whole read set re-checks clean. The version
  // that triggered this extend was released AFTER its publication
  // (gclock.hpp invariant (2)), so `now` is always >= that version and
  // a successful extend really does cover it.
  const std::uint64_t now = global_clock().load();
  ++stats.lazy_revalidations;
  if (!validate()) return false;
  start_ts = now;
  return true;
}

void Tx::on_conflict(std::atomic<std::uint64_t>* rec) {
  // Conflict slow path. Dispatches on the plan's compiled-in contention
  // manager — cfg is never consulted here, mirroring how the barrier paths
  // were devirtualized in the plan. Returning (instead of aborting) means
  // "re-sample the record": all policies are suicide variants, so the only
  // ways out are the lock moving or this transaction aborting itself.
  switch (plan.cm) {
    case ContentionPolicy::kBackoff:
      ++stats.cm_aborts_backoff;
      break;
    case ContentionPolicy::kSuicide:
      ++stats.cm_aborts_suicide;
      break;
    case ContentionPolicy::kSpinThenAbort:
      for (int i = 0; i < 512; ++i) {
        cpu_relax();
        if (!orec::is_locked(rec->load(std::memory_order_acquire))) return;
      }
      ++stats.cm_aborts_spin;
      break;
    case ContentionPolicy::kKarma: {
      const std::uint64_t word = rec->load(std::memory_order_acquire);
      if (!orec::is_locked(word)) return;  // already released: re-sample
      const void* owner = orec::owner_of(word);
      // Effective karma counts work banked by earlier aborted attempts
      // plus the current attempt's logged accesses.
      const std::uint64_t mine = cm_karma.load(std::memory_order_relaxed) +
                                 rs.size() + ws.size();
      std::uint64_t his = 0;
      CmDecision d = CmDecision::kWait;  // owner gone => lock is leaving
      if (owner_priority(owner, /*want_ticket=*/false, &his)) {
        d = karma_arbitrate(mine, his, this, owner);
      }
      if (d == CmDecision::kWait && wait_for_release(rec, word)) return;
      ++stats.cm_aborts_karma;
      break;
    }
    case ContentionPolicy::kGreedy: {
      const std::uint64_t word = rec->load(std::memory_order_acquire);
      if (!orec::is_locked(word)) return;
      const void* owner = orec::owner_of(word);
      const std::uint64_t mine = cm_ticket.load(std::memory_order_relaxed);
      // An owner without a ticket (mixed-policy run or already tearing
      // down) compares as youngest: we wait for it, bounded.
      std::uint64_t his = kNoTicket;
      owner_priority(owner, /*want_ticket=*/true, &his);
      const CmDecision d = greedy_arbitrate(mine, his);
      if (d == CmDecision::kWait && wait_for_release(rec, word)) return;
      ++stats.cm_aborts_greedy;
      break;
    }
  }
  abort_self();
}

void Tx::after_abort_pause() {
  switch (plan.cm) {
    case ContentionPolicy::kBackoff:
      pause_backoff();
      break;
    case ContentionPolicy::kSuicide:
    case ContentionPolicy::kSpinThenAbort:
      break;
    case ContentionPolicy::kKarma:
    case ContentionPolicy::kGreedy:
      // Priority schemes retry immediately — arbitration itself orders the
      // contenders. After a pile of consecutive aborts (e.g. lockstep on
      // one core), a short capped randomized pause breaks the phase
      // without inverting priorities for long.
      if (consecutive_aborts >= 4) {
        backoff_.pause(consecutive_aborts < 8 ? consecutive_aborts : 8);
      }
      break;
  }
}

}  // namespace cstm
