// STM read and write barriers with runtime and compile-time capture
// analysis (paper Figure 2 and Section 3).
//
// Algorithm (in-place update, encounter-time locking, optimistic readers):
//  * read: sample orec, read value, resample; validate version against the
//    transaction timestamp, extending the timestamp on demand.
//  * write: acquire the orec by CAS, record the pre-image in the undo log,
//    store in place.
// Capture fast paths come first: a barrier on captured memory degenerates
// to a plain CPU access plus a counter increment.
#pragma once

#include <atomic>
#include <type_traits>

#include "stm/descriptor.hpp"
#include "stm/site.hpp"

namespace cstm {

template <typename T>
concept TmValue = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

namespace detail {

// Relaxed atomic accesses keep racy loads/stores well-defined without
// changing x86-64 codegen relative to plain moves.
template <TmValue T>
T load_relaxed(const T* p) {
  T v;
  __atomic_load(const_cast<T*>(p), &v, __ATOMIC_RELAXED);
  return v;
}

template <TmValue T>
void store_relaxed(T* p, T v) {
  __atomic_store(p, &v, __ATOMIC_RELAXED);
}

template <TmValue T>
T full_tm_read(Tx& tx, const T* addr) {
  auto& rec = orec_table().slot(addr);
  for (;;) {
    const std::uint64_t v1 = rec.load(std::memory_order_acquire);
    if (orec::is_locked(v1)) {
      if (orec::owner_of(v1) == &tx) return load_relaxed(addr);  // read-own
      tx.on_conflict(&rec);
      continue;
    }
    const T val = load_relaxed(addr);
    const std::uint64_t v2 = rec.load(std::memory_order_acquire);
    if (v1 != v2) continue;  // changed underneath us; retry
    if (orec::version_of(v1) > tx.start_ts) {
      if (!tx.extend()) tx.abort_self();
      continue;  // timestamp extended; revalidate this orec
    }
    tx.rs.push(ReadEntry{&rec, v1});
    return val;
  }
}

template <TmValue T>
void full_tm_write(Tx& tx, T* addr, T value) {
  auto& rec = orec_table().slot(addr);
  for (;;) {
    std::uint64_t v = rec.load(std::memory_order_acquire);
    if (orec::is_locked(v)) {
      if (orec::owner_of(v) == &tx) {
        // Write-after-write fast path: lock already held.
        ++tx.stats.write_own_fast;
        tx.undo.record(addr, sizeof(T));
        store_relaxed(addr, value);
        return;
      }
      tx.on_conflict(&rec);
      continue;
    }
    if (orec::version_of(v) > tx.start_ts) {
      if (!tx.extend()) tx.abort_self();
      continue;
    }
    if (rec.compare_exchange_weak(v, orec::make_lock(&tx),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      tx.ws.push(OwnedOrec{&rec, v});
      tx.undo.record(addr, sizeof(T));
      store_relaxed(addr, value);
      return;
    }
  }
}

inline void classify_access(Tx& tx, const void* addr, std::size_t n,
                            const Site& site, bool is_write) {
  const CaptureKind k = tx.classify(addr, n);
  TxStats& s = tx.stats;
  if (is_write) {
    switch (k) {
      case CaptureKind::kHeap: ++s.write_cap_heap; return;
      case CaptureKind::kStack: ++s.write_cap_stack; return;
      default: break;
    }
    if (site.manual) ++s.write_required; else ++s.write_not_required;
  } else {
    switch (k) {
      case CaptureKind::kHeap: ++s.read_cap_heap; return;
      case CaptureKind::kStack: ++s.read_cap_stack; return;
      default: break;
    }
    if (site.manual) ++s.read_required; else ++s.read_not_required;
  }
}

}  // namespace detail

/// Transactional read of *addr. Outside a transaction this is a plain load,
/// which lets the same code run for sequential setup and verification.
template <TmValue T>
T tm_read(Tx& tx, const T* addr, const Site& site = kSharedSite) {
  if (!tx.in_tx()) return *addr;
  ++tx.stats.reads;
  if (tx.cfg.count_mode) [[unlikely]] {
    detail::classify_access(tx, addr, sizeof(T), site, /*is_write=*/false);
  }
  if (tx.cfg.static_elision && site.static_captured) {
    ++tx.stats.read_elided_static;
    return *addr;
  }
  if (tx.cfg.any_read_check()) {
    switch (tx.runtime_captured(addr, sizeof(T), /*is_write=*/false)) {
      case CaptureKind::kStack: ++tx.stats.read_elided_stack; return *addr;
      case CaptureKind::kHeap: ++tx.stats.read_elided_heap; return *addr;
      case CaptureKind::kPrivate: ++tx.stats.read_elided_private; return *addr;
      case CaptureKind::kNone: break;
    }
  }
  return detail::full_tm_read(tx, addr);
}

/// Transactional write of @p value to *addr. Outside a transaction this is a
/// plain store.
template <TmValue T>
void tm_write(Tx& tx, T* addr, T value, const Site& site = kSharedSite) {
  if (!tx.in_tx()) {
    *addr = value;
    return;
  }
  ++tx.stats.writes;
  if (tx.cfg.count_mode) [[unlikely]] {
    detail::classify_access(tx, addr, sizeof(T), site, /*is_write=*/true);
  }
  if (tx.cfg.static_elision && site.static_captured) {
    ++tx.stats.write_elided_static;
    *addr = value;
    return;
  }
  if (tx.cfg.any_write_check()) {
    const CaptureKind k = tx.runtime_captured(addr, sizeof(T), /*is_write=*/true);
    if (k != CaptureKind::kNone) {
      // Captured writes in a *nested* transaction still need a pre-image so
      // a partial abort can restore memory live-in to the child
      // (Section 2.2.1); at nesting depth 1 the memory dies on abort.
      if (tx.depth > 1 && tx.cfg.nested_undo_for_captured) {
        tx.undo.record(addr, sizeof(T));
      }
      switch (k) {
        case CaptureKind::kStack: ++tx.stats.write_elided_stack; break;
        case CaptureKind::kHeap: ++tx.stats.write_elided_heap; break;
        case CaptureKind::kPrivate: ++tx.stats.write_elided_private; break;
        case CaptureKind::kNone: break;
      }
      detail::store_relaxed(addr, value);
      return;
    }
  }
  detail::full_tm_write(tx, addr, value);
}

/// Transactional fetch-add used by counters: reads and writes *addr through
/// the SAME Site on one explicit path, so the two legs of the
/// read-modify-write can never disagree on capture classification. Returns
/// the previous value. Outside a transaction this is a plain load + store,
/// mirroring tm_read/tm_write.
template <TmValue T>
T tm_add(Tx& tx, T* addr, T delta, const Site& site = kSharedSite) {
  if (!tx.in_tx()) {
    const T old = *addr;
    *addr = static_cast<T>(old + delta);
    return old;
  }
  const T old = tm_read(tx, addr, site);
  tm_write(tx, addr, static_cast<T>(old + delta), site);
  return old;
}

}  // namespace cstm
