// STM read and write barriers with runtime and compile-time capture
// analysis (paper Figure 2 and Section 3).
//
// Algorithm (in-place update, encounter-time locking, optimistic readers):
//  * read: sample orec, read value, resample; validate version against the
//    transaction timestamp, extending the timestamp on demand.
//  * write: acquire the orec by CAS, record the pre-image in the undo log,
//    store in place.
//
// Capture fast paths come first: a barrier on captured memory degenerates
// to a plain CPU access plus a counter increment. Which fast path runs is
// decided ONCE per transaction: begin_top compiles the TxConfig into a
// BarrierPlan (stm/barrier_plan.hpp), and each barrier dispatches on the
// plan's per-direction slot to a fully specialized path — zero config
// branches, zero indirect calls, membership state read straight from the
// packed CaptureFrame in the descriptor. Arbitrary hand-rolled configs that
// match no specialized path fall back to kGeneric, which re-derives the
// checks from cfg per access (the pre-plan behavior).
#pragma once

#include <atomic>
#include <type_traits>

#include "stm/descriptor.hpp"
#include "stm/site.hpp"

namespace cstm {

template <typename T>
concept TmValue = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

namespace detail {

// Relaxed atomic accesses keep racy loads/stores well-defined without
// changing x86-64 codegen relative to plain moves.
template <TmValue T>
T load_relaxed(const T* p) {
  T v;
  __atomic_load(const_cast<T*>(p), &v, __ATOMIC_RELAXED);
  return v;
}

template <TmValue T>
void store_relaxed(T* p, T v) {
  __atomic_store(p, &v, __ATOMIC_RELAXED);
}

template <TmValue T>
[[gnu::noinline]] T full_tm_read(Tx& tx, const T* addr) {
  auto& rec = orec_table().slot(addr);
  for (;;) {
    const std::uint64_t v1 = rec.load(std::memory_order_acquire);
    if (orec::is_locked(v1)) {
      if (orec::owner_of(v1) == &tx) return load_relaxed(addr);  // read-own
      tx.on_conflict(&rec);
      continue;
    }
    const T val = load_relaxed(addr);
    const std::uint64_t v2 = rec.load(std::memory_order_acquire);
    if (v1 != v2) continue;  // changed underneath us; retry
    if (orec::version_of(v1) > tx.start_ts) {
      if (!tx.extend()) tx.abort_self();
      continue;  // timestamp extended; revalidate this orec
    }
    tx.rs.push(ReadEntry{&rec, v1});
    return val;
  }
}

template <TmValue T>
[[gnu::noinline]] void full_tm_write(Tx& tx, T* addr, T value) {
  auto& rec = orec_table().slot(addr);
  for (;;) {
    std::uint64_t v = rec.load(std::memory_order_acquire);
    if (orec::is_locked(v)) {
      if (orec::owner_of(v) == &tx) {
        // Write-after-write fast path: lock already held.
        ++tx.stats.write_own_fast;
        tx.undo.record(addr, sizeof(T));
        store_relaxed(addr, value);
        if (tx.plan.durable) tx.durable_record(addr, sizeof(T));
        return;
      }
      tx.on_conflict(&rec);
      continue;
    }
    if (orec::version_of(v) > tx.start_ts) {
      if (!tx.extend()) tx.abort_self();
      continue;
    }
    if (rec.compare_exchange_weak(v, orec::make_lock(&tx),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      tx.ws.push(OwnedOrec{&rec, v});
      tx.undo.record(addr, sizeof(T));
      store_relaxed(addr, value);
      if (tx.plan.durable) tx.durable_record(addr, sizeof(T));
      return;
    }
  }
}

inline void classify_access(Tx& tx, const void* addr, std::size_t n,
                            const Site& site, bool is_write) {
  const CaptureKind k = tx.classify(addr, n);
  TxStats& s = tx.stats;
  if (is_write) {
    switch (k) {
      case CaptureKind::kHeap: ++s.write_cap_heap; return;
      case CaptureKind::kStack: ++s.write_cap_stack; return;
      default: break;
    }
    if (site.manual) ++s.write_required; else ++s.write_not_required;
  } else {
    switch (k) {
      case CaptureKind::kHeap: ++s.read_cap_heap; return;
      case CaptureKind::kStack: ++s.read_cap_stack; return;
      default: break;
    }
    if (site.manual) ++s.read_required; else ++s.read_not_required;
  }
}

// ---------------------------------------------------------------------------
// Specialized plan paths
// ---------------------------------------------------------------------------
// One instantiation per BarrierPath family member. The spec is a structural
// NTTP, so every `if constexpr` below folds away and each path compiles to
// exactly its checks, in Figure 2's cheapest-first order, with membership
// read straight off tx.frame.

struct PathSpec {
  bool stack = false;
  bool heap = false;
  AllocLogKind log = AllocLogKind::kTree;  // meaningful only when heap
  bool priv = false;
};

inline constexpr PathSpec kPathSHPTree{true, true, AllocLogKind::kTree, true};
inline constexpr PathSpec kPathSHPArray{true, true, AllocLogKind::kArray, true};
inline constexpr PathSpec kPathSHPFilter{true, true, AllocLogKind::kFilter,
                                         true};
inline constexpr PathSpec kPathHeapTree{false, true, AllocLogKind::kTree,
                                        false};
inline constexpr PathSpec kPathHeapArray{false, true, AllocLogKind::kArray,
                                         false};
inline constexpr PathSpec kPathHeapFilter{false, true, AllocLogKind::kFilter,
                                          false};

template <PathSpec P>
[[gnu::always_inline]] inline bool heap_hit(const CaptureFrame& f,
                                            const void* addr, std::size_t n) {
  if constexpr (P.log == AllocLogKind::kArray) {
    return f.array_contains(addr, n);
  } else if constexpr (P.log == AllocLogKind::kFilter) {
    return f.filter_contains(addr, n);
  } else {
    return f.tree_contains(addr, n);
  }
}

/// Store to memory classified captured. Captured writes in a *nested*
/// transaction still need a pre-image so a partial abort can restore memory
/// live-in to the child (Section 2.2.1); at nesting depth 1 the memory dies
/// on abort.
template <TmValue T>
[[gnu::always_inline]] inline void captured_store(Tx& tx, T* addr, T value) {
  if (tx.depth > 1 && tx.frame.nested_undo) [[unlikely]] {
    tx.undo.record(addr, sizeof(T));
  }
  store_relaxed(addr, value);
}

template <PathSpec P, TmValue T>
[[gnu::always_inline]] inline T plan_read(Tx& tx, const T* addr) {
  if constexpr (P.stack) {
    if (tx.frame.on_tx_stack(addr, sizeof(T))) {
      ++tx.stats.read_elided_stack;
      return *addr;
    }
  }
  if constexpr (P.heap) {
    if (heap_hit<P>(tx.frame, addr, sizeof(T))) {
      ++tx.stats.read_elided_heap;
      return *addr;
    }
  }
  if constexpr (P.priv) {
    if (tx.frame.priv_contains(addr, sizeof(T))) {
      ++tx.stats.read_elided_private;
      return *addr;
    }
  }
  return full_tm_read(tx, addr);
}

template <PathSpec P, TmValue T>
[[gnu::always_inline]] inline void plan_write(Tx& tx, T* addr, T value) {
  if constexpr (P.stack) {
    if (tx.frame.on_tx_stack(addr, sizeof(T))) {
      ++tx.stats.write_elided_stack;
      captured_store(tx, addr, value);
      return;
    }
  }
  if constexpr (P.heap) {
    if (heap_hit<P>(tx.frame, addr, sizeof(T))) {
      ++tx.stats.write_elided_heap;
      captured_store(tx, addr, value);
      return;
    }
  }
  if constexpr (P.priv) {
    if (tx.frame.priv_contains(addr, sizeof(T))) {
      ++tx.stats.write_elided_private;
      captured_store(tx, addr, value);
      return;
    }
  }
  full_tm_write(tx, addr, value);
}

// ---------------------------------------------------------------------------
// Generic fallback (BarrierPath::kGeneric)
// ---------------------------------------------------------------------------
// Re-derives every check from cfg per access — the pre-plan behavior, kept
// for flag combinations no specialized path covers.

template <TmValue T>
[[gnu::noinline]] T generic_tm_read(Tx& tx, const T* addr, const Site& site) {
  if (tx.cfg.count_mode) [[unlikely]] {
    classify_access(tx, addr, sizeof(T), site, /*is_write=*/false);
  }
  if (tx.cfg.static_elision && site.read_elidable()) {
    ++tx.stats.read_elided_static;
    return *addr;
  }
  if (tx.cfg.any_read_check()) {
    switch (tx.runtime_captured(addr, sizeof(T), /*is_write=*/false)) {
      case CaptureKind::kStack: ++tx.stats.read_elided_stack; return *addr;
      case CaptureKind::kHeap: ++tx.stats.read_elided_heap; return *addr;
      case CaptureKind::kPrivate: ++tx.stats.read_elided_private; return *addr;
      case CaptureKind::kNone: break;
    }
  }
  return full_tm_read(tx, addr);
}

template <TmValue T>
[[gnu::noinline]] void generic_tm_write(Tx& tx, T* addr, T value, const Site& site) {
  if (tx.cfg.count_mode) [[unlikely]] {
    classify_access(tx, addr, sizeof(T), site, /*is_write=*/true);
  }
  if (tx.cfg.static_elision && site.write_elidable()) {
    ++tx.stats.write_elided_static;
    *addr = value;
    return;
  }
  if (tx.cfg.any_write_check()) {
    const CaptureKind k = tx.runtime_captured(addr, sizeof(T), /*is_write=*/true);
    if (k != CaptureKind::kNone) {
      switch (k) {
        case CaptureKind::kStack: ++tx.stats.write_elided_stack; break;
        case CaptureKind::kHeap: ++tx.stats.write_elided_heap; break;
        case CaptureKind::kPrivate: ++tx.stats.write_elided_private; break;
        case CaptureKind::kNone: break;
      }
      captured_store(tx, addr, value);
      return;
    }
  }
  full_tm_write(tx, addr, value);
}

}  // namespace detail

/// Transactional read of *addr. Outside a transaction this is a plain load,
/// which lets the same code run for sequential setup and verification.
///
/// Force-inlined: with the full barrier and the generic fallback outlined,
/// what remains is the plan dispatch plus the capture checks — exactly the
/// code that must sit in the caller's loop for an elided access to cost a
/// couple of instructions (the seed inlined its smaller, branchier
/// equivalent; without the attribute GCC balks at the switch's size).
template <TmValue T>
[[gnu::always_inline]] inline T tm_read(Tx& tx, const T* addr,
                                        const Site& site = kSharedSite) {
  if (!tx.in_tx()) return *addr;
  ++tx.stats.reads;
  switch (tx.plan.read) {
    case BarrierPath::kFull:
      break;
    case BarrierPath::kStatic:
      if (site.read_elidable()) {
        ++tx.stats.read_elided_static;
        return *addr;
      }
      break;
    case BarrierPath::kStackHeapPrivTree:
      return detail::plan_read<detail::kPathSHPTree>(tx, addr);
    case BarrierPath::kStackHeapPrivArray:
      return detail::plan_read<detail::kPathSHPArray>(tx, addr);
    case BarrierPath::kStackHeapPrivFilter:
      return detail::plan_read<detail::kPathSHPFilter>(tx, addr);
    case BarrierPath::kHeapTree:
      return detail::plan_read<detail::kPathHeapTree>(tx, addr);
    case BarrierPath::kHeapArray:
      return detail::plan_read<detail::kPathHeapArray>(tx, addr);
    case BarrierPath::kHeapFilter:
      return detail::plan_read<detail::kPathHeapFilter>(tx, addr);
    case BarrierPath::kCounting:
      detail::classify_access(tx, addr, sizeof(T), site, /*is_write=*/false);
      break;
    case BarrierPath::kGeneric:
      return detail::generic_tm_read(tx, addr, site);
  }
  return detail::full_tm_read(tx, addr);
}

/// Transactional write of @p value to *addr. Outside a transaction this is a
/// plain store. Force-inlined for the same reason as tm_read.
template <TmValue T>
[[gnu::always_inline]] inline void tm_write(Tx& tx, T* addr, T value,
                                            const Site& site = kSharedSite) {
  if (!tx.in_tx()) {
    *addr = value;
    return;
  }
  ++tx.stats.writes;
  switch (tx.plan.write) {
    case BarrierPath::kFull:
      break;
    case BarrierPath::kStatic:
      if (site.write_elidable()) {
        ++tx.stats.write_elided_static;
        *addr = value;
        return;
      }
      break;
    case BarrierPath::kStackHeapPrivTree:
      return detail::plan_write<detail::kPathSHPTree>(tx, addr, value);
    case BarrierPath::kStackHeapPrivArray:
      return detail::plan_write<detail::kPathSHPArray>(tx, addr, value);
    case BarrierPath::kStackHeapPrivFilter:
      return detail::plan_write<detail::kPathSHPFilter>(tx, addr, value);
    case BarrierPath::kHeapTree:
      return detail::plan_write<detail::kPathHeapTree>(tx, addr, value);
    case BarrierPath::kHeapArray:
      return detail::plan_write<detail::kPathHeapArray>(tx, addr, value);
    case BarrierPath::kHeapFilter:
      return detail::plan_write<detail::kPathHeapFilter>(tx, addr, value);
    case BarrierPath::kCounting:
      detail::classify_access(tx, addr, sizeof(T), site, /*is_write=*/true);
      break;
    case BarrierPath::kGeneric:
      return detail::generic_tm_write(tx, addr, value, site);
  }
  detail::full_tm_write(tx, addr, value);
}

/// Transactional fetch-add used by counters: reads and writes *addr through
/// the SAME Site on one explicit path, so the two legs of the
/// read-modify-write can never disagree on capture classification. Returns
/// the previous value. Outside a transaction this is a plain load + store,
/// mirroring tm_read/tm_write.
template <TmValue T>
T tm_add(Tx& tx, T* addr, T delta, const Site& site = kSharedSite) {
  if (!tx.in_tx()) {
    const T old = *addr;
    *addr = static_cast<T>(old + delta);
    return old;
  }
  const T old = tm_read(tx, addr, site);
  tm_write(tx, addr, static_cast<T>(old + delta), site);
  return old;
}

}  // namespace cstm
