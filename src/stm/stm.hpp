// Umbrella header: the full capstm public API.
//
//   cstm::tvar<std::uint64_t> shared{0};
//   cstm::atomic([&](cstm::Tx& tx) {
//     shared.set(tx, shared.get(tx) + 1);
//   });
//
// The typed accessors (tvar/tfield/tvar_array/tspan, stm/tvar.hpp) are the
// preferred front end; the raw barrier functions (tm_read/tm_write/tm_add,
// stm/barriers.hpp) remain the documented low-level backend.
//
// Configuration presets (TxConfig::baseline/runtime_rw/runtime_w/
// runtime_heap_w/compiler) select the paper's optimization variants.
#pragma once

#include "capture/private_registry.hpp"
#include "stm/barriers.hpp"
#include "stm/config.hpp"
#include "stm/descriptor.hpp"
#include "stm/site.hpp"
#include "stm/stats.hpp"
#include "stm/tvar.hpp"
#include "stm/txn.hpp"
#include "txbatch/batcher.hpp"
#include "txmalloc/txalloc.hpp"
