// Umbrella header: the full capstm public API.
//
//   cstm::atomic([&](cstm::Tx& tx) {
//     int v = cstm::tm_read(tx, &shared);
//     cstm::tm_write(tx, &shared, v + 1);
//   });
//
// Configuration presets (TxConfig::baseline/runtime_rw/runtime_w/
// runtime_heap_w/compiler) select the paper's optimization variants.
#pragma once

#include "capture/private_registry.hpp"
#include "stm/barriers.hpp"
#include "stm/config.hpp"
#include "stm/descriptor.hpp"
#include "stm/site.hpp"
#include "stm/stats.hpp"
#include "stm/txn.hpp"
#include "txmalloc/txalloc.hpp"
