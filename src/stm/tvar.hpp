// Typed transactional-object API: the preferred front end over the raw
// tm_read/tm_write barrier functions.
//
// The paper's central argument is that barrier placement and elision
// decisions belong to the instrumentation layer, not the application
// (Section 3). The raw API scatters that decision across every call site:
// each tm_read(tx, &x, site) picks a Site by hand, and a wrong or missing
// Site silently corrupts the measurement methodology (Section 4.1) or the
// static-elision soundness. The typed API binds the Site to the *field
// type* instead, so the decision is made exactly once, next to the data:
//
//   cstm::tvar<std::uint64_t, my_sites::kCounter> counter{0};
//   cstm::atomic([&](cstm::Tx& tx) {
//     counter.set(tx, counter.get(tx) + 1);   // explicit accessors
//     counter.add(tx, 1);                     // read-modify-write
//     counter(tx) += 1;                       // bound-reference proxy
//   });
//
// Vocabulary (all compile down to the same barrier call with the Site
// resolved statically — zero runtime cost over the raw functions):
//
//  * tvar<T, Site>       — a standalone transactional variable.
//  * tfield<T, Site>     — the same wrapper, named for struct members of
//                          transactional objects; adds meaning, not code.
//  * tvar_array<T, N, S> — a fixed-size array of transactional slots
//                          (query buffers, per-task scratch).
//  * tspan<T, S>         — a transactional view over external storage
//                          (vector backing stores, bucket arrays).
//
// Every wrapper also exposes init(tx, v): an initializing store for memory
// freshly allocated in this transaction (tx_new). init routes through a
// Site derived from the field's Site with manual=false and
// verdict=Verdict::kCaptured — the paper's "compiler over-instrumented,
// capture analysis elides" classification — so constructing an object
// inside a transaction automatically gets the captured-memory fast path
// without the call site naming a second Site.
//
// Outside-transaction access for setup/verification code uses peek()/
// poke(), which are plain loads/stores (the barriers degenerate to the
// same thing outside a transaction; peek/poke just say so in the name).
//
// The raw tm_read/tm_write/tm_add free functions in stm/barriers.hpp
// remain the documented low-level backend for code that must pick Sites
// dynamically; see docs/ARCHITECTURE.md ("low-level barrier API").
#pragma once

#include <concepts>
#include <cstddef>

#include "stm/barriers.hpp"

namespace cstm {

template <typename T, const Site& S = kSharedSite>
  requires TmValue<T>
class tvar {
 public:
  using value_type = T;

  /// The Site every get/set/add on this field type routes through.
  static constexpr const Site& site() { return S; }

  /// Initializing stores (init) are compiler-provably captured: the object
  /// was allocated in this transaction, so a naive compiler's barrier here
  /// is over-instrumentation that capture analysis elides (Section 3.2).
  static constexpr Site kInitSite{S.name, /*manual=*/false,
                                  Verdict::kCaptured};

  constexpr tvar() = default;
  constexpr tvar(T v) : raw_(v) {}  // NOLINT: aggregate-style member init

  // -- Transactional accessors ----------------------------------------------
  T get(Tx& tx) const { return tm_read(tx, &raw_, S); }
  void set(Tx& tx, T v) { tm_write(tx, &raw_, v, S); }
  /// Fetch-add; returns the previous value.
  T add(Tx& tx, T delta) { return tm_add(tx, &raw_, delta, S); }
  /// Initializing store right after tx_new (see kInitSite above).
  void init(Tx& tx, T v) { tm_write(tx, &raw_, v, kInitSite); }

  // -- Bound-reference proxy -------------------------------------------------
  /// tvar(tx) yields a reference-like object usable as a T lvalue:
  ///   v(tx) = 3;  x = v(tx);  v(tx) += 2;
  class ref {
   public:
    ref(Tx& tx, tvar& v) : tx_(&tx), var_(&v) {}
    operator T() const { return var_->get(*tx_); }
    ref& operator=(T v) {
      var_->set(*tx_, v);
      return *this;
    }
    // `dst(tx) = src(tx)` must copy the value, not rebind the proxy (the
    // implicit copy assignment would win overload resolution otherwise).
    ref& operator=(const ref& o) { return *this = static_cast<T>(o); }
    ref& operator+=(T delta) {
      var_->add(*tx_, delta);
      return *this;
    }

   private:
    Tx* tx_;
    tvar* var_;
  };
  ref operator()(Tx& tx) { return ref(tx, *this); }
  T operator()(Tx& tx) const { return get(tx); }

  // -- Non-transactional access (setup / teardown / verification) -----------
  T peek() const { return raw_; }
  void poke(T v) { raw_ = v; }

  /// Escape hatch to the raw barrier API (address of the wrapped value).
  T* raw() { return &raw_; }
  const T* raw() const { return &raw_; }

 private:
  T raw_;
};

/// A tvar used as a member of a transactional object (a struct allocated
/// with tx_new and reached through transactional pointers). Identical to
/// tvar; the distinct name documents intent at the declaration site.
template <typename T, const Site& S = kSharedSite>
using tfield = tvar<T, S>;

/// Fixed-size array of transactional slots with one statically bound Site
/// for every element (thread-local query buffers, per-task scratch arrays).
/// Zero-initialized, like the stack arrays it replaces.
template <typename T, std::size_t N, const Site& S = kSharedSite>
  requires TmValue<T>
class tvar_array {
 public:
  using value_type = T;

  static constexpr const Site& site() { return S; }
  static constexpr Site kInitSite{S.name, /*manual=*/false,
                                  Verdict::kCaptured};

  T get(Tx& tx, std::size_t i) const { return tm_read(tx, &raw_[i], S); }
  void set(Tx& tx, std::size_t i, T v) { tm_write(tx, &raw_[i], v, S); }
  T add(Tx& tx, std::size_t i, T delta) {
    return tm_add(tx, &raw_[i], delta, S);
  }
  void init(Tx& tx, std::size_t i, T v) { tm_write(tx, &raw_[i], v, kInitSite); }

  static constexpr std::size_t size() { return N; }
  static constexpr std::size_t size_bytes() { return N * sizeof(T); }

  /// Underlying storage, e.g. for add_private_memory_block annotations.
  T* data() { return raw_; }
  const T* data() const { return raw_; }

  T peek(std::size_t i) const { return raw_[i]; }
  void poke(std::size_t i, T v) { raw_[i] = v; }

 private:
  T raw_[N] = {};
};

/// Transactional view over external storage: a (pointer, length) pair whose
/// element accesses route through one statically bound Site. The view does
/// not own the memory — containers wrap their backing stores in a tspan per
/// operation, and apps wrap std::vector data they share across threads.
template <typename T, const Site& S = kSharedSite>
  requires TmValue<T>
class tspan {
 public:
  using value_type = T;

  static constexpr const Site& site() { return S; }
  static constexpr Site kInitSite{S.name, /*manual=*/false,
                                  Verdict::kCaptured};

  constexpr tspan(T* data, std::size_t n) : data_(data), n_(n) {}

  /// View over a contiguous container (std::vector and friends).
  template <typename C>
    requires requires(C& c) {
      { c.data() } -> std::convertible_to<T*>;
      { c.size() } -> std::convertible_to<std::size_t>;
    }
  constexpr explicit tspan(C& c) : data_(c.data()), n_(c.size()) {}

  T get(Tx& tx, std::size_t i) const { return tm_read(tx, &data_[i], S); }
  void set(Tx& tx, std::size_t i, T v) const { tm_write(tx, &data_[i], v, S); }
  T add(Tx& tx, std::size_t i, T delta) const {
    return tm_add(tx, &data_[i], delta, S);
  }
  /// Initializing store into a freshly tx_malloc'd backing store (e.g. the
  /// captured grow-and-copy of TxVector/TxHeap, the paper's Figure 1(b)).
  void init(Tx& tx, std::size_t i, T v) const {
    tm_write(tx, &data_[i], v, kInitSite);
  }

  std::size_t size() const { return n_; }
  T* data() const { return data_; }

  T peek(std::size_t i) const { return data_[i]; }
  void poke(std::size_t i, T v) const { data_[i] = v; }

  /// Non-transactional racy snapshot: copies the viewed elements into
  /// [dst, dst+size()) with relaxed atomic loads. For algorithms that
  /// deliberately read shared state outside a transaction and re-validate
  /// inside one (labyrinth's expansion phase over the grid); the relaxed
  /// atomics keep the intentional race well-defined.
  void snapshot_to(T* dst) const {
    for (std::size_t i = 0; i < n_; ++i) {
      dst[i] = detail::load_relaxed(&data_[i]);
    }
  }

 private:
  T* data_;
  std::size_t n_;
};

}  // namespace cstm
