// Transaction descriptor: all per-thread transaction state, including the
// capture-analysis machinery (transaction-local stack bounds, allocation
// logs, private-region registry pointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "capture/array_log.hpp"
#include "capture/filter_log.hpp"
#include "capture/private_registry.hpp"
#include "capture/tree_log.hpp"
#include "stm/alloc_ctx.hpp"
#include "stm/config.hpp"
#include "stm/gclock.hpp"
#include "stm/logs.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "support/backoff.hpp"

namespace cstm {

/// Thrown after a conflict abort; the descriptor has already rolled back
/// fully. Caught by the retry loop in cstm::atomic().
struct TxAbortException {};

/// Thrown by cstm::abort_tx(): aborts the innermost transaction without
/// retrying (partial abort when nested, cancellation at top level).
struct TxUserAbort {};

enum class CaptureKind : std::uint8_t { kNone, kStack, kHeap, kPrivate };

class Tx {
 public:
  Tx();
  ~Tx();
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // -- Hot state -------------------------------------------------------------
  TxConfig cfg;
  std::uint64_t start_ts = 0;
  const void* stack_begin = nullptr;  // stack top at outermost begin (Fig. 3)
  std::uintptr_t stack_low = 0;       // low bound of this thread's stack
  unsigned depth = 0;
  unsigned consecutive_aborts = 0;

  TxLog<ReadEntry> rs;
  TxLog<OwnedOrec> ws;
  UndoLog undo;
  TxAllocCtx alloc;
  std::vector<std::size_t> freed_events;  // indices into alloc.allocs
  TxStats stats;

  /// Snapshot timestamp while a transaction is active; kIdleEpoch when not.
  /// Published so the allocator's quarantine can wait for every transaction
  /// that might still hold a stale pointer to freed memory (zombie writers
  /// must never reach reused blocks — their bytes become allocator
  /// metadata).
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};
  std::atomic<std::uint64_t> active_since{kIdleEpoch};

  /// Blocks freed at commit, quarantined until quiescence.
  struct QuarantinedBlock {
    void* ptr;
    std::uint64_t epoch;
  };
  std::vector<QuarantinedBlock> quarantine;

  struct LevelMark {
    std::size_t rs, ws, undo, allocs, frees, freed_events;
    const void* level_sp;
  };
  std::vector<LevelMark> levels;

  // -- Capture machinery -----------------------------------------------------
  TreeAllocLog tree_log;
  ArrayAllocLog array_log;
  FilterAllocLog filter_log;
  PrivateRegistry* priv = nullptr;

  AllocLog& active_alloc_log() {
    if (cfg.count_mode) return tree_log;  // precise classification
    switch (cfg.alloc_log) {
      case AllocLogKind::kArray: return array_log;
      case AllocLogKind::kFilter: return filter_log;
      case AllocLogKind::kTree: break;
    }
    return tree_log;
  }

  bool in_tx() const { return depth > 0; }

  // -- Lifecycle (definitions in stm.cpp) ------------------------------------
  void begin_top(const void* sp);
  void begin_nested(const void* sp);
  void commit_top();     // may abort on validation failure (throws)
  void commit_nested();
  void abort_nested();   // partial abort of the innermost level
  void cancel();         // user abort at top level: roll back, do not retry
  [[noreturn]] void abort_self();  // full rollback + throw TxAbortException

  /// Releases quarantined blocks whose freeing epoch has quiesced (no
  /// active transaction started before it). Called from begin_top;
  /// @p force flushes regardless of the batching threshold.
  void flush_quarantine(bool force);

  bool validate() const;
  bool extend();
  /// Called on a lock conflict: spins (kSpinThenAbort) or aborts self.
  void on_conflict(std::atomic<std::uint64_t>* rec);
  void pause_backoff() { backoff_.pause(consecutive_aborts); }

  // -- Runtime capture analysis (Section 3.1) --------------------------------

  /// Returns how [addr, addr+n) is captured, honoring the per-config check
  /// switches for the given access direction.
  CaptureKind runtime_captured(const void* addr, std::size_t n, bool is_write) {
    if (is_write ? cfg.stack_write : cfg.stack_read) {
      if (on_tx_stack(addr, n)) return CaptureKind::kStack;
    }
    if (is_write ? cfg.heap_write : cfg.heap_read) {
      if (active_alloc_log().contains(addr, n)) return CaptureKind::kHeap;
    }
    if (is_write ? cfg.private_write : cfg.private_read) {
      if (priv != nullptr && priv->contains(addr, n)) return CaptureKind::kPrivate;
    }
    return CaptureKind::kNone;
  }

  /// Precise classification for count mode (Fig. 8): heap first, then stack.
  CaptureKind classify(const void* addr, std::size_t n) {
    if (tree_log.contains(addr, n)) return CaptureKind::kHeap;
    if (on_tx_stack(addr, n)) return CaptureKind::kStack;
    return CaptureKind::kNone;
  }

  /// The single range check of Figure 4: the transaction-local stack is the
  /// region between the current stack pointer and the stack pointer at
  /// transaction begin (stack grows downwards on x86-64).
  bool on_tx_stack(const void* addr, std::size_t n) const {
    char probe;  // approximates the current stack pointer
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return a >= reinterpret_cast<std::uintptr_t>(&probe) &&
           a + n <= reinterpret_cast<std::uintptr_t>(stack_begin);
  }

  bool owns(std::uint64_t word) const {
    return orec::is_locked(word) && orec::owner_of(word) == this;
  }

 private:
  void reset_logs();
  ExponentialBackoff backoff_;
};

/// The calling thread's descriptor (created on first use).
Tx& current_tx();

}  // namespace cstm
