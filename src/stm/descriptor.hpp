// Transaction descriptor: all per-thread transaction state, including the
// capture-analysis machinery (the packed capture frame with stack bounds and
// membership views, the lazily constructed allocation logs, and the barrier
// plan resolved from the config at transaction begin).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "capture/adaptive.hpp"
#include "capture/capture_frame.hpp"
#include "capture/private_registry.hpp"
#include "stm/alloc_ctx.hpp"
#include "stm/barrier_plan.hpp"
#include "stm/config.hpp"
#include "stm/gclock.hpp"
#include "stm/logs.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "support/backoff.hpp"

namespace cstm {

/// Thrown after a conflict abort; the descriptor has already rolled back
/// fully. Caught by the retry loop in cstm::atomic().
struct TxAbortException {};

/// Thrown by cstm::abort_tx(): aborts the innermost transaction without
/// retrying (partial abort when nested, cancellation at top level).
struct TxUserAbort {};

enum class CaptureKind : std::uint8_t { kNone, kStack, kHeap, kPrivate };

class Tx {
 public:
  Tx();
  ~Tx();
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // -- Hot state -------------------------------------------------------------
  TxConfig cfg;
  /// cfg compiled into specialized barrier paths at begin_top; the barriers
  /// dispatch on this, never on cfg.
  BarrierPlan plan;
  /// Packed capture state the fast paths read: stack bound, log views,
  /// inline array log (capture/capture_frame.hpp).
  CaptureFrame frame;
  std::uint64_t start_ts = 0;
  std::uintptr_t stack_low = 0;  // low bound of this thread's stack
  unsigned depth = 0;
  unsigned consecutive_aborts = 0;

  /// Online capture-log selector, consulted by begin_top when cfg.alloc_log
  /// is the kAdaptive tag: its concrete choice is compiled into `plan`, so
  /// the barriers stay specialized while the structure tracks the workload.
  /// Lives here (not in the frame) because only begin_top touches it —
  /// never an access fast path.
  AdaptiveLogPolicy adapt;

  /// This thread's unconsumed slice of reserved commit timestamps
  /// (gclock.hpp). Survives across transactions — that is the whole point
  /// of batching.
  ClockReservation tclock;

  // -- Contention-manager state (read by CONFLICTING threads) ----------------
  // Both fields are written by the owning thread and read by threads that
  // find this descriptor in a locked orec, hence atomic. Readers go through
  // the StatsRegistry snapshot helpers in stm.cpp, which pin the descriptor
  // alive for the duration of the read.

  /// Karma: logged accesses accumulated over this transaction's aborted
  /// attempts (reset at commit/cancel). Priority for karma arbitration.
  std::atomic<std::uint64_t> cm_karma{0};

  /// Greedy: global begin ticket, assigned at the FIRST attempt of a
  /// top-level transaction and kept across retries (age only grows);
  /// kNoTicket while no greedy transaction is running.
  static constexpr std::uint64_t kNoTicket = ~std::uint64_t{0};
  std::atomic<std::uint64_t> cm_ticket{kNoTicket};

  TxLog<ReadEntry> rs;
  TxLog<OwnedOrec> ws;
  UndoLog undo;
  TxAllocCtx alloc;
  std::vector<std::size_t> freed_events;  // indices into alloc.allocs
  /// Durable-mode redo write log (non-captured stores with post-images
  /// captured at record time) and the blocks handed out by
  /// DurableHeap::alloc. Both empty unless plan.durable.
  TxLog<DurableWrite> dlog;
  std::vector<DurableAlloc> durable_allocs;
  TxStats stats;

  /// Snapshot timestamp while a transaction is active; kIdleEpoch when not.
  /// Published so the allocator's quarantine can wait for every transaction
  /// that might still hold a stale pointer to freed memory (zombie writers
  /// must never reach reused blocks — their bytes become allocator
  /// metadata).
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};
  std::atomic<std::uint64_t> active_since{kIdleEpoch};

  /// Blocks freed at commit, quarantined until quiescence.
  struct QuarantinedBlock {
    void* ptr;
    std::uint64_t epoch;
  };
  std::vector<QuarantinedBlock> quarantine;

  struct LevelMark {
    std::size_t rs, ws, undo, allocs, frees, freed_events, dlog, dallocs;
    const void* level_sp;
  };
  std::vector<LevelMark> levels;

  // -- Capture machinery -----------------------------------------------------
  // Only the configured log exists: tree and filter (which own heap-backed
  // tables) are constructed on first use and kept for the thread's
  // lifetime; the array log is 1.5 cache lines living inline in the frame.

  TreeAllocLog& tree_log() {
    if (!tree_log_) {
      tree_log_ = std::make_unique<TreeAllocLog>();
      frame.tree = tree_log_.get();
    }
    return *tree_log_;
  }
  FilterAllocLog& filter_log() {
    if (!filter_log_) {
      filter_log_ = std::make_unique<FilterAllocLog>();
      frame.filter_table = filter_log_->table_data();
      frame.filter_shift = filter_log_->shift();
      frame.filter_epoch = filter_log_->epoch();
    }
    return *filter_log_;
  }

  /// The one place that routes to the plan-selected log (a kNone plan
  /// maintains no log and never invokes @p fn). Mutating call sites —
  /// allocator hooks, nested-abort replay, end-of-tx reset — all go
  /// through here; the read-side membership dispatch lives in the barrier
  /// plan paths and alloc_log_contains below, which read the frame's
  /// cached views instead of the (lazily constructed) log objects.
  template <typename Fn>
  void with_active_log(Fn&& fn) {
    switch (plan.log) {
      case ActiveLog::kNone: break;
      case ActiveLog::kTree: fn(tree_log()); break;
      case ActiveLog::kArray: fn(frame.array); break;
      case ActiveLog::kFilter: fn(filter_log()); break;
    }
  }

  void alloc_log_insert(const void* p, std::size_t n) {
    with_active_log([&](auto& log) { log.insert(p, n); });
  }
  void alloc_log_erase(const void* p, std::size_t n) {
    with_active_log([&](auto& log) { log.erase(p, n); });
  }
  bool alloc_log_contains(const void* p, std::size_t n) const {
    switch (plan.log) {
      case ActiveLog::kNone: return false;
      case ActiveLog::kTree: return frame.tree_contains(p, n);
      case ActiveLog::kArray: return frame.array_contains(p, n);
      case ActiveLog::kFilter: return frame.filter_contains(p, n);
    }
    return false;
  }

  bool in_tx() const { return depth > 0; }

  /// Appends a redo entry for a non-captured store. Called only from the
  /// outlined full-write slow path, only when plan.durable — a capture hit
  /// returns before reaching it, which is exactly the flush elision. The
  /// post-image is read HERE, right after the in-place store, because the
  /// address may be a transaction-local stack slot whose frame is dead by
  /// commit time (the baseline capture-off plan logs those too).
  void durable_record(void* addr, std::uint32_t len) {
    std::uint64_t value = 0;
    std::memcpy(&value, addr, len);
    dlog.push(DurableWrite{addr, value, len});
    ++stats.durable_stores_logged;
  }

  /// Registers a DurableHeap::alloc block: tracked for wholesale commit
  /// write-back, and inserted into the plan's capture log so its stores
  /// elide barriers and redo entries alike. Not an AllocRecord — the block
  /// is not pool memory; aborts unwind the cursor (undo log) and these
  /// entries instead of deallocating.
  void durable_note_alloc(void* p, std::size_t n) {
    durable_allocs.push_back(DurableAlloc{p, n});
    alloc_log_insert(p, n);
    ++stats.durable_allocs;
  }

  // -- Lifecycle (definitions in stm.cpp) ------------------------------------
  void begin_top(const void* sp);
  void begin_nested(const void* sp);
  void commit_top();     // may abort on validation failure (throws)
  void commit_nested();
  void abort_nested();   // partial abort of the innermost level
  void cancel();         // user abort at top level: roll back, do not retry
  [[noreturn]] void abort_self();  // full rollback + throw TxAbortException

  /// Releases quarantined blocks whose freeing epoch has quiesced (no
  /// active transaction started before it). Called from begin_top;
  /// @p force flushes regardless of the batching threshold.
  void flush_quarantine(bool force);

  bool validate() const;
  bool extend();
  /// Called on a lock conflict: dispatches on plan.cm (never cfg) — spin,
  /// abort self, or arbitrate by karma/age against the lock owner.
  void on_conflict(std::atomic<std::uint64_t>* rec);
  /// Post-abort pause, dispatched on plan.cm from the retry loop in
  /// txn.hpp. kBackoff pauses exponentially; karma/greedy pause only after
  /// repeated consecutive aborts (single-core livelock guard).
  void after_abort_pause();
  void pause_backoff() { backoff_.pause(consecutive_aborts); }

  // -- Runtime capture analysis (Section 3.1) --------------------------------
  // The specialized plan paths in stm/barriers.hpp read the frame directly;
  // these two remain for the kGeneric fallback and count mode.

  /// Returns how [addr, addr+n) is captured, honoring the per-config check
  /// switches for the given access direction.
  CaptureKind runtime_captured(const void* addr, std::size_t n, bool is_write) {
    if (is_write ? cfg.stack_write : cfg.stack_read) {
      if (frame.on_tx_stack(addr, n)) return CaptureKind::kStack;
    }
    if (is_write ? cfg.heap_write : cfg.heap_read) {
      if (alloc_log_contains(addr, n)) return CaptureKind::kHeap;
    }
    if (is_write ? cfg.private_write : cfg.private_read) {
      if (frame.priv != nullptr && frame.priv->contains(addr, n)) {
        return CaptureKind::kPrivate;
      }
    }
    return CaptureKind::kNone;
  }

  /// Precise classification for count mode (Fig. 8): heap first, then stack.
  CaptureKind classify(const void* addr, std::size_t n) {
    if (tree_log().contains(addr, n)) return CaptureKind::kHeap;
    if (frame.on_tx_stack(addr, n)) return CaptureKind::kStack;
    return CaptureKind::kNone;
  }

  bool owns(std::uint64_t word) const {
    return orec::is_locked(word) && orec::owner_of(word) == this;
  }

 private:
  void reset_logs();
  std::unique_ptr<TreeAllocLog> tree_log_;
  std::unique_ptr<FilterAllocLog> filter_log_;
  ExponentialBackoff backoff_;
  /// The concrete structure the current plan was compiled with while the
  /// adaptive tag is configured; begin_top recompiles only when the policy
  /// moves off it.
  AllocLogKind adapt_kind_ = AllocLogKind::kArray;
  /// ArrayAllocLog::dropped() high-water already folded into
  /// stats.array_overflows (the log's counter is cumulative; stats may be
  /// reset independently, so reset_logs folds deltas).
  std::uint64_t array_dropped_seen_ = 0;
};

/// The calling thread's descriptor (created on first use).
Tx& current_tx();

}  // namespace cstm
