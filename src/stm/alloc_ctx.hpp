// Per-transaction allocator bookkeeping (paper Section 3.1.2: "We extended
// the existing transactional memory allocator ... to keep a log of all
// memory blocks allocated in a transaction"). malloc-in-tx is undone on
// abort; free-in-tx of pre-transaction memory is deferred to commit.
#pragma once

#include <cstddef>
#include <vector>

namespace cstm {

struct AllocRecord {
  void* ptr;
  std::size_t size;      // usable size (size-class rounded)
  bool freed_in_tx;      // allocated then freed inside the same transaction
};

struct TxAllocCtx {
  std::vector<AllocRecord> allocs;
  std::vector<void*> deferred_frees;

  void clear() {
    allocs.clear();
    deferred_frees.clear();
  }
};

}  // namespace cstm
