// Per-thread transaction statistics, aggregated by the harness.
#pragma once

#include <cstdint>

namespace cstm {

struct TxStats {
  // Outcomes.
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  // Barrier invocations (every instrumented access).
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  // Elisions by mechanism.
  std::uint64_t read_elided_stack = 0;
  std::uint64_t read_elided_heap = 0;
  std::uint64_t read_elided_private = 0;
  std::uint64_t read_elided_static = 0;
  std::uint64_t write_elided_stack = 0;
  std::uint64_t write_elided_heap = 0;
  std::uint64_t write_elided_private = 0;
  std::uint64_t write_elided_static = 0;

  // Fast path: write to an ownership record already held by this
  // transaction (the cheap write-after-write check the paper credits for
  // yada's baseline).
  std::uint64_t write_own_fast = 0;

  // Fig. 8 classification (count_mode only). Categories are mutually
  // exclusive and checked in the paper's order: tx-local heap, tx-local
  // stack, otherwise manual => required, else not-required-other.
  std::uint64_t read_cap_heap = 0;
  std::uint64_t read_cap_stack = 0;
  std::uint64_t read_not_required = 0;
  std::uint64_t read_required = 0;
  std::uint64_t write_cap_heap = 0;
  std::uint64_t write_cap_stack = 0;
  std::uint64_t write_not_required = 0;
  std::uint64_t write_required = 0;

  // Transactional allocator traffic.
  std::uint64_t tx_allocs = 0;
  std::uint64_t tx_frees = 0;

  // Allocations the inline array log could not track (ArrayAllocLog's
  // dropped counter, sampled per transaction at reset). Each one is a
  // conservative miss: the block's accesses pay full barriers. Before this
  // counter an overflowing array silently degraded capture-hit% with zero
  // observability.
  std::uint64_t array_overflows = 0;

  // Adaptive capture-log selection (capture/adaptive.hpp): structure
  // switches applied at begin_top, and how many top-level transactions ran
  // on each concrete structure while the kAdaptive tag was configured.
  std::uint64_t adaptive_switches = 0;
  std::uint64_t adaptive_txs_tree = 0;
  std::uint64_t adaptive_txs_array = 0;
  std::uint64_t adaptive_txs_filter = 0;

  // Epoch-batched clock traffic (gclock.hpp): shared-counter range
  // reservations, stale ranges discarded without stamping, and lazy
  // read-set revalidations (Tx::extend) against the published epoch.
  std::uint64_t clock_reservations = 0;
  std::uint64_t clock_stale_discards = 0;
  std::uint64_t lazy_revalidations = 0;

  // Self-aborts attributed to the contention-manager policy that decided
  // them (conflict-driven aborts only; user aborts are not counted here).
  std::uint64_t cm_aborts_backoff = 0;
  std::uint64_t cm_aborts_suicide = 0;
  std::uint64_t cm_aborts_spin = 0;
  std::uint64_t cm_aborts_karma = 0;
  std::uint64_t cm_aborts_greedy = 0;

  // Nested partial aborts (Tx::abort_nested): closed-nested levels rolled
  // back individually, whatever triggered them (user abort_tx, txbatch
  // sub-op compensation).
  std::uint64_t nested_partial_aborts = 0;

  // txbatch merge layer (src/txbatch/batcher.hpp): outer merged
  // transactions committed, sub-ops executed inside them, and sub-ops
  // rolled back by the per-op compensation path (requeued or failed
  // without touching their siblings).
  std::uint64_t batch_flushes = 0;
  std::uint64_t batch_ops = 0;
  std::uint64_t batch_op_compensations = 0;

  // Durable mode (src/durable/). Logged stores are the non-captured writes
  // that earned a redo entry; pwbs/pfences count the commit protocol's
  // persistence traffic (simulated or real, same call sites); captured
  // writebacks are blocks from DurableHeap::alloc persisted wholesale
  // instead of entry-by-entry.
  std::uint64_t durable_commits = 0;
  std::uint64_t durable_stores_logged = 0;
  std::uint64_t durable_pwbs = 0;
  std::uint64_t durable_pfences = 0;
  std::uint64_t durable_log_bytes = 0;
  std::uint64_t durable_captured_writebacks = 0;
  std::uint64_t durable_allocs = 0;

  std::uint64_t read_elided() const {
    return read_elided_stack + read_elided_heap + read_elided_private +
           read_elided_static;
  }
  std::uint64_t write_elided() const {
    return write_elided_stack + write_elided_heap + write_elided_private +
           write_elided_static;
  }

  double abort_to_commit_ratio() const {
    return commits == 0 ? 0.0
                        : static_cast<double>(aborts) /
                              static_cast<double>(commits);
  }

  // -- Per-run report ratios (harness stats block / BENCH_*.json) ------------

  /// Percentage of instrumented accesses that hit CAPTURED memory (the
  /// paper's tx-local stack + tx-local heap classes) and skipped their
  /// barrier. This is the counter batching moves: merged transactions
  /// allocate more, so more of their footprint is captured.
  double capture_hit_percent() const {
    const std::uint64_t accesses = reads + writes;
    const std::uint64_t hits = read_elided_stack + read_elided_heap +
                               write_elided_stack + write_elided_heap;
    return accesses == 0 ? 0.0
                         : 100.0 * static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }

  /// Percentage of in-transaction allocations the inline array log dropped
  /// on overflow. Non-zero means the array is undersized for this workload
  /// — exactly the signal that makes the adaptive policy escalate.
  double capture_overflow_percent() const {
    return tx_allocs == 0 ? 0.0
                          : 100.0 * static_cast<double>(array_overflows) /
                                static_cast<double>(tx_allocs);
  }

  /// Of the stores a durable plan would have to make persistent, the
  /// percentage that skipped redo logging and flushing because capture
  /// classified them transaction-local. The denominator is elided stores
  /// plus redo-logged stores — i.e. every instrumented store that reached
  /// its barrier's decision point under a durable plan. 100% means a fully
  /// captured workload paid zero per-store flush traffic.
  double flushes_elided_percent() const {
    const std::uint64_t denom = write_elided() + durable_stores_logged;
    return denom == 0 ? 0.0
                      : 100.0 * static_cast<double>(write_elided()) /
                            static_cast<double>(denom);
  }

  /// Percentage of instrumented accesses elided by ANY mechanism (capture,
  /// private-region annotations, static verdicts).
  double elided_percent() const {
    const std::uint64_t accesses = reads + writes;
    return accesses == 0 ? 0.0
                         : 100.0 *
                               static_cast<double>(read_elided() + write_elided()) /
                               static_cast<double>(accesses);
  }

  void add(const TxStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    reads += o.reads;
    writes += o.writes;
    read_elided_stack += o.read_elided_stack;
    read_elided_heap += o.read_elided_heap;
    read_elided_private += o.read_elided_private;
    read_elided_static += o.read_elided_static;
    write_elided_stack += o.write_elided_stack;
    write_elided_heap += o.write_elided_heap;
    write_elided_private += o.write_elided_private;
    write_elided_static += o.write_elided_static;
    write_own_fast += o.write_own_fast;
    read_cap_heap += o.read_cap_heap;
    read_cap_stack += o.read_cap_stack;
    read_not_required += o.read_not_required;
    read_required += o.read_required;
    write_cap_heap += o.write_cap_heap;
    write_cap_stack += o.write_cap_stack;
    write_not_required += o.write_not_required;
    write_required += o.write_required;
    tx_allocs += o.tx_allocs;
    tx_frees += o.tx_frees;
    array_overflows += o.array_overflows;
    adaptive_switches += o.adaptive_switches;
    adaptive_txs_tree += o.adaptive_txs_tree;
    adaptive_txs_array += o.adaptive_txs_array;
    adaptive_txs_filter += o.adaptive_txs_filter;
    clock_reservations += o.clock_reservations;
    clock_stale_discards += o.clock_stale_discards;
    lazy_revalidations += o.lazy_revalidations;
    cm_aborts_backoff += o.cm_aborts_backoff;
    cm_aborts_suicide += o.cm_aborts_suicide;
    cm_aborts_spin += o.cm_aborts_spin;
    cm_aborts_karma += o.cm_aborts_karma;
    cm_aborts_greedy += o.cm_aborts_greedy;
    nested_partial_aborts += o.nested_partial_aborts;
    batch_flushes += o.batch_flushes;
    batch_ops += o.batch_ops;
    batch_op_compensations += o.batch_op_compensations;
    durable_commits += o.durable_commits;
    durable_stores_logged += o.durable_stores_logged;
    durable_pwbs += o.durable_pwbs;
    durable_pfences += o.durable_pfences;
    durable_log_bytes += o.durable_log_bytes;
    durable_captured_writebacks += o.durable_captured_writebacks;
    durable_allocs += o.durable_allocs;
  }

  void reset() { *this = TxStats{}; }
};

/// Sum of the statistics of all live descriptors plus all retired
/// (destroyed) descriptors since the last reset.
TxStats stats_snapshot();

/// Zeroes all live descriptors' statistics and the retired accumulator.
/// Call only while no transactions are running.
void stats_reset();

}  // namespace cstm
