// Barrier plans: the TxConfig compiled ONCE at transaction begin into a
// per-descriptor dispatch slot, so the barriers pay zero config branches
// and zero indirect calls per access.
//
// Before this existed, every tm_read/tm_write evaluated up to six cfg
// booleans, a switch over cfg.alloc_log, and an indirect membership call —
// per access, against a configuration that cannot change inside a
// transaction. The plan hoists all of that to begin_top: each barrier
// direction (read, write) is mapped to one of a small set of specialized
// fast paths (template instantiations in stm/barriers.hpp), and the
// allocator hooks are told which concrete log to feed. The paper's named
// configurations all land on a specialized path; arbitrary hand-rolled
// flag combinations still work through the kGeneric fallback, which keeps
// the old per-access branching semantics.
#pragma once

#include <cstdint>

#include "stm/config.hpp"

namespace cstm {

/// Which membership structure the transaction's allocator hooks feed
/// (tx_malloc/tx_free insert/erase, nested-abort replay, end-of-tx reset).
/// kNone means no log is maintained at all — the satellite fix for paying
/// three log resets per transaction regardless of config.
enum class ActiveLog : std::uint8_t { kNone = 0, kTree, kArray, kFilter };

/// The specialized fast path one barrier direction dispatches to. The
/// Stack/Heap/Priv names spell out exactly which capture checks run, in
/// that order (the paper's Figure 2 ordering: cheapest first).
enum class BarrierPath : std::uint8_t {
  kFull = 0,            // no capture checks: straight to the full barrier
  kStatic,              // compiler elision only (Site::verdict)
  kStackHeapPrivTree,   // runtime_rw / runtime_w presets
  kStackHeapPrivArray,
  kStackHeapPrivFilter,
  kHeapTree,            // runtime_heap_w presets
  kHeapArray,
  kHeapFilter,
  kCounting,            // Fig. 8: classify precisely, then full barrier
  kGeneric,             // any other flag combination: per-access cfg checks
};

struct BarrierPlan {
  BarrierPath read = BarrierPath::kFull;
  BarrierPath write = BarrierPath::kFull;
  ActiveLog log = ActiveLog::kNone;
  // Contention manager, resolved once at begin like the barrier paths: the
  // conflict slow path (Tx::on_conflict) and the post-abort pause dispatch
  // on this field, never on TxConfig — the access fast paths stay free of
  // per-access policy branches.
  ContentionPolicy cm = ContentionPolicy::kBackoff;
  // Durable mode, resolved once at begin like everything else. Consulted
  // only inside the outlined full-write slow path (to append the redo
  // entry) and at commit_top — the inlined fast paths, including every
  // capture-elided store, never test it.
  bool durable = false;

  /// Resolves a TxConfig into its plan. Constexpr so preset→path mappings
  /// can be checked at compile time (see tests/test_stm_basic.cpp).
  ///
  /// The kAdaptive tag resolves HERE, to whatever concrete structure the
  /// caller substituted; compiling a raw adaptive config yields the
  /// policy's start state (the array), so the first transaction after a
  /// config switch is well-defined and deterministic. begin_top re-invokes
  /// compile with the policy's current choice whenever it moves — that is
  /// the whole re-specialization hook: plans change between transactions,
  /// barriers never dispatch on anything but the compiled plan.
  static constexpr BarrierPlan compile(const TxConfig& cfg) {
    TxConfig c = cfg;
    if (c.alloc_log == AllocLogKind::kAdaptive) {
      c.alloc_log = AllocLogKind::kArray;  // AdaptiveLogPolicy's start state
    }
    return compile_concrete(c);
  }

 private:
  static constexpr BarrierPlan compile_concrete(const TxConfig& cfg) {
    BarrierPlan p;
    p.cm = cfg.contention;
    p.durable = cfg.durable;
    p.log = cfg.count_mode ? ActiveLog::kTree  // precise classification
            : (cfg.heap_read || cfg.heap_write) ? to_active(cfg.alloc_log)
                                                : ActiveLog::kNone;
    if (cfg.count_mode) {
      // The counting preset runs no elision; counting combined with other
      // optimizations is a measurement nobody defined — generic handles it.
      const bool pure = !cfg.static_elision && !cfg.any_read_check() &&
                        !cfg.any_write_check();
      p.read = p.write = pure ? BarrierPath::kCounting : BarrierPath::kGeneric;
      return p;
    }
    if (cfg.static_elision) {
      if (cfg.any_read_check() || cfg.any_write_check()) {
        p.read = p.write = BarrierPath::kGeneric;
      } else {
        p.read = p.write = BarrierPath::kStatic;
      }
      return p;
    }
    p.read =
        direction(cfg.stack_read, cfg.heap_read, cfg.private_read, cfg.alloc_log);
    p.write = direction(cfg.stack_write, cfg.heap_write, cfg.private_write,
                        cfg.alloc_log);
    return p;
  }

 private:
  static constexpr ActiveLog to_active(AllocLogKind k) {
    switch (k) {
      case AllocLogKind::kTree: return ActiveLog::kTree;
      case AllocLogKind::kArray: return ActiveLog::kArray;
      case AllocLogKind::kFilter: return ActiveLog::kFilter;
      case AllocLogKind::kAdaptive: return ActiveLog::kArray;  // start state
    }
    return ActiveLog::kTree;
  }

  // BarrierPath lays the ×{tree,array,filter} families out contiguously in
  // AllocLogKind order, so selecting the member is an add, not a switch.
  static constexpr BarrierPath with_log(BarrierPath tree_member,
                                        AllocLogKind k) {
    return static_cast<BarrierPath>(static_cast<int>(tree_member) +
                                    static_cast<int>(k));
  }

  static constexpr BarrierPath direction(bool stack, bool heap, bool priv,
                                         AllocLogKind k) {
    if (!stack && !heap && !priv) return BarrierPath::kFull;
    if (stack && heap && priv)
      return with_log(BarrierPath::kStackHeapPrivTree, k);
    if (!stack && heap && !priv) return with_log(BarrierPath::kHeapTree, k);
    return BarrierPath::kGeneric;
  }
};

}  // namespace cstm
