// Transaction-side logs: read set, owned-orec (write) set, and undo log.
// All three support marks for closed nesting with partial abort.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cstm {

/// Read-set entry: the ownership record and the (unlocked) word observed.
struct ReadEntry {
  std::atomic<std::uint64_t>* rec;
  std::uint64_t observed;
};

/// Write-set entry: an ownership record this transaction locked, plus the
/// word to restore on abort.
struct OwnedOrec {
  std::atomic<std::uint64_t>* rec;
  std::uint64_t prev;
};

/// Undo-log entry: up to 8 bytes of pre-image at an arbitrary address.
struct UndoEntry {
  void* addr;
  std::uint64_t image;
  std::uint32_t len;
};

/// Durable write log entry: a non-captured store made under a durable
/// plan. The post-image is captured at record time, while the stored-to
/// address is certainly alive — a baseline (capture-off) plan logs stores
/// to transaction-local stack slots too, and those frames are gone by
/// commit. Overwrites append fresh entries; replay in log order yields the
/// final state. Captured stores never enter this log; that is the flush
/// elision (src/durable/durable_heap.hpp).
struct DurableWrite {
  void* addr;
  std::uint64_t value;
  std::uint32_t len;
};

/// A block handed out by DurableHeap::alloc — captured, so written back
/// wholesale at durable commit instead of through redo entries.
struct DurableAlloc {
  void* ptr;
  std::size_t size;
};

template <typename T>
class TxLog {
 public:
  void push(const T& e) { items_.push_back(e); }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void truncate(std::size_t n) { items_.resize(n); }
  const T& operator[](std::size_t i) const { return items_[i]; }
  T& operator[](std::size_t i) { return items_[i]; }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::vector<T> items_;
};

class UndoLog : public TxLog<UndoEntry> {
 public:
  /// Records the current bytes at [addr, addr+len), len <= 8.
  void record(void* addr, std::uint32_t len) {
    UndoEntry e{addr, 0, len};
    std::memcpy(&e.image, addr, len);
    push(e);
  }

  /// Restores pre-images in reverse order, down to (and excluding) @p from.
  ///
  /// Entries whose address lies in [skip_lo, skip_hi) are NOT restored.
  /// Callers pass the dead transaction-local stack window: locals created
  /// inside the (sub)transaction die with it, and by rollback time their
  /// addresses may be occupied by the *live frames of the rollback code
  /// itself* — writing there would smash return addresses. Skipping is
  /// sound because such memory is never read after the abort: a full abort
  /// re-executes the body with fresh locals, and a mid-body abort unwinds
  /// the frames immediately after. Live-in stack memory (above the
  /// transaction's start_sp) and all heap addresses are restored normally.
  void rollback(std::size_t from, std::uintptr_t skip_lo = 0,
                std::uintptr_t skip_hi = 0) {
    for (std::size_t i = size(); i-- > from;) {
      const UndoEntry& e = (*this)[i];
      const auto a = reinterpret_cast<std::uintptr_t>(e.addr);
      if (a >= skip_lo && a < skip_hi) continue;
      store_image(e.addr, e.image, e.len);
    }
    truncate(from);
  }

 private:
  /// Restore stores race with optimistic readers that are about to fail
  /// validation (the word's orec is locked by the aborting owner, so any
  /// concurrent reader re-samples and discards the value). Relaxed atomic
  /// stores keep those races well-defined — same x86-64 codegen as plain
  /// moves, no false positives under ThreadSanitizer.
  static void store_image(void* addr, std::uint64_t image, std::uint32_t len) {
    // record() fills `image` with memcpy of the object representation, so
    // every extraction here must also go through memcpy — a value cast
    // would read the wrong end of `image` on big-endian targets.
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    switch (len) {
      case 8:
        if (a % 8 == 0) {
          __atomic_store_n(static_cast<std::uint64_t*>(addr), image,
                           __ATOMIC_RELAXED);
          return;
        }
        break;
      case 4:
        if (a % 4 == 0) {
          std::uint32_t v;
          std::memcpy(&v, &image, sizeof(v));
          __atomic_store_n(static_cast<std::uint32_t*>(addr), v,
                           __ATOMIC_RELAXED);
          return;
        }
        break;
      case 2:
        if (a % 2 == 0) {
          std::uint16_t v;
          std::memcpy(&v, &image, sizeof(v));
          __atomic_store_n(static_cast<std::uint16_t*>(addr), v,
                           __ATOMIC_RELAXED);
          return;
        }
        break;
      case 1: {
        std::uint8_t v;
        std::memcpy(&v, &image, sizeof(v));
        __atomic_store_n(static_cast<std::uint8_t*>(addr), v,
                         __ATOMIC_RELAXED);
        return;
      }
      default:
        break;
    }
    // Unaligned or odd-length pre-image: restore byte-wise.
    unsigned char bytes[sizeof(image)];
    std::memcpy(bytes, &image, sizeof(bytes));
    auto* p = static_cast<unsigned char*>(addr);
    for (std::uint32_t i = 0; i < len; ++i) {
      __atomic_store_n(p + i, bytes[i], __ATOMIC_RELAXED);
    }
  }
};

}  // namespace cstm
