// Deterministic pseudo-random generators for workloads and tests.
//
// The STAMP applications depend on reproducible streams; std::mt19937 is
// avoided in hot paths because its state is large and seeding is slow when a
// benchmark creates one generator per transaction batch.
#pragma once

#include <cstdint>

namespace cstm {

/// SplitMix64: used to expand a single seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for workload draws.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound). Debiased via Lemire's method.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const auto x = next();
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(x) * bound) >> 64);
  }

  /// Uniform draw in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace cstm
