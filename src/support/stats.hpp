// Descriptive statistics used by the experiment harness (Table 2 reports
// percent relative standard deviation over repeated runs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cstm {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;       // sample standard deviation (n-1)
  double rsd_percent = 0.0;  // 100 * stddev / mean
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

inline Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  if (s.mean != 0.0) s.rsd_percent = 100.0 * s.stddev / s.mean;
  return s;
}

}  // namespace cstm
