// Cache-line geometry and padding helpers shared by the runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cstm {

/// Cache-line size assumed throughout the runtime. The paper's STM maps
/// ownership records at this granularity and sizes the array allocation log
/// to exactly one line.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value in its own cache line to avoid false sharing between
/// per-thread runtime structures (descriptor counters, the global clock, ...).
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};
};

/// Rounds @p n up to the next multiple of @p align (power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// CPU pause hint used inside spin/backoff loops.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace cstm
