// Contention-management policies: the paper's exponential backoff (its
// default, whose run-to-run variance at 16 threads the paper attributes to
// the policy itself) plus the pure arbitration rules for the pluggable
// karma and greedy managers. The arbitration functions are side-effect-free
// on purpose — the runtime state they consume (accumulated karma, begin
// tickets) lives in the descriptor, so the decision rules unit-test without
// spinning up transactions (tests/test_clock_orec.cpp).
#pragma once

#include <cstdint>
#include <functional>

#include "support/cacheline.hpp"
#include "support/random.hpp"

namespace cstm {

/// What a contention manager tells the conflicting (lock-observing) side to
/// do about the lock owner. All policies here are suicide variants — nobody
/// aborts a remote transaction, so kWait always means "bounded wait, then
/// abort self" at the call site (deadlock safety under any priority rule).
enum class CmDecision : std::uint8_t {
  kAbortSelf = 0,  // yield to the owner immediately
  kWait = 1        // owner should lose; spin bounded for it to finish/release
};

/// Karma (Scherer & Scott): priority is work invested — the number of
/// logged accesses accumulated across this transaction's aborted attempts
/// plus the current attempt. Higher karma wins; ties break on descriptor
/// address so two equal transactions never both wait on each other.
inline CmDecision karma_arbitrate(std::uint64_t my_karma,
                                  std::uint64_t owner_karma,
                                  const void* me, const void* owner) {
  if (my_karma != owner_karma) {
    return my_karma > owner_karma ? CmDecision::kWait : CmDecision::kAbortSelf;
  }
  return std::less<const void*>{}(me, owner) ? CmDecision::kWait
                                             : CmDecision::kAbortSelf;
}

/// Greedy (Guerraoui, Herlihy & Pochon): oldest transaction wins, age
/// measured by a global begin ticket that is KEPT across retries — an
/// often-aborted transaction only gets older, so it eventually outranks
/// every newcomer (livelock freedom of the original manager, minus the
/// remote-abort half we deliberately drop). Lower ticket = older = wins.
inline CmDecision greedy_arbitrate(std::uint64_t my_ticket,
                                   std::uint64_t owner_ticket) {
  return my_ticket < owner_ticket ? CmDecision::kWait : CmDecision::kAbortSelf;
}

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint64_t seed) : rng_(seed | 1) {}

  /// Spin for a randomized interval that doubles with each consecutive
  /// abort, capped to keep worst-case latency bounded.
  void pause(unsigned consecutive_aborts) {
    unsigned shift = consecutive_aborts < kMaxShift ? consecutive_aborts : kMaxShift;
    const std::uint64_t max_spins = kMinSpins << shift;
    const std::uint64_t spins = kMinSpins + rng_.below(max_spins);
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
  }

 private:
  static constexpr unsigned kMaxShift = 12;
  static constexpr std::uint64_t kMinSpins = 16;
  Xoshiro256 rng_;
};

}  // namespace cstm
