// Exponential backoff used by the contention manager (the paper uses a
// simple exponential-back-off policy and attributes its run-to-run variance
// at 16 threads to it; we keep the same policy for fidelity).
#pragma once

#include <cstdint>

#include "support/cacheline.hpp"
#include "support/random.hpp"

namespace cstm {

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint64_t seed) : rng_(seed | 1) {}

  /// Spin for a randomized interval that doubles with each consecutive
  /// abort, capped to keep worst-case latency bounded.
  void pause(unsigned consecutive_aborts) {
    unsigned shift = consecutive_aborts < kMaxShift ? consecutive_aborts : kMaxShift;
    const std::uint64_t max_spins = kMinSpins << shift;
    const std::uint64_t spins = kMinSpins + rng_.below(max_spins);
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
  }

 private:
  static constexpr unsigned kMaxShift = 12;
  static constexpr std::uint64_t kMinSpins = 16;
  Xoshiro256 rng_;
};

}  // namespace cstm
