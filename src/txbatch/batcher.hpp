// txbatch: a transaction merging & batching front-end (ROADMAP direction 1,
// grounded in "Improving Database Performance by Application-side
// Transaction Merging").
//
// Tiny transactions leave the capture-elision machinery idle: they allocate
// little, so almost every access hits pre-existing shared data and pays a
// full barrier, and the per-transaction fixed costs (begin_top's plan/log
// reset, commit_top's clock publication and orec releases) dominate the few
// useful accesses. The Batcher queues small transactional operations and
// executes N of them inside ONE outer STM transaction:
//
//   queue ──policy──▶ [op1 op2 ... opN]  ──▶  atomic(outer) {
//                                               nested{op1} nested{op2} ...
//                                             }
//
//  * Begin/commit costs are paid once per batch, not once per op.
//  * Memory allocated by op i is CAPTURED for every later op in the same
//    batch — merged transactions allocate more, so a larger fraction of
//    their footprint goes barrier-free (the paper's Section 3 machinery,
//    force-multiplied).
//  * Per-sub-transaction abort compensation: each op runs as a closed
//    nested transaction, so an op that aborts for its own reasons (user
//    retry/cancel via cstm::abort_tx()) is rolled back by the existing
//    partial-abort machinery — including captured-memory writes, restored
//    by the nested undo path — and is requeued or failed INDIVIDUALLY,
//    without discarding its already-executed siblings' effects.
//
// What is NOT compensated per-op: a conflict abort (TxAbortException)
// rolls back the whole outer transaction and the standard retry loop
// re-executes the entire batch — ops must therefore be idempotent under
// re-execution, exactly like any transactional closure. A non-transactional
// exception escaping an op cancels the whole batch (every queued sibling's
// effects are discarded), marks all its ops kFailed, and propagates.
//
// Threading contract: a Batcher is a same-thread object. Ops enqueued on
// one thread execute on that thread, in FIFO order, when a flush runs
// (size reached, enqueue-time deadline exceeded, or explicit drain). For
// server-style request batches, give each worker thread its own Batcher
// and route compatible requests to it; the compatibility policy hook
// below decides which queued ops may merge into one outer transaction.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

namespace cstm {
class Tx;
}

namespace cstm::txbatch {

/// Lifecycle of one enqueued op, observable through its Completion token.
enum class OpState : std::uint8_t {
  kPending = 0,   // queued, or requeued after a compensated abort
  kCommitted = 1, // ran to completion inside a committed batch
  kFailed = 2,    // aborted (user abort) with no retry budget left, or the
                  // whole batch was cancelled by an escaping exception
};

/// What a compatibility policy sees about an op. `tag` is caller-assigned
/// (shard id, session id, table id — whatever "compatible" means for the
/// workload); `seq` is the op's FIFO position since the Batcher was built.
struct OpInfo {
  std::uint64_t tag = 0;
  std::uint64_t seq = 0;
};

/// Decides whether `candidate` may join a batch currently led by `head`.
/// Returning false closes the batch: the candidate stays queued and leads
/// the next one. The default (no policy installed) is the conservative
/// same-thread FIFO merge: any op merges, because the queue already IS the
/// program order of a single thread. Server batches install a predicate
/// (e.g. same-shard tags only) to keep incompatible requests apart.
using MergePolicy = std::function<bool(const OpInfo& head, const OpInfo& candidate)>;

namespace detail {
struct OpRecord {
  std::function<void(Tx&)> fn;
  OpInfo info;
  OpState state = OpState::kPending;
  unsigned attempts = 0;      // completed batch executions that included it
  unsigned retries_left = 0;  // compensated-abort requeue budget
};
}  // namespace detail

/// Completion token returned by Batcher::enqueue — the caller's handle for
/// the op's fate after some later flush ran it. Cheap to copy; outlives the
/// Batcher safely.
class Completion {
 public:
  Completion() = default;
  /// kPending until a flush decided the op's fate.
  OpState state() const { return rec_ ? rec_->state : OpState::kFailed; }
  bool committed() const { return state() == OpState::kCommitted; }
  bool failed() const { return state() == OpState::kFailed; }
  /// How many batch executions included this op (>1 after requeues).
  unsigned attempts() const { return rec_ ? rec_->attempts : 0; }

 private:
  friend class Batcher;
  explicit Completion(std::shared_ptr<detail::OpRecord> rec)
      : rec_(std::move(rec)) {}
  std::shared_ptr<detail::OpRecord> rec_;
};

struct BatcherOptions {
  /// Flush as soon as this many compatible ops are queued.
  std::size_t max_batch = 16;
  /// When nonzero: an enqueue that finds the oldest queued op older than
  /// this flushes first (same-thread Batchers have no background timer, so
  /// the deadline is checked at enqueue and drain boundaries).
  std::chrono::microseconds max_delay{0};
  /// Requeue budget for ops whose nested transaction user-aborts: 0 means
  /// one strike and the op is kFailed (no hidden infinite retry loops).
  unsigned max_retries = 0;
  /// Compatibility policy; empty = same-thread FIFO merge (see MergePolicy).
  MergePolicy policy;
};

struct BatcherStats {
  std::uint64_t batches = 0;        // outer transactions committed
  std::uint64_t ops_enqueued = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t ops_failed = 0;
  std::uint64_t ops_requeued = 0;   // compensated aborts sent back to queue
};

class Batcher {
 public:
  explicit Batcher(BatcherOptions opts = {});

  /// Queues @p fn for execution inside a future merged transaction. May
  /// flush synchronously (size or deadline reached) before returning.
  Completion enqueue(std::function<void(Tx&)> fn, std::uint64_t tag = 0);

  /// Executes one batch now (up to max_batch compatible ops from the queue
  /// head) inside one outer transaction. Returns the number of ops run; 0
  /// when the queue is empty.
  std::size_t flush();

  /// Flushes until the queue is empty, including ops requeued by the
  /// compensation path during the drain itself.
  void drain();

  std::size_t pending() const { return queue_.size(); }
  const BatcherStats& stats() const { return stats_; }
  const BatcherOptions& options() const { return opts_; }

 private:
  bool deadline_expired() const;

  BatcherOptions opts_;
  BatcherStats stats_;
  std::deque<std::shared_ptr<detail::OpRecord>> queue_;
  std::chrono::steady_clock::time_point oldest_enqueue_{};
  std::uint64_t next_seq_ = 0;
};

}  // namespace cstm::txbatch
