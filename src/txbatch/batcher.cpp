#include "txbatch/batcher.hpp"

#include <utility>
#include <vector>

#include "stm/descriptor.hpp"
#include "stm/txn.hpp"

namespace cstm::txbatch {

Batcher::Batcher(BatcherOptions opts) : opts_(std::move(opts)) {
  if (opts_.max_batch == 0) opts_.max_batch = 1;
}

bool Batcher::deadline_expired() const {
  if (opts_.max_delay.count() == 0 || queue_.empty()) return false;
  return std::chrono::steady_clock::now() - oldest_enqueue_ >= opts_.max_delay;
}

Completion Batcher::enqueue(std::function<void(Tx&)> fn, std::uint64_t tag) {
  // An overdue queue flushes BEFORE the new op joins: the deadline is a
  // latency bound on the ops already waiting, not on the newcomer.
  if (deadline_expired()) flush();
  auto rec = std::make_shared<detail::OpRecord>();
  rec->fn = std::move(fn);
  rec->info = OpInfo{tag, next_seq_++};
  rec->retries_left = opts_.max_retries;
  if (queue_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
  queue_.push_back(rec);
  ++stats_.ops_enqueued;
  if (queue_.size() >= opts_.max_batch) flush();
  return Completion(std::move(rec));
}

std::size_t Batcher::flush() {
  if (queue_.empty()) return 0;

  // Pull the longest policy-compatible FIFO prefix, capped at max_batch.
  std::vector<std::shared_ptr<detail::OpRecord>> batch;
  batch.reserve(opts_.max_batch);
  batch.push_back(queue_.front());
  queue_.pop_front();
  while (batch.size() < opts_.max_batch && !queue_.empty()) {
    if (opts_.policy &&
        !opts_.policy(batch.front()->info, queue_.front()->info)) {
      break;
    }
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  if (!queue_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();

  // One outer transaction for the whole batch; each op is a closed nested
  // transaction. `ran` records which ops completed IN THIS ATTEMPT — a
  // conflict abort of the outer transaction re-enters the body, so the
  // flags are reset there, not outside. An op whose nested transaction
  // user-aborts leaves its flag 0: the partial abort already rolled back
  // exactly its writes (captured memory included, via the nested undo
  // path), so execution simply proceeds to the next sibling.
  std::vector<std::uint8_t> ran(batch.size(), 0);
  // Tell the adaptive capture-log policy the merge factor before the outer
  // transaction begins: a merged transaction's allocation footprint is the
  // sum of its sub-ops', so a large batch overflows the inline array log
  // before any profiling epoch could notice. No-op unless the kAdaptive tag
  // is configured.
  current_tx().adapt.note_batch(batch.size());
  try {
    atomic([&](Tx& tx) {
      ran.assign(batch.size(), 0);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        atomic([&, i](Tx& sub) {
          batch[i]->fn(sub);
          ran[i] = 1;  // last statement: unreached when the op aborts
        });
        (void)tx;
      }
    });
  } catch (...) {
    // A non-transactional exception cancelled the whole outer transaction:
    // every sibling's effects are gone, so no op may report kCommitted.
    for (auto& op : batch) {
      ++op->attempts;
      op->state = OpState::kFailed;
      ++stats_.ops_failed;
    }
    throw;
  }

  // The merged transaction committed: settle each op's fate.
  std::uint64_t compensated = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& op = batch[i];
    ++op->attempts;
    if (ran[i]) {
      op->state = OpState::kCommitted;
      ++stats_.ops_committed;
    } else if (op->retries_left > 0) {
      --op->retries_left;
      op->state = OpState::kPending;
      if (queue_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
      queue_.push_back(op);
      ++stats_.ops_requeued;
      ++compensated;
    } else {
      op->state = OpState::kFailed;
      ++stats_.ops_failed;
      ++compensated;
    }
  }
  ++stats_.batches;

  // Fold into the thread's TxStats so the harness can report merge traffic
  // and per-batch-size capture hit rates from one snapshot.
  Tx& tx = current_tx();
  tx.stats.batch_flushes += 1;
  tx.stats.batch_ops += batch.size();
  tx.stats.batch_op_compensations += compensated;
  return batch.size();
}

void Batcher::drain() {
  while (!queue_.empty()) flush();
}

}  // namespace cstm::txbatch
