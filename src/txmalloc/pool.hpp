// Thread-caching transactional memory pool (the McRT-Malloc stand-in).
//
// Each thread owns a pool with segregated free lists. Blocks carry a header
// naming their owning pool so that cross-thread frees (thread A allocates a
// node, thread B unlinks and frees it) are routed back to the owner via a
// lock-free remote-free stack. Pools are parked — never destroyed — when
// their thread exits, and recycled for future threads, so a block can always
// reach its owner.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cstm {

class Pool {
 public:
  static constexpr std::size_t kNumClasses = 16;
  static constexpr std::size_t kMaxSmall = 4096;
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  Pool();
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// The calling thread's pool (acquired on first use, parked at exit).
  static Pool& local();

  /// Allocates at least @p n bytes; *usable receives the rounded block size
  /// used for capture-log extents.
  void* allocate(std::size_t n, std::size_t* usable = nullptr);

  /// Frees a block from any thread.
  static void deallocate(void* p);

  /// Usable size of a live block.
  static std::size_t usable_size(const void* p);

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t remote_frees = 0;
    std::uint64_t chunk_bytes = 0;
  };
  Stats stats() const;

  /// Number of pools ever created (diagnostic: parked pools are reused).
  static std::size_t pool_count();

 private:
  struct Header {
    Pool* owner;        // nullptr for large (direct) allocations
    std::uint32_t cls;  // size class, kLargeClass for direct allocations
    std::uint32_t size; // usable bytes
  };
  static constexpr std::uint32_t kLargeClass = 0xffffffffu;
  static constexpr std::size_t kHeaderSize = 16;

  static Header* header_of(const void* p) {
    return reinterpret_cast<Header*>(
        reinterpret_cast<std::uintptr_t>(p) - kHeaderSize);
  }

  void* carve(std::uint32_t cls);
  void drain_remote();
  void free_local(void* p, std::uint32_t cls);
  void push_remote(void* p);

  void* freelists_[kNumClasses] = {};
  std::atomic<void*> remote_{nullptr};
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  std::vector<void*> chunks_;
  Stats stats_;

  friend struct PoolTestAccess;
};

}  // namespace cstm
