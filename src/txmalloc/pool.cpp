#include "txmalloc/pool.hpp"

#include <cstring>
#include <mutex>
#include <new>

#include "support/cacheline.hpp"

namespace cstm {

namespace {

// Size classes: multiples of 16 with ~1.5x growth; index via lookup table.
constexpr std::size_t kClassSizes[Pool::kNumClasses] = {
    16,  32,  48,  64,  96,  128,  192,  256,
    384, 512, 768, 1024, 1536, 2048, 3072, 4096};

struct ClassTable {
  std::uint8_t idx[Pool::kMaxSmall / 16 + 1];
  constexpr ClassTable() : idx{} {
    std::size_t cls = 0;
    for (std::size_t u = 0; u <= Pool::kMaxSmall / 16; ++u) {
      const std::size_t bytes = u * 16;
      while (kClassSizes[cls] < bytes) ++cls;
      idx[u] = static_cast<std::uint8_t>(cls);
    }
  }
};
constexpr ClassTable kClassTable{};

std::uint32_t class_of(std::size_t n) {
  const std::size_t u = (n + 15) / 16;
  return kClassTable.idx[u];
}

std::size_t g_pool_count = 0;

// Parked pools live forever (blocks may still point at their owner), so the
// registry — and the mutex guarding it, which late-exiting threads lock from
// their thread_local destructors — must outlive static destruction too.
// Keeping the registry immortal also preserves LeakSanitizer's only
// reachability root to the pools.
std::mutex& pool_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::vector<Pool*>& parked_pools() {
  static std::vector<Pool*>* parked = new std::vector<Pool*>();
  return *parked;
}

Pool* acquire_pool() {
  std::lock_guard<std::mutex> lk(pool_mutex());
  auto& parked = parked_pools();
  if (!parked.empty()) {
    Pool* p = parked.back();
    parked.pop_back();
    return p;
  }
  ++g_pool_count;
  return new Pool();  // intentionally immortal: parked on thread exit
}

void park_pool(Pool* p) {
  std::lock_guard<std::mutex> lk(pool_mutex());
  parked_pools().push_back(p);
}

struct PoolHolder {
  Pool* pool = acquire_pool();
  ~PoolHolder() { park_pool(pool); }
};

}  // namespace

Pool::Pool() = default;

Pool::~Pool() {
  for (void* c : chunks_) ::operator delete(c);
}

Pool& Pool::local() {
  thread_local PoolHolder holder;
  return *holder.pool;
}

std::size_t Pool::pool_count() {
  std::lock_guard<std::mutex> lk(pool_mutex());
  return g_pool_count;
}

void* Pool::carve(std::uint32_t cls) {
  const std::size_t need = kHeaderSize + kClassSizes[cls];
  if (static_cast<std::size_t>(bump_end_ - bump_) < need) {
    char* chunk = static_cast<char*>(::operator new(kChunkBytes));
    chunks_.push_back(chunk);
    stats_.chunk_bytes += kChunkBytes;
    bump_ = chunk;
    bump_end_ = chunk + kChunkBytes;
  }
  char* block = bump_;
  bump_ += align_up(need, 16);
  auto* h = reinterpret_cast<Header*>(block);
  h->owner = this;
  h->cls = cls;
  h->size = static_cast<std::uint32_t>(kClassSizes[cls]);
  return block + kHeaderSize;
}

void Pool::drain_remote() {
  void* head = remote_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    void* next = *static_cast<void**>(head);
    free_local(head, header_of(head)->cls);
    head = next;
  }
}

// The freelist link occupies the block's first word. A *reader* zombie —
// a doomed transaction that started after the block's free committed — may
// still issue its (relaxed-atomic, validation-doomed) load of that word
// concurrently with these link stores: quarantine only guarantees no zombie
// WRITER remains, because only writes can corrupt allocator metadata.
// Relaxed atomic link stores keep that benign-by-design race well-defined
// (same x86-64 codegen as plain moves), matching the repo-wide TSan rule.

void Pool::free_local(void* p, std::uint32_t cls) {
  __atomic_store_n(static_cast<void**>(p), freelists_[cls], __ATOMIC_RELAXED);
  freelists_[cls] = p;
}

void Pool::push_remote(void* p) {
  void* head = remote_.load(std::memory_order_relaxed);
  do {
    __atomic_store_n(static_cast<void**>(p), head, __ATOMIC_RELAXED);
  } while (!remote_.compare_exchange_weak(head, p, std::memory_order_release,
                                          std::memory_order_relaxed));
}

void* Pool::allocate(std::size_t n, std::size_t* usable) {
  ++stats_.allocs;
  if (n > kMaxSmall) {
    char* raw = static_cast<char*>(::operator new(kHeaderSize + n));
    auto* h = reinterpret_cast<Header*>(raw);
    h->owner = nullptr;
    h->cls = kLargeClass;
    h->size = static_cast<std::uint32_t>(n);
    if (usable != nullptr) *usable = n;
    return raw + kHeaderSize;
  }
  const std::uint32_t cls = class_of(n == 0 ? 1 : n);
  if (usable != nullptr) *usable = kClassSizes[cls];
  if (freelists_[cls] == nullptr) drain_remote();
  if (void* p = freelists_[cls]) {
    freelists_[cls] = *static_cast<void**>(p);
    return p;
  }
  return carve(cls);
}

void Pool::deallocate(void* p) {
  if (p == nullptr) return;
  Header* h = header_of(p);
  if (h->cls == kLargeClass) {
    ::operator delete(reinterpret_cast<char*>(h));
    return;
  }
  Pool* owner = h->owner;
  Pool& mine = local();
  ++mine.stats_.frees;
  if (owner == &mine) {
    mine.free_local(p, h->cls);
  } else {
    ++mine.stats_.remote_frees;
    owner->push_remote(p);
  }
}

std::size_t Pool::usable_size(const void* p) { return header_of(p)->size; }

Pool::Stats Pool::stats() const { return stats_; }

}  // namespace cstm
