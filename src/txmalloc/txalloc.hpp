// Transactional allocation API (paper Section 3.1.2).
//
// Allocations inside a transaction are (a) logged in the transaction's
// allocation log so barriers can elide accesses to captured memory, and
// (b) registered for rollback: malloc-in-tx is undone on abort, free-in-tx
// of pre-transaction memory is deferred until commit.
#pragma once

#include <new>
#include <utility>

#include "stm/descriptor.hpp"
#include "txmalloc/pool.hpp"

namespace cstm {

/// Allocates @p n bytes. Inside a transaction the block is recorded in the
/// allocation log (enabling heap capture analysis) and freed automatically
/// if the transaction aborts.
inline void* tx_malloc(Tx& tx, std::size_t n) {
  std::size_t usable = 0;
  void* p = Pool::local().allocate(n, &usable);
  if (tx.in_tx()) {
    ++tx.stats.tx_allocs;
    tx.alloc.allocs.push_back(AllocRecord{p, usable, false});
    tx.alloc_log_insert(p, usable);  // no-op when the plan keeps no log
  }
  return p;
}

/// Frees @p p. Inside a transaction: a block allocated by this transaction
/// is removed from the allocation log and released at transaction end; a
/// pre-transaction block is released only if the transaction commits.
inline void tx_free(Tx& tx, void* p) {
  if (p == nullptr) return;
  if (!tx.in_tx()) {
    Pool::deallocate(p);
    return;
  }
  ++tx.stats.tx_frees;
  auto& allocs = tx.alloc.allocs;
  for (std::size_t i = allocs.size(); i-- > 0;) {
    if (allocs[i].ptr == p && !allocs[i].freed_in_tx) {
      allocs[i].freed_in_tx = true;
      tx.freed_events.push_back(i);  // replayed backwards on partial abort
      tx.alloc_log_erase(p, allocs[i].size);
      return;
    }
  }
  tx.alloc.deferred_frees.push_back(p);
}

/// Typed allocation helpers for trivially destructible payloads (the only
/// kind the transactional containers store in shared memory). Construction
/// is bound to allocation-log registration: the block is recorded before
/// the constructor runs, so initializing stores — tfield::init or plain
/// stores from the constructor — hit memory the heap-capture check already
/// classifies as transaction-local. With no arguments the object is
/// default-initialized (no stores), matching the raw tx_malloc pattern the
/// containers grew up on; field values then come from tfield::init.
template <typename T, typename... Args>
T* tx_new(Tx& tx, Args&&... args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "transactional objects must be trivially destructible");
  void* p = tx_malloc(tx, sizeof(T));
  if constexpr (sizeof...(Args) == 0) {
    return ::new (p) T;  // default-init: no stores for trivial field types
  } else {
    return ::new (p) T(std::forward<Args>(args)...);
  }
}

template <typename T>
void tx_delete(Tx& tx, T* p) {
  tx_free(tx, const_cast<std::remove_const_t<T>*>(p));
}

}  // namespace cstm
