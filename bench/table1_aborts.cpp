// Reproduces Table 1: abort-to-commit ratio at 16 threads for baseline,
// tree, array, filtering and compiler configurations.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::table1_aborts(opt);
  return 0;
}
