// Reproduces Figure 11(a): improvement over baseline at 16 threads for the
// runtime (tree) configurations and the compiler optimization.
//
// With --scaling, runs the thread-count sweep instead (1,2,4,...,--threads)
// and, combined with --json, emits the BENCH_scaling.json record for a
// multi-core box to commit.
#include <cstring>
#include <vector>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  bool scaling = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto opt = cstm::harness::parse_options(static_cast<int>(args.size()),
                                          args.data());
  if (scaling) {
    cstm::harness::fig11a_scaling(opt);
  } else {
    cstm::harness::fig11a_configs(opt);
  }
  return 0;
}
