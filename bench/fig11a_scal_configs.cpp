// Reproduces Figure 11(a): improvement over baseline at 16 threads for the
// runtime (tree) configurations and the compiler optimization.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::fig11a_configs(opt);
  return 0;
}
