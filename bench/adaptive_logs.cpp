// Adaptive capture-log selection vs the three hand-picked structures
// (runtime heap-W family) across all STAMP apps, with a per-app profile of
// the online policy's decisions. With --json this emits the
// BENCH_adaptive.json record (compared, advisorily, by
// scripts/bench_gate.py). --capture-log restricts the sweep to one column.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::adaptive_sweep(opt);
  return 0;
}
