// Reproduces Figure 9: portion of read (a) and write (b) barriers removed
// by tree / array / filter runtime capture analysis and by the compiler
// capture analysis.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::fig9_removed(opt);
  return 0;
}
