// Reproduces Figure 10: single-thread performance impact of the runtime
// configurations (stack+heap R+W, stack+heap W-only, heap W-only) and the
// compiler optimization, relative to baseline.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::fig10_single_thread(opt);
  return 0;
}
