// Reproduces Figure 8: breakdown of compiler-inserted STM barriers into
// captured-heap / captured-stack / not-required / required, at one thread,
// for reads (a), writes (b) and all accesses (c).
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::fig8_breakdown(opt);
  return 0;
}
