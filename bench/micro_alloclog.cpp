// Micro-benchmarks of the three allocation-log data structures: insert,
// hit-lookup, miss-lookup, and clear, across log populations. This is the
// ablation behind the paper's tree/array/filter comparison: the array wins
// on tiny logs (one cache line), the tree scales, the filter pays per-word
// insertion costs.
//
// Each benchmark is a template over the concrete log type — the same
// devirtualized shape the barrier fast paths use — so the numbers measure
// the data structure, not a vtable.
#include <benchmark/benchmark.h>

#include "gbench_smoke.hpp"

#include <cstdint>
#include <vector>

#include "capture/array_log.hpp"
#include "capture/filter_log.hpp"
#include "capture/tree_log.hpp"

namespace {

using namespace cstm;

template <CaptureLog Log>
void BM_AllocLogInsertClear(benchmark::State& state) {
  Log log;
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < blocks; ++i) {
      log.insert(reinterpret_cast<void*>(0x100000 + i * 256), 64);
    }
    log.clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(blocks));
}
BENCHMARK_TEMPLATE(BM_AllocLogInsertClear, TreeAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_TEMPLATE(BM_AllocLogInsertClear, ArrayAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_TEMPLATE(BM_AllocLogInsertClear, FilterAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);

template <CaptureLog Log>
void BM_AllocLogLookupHit(benchmark::State& state) {
  Log log;
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < blocks; ++i) {
    log.insert(reinterpret_cast<void*>(0x100000 + i * 256), 64);
  }
  std::size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= log.contains(
        reinterpret_cast<void*>(0x100000 + (i % blocks) * 256 + 8), 8);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK_TEMPLATE(BM_AllocLogLookupHit, TreeAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_TEMPLATE(BM_AllocLogLookupHit, ArrayAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_TEMPLATE(BM_AllocLogLookupHit, FilterAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);

template <CaptureLog Log>
void BM_AllocLogLookupMiss(benchmark::State& state) {
  Log log;
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < blocks; ++i) {
    log.insert(reinterpret_cast<void*>(0x100000 + i * 256), 64);
  }
  std::size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    // Addresses interleaved between blocks: always misses. The miss path is
    // the paper's "optimize the common case" design target.
    sink ^= log.contains(
        reinterpret_cast<void*>(0x100000 + (i % blocks) * 256 + 128), 8);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK_TEMPLATE(BM_AllocLogLookupMiss, TreeAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_TEMPLATE(BM_AllocLogLookupMiss, ArrayAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK_TEMPLATE(BM_AllocLogLookupMiss, FilterAllocLog)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_FilterLargeBlockInsert(benchmark::State& state) {
  FilterAllocLog log;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> arena(bytes / 8);
  for (auto _ : state) {
    log.insert(arena.data(), bytes);
    log.clear();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(bytes));
}
BENCHMARK(BM_FilterLargeBlockInsert)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) { return cstm::bench::gbench_main(argc, argv); }
