// Micro-benchmarks of the three allocation-log data structures: insert,
// hit-lookup, miss-lookup, and clear, across log populations. This is the
// ablation behind the paper's tree/array/filter comparison: the array wins
// on tiny logs (one cache line), the tree scales, the filter pays per-word
// insertion costs.
#include <benchmark/benchmark.h>

#include "gbench_smoke.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "capture/array_log.hpp"
#include "capture/filter_log.hpp"
#include "capture/tree_log.hpp"

namespace {

using namespace cstm;

std::unique_ptr<AllocLog> make_log(int kind) {
  switch (kind) {
    case 0: return std::make_unique<TreeAllocLog>();
    case 1: return std::make_unique<ArrayAllocLog>();
    default: return std::make_unique<FilterAllocLog>();
  }
}

void BM_AllocLogInsertClear(benchmark::State& state) {
  auto log = make_log(static_cast<int>(state.range(0)));
  const std::size_t blocks = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    for (std::size_t i = 0; i < blocks; ++i) {
      log->insert(reinterpret_cast<void*>(0x100000 + i * 256), 64);
    }
    log->clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(blocks));
}
BENCHMARK(BM_AllocLogInsertClear)
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}});

void BM_AllocLogLookupHit(benchmark::State& state) {
  auto log = make_log(static_cast<int>(state.range(0)));
  const std::size_t blocks = static_cast<std::size_t>(state.range(1));
  for (std::size_t i = 0; i < blocks; ++i) {
    log->insert(reinterpret_cast<void*>(0x100000 + i * 256), 64);
  }
  std::size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= log->contains(reinterpret_cast<void*>(0x100000 + (i % blocks) * 256 + 8), 8);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AllocLogLookupHit)->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}});

void BM_AllocLogLookupMiss(benchmark::State& state) {
  auto log = make_log(static_cast<int>(state.range(0)));
  const std::size_t blocks = static_cast<std::size_t>(state.range(1));
  for (std::size_t i = 0; i < blocks; ++i) {
    log->insert(reinterpret_cast<void*>(0x100000 + i * 256), 64);
  }
  std::size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    // Addresses interleaved between blocks: always misses. The miss path is
    // the paper's "optimize the common case" design target.
    sink ^= log->contains(reinterpret_cast<void*>(0x100000 + (i % blocks) * 256 + 128), 8);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AllocLogLookupMiss)->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}});

void BM_FilterLargeBlockInsert(benchmark::State& state) {
  FilterAllocLog log;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> arena(bytes / 8);
  for (auto _ : state) {
    log.insert(arena.data(), bytes);
    log.clear();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(bytes));
}
BENCHMARK(BM_FilterLargeBlockInsert)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) { return cstm::bench::gbench_main(argc, argv); }
