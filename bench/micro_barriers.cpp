// Micro-benchmarks of the barrier primitives: cost of a full barrier vs an
// elided barrier under each capture-check mechanism, plus the ablation the
// paper implies (how much a failed runtime check costs on top of a full
// barrier). google-benchmark based.
#include <benchmark/benchmark.h>

#include "gbench_smoke.hpp"

#include <cstdint>
#include <vector>

#include "stm/stm.hpp"

namespace {

using namespace cstm;

void BM_FullReadBarrier(benchmark::State& state) {
  set_global_config(TxConfig::baseline());
  std::vector<std::uint64_t> data(1024, 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        sink += tm_read(tx, &data[i]);
      }
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FullReadBarrier);

void BM_FullWriteBarrier(benchmark::State& state) {
  set_global_config(TxConfig::baseline());
  std::vector<std::uint64_t> data(1024, 1);
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        tm_write(tx, &data[i], i);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FullWriteBarrier);

// A runtime check that always misses: the pure overhead kmeans pays.
void BM_WriteBarrier_FailedRuntimeCheck(benchmark::State& state) {
  TxConfig cfg = TxConfig::runtime_rw(
      static_cast<AllocLogKind>(state.range(0)));
  set_global_config(cfg);
  std::vector<std::uint64_t> data(1024, 1);
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        tm_write(tx, &data[i], i, kAutoSite);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_WriteBarrier_FailedRuntimeCheck)->Arg(0)->Arg(1)->Arg(2);

// A runtime check that always hits: captured heap writes.
void BM_WriteBarrier_ElidedHeap(benchmark::State& state) {
  set_global_config(TxConfig::runtime_w(
      static_cast<AllocLogKind>(state.range(0))));
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 1024 * 8));
      for (std::size_t i = 0; i < 1024; ++i) {
        tm_write(tx, &block[i], i, kAutoSite);
      }
      tx_free(tx, block);
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_WriteBarrier_ElidedHeap)->Arg(0)->Arg(1)->Arg(2);

// Stack capture: the single range check of Figure 4.
void BM_WriteBarrier_ElidedStack(benchmark::State& state) {
  set_global_config(TxConfig::runtime_w());
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      std::uint64_t local[64];
      for (std::size_t i = 0; i < 64; ++i) {
        tm_write(tx, &local[i], i, kAutoSite);
      }
      benchmark::DoNotOptimize(local);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WriteBarrier_ElidedStack);

// Compiler elision: zero runtime cost beyond the counter.
void BM_WriteBarrier_StaticElision(benchmark::State& state) {
  set_global_config(TxConfig::compiler());
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 1024 * 8));
      for (std::size_t i = 0; i < 1024; ++i) {
        tm_write(tx, &block[i], i, kAutoCapturedSite);
      }
      tx_free(tx, block);
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_WriteBarrier_StaticElision);

}  // namespace

int main(int argc, char** argv) { return cstm::bench::gbench_main(argc, argv); }
