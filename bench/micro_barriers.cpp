// Micro-benchmarks of the barrier primitives: cost of a full barrier vs an
// elided barrier under each capture-check mechanism, plus the ablation the
// paper implies (how much a failed runtime check costs on top of a full
// barrier). google-benchmark based.
//
// The BM_Dispatch_* group measures the per-transaction barrier-plan
// dispatch: the capture-hit paths under each specialized plan (stack /
// heap×{tree,array,filter} / static), read and write side. These are the
// paths the plan refactor devirtualized — a regression here means an
// indirect call or config branch crept back into the hot loop.
#include <benchmark/benchmark.h>

#include "gbench_smoke.hpp"

#include <cstdint>
#include <vector>

#include "stm/stm.hpp"

namespace {

using namespace cstm;

void BM_FullReadBarrier(benchmark::State& state) {
  set_global_config(TxConfig::baseline());
  std::vector<std::uint64_t> data(1024, 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        sink += tm_read(tx, &data[i]);
      }
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FullReadBarrier);

void BM_FullWriteBarrier(benchmark::State& state) {
  set_global_config(TxConfig::baseline());
  std::vector<std::uint64_t> data(1024, 1);
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        tm_write(tx, &data[i], i);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FullWriteBarrier);

// A runtime check that always misses: the pure overhead kmeans pays.
void BM_WriteBarrier_FailedRuntimeCheck(benchmark::State& state) {
  TxConfig cfg = TxConfig::runtime_rw(
      static_cast<AllocLogKind>(state.range(0)));
  set_global_config(cfg);
  std::vector<std::uint64_t> data(1024, 1);
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        tm_write(tx, &data[i], i, kAutoSite);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_WriteBarrier_FailedRuntimeCheck)->Arg(0)->Arg(1)->Arg(2);

// A runtime check that always hits: captured heap writes.
void BM_WriteBarrier_ElidedHeap(benchmark::State& state) {
  set_global_config(TxConfig::runtime_w(
      static_cast<AllocLogKind>(state.range(0))));
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 1024 * 8));
      for (std::size_t i = 0; i < 1024; ++i) {
        tm_write(tx, &block[i], i, kAutoSite);
      }
      tx_free(tx, block);
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_WriteBarrier_ElidedHeap)->Arg(0)->Arg(1)->Arg(2);

// Stack capture: the single range check of Figure 4.
void BM_WriteBarrier_ElidedStack(benchmark::State& state) {
  set_global_config(TxConfig::runtime_w());
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      std::uint64_t local[64];
      for (std::size_t i = 0; i < 64; ++i) {
        tm_write(tx, &local[i], i, kAutoSite);
      }
      benchmark::DoNotOptimize(local);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WriteBarrier_ElidedStack);

// Compiler elision: zero runtime cost beyond the counter.
void BM_WriteBarrier_StaticElision(benchmark::State& state) {
  set_global_config(TxConfig::compiler());
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 1024 * 8));
      for (std::size_t i = 0; i < 1024; ++i) {
        tm_write(tx, &block[i], i, kAutoCapturedSite);
      }
      tx_free(tx, block);
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_WriteBarrier_StaticElision);

// -- Dispatch-cost measurements (the plan-specialized capture-hit paths) ----

// Heap-hit READ path: the capture check that must "pay for itself on every
// workload". One membership query per read, always a hit, no indirect call.
void BM_Dispatch_ReadElidedHeap(benchmark::State& state) {
  set_global_config(TxConfig::runtime_rw(
      static_cast<AllocLogKind>(state.range(0))));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 1024 * 8));
      for (std::size_t i = 0; i < 1024; ++i) {
        tm_write(tx, &block[i], i, kAutoSite);
      }
      for (std::size_t i = 0; i < 1024; ++i) {
        sink += tm_read(tx, &block[i], kAutoSite);
      }
      tx_free(tx, block);
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Dispatch_ReadElidedHeap)->Arg(0)->Arg(1)->Arg(2);

// Stack-hit READ path: the single range check of Figure 4, read side.
void BM_Dispatch_ReadElidedStack(benchmark::State& state) {
  set_global_config(TxConfig::runtime_rw());
  std::uint64_t sink = 0;
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      std::uint64_t local[64] = {};
      for (std::size_t i = 0; i < 64; ++i) {
        sink += tm_read(tx, &local[i], kAutoSite);
      }
      benchmark::DoNotOptimize(local);
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Dispatch_ReadElidedStack);

// Static-elision READ path: the kStatic plan's Site-flag test.
void BM_Dispatch_ReadStaticElision(benchmark::State& state) {
  set_global_config(TxConfig::compiler());
  std::uint64_t sink = 0;
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 1024 * 8));
      for (std::size_t i = 0; i < 1024; ++i) {
        tm_write(tx, &block[i], i, kAutoCapturedSite);
      }
      for (std::size_t i = 0; i < 1024; ++i) {
        sink += tm_read(tx, &block[i], kAutoCapturedSite);
      }
      tx_free(tx, block);
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Dispatch_ReadStaticElision);

// Proven-captured WRITE path: the analysis-driven elision the txir
// pipeline emits (Site verdict kCaptured under the kStatic plan). Must
// cost no more than the elided-stack path: one flag test, zero log
// probes, no stack range check. Loop length matches
// BM_WriteBarrier_ElidedStack for a direct per-access comparison.
void BM_Dispatch_WriteProvenCaptured(benchmark::State& state) {
  set_global_config(TxConfig::compiler());
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      auto* block = static_cast<std::uint64_t*>(tx_malloc(tx, 64 * 8));
      for (std::size_t i = 0; i < 64; ++i) {
        tm_write(tx, &block[i], i, kAutoCapturedSite);
      }
      tx_free(tx, block);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Dispatch_WriteProvenCaptured);

// Baseline-plan dispatch overhead: a kFull plan still goes through the
// plan switch before the full barrier; compare against BM_FullReadBarrier
// from the pre-plan code to see the slot's cost (it should be free — the
// switch replaces the old chain of cfg tests).
void BM_Dispatch_FullBarrierViaPlan(benchmark::State& state) {
  set_global_config(TxConfig::baseline());
  std::vector<std::uint64_t> data(1024, 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    atomic([&](Tx& tx) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        sink += tm_read(tx, &data[i]);
        tm_write(tx, &data[i], sink);
      }
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_Dispatch_FullBarrierViaPlan);

}  // namespace

int main(int argc, char** argv) { return cstm::bench::gbench_main(argc, argv); }
