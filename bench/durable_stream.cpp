// Durable-mode cost across STAMP: non-durable reference vs durable with
// capture elision vs durable with capture disabled, plus the
// flushes-elided% / pwb counts that explain the gap. With --json this
// emits the BENCH_durable.json record (compared, advisorily, by
// scripts/bench_gate.py).
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::durable_sweep(opt);
  return 0;
}
