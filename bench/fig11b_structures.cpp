// Reproduces Figure 11(b): improvement over baseline at 16 threads for the
// three allocation-log data structures (write-only, heap-only checks) and
// the compiler optimization.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::fig11b_structures(opt);
  return 0;
}
