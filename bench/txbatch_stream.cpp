// txbatch merge-factor sweep: replays the vacation-low and intruder request
// streams through txbatch::Batcher at batch sizes {1, 4, 16, 64} (or a
// single size via --batch N) and reports throughput next to the
// capture-hit-rate% that explains it. With --json this emits the
// BENCH_txbatch.json record (compared, advisorily, by
// scripts/bench_gate.py).
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::txbatch_stream(opt);
  return 0;
}
