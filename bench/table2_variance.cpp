// Reproduces Table 2: percent relative standard deviation over 5 repeated
// runs at 16 threads, per application and configuration.
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  auto opt = cstm::harness::parse_options(argc, argv);
  cstm::harness::table2_variance(opt);
  return 0;
}
