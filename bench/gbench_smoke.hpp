// Shared main() body for the google-benchmark micro benches: translates the
// repo-wide `--smoke` flag (used by the ctest bit-rot gate) into a
// near-instant min_time before handing argv to google-benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

namespace cstm::bench {

inline int gbench_main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.001";
  for (auto& arg : args) {
    if (std::string_view(arg) == "--smoke") arg = min_time;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cstm::bench
