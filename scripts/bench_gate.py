#!/usr/bin/env python3
"""Bench regression gate: fresh run vs the committed BENCH_*.json records.

Runs scripts/bench_json.sh into a temporary directory (never touching the
committed records) and compares every cell against the committed
BENCH_fig10.json / BENCH_fig11.json:

  * baseline_seconds must agree within a x(1 +/- tolerance) ratio;
  * per-config improvement percentages must agree within +/- tolerance
    percentage points.

Default mode is ADVISORY: violations are printed loudly but the exit code
stays 0, because the 1-core CI box is noisy (+/-10% run to run) and a
scheduler hiccup must not turn the whole gate red. Pass --strict to make
violations fatal (use on quiet hardware, or when chasing a suspected
regression).

A malformed committed BENCH_*.json (unparseable JSON, or a record missing
its required schema keys) is fatal EVEN in advisory mode: advisory exists
to absorb scheduler noise on shared runners, and a corrupt committed
record is repo corruption, not noise.

Usage: scripts/bench_gate.py [--strict] [--tolerance PCT] [--skip-run]
                             [--report-out PATH]
  --tolerance PCT   comparison half-width, default 25 (percent / points)
  --skip-run        compare an existing OUT_DIR (env) instead of running
  --report-out PATH mirror all output into PATH (written incrementally, so
                    the report survives a crash mid-comparison — CI points
                    this at ci-artifacts/ and uploads it unconditionally)
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class MalformedRecord(Exception):
    """A committed BENCH_*.json that cannot be trusted as a baseline."""


class _Tee:
    """Mirrors writes to every stream; flushes eagerly so --report-out
    holds everything printed so far even if a later comparison crashes."""

    def __init__(self, *streams):
        self._streams = streams

    def write(self, s):
        for st in self._streams:
            st.write(s)
            st.flush()

    def flush(self):
        for st in self._streams:
            st.flush()


def load(path):
    with open(path) as f:
        return json.load(f)


def load_committed(path, required_keys):
    """Loads a committed record, raising MalformedRecord (fatal in every
    mode) on parse errors or missing schema keys."""
    try:
        rec = load(path)
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as e:
        raise MalformedRecord(f"{os.path.basename(path)}: {e}")
    if not isinstance(rec, dict):
        raise MalformedRecord(
            f"{os.path.basename(path)}: top level is {type(rec).__name__}, "
            "expected an object")
    missing = [k for k in required_keys if k not in rec]
    if missing:
        raise MalformedRecord(
            f"{os.path.basename(path)}: missing required key(s) "
            f"{', '.join(missing)}")
    return rec


def compare_scaling(committed, fresh, tolerance, violations, lines):
    """Advisory comparison of BENCH_scaling.json records.

    Schema (written by `bench_fig11a_scal_configs --scaling --json ...`):
      {"experiment": "scaling", "scale": S, "reps": N, "seed": X,
       "threads": [1, 2, ...],
       "rows": [{"app": "...", "config": "...", "seconds": [...]}, ...]}

    Each (app, config) row's per-thread-count seconds must agree within the
    same ratio tolerance as the baseline comparison. Thread-count lists
    must match exactly — a sweep recorded on a different box shape is a
    different experiment, not a regression.
    """
    if committed.get("threads") != fresh.get("threads"):
        violations.append(
            f"scaling: thread counts differ (committed {committed.get('threads')}"
            f" vs fresh {fresh.get('threads')}); record both on the same box"
        )
        return
    counts = committed.get("threads", [])
    committed_rows = {(r["app"], r["config"]): r for r in committed["rows"]}
    fresh_rows = {(r["app"], r["config"]): r for r in fresh["rows"]}
    for key, crow in committed_rows.items():
        frow = fresh_rows.get(key)
        app_cfg = f"{key[0]}/{key[1]}"
        if frow is None:
            violations.append(f"scaling/{app_cfg}: missing from fresh run")
            continue
        for t, csec, fsec in zip(counts, crow["seconds"], frow["seconds"]):
            ratio = fsec / csec if csec > 0 else float("inf")
            ok = 1.0 / (1.0 + tolerance / 100.0) <= ratio <= 1.0 + tolerance / 100.0
            if not ok:
                violations.append(
                    f"scaling/{app_cfg}@{t}T: {fsec:.4f}s vs committed "
                    f"{csec:.4f}s (x{ratio:.2f})"
                )
            lines.append(
                f"  scaling  {app_cfg:27s} {t:3d}T "
                f"{csec:8.4f}s -> {fsec:8.4f}s  (x{ratio:.2f})"
            )


def compare_txbatch(committed, fresh, tolerance, violations, lines):
    """Advisory comparison of BENCH_txbatch.json records.

    Schema (written by `bench_txbatch_stream --json ...`):
      {"experiment": "txbatch", "scale": S, "threads": T, "reps": N,
       "seed": X, "batch_sizes": [1, 4, 16, 64],
       "rows": [{"app": "...", "batch": B, "seconds": ...,
                 "capture_hit_percent": ..., ...}, ...]}

    Per (app, batch) cell: seconds within the ratio tolerance, and
    capture_hit_percent within +/- tolerance points. The capture curve is a
    deterministic property of the workload, so drifts there mean the merge
    layer or the elision machinery changed behaviour, not the scheduler.
    """
    if committed.get("batch_sizes") != fresh.get("batch_sizes"):
        violations.append(
            f"txbatch: batch sizes differ (committed "
            f"{committed.get('batch_sizes')} vs fresh {fresh.get('batch_sizes')})"
        )
        return
    committed_rows = {(r["app"], r["batch"]): r for r in committed["rows"]}
    fresh_rows = {(r["app"], r["batch"]): r for r in fresh["rows"]}
    for key, crow in committed_rows.items():
        frow = fresh_rows.get(key)
        cell = f"{key[0]}@{key[1]}"
        if frow is None:
            violations.append(f"txbatch/{cell}: missing from fresh run")
            continue
        csec, fsec = crow["seconds"], frow["seconds"]
        ratio = fsec / csec if csec > 0 else float("inf")
        ok = 1.0 / (1.0 + tolerance / 100.0) <= ratio <= 1.0 + tolerance / 100.0
        if not ok:
            violations.append(
                f"txbatch/{cell}: {fsec:.4f}s vs committed {csec:.4f}s "
                f"(x{ratio:.2f})"
            )
        chit, fhit = crow["capture_hit_percent"], frow["capture_hit_percent"]
        if abs(fhit - chit) > tolerance:
            violations.append(
                f"txbatch/{cell}: capture-hit {fhit:.1f}% vs committed "
                f"{chit:.1f}% (delta {fhit - chit:+.1f} points)"
            )
        lines.append(
            f"  txbatch  {cell:20s} {csec:8.4f}s -> {fsec:8.4f}s  "
            f"(x{ratio:.2f})  cap-hit {chit:5.1f}% -> {fhit:5.1f}%"
        )


def compare_adaptive_profiles(committed, fresh, violations, lines):
    """Advisory comparison of BENCH_adaptive.json policy profiles.

    The record is speedup_table-shaped (same row schema as fig10/fig11b, so
    the seconds/improvement columns go through compare_rows) plus a per-app
    "adaptive_profile" object describing what the online policy decided.
    The switch count is compared exactly: the decision sequence is a
    deterministic property of the workload, so a different count means the
    policy (or a signal feeding it) changed behaviour, not the scheduler.
    """
    committed_rows = {r["app"]: r for r in committed["rows"]}
    fresh_rows = {r["app"]: r for r in fresh["rows"]}
    for app, crow in committed_rows.items():
        cprof = crow.get("adaptive_profile")
        frow = fresh_rows.get(app)
        if cprof is None or frow is None:
            continue
        fprof = frow.get("adaptive_profile")
        if fprof is None:
            violations.append(f"adaptive/{app}: profile missing from fresh run")
            continue
        csw, fsw = cprof["switches"], fprof["switches"]
        if csw != fsw:
            violations.append(
                f"adaptive/{app}: policy made {fsw} switch(es) vs committed "
                f"{csw} — decision sequence changed"
            )
        lines.append(
            f"  adaptive {app:15s} switches {csw:3d} -> {fsw:3d}  "
            f"ovf {cprof['array_overflow_percent']:5.1f}% -> "
            f"{fprof['array_overflow_percent']:5.1f}%"
        )


def compare_durable(committed, fresh, tolerance, violations, lines):
    """Advisory comparison of BENCH_durable.json records.

    Schema (written by `bench_durable --json ...`):
      {"experiment": "durable", "scale": S, "threads": T, "reps": N,
       "seed": X,
       "rows": [{"app": "...", "nondurable_seconds": ...,
                 "durable_seconds": ..., "flushes_elided_percent": ...,
                 "pwbs": ..., "pwbs_nocapture": ..., ...}, ...]}

    Seconds columns are ratio-compared like every other timing cell.
    flushes_elided_percent is compared within +/- tolerance points: the
    elision ratio is a deterministic property of capture analysis on a
    fixed-seed workload, so drift there means the elision rule (or the
    capture machinery feeding it) changed behaviour, not the scheduler.
    """
    committed_rows = {r["app"]: r for r in committed["rows"]}
    fresh_rows = {r["app"]: r for r in fresh["rows"]}
    for app, crow in committed_rows.items():
        frow = fresh_rows.get(app)
        if frow is None:
            violations.append(f"durable/{app}: missing from fresh run")
            continue
        for col in ("nondurable_seconds", "durable_seconds",
                    "durable_nocapture_seconds"):
            csec, fsec = crow[col], frow[col]
            ratio = fsec / csec if csec > 0 else float("inf")
            ok = 1.0 / (1.0 + tolerance / 100.0) <= ratio <= 1.0 + tolerance / 100.0
            if not ok:
                violations.append(
                    f"durable/{app}/{col}: {fsec:.4f}s vs committed "
                    f"{csec:.4f}s (x{ratio:.2f})"
                )
        celide, felide = (crow["flushes_elided_percent"],
                          frow["flushes_elided_percent"])
        if abs(felide - celide) > tolerance:
            violations.append(
                f"durable/{app}: flushes-elided {felide:.1f}% vs committed "
                f"{celide:.1f}% (delta {felide - celide:+.1f} points)"
            )
        lines.append(
            f"  durable  {app:15s} {crow['durable_seconds']:8.4f}s -> "
            f"{frow['durable_seconds']:8.4f}s  elided "
            f"{celide:5.1f}% -> {felide:5.1f}%"
        )


def compare_rows(name, committed, fresh, tolerance, violations, lines):
    committed_rows = {r["app"]: r for r in committed["rows"]}
    fresh_rows = {r["app"]: r for r in fresh["rows"]}
    for app, crow in committed_rows.items():
        frow = fresh_rows.get(app)
        if frow is None:
            violations.append(f"{name}/{app}: missing from fresh run")
            continue
        cbase, fbase = crow["baseline_seconds"], frow["baseline_seconds"]
        ratio = fbase / cbase if cbase > 0 else float("inf")
        base_ok = 1.0 / (1.0 + tolerance / 100.0) <= ratio <= 1.0 + tolerance / 100.0
        if not base_ok:
            violations.append(
                f"{name}/{app}: baseline {fbase:.4f}s vs committed "
                f"{cbase:.4f}s (x{ratio:.2f})"
            )
        for cfg, cimp in crow["improvement_percent"].items():
            fimp = frow["improvement_percent"].get(cfg)
            if fimp is None:
                violations.append(f"{name}/{app}/{cfg}: missing config")
                continue
            delta = fimp - cimp
            if abs(delta) > tolerance:
                violations.append(
                    f"{name}/{app}/{cfg}: improvement {fimp:+.1f}% vs "
                    f"committed {cimp:+.1f}% (delta {delta:+.1f} points)"
                )
            lines.append(
                f"  {name:8s} {app:15s} {cfg:18s} "
                f"{cimp:+8.1f}% -> {fimp:+8.1f}%  ({delta:+6.1f})"
            )


def run(args):
    committed10 = os.path.join(REPO, "BENCH_fig10.json")
    committed11 = os.path.join(REPO, "BENCH_fig11.json")
    for p in (committed10, committed11):
        if not os.path.exists(p):
            print(f"bench_gate: no committed record {p}; nothing to gate")
            return 0

    tmp_ctx = None
    if args.skip_run:
        out_dir = os.environ.get("OUT_DIR", ".")
    else:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="bench_gate_")
        out_dir = tmp_ctx.name
        env = dict(os.environ, OUT_DIR=out_dir)
        print(f"bench_gate: running scripts/bench_json.sh (OUT_DIR={out_dir})")
        subprocess.run(
            [os.path.join(REPO, "scripts", "bench_json.sh")],
            check=True, cwd=REPO, env=env,
        )

    fresh10 = load(os.path.join(out_dir, "BENCH_fig10.json"))
    fresh11 = load(os.path.join(out_dir, "BENCH_fig11.json"))
    c10 = load_committed(committed10, ("rows",))
    c11 = load_committed(committed11, ("fig11a", "fig11b"))
    for part in ("fig11a", "fig11b"):
        if not isinstance(c11[part], dict) or "rows" not in c11[part]:
            raise MalformedRecord(
                f"BENCH_fig11.json: '{part}' lacks a 'rows' table")

    violations, lines = [], []
    compare_rows("fig10", c10, fresh10, args.tolerance, violations, lines)
    compare_rows("fig11a", c11["fig11a"], fresh11["fig11a"], args.tolerance,
                 violations, lines)
    compare_rows("fig11b", c11["fig11b"], fresh11["fig11b"], args.tolerance,
                 violations, lines)

    # BENCH_scaling.json is optional until a multi-core box records it: the
    # schema is wired now so that first session only has to run the sweep.
    committed_scaling = os.path.join(REPO, "BENCH_scaling.json")
    fresh_scaling = os.path.join(out_dir, "BENCH_scaling.json")
    if os.path.exists(committed_scaling):
        if os.path.exists(fresh_scaling):
            compare_scaling(
                load_committed(committed_scaling, ("threads", "rows")),
                load(fresh_scaling), args.tolerance, violations, lines)
        else:
            print("bench_gate: committed BENCH_scaling.json present but the "
                  "fresh run produced none; skipping (advisory)")
    else:
        print("bench_gate: no committed BENCH_scaling.json (expected until a "
              "multi-core box records one); skipping scaling comparison")

    # BENCH_txbatch.json is compared advisorily, like the scaling record:
    # the merge-factor sweep lives or dies by its capture curve, which is
    # deterministic, but the seconds column shares the 1-core box's noise.
    committed_txbatch = os.path.join(REPO, "BENCH_txbatch.json")
    fresh_txbatch = os.path.join(out_dir, "BENCH_txbatch.json")
    if os.path.exists(committed_txbatch):
        if os.path.exists(fresh_txbatch):
            compare_txbatch(
                load_committed(committed_txbatch, ("batch_sizes", "rows")),
                load(fresh_txbatch), args.tolerance, violations, lines)
        else:
            print("bench_gate: committed BENCH_txbatch.json present but the "
                  "fresh run produced none; skipping (advisory)")
    else:
        print("bench_gate: no committed BENCH_txbatch.json; skipping txbatch "
              "comparison")

    # BENCH_adaptive.json is the online-policy record: speedup columns plus
    # a per-app decision profile. Advisory like the others — optional until
    # the first session records it.
    committed_adaptive = os.path.join(REPO, "BENCH_adaptive.json")
    fresh_adaptive = os.path.join(out_dir, "BENCH_adaptive.json")
    if os.path.exists(committed_adaptive):
        if os.path.exists(fresh_adaptive):
            ca = load_committed(committed_adaptive, ("rows",))
            fa = load(fresh_adaptive)
            compare_rows("adaptive", ca, fa, args.tolerance, violations, lines)
            compare_adaptive_profiles(ca, fa, violations, lines)
        else:
            print("bench_gate: committed BENCH_adaptive.json present but the "
                  "fresh run produced none; skipping (advisory)")
    else:
        print("bench_gate: no committed BENCH_adaptive.json; skipping "
              "adaptive comparison")

    # BENCH_durable.json: timing ratios plus the deterministic
    # flushes-elided column. Advisory and optional, like its siblings.
    committed_durable = os.path.join(REPO, "BENCH_durable.json")
    fresh_durable = os.path.join(out_dir, "BENCH_durable.json")
    if os.path.exists(committed_durable):
        if os.path.exists(fresh_durable):
            compare_durable(load_committed(committed_durable, ("rows",)),
                            load(fresh_durable), args.tolerance, violations,
                            lines)
        else:
            print("bench_gate: committed BENCH_durable.json present but the "
                  "fresh run produced none; skipping (advisory)")
    else:
        print("bench_gate: no committed BENCH_durable.json; skipping "
              "durable comparison")

    print("bench_gate: committed -> fresh improvement percentages:")
    print("\n".join(lines))
    if tmp_ctx is not None:
        tmp_ctx.cleanup()

    if violations:
        print("!" * 64)
        print(f"bench_gate: {len(violations)} cell(s) outside the "
              f"+/-{args.tolerance:g} tolerance:")
        for v in violations:
            print(f"!!! {v}")
        print("!" * 64)
        if args.strict:
            return 1
        print("bench_gate: ADVISORY mode (1-core CI box): not failing the "
              "build; rerun with --strict to enforce")
        return 0

    print(f"bench_gate: all cells within +/-{args.tolerance:g}; green")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero on violations")
    ap.add_argument("--tolerance", type=float, default=25.0,
                    help="half-width in percent/points (default 25)")
    ap.add_argument("--skip-run", action="store_true",
                    help="compare an existing OUT_DIR instead of running")
    ap.add_argument("--report-out", metavar="PATH",
                    help="mirror all output into PATH (crash-safe)")
    args = ap.parse_args()

    report = None
    orig_stdout = sys.stdout
    if args.report_out:
        report_dir = os.path.dirname(args.report_out)
        if report_dir:
            os.makedirs(report_dir, exist_ok=True)
        report = open(args.report_out, "w")
        sys.stdout = _Tee(orig_stdout, report)
    try:
        return run(args)
    except MalformedRecord as e:
        # Fatal regardless of --strict: see the module docstring.
        print(f"bench_gate: FATAL: malformed committed record: {e}")
        print("bench_gate: advisory mode does not cover repo corruption; "
              "fix or re-record the committed BENCH_*.json")
        return 1
    finally:
        sys.stdout = orig_stdout
        if report is not None:
            report.close()


if __name__ == "__main__":
    sys.exit(main())
