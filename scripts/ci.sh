#!/usr/bin/env bash
# Hermetic CI entry point, driven by .github/workflows/ci.yml and usable
# verbatim on any machine. Philosophy:
#
#  * NOTHING is installed implicitly. The only command that touches the
#    package manager is the explicit `setup` mode (run as a dedicated,
#    visible CI step); every other mode verifies its dependencies up front
#    and fails loudly with the exact names of what is missing.
#  * One mode per CI matrix cell: `release`, `asan`, `tsan` each configure
#    the matching CMake preset with the -Werror gate enabled, build, and
#    run ctest with --output-on-failure and the per-test TIMEOUTs/LABELS
#    registered in CMakeLists.txt. The high-thread `stress` tier, the
#    txbatch `batch` tier, the `adaptive` tier, and the `durable` tier run
#    in all three cells, so the contention managers, the batched clock,
#    the merge layer's compensation path, the online log-selection policy,
#    and the durable commit leg are raced under both sanitizers on every
#    push. The tsan preset excludes only bench-smoke and the fork-based
#    `crash` recovery harness (TSan and fork() don't mix); the crash tests
#    still run under release AND ASan.
#  * `release` additionally writes the static-analysis elision table and
#    the (advisory) bench-gate report into ci-artifacts/ for the workflow
#    to upload.
#  * `codegen-drift` is the analysis→codegen staleness gate: it builds
#    txir_sitegen, writes a freshly regenerated header and the kernel
#    precision report into ci-artifacts/ (so a red run uploads exactly
#    what the fix commit should contain), then runs
#    `txir_sitegen --check generated/site_verdicts.hpp` and fails on any
#    drift between the committed Site verdict table and the analysis.
#  * Every build mode uses ccache transparently when it is installed
#    (setup installs it on CI; the workflow persists ~/.ccache across
#    runs via actions/cache) and is unchanged when it is not.
#  * `format` runs the clang-format gate for real — the CI image installs
#    a pinned clang-format in `setup`, so the check cannot self-skip the
#    way it does on dev boxes without the tool.
#
# scripts/check.sh remains the local mirror (it runs the same suites but
# tolerates missing optional tools with loud SKIP banners).
#
# Usage: scripts/ci.sh {setup|release|asan|tsan|format|codegen-drift}
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned clang-format major version: bump deliberately, reformat in the
# same commit. (Format output differs across majors.)
CLANG_FORMAT_VERSION="${CLANG_FORMAT_VERSION:-15}"

jobs=$(nproc 2>/dev/null || echo 4)

die() {
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
  echo "!!! ci.sh: $*" >&2
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
  exit 1
}

require() {
  local missing=()
  for tool in "$@"; do
    command -v "$tool" > /dev/null 2>&1 || missing+=("$tool")
  done
  if [ "${#missing[@]}" -ne 0 ]; then
    die "missing required tools: ${missing[*]} — run 'scripts/ci.sh setup' (CI image) or install them explicitly"
  fi
}

# ccache is optional everywhere: CI installs it in `setup` and the
# workflow caches ~/.ccache keyed on preset x build-config lockfiles, so
# warm runs skip most compiles; dev boxes without it build exactly as
# before.
launcher_flags() {
  if command -v ccache > /dev/null 2>&1; then
    echo "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
  fi
}

run_preset() {
  local preset="$1"
  require cmake ctest c++
  echo "== ci.sh: configure preset '$preset' (CSTM_WERROR=ON) =="
  # shellcheck disable=SC2046 — launcher_flags is empty or one flag
  cmake --preset "$preset" -DCSTM_WERROR=ON $(launcher_flags)
  echo "== ci.sh: build preset '$preset' =="
  cmake --build --preset "$preset" -j "$jobs"
  if command -v ccache > /dev/null 2>&1; then
    echo "== ci.sh: ccache stats =="
    ccache -s | sed -n '1,6p'
  fi
  echo "== ci.sh: ctest preset '$preset' (labels: unit, torture, stress, batch, adaptive, durable, crash, bench-smoke) =="
  ctest --preset "$preset" --output-on-failure
}

mode="${1:-}"
case "$mode" in
  setup)
    # The ONLY mode allowed to install anything, and it does so explicitly
    # and pinned — a dedicated CI step, never a side effect of a build.
    require apt-get
    echo "== ci.sh setup: installing pinned toolchain deps =="
    export DEBIAN_FRONTEND=noninteractive
    apt-get update
    apt-get install -y --no-install-recommends \
      cmake g++ make python3 ccache libgtest-dev libbenchmark-dev \
      "clang-format-${CLANG_FORMAT_VERSION}"
    # The check-format target looks for plain `clang-format`.
    update-alternatives --install /usr/bin/clang-format clang-format \
      "/usr/bin/clang-format-${CLANG_FORMAT_VERSION}" 100
    echo "== ci.sh setup: done =="
    ;;

  release)
    run_preset release
    echo "== ci.sh: collecting release artifacts =="
    mkdir -p ci-artifacts
    ./build/example_compiler_analysis > ci-artifacts/capture-analysis-report.txt
    if command -v python3 > /dev/null 2>&1; then
      # Advisory on CI hardware (noisy shared runners); check.sh -s is the
      # strict mode for quiet boxes. --report-out writes the report into
      # ci-artifacts/ even if the gate crashes mid-comparison, and a
      # malformed committed BENCH_*.json fails the step even in advisory
      # mode (repo corruption is not scheduler noise).
      python3 scripts/bench_gate.py \
        --report-out ci-artifacts/bench-gate-report.txt
    else
      die "python3 missing for the bench gate — run 'scripts/ci.sh setup'"
    fi
    ;;

  asan|tsan)
    run_preset "$mode"
    ;;

  codegen-drift)
    # The analysis→codegen staleness gate. Artifacts are written BEFORE
    # the check so a red run uploads the regenerated header (= the exact
    # file to commit) and the kernel precision report alongside the diff
    # in the step log.
    require cmake c++
    echo "== ci.sh: codegen-drift: build txir_sitegen =="
    # shellcheck disable=SC2046
    cmake --preset release -DCSTM_WERROR=ON $(launcher_flags) > /dev/null
    cmake --build build --target txir_sitegen -j "$jobs"
    mkdir -p ci-artifacts
    ./build/txir_sitegen --out ci-artifacts/site_verdicts.regenerated.hpp
    ./build/txir_sitegen --report > ci-artifacts/sitegen-kernel-report.txt
    echo "== ci.sh: codegen-drift: check committed generated header =="
    ./build/txir_sitegen --check generated/site_verdicts.hpp
    ;;

  format)
    require cmake clang-format
    found="$(clang-format --version)"
    case "$found" in
      *"version ${CLANG_FORMAT_VERSION}."*) ;;
      *) die "clang-format major mismatch: want ${CLANG_FORMAT_VERSION}, found: ${found}" ;;
    esac
    echo "== ci.sh: clang-format gate (${found}) =="
    # No -DCSTM_WERROR here: the flag is irrelevant to formatting and
    # would persist in a developer's local build/ cache.
    cmake --preset release > /dev/null
    cmake --build build --target check-format
    ;;

  *)
    echo "usage: $0 {setup|release|asan|tsan|format|codegen-drift}" >&2
    exit 2
    ;;
esac

echo "== ci.sh $mode: OK =="
