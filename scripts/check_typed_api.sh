#!/usr/bin/env bash
# Enforces the typed transactional-object API boundary: application-level
# code (containers, STAMP apps, examples) must use tvar/tfield/tvar_array/
# tspan accessors, never the raw tm_read/tm_write/tm_add barrier functions.
# The raw functions remain the documented low-level backend and are only
# allowed in src/stm/ (the implementation), tests, and benches.
#
# Registered as the ctest case `typed_api_boundary` and run by check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

paths=(
  src/containers
  src/stamp
  examples/quickstart.cpp
  examples/annotations.cpp
  examples/travel_booking.cpp
)

if matches=$(grep -rn 'tm_read(\|tm_write(\|tm_add(' "${paths[@]}"); then
  echo "error: raw barrier calls found above the typed API boundary:" >&2
  echo "$matches" >&2
  echo "use tvar/tfield/tvar_array/tspan accessors instead (src/stm/tvar.hpp)" >&2
  exit 1
fi

echo "typed API boundary clean: no raw tm_read/tm_write/tm_add call sites"
