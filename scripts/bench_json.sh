#!/usr/bin/env bash
# Perf-trajectory record, two figures:
#
#  * BENCH_fig10.json — Figure 10 single-thread speedups over baseline, all
#    10 STAMP workloads, at a fixed scale.
#  * BENCH_fig11.json — the first multi-thread record: Figure 11(a)
#    (optimization configs) and 11(b) (alloc-log structures) at
#    FIG11_THREADS threads, merged into one JSON object.
#
# Compare the JSONs across commits to track the perf trajectory. Note the CI
# box has a single core: multi-thread numbers measure oversubscribed
# scheduling, not parallel scaling, and are noisy — trust medians and signs,
# not digits.
#
# Usage: scripts/bench_json.sh [scale] [reps]
#   scale  defaults to 1.0 (approaches paper-size inputs; still seconds-fast)
#   reps   defaults to 5 (median-of-N per cell)
# Environment overrides for the fig11 runs:
#   FIG11_THREADS (default 4), FIG11_SCALE (default 3.0 — larger than fig10
#   so per-cell times rise out of the scheduler-jitter floor), FIG11_REPS
#   (default 5).
# Environment overrides for the txbatch run (BENCH_txbatch.json — request
# streams through the merge layer at batch sizes 1/4/16/64):
#   TXBATCH_THREADS (default 1: the capture curve is a single-thread
#   property and the CI box has one core), TXBATCH_SCALE (default 4.0 —
#   per-cell times of ~0.5 s, above the scheduler-jitter floor the gate
#   comparison would otherwise drown in), TXBATCH_REPS (default = reps).
# Environment overrides for the adaptive run (BENCH_adaptive.json — the
# online capture-log policy vs the three hand-picked structures):
#   ADAPTIVE_THREADS (default 1: the policy reacts to per-thread profiles
#   and the CI box has one core, so single-thread is the stable cell),
#   ADAPTIVE_SCALE (default 3.0, matching the fig11 structure sweep so the
#   columns are comparable), ADAPTIVE_REPS (default = reps).
# Environment overrides for the durable run (BENCH_durable.json — durable
# commit overhead and flushes-elided% vs the non-durable reference and the
# capture-disabled durable baseline):
#   DURABLE_THREADS (default 1: the elision ratio is a single-thread
#   property and the durable commit leg serializes anyway), DURABLE_SCALE
#   (default 1.0), DURABLE_REPS (default = reps).
# OUT_DIR (default repo root) redirects the written JSONs — used by
# scripts/bench_gate.py so a gate run never clobbers the committed records.
#
# Every record is written to a temp file IN the destination directory and
# renamed into place, so an interrupted run never leaves a truncated
# BENCH_*.json where a committed record used to be.
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-1.0}"
reps="${2:-5}"
out_dir="${OUT_DIR:-.}"
fig11_threads="${FIG11_THREADS:-4}"
fig11_scale="${FIG11_SCALE:-3.0}"
fig11_reps="${FIG11_REPS:-5}"
txbatch_threads="${TXBATCH_THREADS:-1}"
txbatch_scale="${TXBATCH_SCALE:-4.0}"
txbatch_reps="${TXBATCH_REPS:-$reps}"
adaptive_threads="${ADAPTIVE_THREADS:-1}"
adaptive_scale="${ADAPTIVE_SCALE:-3.0}"
adaptive_reps="${ADAPTIVE_REPS:-$reps}"
durable_threads="${DURABLE_THREADS:-1}"
durable_scale="${DURABLE_SCALE:-1.0}"
durable_reps="${DURABLE_REPS:-$reps}"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_fig10_single_thread \
  bench_fig11a_scal_configs bench_fig11b_structures bench_txbatch_stream \
  bench_adaptive bench_durable

# Temp file in $out_dir (same filesystem -> the rename is atomic); the trap
# sweeps up whatever an aborted run left behind.
scratch() { mktemp "$out_dir/.bench.XXXXXX"; }
publish() { mv "$1" "$2" && echo "wrote $2"; }
trap 'rm -f "$out_dir"/.bench.*' EXIT

t=$(scratch)
./build/bench_fig10_single_thread \
  --scale "$scale" --reps "$reps" --json "$t"
publish "$t" "$out_dir/BENCH_fig10.json"

tmpa=$(scratch) && tmpb=$(scratch) && t=$(scratch)
./build/bench_fig11a_scal_configs --scale "$fig11_scale" \
  --reps "$fig11_reps" --threads "$fig11_threads" --json "$tmpa"
./build/bench_fig11b_structures --scale "$fig11_scale" \
  --reps "$fig11_reps" --threads "$fig11_threads" --json "$tmpb"
{
  echo '{'
  echo '"fig11a":'
  cat "$tmpa"
  echo ','
  echo '"fig11b":'
  cat "$tmpb"
  echo '}'
} > "$t"
rm -f "$tmpa" "$tmpb"
publish "$t" "$out_dir/BENCH_fig11.json"

t=$(scratch)
./build/bench_txbatch_stream --scale "$txbatch_scale" \
  --reps "$txbatch_reps" --threads "$txbatch_threads" --json "$t"
publish "$t" "$out_dir/BENCH_txbatch.json"

t=$(scratch)
./build/bench_adaptive --scale "$adaptive_scale" \
  --reps "$adaptive_reps" --threads "$adaptive_threads" --json "$t"
publish "$t" "$out_dir/BENCH_adaptive.json"

t=$(scratch)
./build/bench_durable --scale "$durable_scale" \
  --reps "$durable_reps" --threads "$durable_threads" --json "$t"
publish "$t" "$out_dir/BENCH_durable.json"
