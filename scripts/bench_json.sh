#!/usr/bin/env bash
# Perf-trajectory record, two figures:
#
#  * BENCH_fig10.json — Figure 10 single-thread speedups over baseline, all
#    10 STAMP workloads, at a fixed scale.
#  * BENCH_fig11.json — the first multi-thread record: Figure 11(a)
#    (optimization configs) and 11(b) (alloc-log structures) at
#    FIG11_THREADS threads, merged into one JSON object.
#
# Compare the JSONs across commits to track the perf trajectory. Note the CI
# box has a single core: multi-thread numbers measure oversubscribed
# scheduling, not parallel scaling, and are noisy — trust medians and signs,
# not digits.
#
# Usage: scripts/bench_json.sh [scale] [reps]
#   scale  defaults to 1.0 (approaches paper-size inputs; still seconds-fast)
#   reps   defaults to 5 (median-of-N per cell)
# Environment overrides for the fig11 runs:
#   FIG11_THREADS (default 4), FIG11_SCALE (default 3.0 — larger than fig10
#   so per-cell times rise out of the scheduler-jitter floor), FIG11_REPS
#   (default 5).
# Environment overrides for the txbatch run (BENCH_txbatch.json — request
# streams through the merge layer at batch sizes 1/4/16/64):
#   TXBATCH_THREADS (default 1: the capture curve is a single-thread
#   property and the CI box has one core), TXBATCH_SCALE (default 4.0 —
#   per-cell times of ~0.5 s, above the scheduler-jitter floor the gate
#   comparison would otherwise drown in), TXBATCH_REPS (default = reps).
# Environment overrides for the adaptive run (BENCH_adaptive.json — the
# online capture-log policy vs the three hand-picked structures):
#   ADAPTIVE_THREADS (default 1: the policy reacts to per-thread profiles
#   and the CI box has one core, so single-thread is the stable cell),
#   ADAPTIVE_SCALE (default 3.0, matching the fig11 structure sweep so the
#   columns are comparable), ADAPTIVE_REPS (default = reps).
# OUT_DIR (default repo root) redirects the written JSONs — used by
# scripts/bench_gate.py so a gate run never clobbers the committed records.
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-1.0}"
reps="${2:-5}"
out_dir="${OUT_DIR:-.}"
fig11_threads="${FIG11_THREADS:-4}"
fig11_scale="${FIG11_SCALE:-3.0}"
fig11_reps="${FIG11_REPS:-5}"
txbatch_threads="${TXBATCH_THREADS:-1}"
txbatch_scale="${TXBATCH_SCALE:-4.0}"
txbatch_reps="${TXBATCH_REPS:-$reps}"
adaptive_threads="${ADAPTIVE_THREADS:-1}"
adaptive_scale="${ADAPTIVE_SCALE:-3.0}"
adaptive_reps="${ADAPTIVE_REPS:-$reps}"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_fig10_single_thread \
  bench_fig11a_scal_configs bench_fig11b_structures bench_txbatch_stream \
  bench_adaptive

./build/bench_fig10_single_thread \
  --scale "$scale" --reps "$reps" --json "$out_dir/BENCH_fig10.json"
echo "wrote $out_dir/BENCH_fig10.json"

tmpa=$(mktemp) && tmpb=$(mktemp)
trap 'rm -f "$tmpa" "$tmpb"' EXIT
./build/bench_fig11a_scal_configs --scale "$fig11_scale" \
  --reps "$fig11_reps" --threads "$fig11_threads" --json "$tmpa"
./build/bench_fig11b_structures --scale "$fig11_scale" \
  --reps "$fig11_reps" --threads "$fig11_threads" --json "$tmpb"
{
  echo '{'
  echo '"fig11a":'
  cat "$tmpa"
  echo ','
  echo '"fig11b":'
  cat "$tmpb"
  echo '}'
} > "$out_dir/BENCH_fig11.json"
echo "wrote $out_dir/BENCH_fig11.json"

./build/bench_txbatch_stream --scale "$txbatch_scale" \
  --reps "$txbatch_reps" --threads "$txbatch_threads" \
  --json "$out_dir/BENCH_txbatch.json"
echo "wrote $out_dir/BENCH_txbatch.json"

./build/bench_adaptive --scale "$adaptive_scale" \
  --reps "$adaptive_reps" --threads "$adaptive_threads" \
  --json "$out_dir/BENCH_adaptive.json"
echo "wrote $out_dir/BENCH_adaptive.json"
