#!/usr/bin/env bash
# Perf-trajectory record: runs the Figure 10 bench (single-thread speedup of
# every optimization config over baseline, all 10 STAMP workloads) at a
# fixed scale and emits machine-readable BENCH_fig10.json in the repo root.
# Compare the JSON across commits to track the perf trajectory.
#
# Usage: scripts/bench_json.sh [scale] [reps]
#   scale  defaults to 1.0 (approaches paper-size inputs; still seconds-fast)
#   reps   defaults to 5 (median-of-N per cell)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-1.0}"
reps="${2:-5}"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs" --target bench_fig10_single_thread

./build/bench_fig10_single_thread \
  --scale "$scale" --reps "$reps" --json BENCH_fig10.json
echo "wrote $(pwd)/BENCH_fig10.json"
