#!/usr/bin/env bash
# Devirtualization gate for the capture fast path (registered as the
# `devirtualized_fast_path` ctest).
#
# The barrier plan refactor removed every vtable from the capture machinery:
# membership checks inline from the CaptureFrame, and the per-transaction
# plan replaces per-access indirect dispatch. A `virtual` reappearing in
# src/capture/ or stm/barriers.hpp means an indirect call crept back into
# the hottest path in the system — fail loudly before a benchmark has to
# notice.
#
# Comments are stripped with the compiler's own preprocessor
# (-fpreprocessed consumes comments and nothing else), so prose about the
# removed vtable design cannot trip the gate and a `virtual` hidden behind
# a block comment on the same line cannot slip past it.
set -euo pipefail
cd "$(dirname "$0")/.."

cxx="${CXX:-c++}"
offenders=""
while IFS= read -r f; do
  if "$cxx" -fpreprocessed -dD -E -P -x c++ "$f" 2>/dev/null \
      | grep -qw 'virtual'; then
    offenders+="$f"$'\n'
  fi
done < <(find src/capture src/stm/barriers.hpp \
           \( -name '*.hpp' -o -name '*.cpp' \) | sort)

if [ -n "$offenders" ]; then
  echo "FAIL: 'virtual' found in the capture fast path (comments excluded):" >&2
  printf '%s' "$offenders" >&2
  echo "The capture logs and barriers must stay vtable-free;" >&2
  echo "dispatch belongs in the barrier plan (stm/barrier_plan.hpp)." >&2
  exit 1
fi

echo "devirtualized_fast_path: OK (no 'virtual' in src/capture or stm/barriers.hpp)"
