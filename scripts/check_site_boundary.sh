#!/usr/bin/env bash
# Enforces the generated-Site-verdict boundary: the ONLY definitions of
# container/STAMP Site constants (and therefore of their capture-analysis
# verdicts) live in generated/site_verdicts.hpp, which txir_sitegen emits
# from the kernel corpus. Hand-authored `constexpr Site` declarations or
# `Verdict::` references in the application layers are exactly the
# analysis↔execution drift the codegen loop exists to eliminate.
#
# Allowed locations for Verdict:: / Site definitions:
#   generated/            — the emitted table (single source of truth)
#   src/txir/             — the analysis + emitter themselves
#   src/stm/              — the lattice (site.hpp), the instrumentation
#                           layer (tvar.hpp's derived init Sites), barriers
#   tests/, bench/        — may build ad-hoc Sites to probe the runtime
#
# Registered as the ctest case `site_verdict_boundary` and run by check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

paths=(
  src/containers
  src/stamp
  src/capture
  src/durable
  src/harness
  src/support
  src/txbatch
  src/txmalloc
  examples
)

fail=0
if matches=$(grep -rn 'Verdict::' "${paths[@]}"); then
  echo "error: hand-authored Verdict:: references outside generated/ +" >&2
  echo "src/txir/ + src/stm/:" >&2
  echo "$matches" >&2
  fail=1
fi

if matches=$(grep -rn 'constexpr Site ' "${paths[@]}"); then
  echo "error: hand-authored Site constants outside generated/:" >&2
  echo "$matches" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "Site constants/verdicts belong in generated/site_verdicts.hpp —" >&2
  echo "add a row to src/txir/site_table.cpp and regenerate:" >&2
  echo "  cmake --build build --target sitegen" >&2
  exit 1
fi

echo "site-verdict boundary clean: all Site verdicts come from generated/"
