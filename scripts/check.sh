#!/usr/bin/env bash
# CI gate: the tier-1 verify (release build + full ctest) followed by the
# same test suite under AddressSanitizer. Also reachable as the `check`
# CMake target (ctest only) once a build tree is configured.
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: release build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== ASan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"

echo "== check.sh: all green =="
