#!/usr/bin/env bash
# CI gate: the tier-1 verify (release build + full ctest), the same test
# suite under AddressSanitizer, the gtest suites under ThreadSanitizer, the
# typed-API boundary grep, and (when clang-format is installed) the format
# check. Also reachable as the `check` CMake target once a build tree is
# configured.
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

echo "== typed-API boundary =="
scripts/check_typed_api.sh

echo "== devirtualized fast path =="
scripts/check_devirt.sh

echo "== tier-1: release build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== format check =="
if command -v clang-format > /dev/null 2>&1; then
  cmake --build build --target check-format
else
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
  echo "!!! SKIP: clang-format not installed — format check DID NOT RUN" >&2
  echo "!!! install clang-format to enable the check-format gate"        >&2
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
fi

echo "== ASan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"

echo "== TSan build + ctest (gtest suites) =="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
ctest --preset tsan -j "$jobs"

echo "== check.sh: all green =="
