#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml drives the
# hermetic scripts/ci.sh; this script runs the same gates but tolerates
# missing optional tools with loud SKIP banners instead of failing):
# the tier-1 verify (release build + full ctest, which includes the
# cross-config differential torture suite), the same test suite under
# AddressSanitizer, the gtest suites under ThreadSanitizer, the typed-API
# and site-verdict boundary greps, the codegen staleness gate (committed
# generated/site_verdicts.hpp vs a fresh txir_sitegen render — the exact
# drift diff CI's codegen-drift step would print), the per-kernel
# static-analysis elision table (printed in
# every run so analysis-precision regressions are visible), the advisory
# bench regression gate (scripts/bench_gate.py; -s makes it fatal), and
# (when clang-format is installed) the format check. Also reachable as the
# `check` CMake target once a build tree is configured.
#
# Fast inner loop while developing: `ctest -L unit` in a configured build
# tree (unit = gtest suites + source greps; torture and bench-smoke are
# separate labels with their own timeouts).
#
# Usage: scripts/check.sh [-j N] [-s]
#   -s  strict: bench-gate violations fail the run (quiet hardware only)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
strict=0
while getopts "j:s" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    s) strict=1 ;;
    *) echo "usage: $0 [-j N] [-s]" >&2; exit 2 ;;
  esac
done

echo "== typed-API boundary =="
scripts/check_typed_api.sh

echo "== devirtualized fast path =="
scripts/check_devirt.sh

echo "== site-verdict boundary (all Site verdicts come from generated/) =="
scripts/check_site_boundary.sh

echo "== tier-1: release build + ctest (includes differential torture) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== codegen staleness gate (same drift diff CI's codegen-drift prints) =="
./build/txir_sitegen --check generated/site_verdicts.hpp

echo "== cross-config differential torture (explicit) =="
./build/test_differential --gtest_brief=1

echo "== static capture analysis: per-kernel elision table =="
./build/example_compiler_analysis | sed -n '/per-kernel analysis precision/,/^$/p'

echo "== bench regression gate (advisory unless -s) =="
if command -v python3 > /dev/null 2>&1; then
  if [ "$strict" -eq 1 ]; then
    python3 scripts/bench_gate.py --strict
  else
    python3 scripts/bench_gate.py
  fi
else
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
  echo "!!! SKIP: python3 not installed — bench gate DID NOT RUN"      >&2
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
fi

echo "== format check =="
if command -v clang-format > /dev/null 2>&1; then
  cmake --build build --target check-format
else
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
  echo "!!! SKIP: clang-format not installed — format check DID NOT RUN" >&2
  echo "!!! install clang-format to enable the check-format gate"        >&2
  echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!" >&2
fi

echo "== ASan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"

echo "== TSan build + ctest (gtest suites) =="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
ctest --preset tsan -j "$jobs"

echo "== check.sh: all green =="
